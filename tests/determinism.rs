//! Thread-count invariance: every parallel code path must produce
//! bit-identical results at any worker count. The contract (see
//! `crates/exec`) is that parallelism only changes *when* a task runs,
//! never *what* it computes: all randomness comes from per-task tagged
//! [`stca_util::SeedStream`] streams and results are assembled in input
//! order.
//!
//! Each test runs the same computation with the pool forced to 1 worker
//! and to 8 workers and compares outputs via `f64::to_bits` — exact
//! equality, not tolerance. Run with `STCA_THREADS=1` and `STCA_THREADS=8`
//! in CI for extra coverage; the explicit `set_threads` calls below win
//! over the environment, so the tests are self-contained either way.

use stca_bench::dataset::build_pair_dataset;
use stca_bench::Scale;
use stca_core::{ModelConfig, PolicyExplorer, Predictor};
use stca_deepforest::forest::{Forest, ForestConfig};
use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_profiler::sampler::CounterOrdering;
use stca_util::{Matrix, Rng64, SeedStream};
use stca_workloads::{BenchmarkId, RuntimeCondition};

/// `set_threads` is process-global and the tests in this binary run on
/// parallel test threads, so thread-count flips are serialized.
fn exec_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` once with 1 worker and once with 8, returning both results.
fn at_1_and_8<R>(mut f: impl FnMut() -> R) -> (R, R) {
    stca_exec::set_threads(1);
    let serial = f();
    stca_exec::set_threads(8);
    let parallel = f();
    (serial, parallel)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn forest_fit_is_thread_count_invariant() {
    let _guard = exec_lock();
    let mut rng = Rng64::new(41);
    let mut x = Matrix::zeros(0, 0);
    let mut y = Vec::new();
    for _ in 0..150 {
        let a = rng.next_f64();
        let b = rng.next_f64();
        x.push_row(&[a, b, rng.next_f64()]);
        y.push(3.0 * a - b);
    }
    let probes: Vec<Vec<f64>> = (0..20)
        .map(|_| (0..3).map(|_| rng.next_f64()).collect())
        .collect();
    let (serial, parallel) = at_1_and_8(|| {
        let forest = Forest::fit(&x, &y, ForestConfig::random(24), &SeedStream::new(7));
        probes
            .iter()
            .map(|p| forest.predict(p))
            .collect::<Vec<f64>>()
    });
    assert_eq!(bits(&serial), bits(&parallel));
}

#[test]
fn dataset_build_is_thread_count_invariant() {
    let _guard = exec_lock();
    let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
    let (serial, parallel) =
        at_1_and_8(|| build_pair_dataset(pair, 4, Scale::Quick, CounterOrdering::Grouped, 13));
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.pair, b.pair);
        assert_eq!(a.row.ea.to_bits(), b.row.ea.to_bits());
        assert_eq!(
            a.row.mean_response_norm.to_bits(),
            b.row.mean_response_norm.to_bits()
        );
        assert_eq!(bits(&a.row.static_features), bits(&b.row.static_features));
    }
}

#[test]
fn fault_injected_dataset_build_is_thread_count_invariant() {
    let _guard = exec_lock();
    // fault decisions are keyed to (plan seed, run seed, attempt), never to
    // scheduling, so an injected plan must stay bit-identical across thread
    // counts too — including which conditions crash and retry
    let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
    let (serial, parallel) = at_1_and_8(|| {
        stca_bench::dataset::build_pair_dataset_checked(
            pair,
            4,
            Scale::Quick,
            CounterOrdering::Grouped,
            23,
            &stca_fault::FaultPlan::heavy(),
            &stca_fault::RetryPolicy::with_max_retries(8),
            None,
        )
        .expect("heavy plan survivable with retries")
    });
    assert_eq!(serial.len(), parallel.len());
    assert!(!serial.is_empty());
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.row.ea.to_bits(), b.row.ea.to_bits());
        assert_eq!(bits(a.row.trace.as_slice()), bits(b.row.trace.as_slice()));
        assert_eq!(bits(&a.row.static_features), bits(&b.row.static_features));
    }
}

#[test]
fn policy_exploration_is_thread_count_invariant() {
    let _guard = exec_lock();
    // small profile fixture (serial: conditions drawn from one rng chain)
    let mut rng = Rng64::new(77);
    let mut profiles = ProfileSet::new();
    for i in 0..6 {
        let cond = RuntimeCondition::random_pair(BenchmarkId::Redis, BenchmarkId::Social, &mut rng);
        let out = TestEnvironment::new(ExperimentSpec::quick(cond.clone(), 500 + i)).run();
        for (j, w) in out.workloads.iter().enumerate() {
            profiles.push(ProfileRow::from_outcome(
                &cond,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }
    let (serial, parallel) = at_1_and_8(|| {
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(5));
        let explorer = PolicyExplorer::new(
            &predictor,
            &profiles,
            BenchmarkId::Redis,
            BenchmarkId::Social,
            0.9,
        );
        explorer.explore()
    });
    assert_eq!(serial.timeout_a.to_bits(), parallel.timeout_a.to_bits());
    assert_eq!(serial.timeout_b.to_bits(), parallel.timeout_b.to_bits());
    assert_eq!(serial.intersected, parallel.intersected);
    for (ra, rb) in serial.grid.iter().zip(&parallel.grid) {
        for ((a1, b1), (a2, b2)) in ra.iter().zip(rb) {
            assert_eq!(a1.to_bits(), a2.to_bits());
            assert_eq!(b1.to_bits(), b2.to_bits());
        }
    }
}

#[test]
fn serving_loop_is_thread_count_invariant() {
    let _guard = exec_lock();
    use stca_serve::{serve, AnalyticEa, ServeConfig, SyntheticStream};
    let cfg = ServeConfig {
        keep_decision_log: true,
        ..ServeConfig::default()
    };
    let stream = SyntheticStream {
        seed: 33,
        rate: 300.0,
        deadline_s: 0.5,
        n_features: 6,
    };
    // healthy and heavily faulted: the decision log, accounting, and
    // response distribution must be bit-identical at 1 vs 8 workers
    for plan in [
        stca_fault::FaultPlan::none(),
        stca_fault::FaultPlan::heavy(),
    ] {
        let (a, b) = at_1_and_8(|| {
            serve(&cfg, &AnalyticEa::default(), &plan, &stream, 30_000).expect("serves")
        });
        assert_eq!(a.decision_hash, b.decision_hash, "plan seed {}", plan.seed);
        assert_eq!(a.decision_log, b.decision_log);
        assert_eq!(a.accounting, b.accounting);
        assert_eq!(a.mean_response_s.to_bits(), b.mean_response_s.to_bits());
        assert_eq!(a.p99_response_s.to_bits(), b.p99_response_s.to_bits());
        assert_eq!(a.breaker_opens, b.breaker_opens);
        assert_eq!(a.policy_applies, b.policy_applies);
    }
}
