//! Golden tests for the presorted/binned split-finding engines.
//!
//! The exact presorted engine must produce **bit-identical** models to the
//! reference implementation (per-node re-sorting, kept in-tree behind
//! `TreeConfig::reference`) at every thread count — it is a pure
//! performance change, protected here against silent semantic drift. The
//! opt-in histogram engine is approximate by design; it is held to an
//! accuracy tolerance against exact mode on synthetic data shaped like the
//! fig6 EA task, plus the same thread-count invariance as everything else.

use stca_deepforest::{Cascade, CascadeConfig, Forest, ForestConfig};
use stca_util::{Matrix, Rng64, SeedStream};

/// `set_threads` is process-global and the tests in this binary run on
/// parallel test threads, so thread-count flips are serialized.
fn exec_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` once with 1 worker and once with 8, returning both results.
fn at_1_and_8<R>(mut f: impl FnMut() -> R) -> (R, R) {
    stca_exec::set_threads(1);
    let serial = f();
    stca_exec::set_threads(8);
    let parallel = f();
    (serial, parallel)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Synthetic data with quantized (tie-heavy) and continuous features —
/// ties are where a sorting change would first break bit-identity.
fn synth(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::zeros(0, 0);
    let mut y = Vec::new();
    for _ in 0..n {
        let a = (rng.next_f64() * 6.0).floor() / 6.0;
        let b = rng.next_f64();
        let c = (rng.next_f64() * 3.0).floor() / 3.0;
        let d = rng.next_f64();
        x.push_row(&[a, b, c, d]);
        y.push(2.0 * a - b + 0.5 * c + 0.1 * rng.next_gaussian());
    }
    (x, y)
}

#[test]
fn presorted_forest_fit_matches_reference_at_any_thread_count() {
    let _guard = exec_lock();
    let (x, y) = synth(200, 1);
    let probes: Vec<Vec<f64>> = {
        let mut rng = Rng64::new(2);
        (0..25)
            .map(|_| (0..4).map(|_| rng.next_f64()).collect())
            .collect()
    };
    let run = |config: ForestConfig| {
        let forest = Forest::fit(&x, &y, config, &SeedStream::new(3));
        probes.iter().map(|p| forest.predict(p)).collect::<Vec<_>>()
    };
    let (fast_1, fast_8) = at_1_and_8(|| run(ForestConfig::random(20)));
    let (ref_1, ref_8) = at_1_and_8(|| {
        run(ForestConfig {
            reference: true,
            ..ForestConfig::random(20)
        })
    });
    assert_eq!(
        bits(&fast_1),
        bits(&ref_1),
        "presorted == reference at 1 thread"
    );
    assert_eq!(
        bits(&fast_8),
        bits(&ref_8),
        "presorted == reference at 8 threads"
    );
    assert_eq!(
        bits(&fast_1),
        bits(&fast_8),
        "presorted thread-count invariant"
    );
}

#[test]
fn presorted_cascade_fit_matches_reference_at_any_thread_count() {
    let _guard = exec_lock();
    let (x, y) = synth(120, 4);
    let config = CascadeConfig {
        levels: 2,
        forests_per_level: 4,
        trees_per_forest: 12,
        folds: 3,
        ..CascadeConfig::default()
    };
    let run = |config: CascadeConfig| {
        let cascade = Cascade::fit(&x, &y, config, &SeedStream::new(5));
        (0..x.rows())
            .map(|r| cascade.predict(x.row(r)))
            .collect::<Vec<_>>()
    };
    let (fast_1, fast_8) = at_1_and_8(|| run(config));
    let (ref_1, ref_8) = at_1_and_8(|| {
        run(CascadeConfig {
            reference: true,
            ..config
        })
    });
    assert_eq!(
        bits(&fast_1),
        bits(&ref_1),
        "presorted == reference at 1 thread"
    );
    assert_eq!(
        bits(&fast_8),
        bits(&ref_8),
        "presorted == reference at 8 threads"
    );
    assert_eq!(
        bits(&fast_1),
        bits(&fast_8),
        "presorted thread-count invariant"
    );
}

#[test]
fn histogram_forest_stays_within_tolerance_of_exact() {
    let _guard = exec_lock();
    let (x, y) = synth(400, 6);
    let (xt, yt) = synth(150, 7);
    let exact = Forest::fit(&x, &y, ForestConfig::random(30), &SeedStream::new(8));
    let binned = Forest::fit(
        &x,
        &y,
        ForestConfig {
            bins: Some(64),
            ..ForestConfig::random(30)
        },
        &SeedStream::new(8),
    );
    let mae = |f: &Forest| -> f64 {
        (0..xt.rows())
            .map(|r| (f.predict(xt.row(r)) - yt[r]).abs())
            .sum::<f64>()
            / yt.len() as f64
    };
    let (exact_mae, binned_mae) = (mae(&exact), mae(&binned));
    // histogram mode may trade a little accuracy for speed, but must stay
    // in the same regime as exact splits (fig6-style tolerance)
    assert!(
        binned_mae <= exact_mae + 0.05,
        "binned MAE {binned_mae:.4} vs exact {exact_mae:.4}"
    );
}

#[test]
fn histogram_forest_is_thread_count_invariant() {
    let _guard = exec_lock();
    let (x, y) = synth(150, 9);
    let (serial, parallel) = at_1_and_8(|| {
        let forest = Forest::fit(
            &x,
            &y,
            ForestConfig {
                bins: Some(32),
                ..ForestConfig::random(16)
            },
            &SeedStream::new(10),
        );
        (0..x.rows())
            .map(|r| forest.predict(x.row(r)))
            .collect::<Vec<_>>()
    });
    assert_eq!(bits(&serial), bits(&parallel));
}
