//! Proof that the deep-forest predict path is allocation-free.
//!
//! This binary installs a counting wrapper around the system allocator and
//! asserts that, after one warm-up call (scratch buffers growing to
//! steady-state capacity), repeated predictions through the scratch APIs
//! perform **zero** heap allocations. Policy search calls predict thousands
//! of times per exploration; this test keeps allocator pressure out of that
//! loop for good.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // const-init: the counter itself must not allocate lazily inside the
    // allocator hooks
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

use stca_deepforest::{
    Cascade, CascadeConfig, CascadeScratch, DeepForest, DeepForestConfig, Forest, ForestConfig,
    MgsConfig, PredictScratch, Sample,
};
use stca_util::{Matrix, Rng64, SeedStream};

fn plane_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::zeros(0, 0);
    let mut y = Vec::new();
    for _ in 0..n {
        let a = rng.next_f64();
        let b = rng.next_f64();
        x.push_row(&[a, b, rng.next_f64()]);
        y.push(2.0 * a - b);
    }
    (x, y)
}

#[test]
fn forest_predict_never_allocates() {
    let (x, y) = plane_data(150, 1);
    let forest = Forest::fit(&x, &y, ForestConfig::random(20), &SeedStream::new(2));
    let n = allocations(|| {
        for r in 0..x.rows() {
            std::hint::black_box(forest.predict(x.row(r)));
        }
    });
    assert_eq!(n, 0, "Forest::predict allocated {n} times");
}

#[test]
fn cascade_predict_with_is_allocation_free_after_warmup() {
    let (x, y) = plane_data(120, 3);
    let config = CascadeConfig {
        levels: 2,
        forests_per_level: 4,
        trees_per_forest: 10,
        folds: 3,
        ..CascadeConfig::default()
    };
    let cascade = Cascade::fit(&x, &y, config, &SeedStream::new(4));
    let mut scratch = CascadeScratch::default();
    cascade.predict_with(x.row(0), &mut scratch); // warm-up: buffers grow once
    let n = allocations(|| {
        for r in 0..x.rows() {
            std::hint::black_box(cascade.predict_with(x.row(r), &mut scratch));
        }
    });
    assert_eq!(n, 0, "Cascade::predict_with allocated {n} times");
}

#[test]
fn cascade_predict_thread_local_path_is_allocation_free_after_warmup() {
    let (x, y) = plane_data(100, 5);
    let config = CascadeConfig {
        levels: 2,
        forests_per_level: 2,
        trees_per_forest: 8,
        folds: 3,
        ..CascadeConfig::default()
    };
    let cascade = Cascade::fit(&x, &y, config, &SeedStream::new(6));
    cascade.predict(x.row(0)); // warm-up: thread-local scratch grows once
    let n = allocations(|| {
        for r in 0..x.rows() {
            std::hint::black_box(cascade.predict(x.row(r)));
        }
    });
    assert_eq!(n, 0, "Cascade::predict allocated {n} times");
}

#[test]
fn deepforest_predict_with_mgs_is_allocation_free_after_warmup() {
    // the full path: feature assembly + MGS window transform + cascade
    let mut rng = Rng64::new(7);
    let mut samples = Vec::new();
    let mut y = Vec::new();
    for i in 0..60 {
        let mut trace = Matrix::zeros(10, 8);
        for v in trace.as_mut_slice() {
            *v = rng.next_f64();
        }
        samples.push(Sample {
            scalars: vec![rng.next_f64(), rng.next_f64()],
            trace,
        });
        y.push((i % 3) as f64 / 3.0);
    }
    let config = DeepForestConfig {
        mgs: Some(MgsConfig {
            window_sizes: vec![4, 6],
            stride: 2,
            trees_per_window: 8,
            max_positions_per_sample: 16,
            ..MgsConfig::default()
        }),
        cascade: CascadeConfig {
            levels: 2,
            forests_per_level: 2,
            trees_per_forest: 8,
            folds: 3,
            ..CascadeConfig::default()
        },
        include_raw_trace: true,
        seed: 8,
    };
    let model = DeepForest::fit(&samples, &y, &config);
    assert!(model.uses_mgs());

    let mut scratch = PredictScratch::default();
    model.predict_with(&samples[0], &mut scratch); // warm-up
    let n = allocations(|| {
        for s in &samples {
            std::hint::black_box(model.predict_parts_with(&s.scalars, &s.trace, &mut scratch));
        }
    });
    assert_eq!(n, 0, "DeepForest::predict_parts_with allocated {n} times");

    // the convenience path (thread-local scratch) is equally clean
    model.predict(&samples[0]); // warm-up its own scratch
    let n = allocations(|| {
        for s in &samples {
            std::hint::black_box(model.predict(s));
        }
    });
    assert_eq!(n, 0, "DeepForest::predict allocated {n} times");
}
