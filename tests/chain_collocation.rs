//! Integration tests for >2-workload collocation (chain layouts) — the
//! Figure-7b configuration where bigger caches host more services.

use stca_repro::cat::layout::{ChainLayout, ExperimentLayout};
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

fn chain_spec(n: usize, timeout: f64, seed: u64) -> ExperimentSpec {
    let benchmarks: Vec<BenchmarkId> = [
        BenchmarkId::Kmeans,
        BenchmarkId::Bfs,
        BenchmarkId::Redis,
        BenchmarkId::Knn,
    ]
    .into_iter()
    .cycle()
    .take(n)
    .collect();
    let mut rng = stca_repro::util::Rng64::new(seed);
    let mut cond = RuntimeCondition::random_chain(&benchmarks, &mut rng);
    for w in &mut cond.workloads {
        w.utilization = 0.7;
        w.timeout_ratio = timeout;
    }
    ExperimentSpec {
        layout: ExperimentLayout::Chain(ChainLayout::new(n, 2, 2)),
        measured_queries: 40,
        warmup_queries: 8,
        accesses_per_query: Some(300),
        ..ExperimentSpec::quick(cond, seed)
    }
}

#[test]
fn three_workload_chain_runs() {
    let out = TestEnvironment::new(chain_spec(3, 1.0, 1)).run();
    assert_eq!(out.workloads.len(), 3);
    for w in &out.workloads {
        assert_eq!(w.response_times.len(), 40);
        assert!(w.mean_response() > 0.0);
        assert!(w.effective_allocation > 0.0);
        assert_eq!(w.trace.len(), 20);
    }
}

#[test]
fn four_workload_chain_fits_default_platform() {
    // 4 workloads x 2 private + 3 x 2 shared = 14 ways <= 20
    let spec = chain_spec(4, 0.5, 2);
    assert!(spec.layout.total_ways() <= spec.config.llc.ways);
    let out = TestEnvironment::new(spec).run();
    assert_eq!(out.workloads.len(), 4);
    // interior workloads have larger boost regions than edge ones
    let edge_ratio = out.workloads[0].policy.allocation_ratio();
    let interior_ratio = out.workloads[1].policy.allocation_ratio();
    assert!(
        interior_ratio > edge_ratio,
        "interior chain workloads boost into both neighbours: {interior_ratio} vs {edge_ratio}"
    );
}

#[test]
fn chain_baseline_never_boosts() {
    let out = TestEnvironment::new(chain_spec(3, 0.25, 3)).run_baseline();
    for w in &out.workloads {
        assert_eq!(w.boost_fraction(), 0.0);
        assert_eq!(w.cos_switches, 0);
    }
}

#[test]
fn chain_neighbours_contend_in_shared_regions() {
    // aggressive timeouts on all three: the middle workload shares with
    // both neighbours and should see evictions from/to its shared regions
    let out = TestEnvironment::new(chain_spec(3, 0.0, 4)).run();
    let middle = &out.workloads[1];
    assert!(
        middle.boost_fraction() > 0.5,
        "T=0 should boost the middle workload frequently"
    );
}

#[test]
#[should_panic(expected = "layout must host")]
fn layout_arity_mismatch_rejected() {
    let mut spec = chain_spec(3, 1.0, 5);
    spec.layout = ExperimentLayout::pair_symmetric(2, 2); // 2 regions, 3 workloads
    let _ = TestEnvironment::new(spec);
}
