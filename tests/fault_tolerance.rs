//! End-to-end fault tolerance: the full profile → train → explore pipeline
//! must survive an aggressive deterministic fault plan (≥10% experiment
//! crashes, ≥5% sample dropout, plus corruption, stuck sensors, and noise)
//! without panicking, while surfacing every injected fault through the
//! `fault.*` metrics.
//!
//! Bit-exact crash recovery (checkpoint resume) and the per-layer behavior
//! (retry exhaustion, sanitization, predictor fallbacks) are covered by the
//! crates' own unit tests; this file exercises the composed pipeline.

use stca_bench::dataset::build_pair_dataset_checked;
use stca_bench::Scale;
use stca_core::{ModelConfig, PolicyExplorer, Predictor};
use stca_fault::{FaultPlan, RetryPolicy, StcaError};
use stca_profiler::executor::{run_experiment_checked, ExperimentSpec};
use stca_profiler::sampler::CounterOrdering;
use stca_workloads::{BenchmarkId, RuntimeCondition};

/// Serialize thread-count-sensitive tests (shared with determinism.rs's
/// convention: `set_threads` is process-global).
fn exec_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn pipeline_survives_heavy_fault_plan() {
    let _guard = exec_lock();
    stca_exec::set_threads(2);
    let plan = FaultPlan::heavy();
    assert!(plan.crash_prob >= 0.10, "acceptance: ≥10% crashes");
    assert!(plan.dropout_prob >= 0.05, "acceptance: ≥5% dropout");
    let retry = RetryPolicy::with_max_retries(8);
    let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);

    // deltas, not absolutes: other tests in this binary also touch the
    // process-global fault counters
    let crashes_before = stca_obs::counter("fault.injected_crashes_total").get();
    let drops_before = stca_obs::counter("fault.injected_sample_drops_total").get();
    let retries_before = stca_obs::counter("fault.retries_total").get();

    // Stage 1: profiling under the plan — skips unlucky conditions but
    // never panics and never returns a damaged row
    let dataset = build_pair_dataset_checked(
        pair,
        8,
        Scale::Quick,
        CounterOrdering::Grouped,
        0xFA117,
        &plan,
        &retry,
        None,
    )
    .expect("heavy plan is survivable with retries");
    assert!(!dataset.is_empty());
    for r in &dataset.rows {
        assert!(r.row.ea.is_finite() && r.row.ea >= 0.0);
        assert!(r.row.trace.as_slice().iter().all(|v| v.is_finite()));
    }

    // Stage 2 + 3: training and policy search on the surviving rows
    let profiles = dataset.profile_set();
    let predictor = Predictor::train(&profiles, &ModelConfig::quick(1));
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, 0.9);
    let result = explorer.explore();
    assert!(result.timeout_a > 0.0 && result.timeout_b > 0.0);
    assert!(result.predicted_a.is_finite() && result.predicted_b.is_finite());

    // the injected faults are visible in the metrics registry
    let crashes = stca_obs::counter("fault.injected_crashes_total").get() - crashes_before;
    let drops = stca_obs::counter("fault.injected_sample_drops_total").get() - drops_before;
    let retries = stca_obs::counter("fault.retries_total").get() - retries_before;
    eprintln!("pipeline fault deltas: crashes={crashes} drops={drops} retries={retries}");
    assert!(crashes > 0, "heavy plan must have injected crashes");
    assert!(drops > 0, "heavy plan must have dropped samples");
    assert!(retries > 0, "crashed attempts must have been retried");
}

#[test]
fn retry_exhaustion_surfaces_typed_error_end_to_end() {
    let _guard = exec_lock();
    let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
    let spec = ExperimentSpec::quick(cond, 99);
    let mut plan = FaultPlan::none();
    plan.seed = 1;
    plan.crash_prob = 1.0;
    let giveups_before = stca_obs::counter("fault.retry_giveups_total").get();
    match run_experiment_checked(spec, &plan, &RetryPolicy::with_max_retries(1)) {
        Err(StcaError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 2);
            assert!(matches!(*last, StcaError::InjectedCrash { .. }));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert!(stca_obs::counter("fault.retry_giveups_total").get() > giveups_before);
}

#[test]
fn all_conditions_failing_is_an_error_not_a_panic() {
    let _guard = exec_lock();
    let mut plan = FaultPlan::none();
    plan.seed = 2;
    plan.crash_prob = 1.0;
    let err = build_pair_dataset_checked(
        (BenchmarkId::Knn, BenchmarkId::Bfs),
        2,
        Scale::Quick,
        CounterOrdering::Grouped,
        7,
        &plan,
        &RetryPolicy::none(),
        None,
    )
    .expect_err("every condition crashes on every attempt");
    assert!(matches!(err, StcaError::InvalidInput { .. }));
}
