//! Property-style tests on the core invariants, spanning crates.
//!
//! Cases are generated with the workspace's own deterministic [`Rng64`]
//! (the build environment is offline, so no `proptest`): each test draws a
//! fixed number of random cases from a seeded stream, which keeps failures
//! reproducible — rerun with the same seed and the same cases appear.

use stca_repro::cachesim::{AccessKind, CacheGeometry, Hierarchy, HierarchyConfig};
use stca_repro::cat::layout::{private_regions_disjoint, sharing_degree_bounded};
use stca_repro::cat::{AllocationSetting, CapacityBitmask, PairLayout, ShortTermPolicy};
use stca_repro::queuesim::{QueueSim, StationConfig};
use stca_repro::util::{Distribution, Matrix, Rng64};

/// Any span inside the cache is a valid contiguous CBM, and the
/// (offset, length) representation round-trips.
#[test]
fn cbm_span_roundtrip() {
    let mut rng = Rng64::new(0xCB1);
    for _ in 0..256 {
        let ways = 1 + rng.next_below(64) as usize;
        let offset = rng.next_below(ways as u64) as usize;
        let len = 1 + rng.next_below((ways - offset) as u64) as usize;
        let cbm = CapacityBitmask::from_span(offset, len, ways).expect("valid span");
        assert_eq!(
            cbm.offset(),
            offset,
            "ways={ways} offset={offset} len={len}"
        );
        assert_eq!(cbm.length(), len);
        let alloc = AllocationSetting::from_cbm(&cbm);
        assert_eq!(alloc.to_cbm(ways).expect("still valid"), cbm);
    }
}

/// Masks with a hole are always rejected.
#[test]
fn cbm_rejects_holes() {
    let mut rng = Rng64::new(0xCB2);
    for _ in 0..256 {
        let lo_len = 1 + rng.next_below(7) as usize;
        let gap = 1 + rng.next_below(7) as usize;
        let hi_len = 1 + rng.next_below(7) as usize;
        let bits = ((1u64 << lo_len) - 1) | (((1u64 << hi_len) - 1) << (lo_len + gap));
        let ways = lo_len + gap + hi_len;
        assert!(
            CapacityBitmask::new(bits, ways.max(1)).is_err(),
            "hole must be rejected: lo={lo_len} gap={gap} hi={hi_len}"
        );
    }
}

/// Conjectures 1 and 2 of §2 hold for every well-formed pair layout.
#[test]
fn pair_layout_conjectures() {
    let mut rng = Rng64::new(0xCB3);
    for _ in 0..256 {
        let private_a = 1 + rng.next_below(5) as usize;
        let shared = rng.next_below(6) as usize;
        let private_b = 1 + rng.next_below(5) as usize;
        let ta = rng.next_range(0.0, 6.0);
        let tb = rng.next_range(0.0, 6.0);
        let layout = PairLayout {
            base_way: 0,
            private_a,
            shared,
            private_b,
        };
        let (pa, pb) = layout.policies(ta, tb);
        assert!(private_regions_disjoint(&[pa, pb]));
        assert!(sharing_degree_bounded(&[pa, pb]));
    }
}

/// Queueing simulator invariants: responses positive, response >=
/// service for each query, work conserved.
#[test]
fn queuesim_invariants() {
    let mut rng = Rng64::new(0xCB4);
    for _ in 0..24 {
        let util = rng.next_range(0.1, 0.95);
        let timeout = rng.next_range(0.0, 6.0);
        let boost = rng.next_range(1.0, 4.0);
        let seed = rng.next_below(1000);
        let cfg = StationConfig {
            inter_arrival: Distribution::Exponential {
                mean: 1.0 / (2.0 * util),
            },
            service: Distribution::Exponential { mean: 1.0 },
            expected_service: 1.0,
            timeout_ratio: timeout,
            boost_rate: boost,
            servers: 2,
            shared_boost: true,
            measured_queries: 300,
            warmup_queries: 30,
        };
        let r = QueueSim::new(cfg, seed).run();
        assert_eq!(r.response_times.len(), 300);
        for ((resp, serv), delay) in r
            .response_times
            .iter()
            .zip(&r.service_times)
            .zip(&r.queue_delays)
        {
            assert!(*resp > 0.0);
            assert!(*serv > 0.0);
            assert!(*delay >= 0.0);
            assert!(
                resp + 1e-9 >= serv + delay,
                "resp {resp} >= serv {serv} + delay {delay}"
            );
        }
        assert!(r.boosted_busy_time <= r.busy_time + 1e-9);
    }
}

/// A boost can only help (or leave unchanged) mean service time.
#[test]
fn boost_never_slows_service() {
    let mut rng = Rng64::new(0xCB5);
    for _ in 0..16 {
        let timeout = rng.next_range(0.0, 3.0);
        let seed = rng.next_below(200);
        let mk = |rate: f64| {
            let cfg = StationConfig {
                inter_arrival: Distribution::Exponential { mean: 1.0 },
                service: Distribution::Exponential { mean: 0.8 },
                expected_service: 0.8,
                timeout_ratio: timeout,
                boost_rate: rate,
                servers: 2,
                shared_boost: true,
                measured_queries: 400,
                warmup_queries: 40,
            };
            QueueSim::new(cfg, seed).run().mean_service()
        };
        let plain = mk(1.0);
        let boosted = mk(2.0);
        assert!(
            boosted <= plain * 1.02,
            "boost 2x cannot slow service: {boosted} vs {plain}"
        );
    }
}

/// Distribution scaling preserves shape: scaled mean matches target.
#[test]
fn distribution_scaling() {
    let mut rng = Rng64::new(0xCB6);
    for _ in 0..128 {
        let mean = rng.next_range(0.01, 100.0);
        let target = rng.next_range(0.01, 100.0);
        let d = Distribution::LogNormal { mean, sigma: 0.4 };
        let s = d.scaled_to_mean(target);
        assert!((s.mean() - target).abs() / target < 1e-9);
    }
}

/// Matrix hcat/select_rows preserve contents.
#[test]
fn matrix_ops_preserve_values() {
    let mut case_rng = Rng64::new(0xCB7);
    for _ in 0..64 {
        let rows = 1 + case_rng.next_below(7) as usize;
        let cols_a = 1 + case_rng.next_below(5) as usize;
        let cols_b = 1 + case_rng.next_below(5) as usize;
        let mut rng = Rng64::new(42);
        let mk = |r: usize, c: usize, rng: &mut Rng64| {
            let mut m = Matrix::zeros(r, c);
            for i in 0..r {
                for j in 0..c {
                    m[(i, j)] = rng.next_f64();
                }
            }
            m
        };
        let a = mk(rows, cols_a, &mut rng);
        let b = mk(rows, cols_b, &mut rng);
        let c = a.hcat(&b);
        for i in 0..rows {
            for j in 0..cols_a {
                assert_eq!(c[(i, j)], a[(i, j)]);
            }
            for j in 0..cols_b {
                assert_eq!(c[(i, cols_a + j)], b[(i, j)]);
            }
        }
        let sel = c.select_rows(&[rows - 1, 0]);
        assert_eq!(sel.row(0), c.row(rows - 1));
        assert_eq!(sel.row(1), c.row(0));
    }
}

/// Cache-hierarchy invariant: with disjoint LLC masks, neither workload
/// ever evicts the other's lines, for arbitrary split points.
#[test]
fn disjoint_masks_never_interfere() {
    let mut case_rng = Rng64::new(0xCB8);
    for _ in 0..8 {
        let split = 2 + case_rng.next_below(5) as usize;
        let seed = case_rng.next_below(50);
        let config = HierarchyConfig {
            l1d: CacheGeometry::new(512, 2, 64),
            l1i: CacheGeometry::new(512, 2, 64),
            l2: CacheGeometry::new(2048, 4, 64),
            llc: CacheGeometry::new(8192, 8, 64),
            latencies: Default::default(),
        };
        let mut h = Hierarchy::new(config, seed);
        h.set_llc_mask(
            0,
            AllocationSetting::new(0, split).to_cbm(8).expect("valid"),
        );
        h.set_llc_mask(
            1,
            AllocationSetting::new(split, 8 - split)
                .to_cbm(8)
                .expect("valid"),
        );
        let mut rng = Rng64::new(seed);
        for _ in 0..4000 {
            let w = rng.next_below(2) as u32;
            let addr = ((w as u64) << 40) | (rng.next_below(256) * 64);
            let kind = if rng.next_bool(0.3) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            h.access(w, addr, kind);
        }
        for w in 0..2u32 {
            let c = h.counters_of(w);
            assert_eq!(c.get(stca_repro::cachesim::Counter::LlcEvictionsCaused), 0);
            assert_eq!(
                c.get(stca_repro::cachesim::Counter::LlcEvictionsSuffered),
                0
            );
        }
    }
}

/// Occupancy never exceeds what the mask allows.
#[test]
fn occupancy_bounded_by_mask() {
    let mut case_rng = Rng64::new(0xCB9);
    for _ in 0..8 {
        let ways_allowed = 1 + case_rng.next_below(7) as usize;
        let seed = case_rng.next_below(50);
        let config = HierarchyConfig {
            l1d: CacheGeometry::new(512, 2, 64),
            l1i: CacheGeometry::new(512, 2, 64),
            l2: CacheGeometry::new(2048, 4, 64),
            llc: CacheGeometry::new(8192, 8, 64), // 16 sets x 8 ways
            latencies: Default::default(),
        };
        let mut h = Hierarchy::new(config, seed);
        h.set_llc_mask(
            0,
            AllocationSetting::new(0, ways_allowed)
                .to_cbm(8)
                .expect("valid"),
        );
        let mut rng = Rng64::new(seed ^ 1);
        for _ in 0..5000 {
            h.access(0, rng.next_below(1024) * 64, AccessKind::Load);
        }
        assert!(h.llc_occupancy(0) <= (ways_allowed * 16) as u64);
    }
}

/// Policies built from layouts always produce valid CBMs on the target
/// cache (deterministic test over the full grid).
#[test]
fn layout_policies_always_valid_on_e5() {
    let ways = 20;
    for private in 1..=4 {
        for shared in 0..=4 {
            let layout = PairLayout::symmetric(private, shared);
            let (pa, pb) = layout.policies(1.0, 1.0);
            for p in [pa, pb] {
                assert!(p.default.to_cbm(ways).is_ok());
                assert!(p.boosted.to_cbm(ways).is_ok());
            }
        }
    }
}

/// Shared-boost semantics matter: a static policy equals a never-boost STAP.
#[test]
fn static_policy_equals_never_boost() {
    let mk = |p: ShortTermPolicy| {
        let cfg = StationConfig {
            inter_arrival: Distribution::Exponential { mean: 1.0 },
            service: Distribution::Exponential { mean: 0.7 },
            expected_service: 0.7,
            timeout_ratio: p.timeout_ratio,
            boost_rate: if p.boost_enabled() { 2.0 } else { 1.0 },
            servers: 2,
            shared_boost: true,
            measured_queries: 500,
            warmup_queries: 50,
        };
        QueueSim::new(cfg, 7).run().mean_response()
    };
    let static_only = ShortTermPolicy::static_only(AllocationSetting::new(0, 2));
    let never = ShortTermPolicy::new(
        AllocationSetting::new(0, 2),
        AllocationSetting::new(0, 4),
        6.0,
    );
    assert_eq!(mk(static_only), mk(never));
}

/// The circuit breaker never drops a request on the floor: every `decide`
/// call yields exactly one verdict under arbitrary success/failure
/// sequences, and the state machine honours its thresholds — `Closed`
/// always admits, `Open` before its cooldown always rejects, and exactly
/// `failure_threshold` consecutive failures trip it.
#[test]
fn breaker_state_machine_invariants() {
    use stca_repro::serve::{BreakerConfig, BreakerState, CircuitBreaker, Verdict};
    let mut rng = Rng64::new(0xB4EA);
    for case in 0..64 {
        let cfg = BreakerConfig {
            failure_threshold: 1 + rng.next_below(6) as u32,
            cooldown_s: 0.1 + rng.next_f64(),
            probe_fraction: rng.next_f64(),
            success_to_close: 1 + rng.next_below(4) as u32,
            seed: 0x5EED ^ case,
        };
        let mut br = CircuitBreaker::new(cfg);
        let mut now = 0.0;
        let mut answered = 0u64;
        let n = 2_000u64;
        for i in 0..n {
            now += rng.next_f64() * 0.2;
            let state_before = br.state();
            let v = br.decide(now, i);
            // allow() is pure: same inputs, same verdict
            assert_eq!(br.allow(now, i), v, "case {case} call {i}");
            match state_before {
                BreakerState::Closed { .. } => {
                    assert_eq!(v, Verdict::Admit, "closed always admits")
                }
                BreakerState::Open { until, .. } if now < until => {
                    assert_eq!(v, Verdict::Reject, "cooling open always rejects")
                }
                BreakerState::Open { .. } => {
                    assert_ne!(v, Verdict::Admit, "expired open probes or rejects")
                }
            }
            match v {
                Verdict::Admit | Verdict::Probe => {
                    if rng.next_bool(0.3) {
                        br.record_failure(now);
                    } else {
                        br.record_success(now);
                    }
                    answered += 1;
                }
                // a rejected call short-circuits to the degraded tier:
                // still answered, never lost
                Verdict::Reject => answered += 1,
            }
        }
        assert_eq!(answered, n, "case {case}: every call got one verdict");
        assert!(
            br.closes <= br.opens,
            "case {case}: cannot close more than opened"
        );
        if br.opens == 0 {
            assert_eq!(br.probes + br.rejects, 0, "case {case}");
        }
    }
}

/// Fresh failures from `Closed` trip the breaker after exactly
/// `failure_threshold` consecutive failures — no sooner, regardless of
/// interleaved successes.
#[test]
fn breaker_trips_on_exactly_k_consecutive_failures() {
    use stca_repro::serve::{BreakerConfig, CircuitBreaker};
    let mut rng = Rng64::new(0xB4EB);
    for _ in 0..32 {
        let k = 1 + rng.next_below(8) as u32;
        let cfg = BreakerConfig {
            failure_threshold: k,
            ..BreakerConfig::default()
        };
        let mut br = CircuitBreaker::new(cfg);
        let mut now = 0.0;
        // interleave short failure bursts (below k) with successes: never trips
        for _ in 0..20 {
            for _ in 0..k - 1 {
                now += 0.01;
                br.record_failure(now);
            }
            now += 0.01;
            br.record_success(now);
        }
        assert_eq!(br.opens, 0, "k-1 bursts must not trip (k={k})");
        for _ in 0..k {
            now += 0.01;
            br.record_failure(now);
        }
        assert_eq!(br.opens, 1, "k consecutive failures trip (k={k})");
        assert!(br.is_open_at(now));
    }
}

/// The serving loop's accounting invariant holds for arbitrary
/// configurations and fault plans: every offered request ends in exactly
/// one disposition.
#[test]
fn serving_accounting_balances_for_arbitrary_configs() {
    use stca_repro::serve::{serve, AnalyticEa, OverloadPolicy, ServeConfig, SyntheticStream};
    let mut rng = Rng64::new(0x5E44E);
    for case in 0..12 {
        let overload = match rng.next_below(3) {
            0 => OverloadPolicy::ShedNewest,
            1 => OverloadPolicy::ShedOldest,
            _ => OverloadPolicy::Block,
        };
        let cfg = ServeConfig {
            servers: 1 + rng.next_below(4) as usize,
            queue_capacity: 1 + rng.next_below(32) as usize,
            overload,
            hysteresis_k: 1 + rng.next_below(8) as u32,
            drain_grace_s: rng.next_f64() * 5.0,
            sim_budget_events: 200,
            ..ServeConfig::default()
        };
        let plan = stca_repro::fault::FaultPlan::parse(&format!(
            "predict_fail={:.2},stall={:.2},latency=0.15,seed={}",
            rng.next_f64() * 0.5,
            rng.next_f64() * 0.2,
            case
        ))
        .expect("valid plan spec");
        let stream = SyntheticStream {
            seed: 0xA5 ^ case,
            rate: 20.0 + rng.next_f64() * 800.0,
            deadline_s: 0.05 + rng.next_f64(),
            n_features: 4,
        };
        let n = 2_000;
        let r = serve(&cfg, &AnalyticEa::default(), &plan, &stream, n)
            .expect("arbitrary valid config serves");
        assert!(
            r.accounting.balanced(),
            "case {case} ({:?}): {:?}",
            overload,
            r.accounting
        );
        assert_eq!(r.accounting.admitted, n, "case {case}");
        if matches!(overload, OverloadPolicy::Block) {
            assert_eq!(
                r.accounting.shed_overload, 0,
                "case {case}: block never sheds at admission"
            );
        }
    }
}
