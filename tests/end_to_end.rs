//! End-to-end integration: the full Stage 1 → 2 → 3 pipeline plus policy
//! exploration, spanning every crate in the workspace.

use stca_repro::core::{ModelConfig, PolicyExplorer, Predictor};
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::profiler::profile::{ProfileRow, ProfileSet};
use stca_repro::profiler::sampler::CounterOrdering;
use stca_repro::util::Rng64;
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

fn build_profiles(
    pair: (BenchmarkId, BenchmarkId),
    n: usize,
    seed: u64,
) -> (ProfileSet, Vec<RuntimeCondition>) {
    let mut rng = Rng64::new(seed);
    let mut set = ProfileSet::new();
    let mut conds = Vec::new();
    for i in 0..n {
        let condition = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
        let outcome =
            TestEnvironment::new(ExperimentSpec::quick(condition.clone(), seed + i as u64)).run();
        for (j, w) in outcome.workloads.iter().enumerate() {
            set.push(ProfileRow::from_outcome(
                &condition,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
        conds.push(condition);
    }
    (set, conds)
}

#[test]
fn profile_train_predict_pipeline() {
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let (profiles, _) = build_profiles(pair, 6, 0xE2E);
    assert_eq!(profiles.len(), 12);

    let predictor = Predictor::train(&profiles, &ModelConfig::quick(1));
    // every training row gets a finite, positive prediction
    for row in &profiles.rows {
        let pred = predictor.predict_response(row, pair.0);
        assert!(pred.mean_response > 0.0 && pred.mean_response.is_finite());
        assert!(pred.p95_response >= pred.median_response);
        assert!(pred.ea > 0.0 && pred.ea <= 2.0);
        assert!(pred.boost_rate > 0.0);
    }
}

#[test]
fn prediction_correlates_with_ground_truth_direction() {
    // train on mixed conditions, then check the model predicts *higher*
    // response for a high-utilization condition than a low one
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let (profiles, _) = build_profiles(pair, 6, 0xD1);
    let predictor = Predictor::train(&profiles, &ModelConfig::quick(2));

    let mk = |util: f64, seed: u64| {
        let condition = RuntimeCondition::pair(pair.0, util, 6.0, pair.1, 0.5, 6.0);
        let out = TestEnvironment::new(ExperimentSpec::quick(condition.clone(), seed)).run();
        ProfileRow::from_outcome(&condition, 0, &out.workloads[0], CounterOrdering::Grouped)
    };
    let low = predictor.predict_response(&mk(0.3, 50), pair.0);
    let high = predictor.predict_response(&mk(0.9, 51), pair.0);
    assert!(
        high.mean_response > low.mean_response,
        "predicted response must grow with utilization: {} vs {}",
        low.mean_response,
        high.mean_response
    );
}

#[test]
fn explorer_end_to_end() {
    let pair = (BenchmarkId::Redis, BenchmarkId::Social);
    let (profiles, _) = build_profiles(pair, 5, 0xE3);
    let predictor = Predictor::train(&profiles, &ModelConfig::quick(3));
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, 0.9);
    let result = explorer.explore();
    // the chosen vector is on the grid and all predictions are positive
    assert!(result
        .grid
        .iter()
        .flatten()
        .all(|&(a, b)| a > 0.0 && b > 0.0));
    let layout = stca_repro::cat::PairLayout::symmetric(2, 2);
    let policies = result.policies(&layout);
    assert_eq!(policies.len(), 2);
    // chosen policies can actually run in the environment
    let cond = RuntimeCondition::pair(pair.0, 0.9, 6.0, pair.1, 0.9, 6.0);
    let out =
        TestEnvironment::new(ExperimentSpec::quick(cond, 99)).run_with_policies(Some(policies));
    assert_eq!(out.workloads.len(), 2);
    assert!(out.workloads.iter().all(|w| w.mean_response() > 0.0));
}

#[test]
fn effective_allocation_reacts_to_contention() {
    // redis alone boosting vs redis boosting while kmeans also boosts into
    // the same shared ways: EA should not improve when contention appears
    let mk = |partner_timeout: f64, seed: u64| {
        let cond = RuntimeCondition::pair(
            BenchmarkId::Redis,
            0.8,
            0.25,
            BenchmarkId::Kmeans,
            0.8,
            partner_timeout,
        );
        let out = TestEnvironment::new(ExperimentSpec::quick(cond, seed)).run();
        out.workloads[0].effective_allocation
    };
    // average over a few seeds to suppress run noise
    let solo: f64 = (0..3).map(|s| mk(6.0, 200 + s)).sum::<f64>() / 3.0;
    let contended: f64 = (0..3).map(|s| mk(0.0, 300 + s)).sum::<f64>() / 3.0;
    assert!(
        contended <= solo * 1.15,
        "contention should not raise redis' EA: solo {solo:.3} vs contended {contended:.3}"
    );
}
