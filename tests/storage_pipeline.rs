//! Integration: the offline workflow — profile, persist, reload, train —
//! must be equivalent to training on the in-memory profiles (the paper's
//! separation of offline profiling from model exploration).

use stca_repro::core::{ModelConfig, Predictor};
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::profiler::profile::{ProfileRow, ProfileSet};
use stca_repro::profiler::sampler::CounterOrdering;
use stca_repro::profiler::storage;
use stca_repro::util::Rng64;
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

fn profiles(n: usize, seed: u64) -> ProfileSet {
    let mut rng = Rng64::new(seed);
    let mut set = ProfileSet::new();
    for i in 0..n {
        let cond = RuntimeCondition::random_pair(BenchmarkId::Knn, BenchmarkId::Redis, &mut rng);
        let out = TestEnvironment::new(ExperimentSpec::quick(cond.clone(), seed + i as u64)).run();
        for (j, w) in out.workloads.iter().enumerate() {
            set.push(ProfileRow::from_outcome(
                &cond,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }
    set
}

#[test]
fn persisted_profiles_train_identical_models() {
    let set = profiles(4, 0x57);
    let text = storage::to_string(&set);
    let reloaded = storage::from_string(&text).expect("roundtrip");
    assert_eq!(reloaded.len(), set.len());

    let m1 = Predictor::train(&set, &ModelConfig::quick(3));
    let m2 = Predictor::train(&reloaded, &ModelConfig::quick(3));
    // bit-exact roundtrip + deterministic training = identical predictions
    for row in &set.rows {
        assert_eq!(m1.predict_ea(row), m2.predict_ea(row));
        assert_eq!(
            m1.predict_base_service_norm(row),
            m2.predict_base_service_norm(row)
        );
    }
}

#[test]
fn profile_file_is_diffable_text() {
    let set = profiles(2, 0x58);
    let text = storage::to_string(&set);
    assert!(text.starts_with("STCA-PROFILES v1\n"));
    // purely line-oriented ASCII: no tabs, no binary
    assert!(text
        .bytes()
        .all(|b| b == b'\n' || (0x20..0x7f).contains(&b)));
    let lines = text.lines().count();
    assert!(lines > 10, "one record spans multiple readable lines");
}
