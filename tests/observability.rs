//! End-to-end observability: run the real Stage 1 → 2 → 3 pipeline and
//! assert that the instrumented crates (queuesim, profiler, deepforest,
//! core) all report into the shared `stca-obs` registry, and that the
//! registry exports cleanly in both JSON and Prometheus formats.
//!
//! The registry is process-global, so everything lives in one test
//! function — parallel test threads would otherwise race on `clear()`.

use stca_repro::core::{ModelConfig, Predictor};
use stca_repro::obs;
use stca_repro::obs::metrics::Metric;
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::profiler::profile::{ProfileRow, ProfileSet};
use stca_repro::profiler::sampler::CounterOrdering;
use stca_repro::util::Rng64;
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

#[test]
fn pipeline_populates_metrics_across_crates() {
    obs::registry().clear();

    // Stage 1-2: profile a handful of conditions through the test
    // environment (drives cachesim, queuesim and profiler).
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let mut rng = Rng64::new(0x0B5);
    let mut set = ProfileSet::new();
    for i in 0..4 {
        let condition = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
        let out = TestEnvironment::new(ExperimentSpec::quick(condition.clone(), 0x0B5 + i)).run();
        for (j, w) in out.workloads.iter().enumerate() {
            set.push(ProfileRow::from_outcome(
                &condition,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }

    // Stage 3: train the deep-forest predictor and predict (drives
    // deepforest cascade/MGS and core).
    let predictor = Predictor::train(&set, &ModelConfig::quick(1));
    let pred = predictor.predict_response(&set.rows[0], pair.0);
    assert!(pred.mean_response > 0.0);

    let snap = obs::registry().snapshot();
    let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
    // one representative metric per instrumented crate
    for expect in [
        "queuesim.events_total",
        "profiler.experiments_total",
        "profiler.ea",
        "deepforest.cascade.fits_total",
        "core.predictor.trainings_total",
        "core.predictor.predictions_total",
    ] {
        assert!(
            names.contains(&expect),
            "missing metric {expect}; got {names:?}"
        );
    }

    // counters carry real work
    let get_counter = |want: &str| -> u64 {
        match snap.iter().find(|(n, _)| n == want) {
            Some((_, Metric::Counter(c))) => c.get(),
            other => panic!("{want} not a counter: {other:?}"),
        }
    };
    assert_eq!(get_counter("profiler.experiments_total"), 4);
    assert!(get_counter("queuesim.events_total") > 0);
    assert_eq!(get_counter("core.predictor.trainings_total"), 1);

    // exports include every metric and stay well-formed
    let json = obs::registry().to_json();
    obs::json::Value::parse(&json).expect("metrics JSON parses back");
    for name in &names {
        assert!(json.contains(*name), "JSON export missing {name}");
    }
    let prom = obs::registry().to_prometheus();
    assert!(
        prom.contains("# TYPE"),
        "Prometheus export has TYPE headers"
    );
    assert!(
        prom.contains("stca_queuesim_events_total"),
        "sanitized name present:\n{prom}"
    );

    // the human summary table renders non-empty
    let table = obs::summary_table(obs::registry());
    assert!(
        table.contains("profiler.ea"),
        "summary table lists histograms:\n{table}"
    );
}
