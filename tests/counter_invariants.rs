//! Structural invariants of the 29 hardware counters: whatever the
//! workload, the hierarchy's bookkeeping must stay internally consistent —
//! each level's traffic is exactly the level above's misses, and the LLC's
//! split counters sum to its totals.

use stca_repro::cachesim::{Counter, CounterSet, Hierarchy, HierarchyConfig};
use stca_repro::cat::AllocationSetting;
use stca_repro::util::Rng64;
use stca_repro::workloads::{AccessGenerator, AccessPattern, BenchmarkId, WorkloadSpec};

fn drive(pattern: AccessPattern, store_fraction: f64, n: u64, seed: u64) -> CounterSet {
    let config = HierarchyConfig::experiment_default();
    let mut hier = Hierarchy::new(config, seed);
    hier.set_llc_mask(
        0,
        AllocationSetting::new(0, 4)
            .to_cbm(config.llc.ways)
            .expect("valid"),
    );
    let mut gen = AccessGenerator::new(pattern, 0, store_fraction, seed);
    let mut rng = Rng64::new(seed ^ 0xF0);
    for _ in 0..n {
        let (a, k) = gen.next_access();
        hier.access(0, a, k);
        if rng.next_bool(0.4) {
            let (ai, ki) = gen.next_ifetch();
            hier.access(0, ai, ki);
        }
    }
    hier.counters_of(0)
}

fn check_invariants(c: &CounterSet, label: &str) {
    use Counter::*;
    let get = |x| c.get(x);
    // misses never exceed accesses, per level and kind
    assert!(get(L1dLoadMisses) <= get(L1dLoads), "{label}: l1d loads");
    assert!(get(L1dStoreMisses) <= get(L1dStores), "{label}: l1d stores");
    assert!(get(L1iFetchMisses) <= get(L1iFetches), "{label}: l1i");
    // every L1 miss becomes exactly one L2 request
    assert_eq!(
        get(L2Requests),
        get(L1dLoadMisses) + get(L1dStoreMisses) + get(L1iFetchMisses),
        "{label}: L2 requests are L1 misses"
    );
    assert_eq!(
        get(L2Requests),
        get(L2Loads) + get(L2Stores),
        "{label}: L2 split"
    );
    // every L2 miss becomes exactly one LLC access
    assert_eq!(
        get(LlcAccesses),
        get(L2LoadMisses) + get(L2StoreMisses),
        "{label}: LLC accesses are L2 misses"
    );
    assert_eq!(
        get(LlcAccesses),
        get(LlcLoads) + get(LlcStores),
        "{label}: LLC split"
    );
    assert_eq!(
        get(LlcMisses),
        get(LlcLoadMisses) + get(LlcStoreMisses),
        "{label}: LLC miss split"
    );
    // every LLC miss reads memory; fills can't outnumber misses
    assert_eq!(get(MemReads), get(LlcMisses), "{label}: memory reads");
    assert!(get(LlcFills) <= get(LlcMisses), "{label}: fills bounded");
    // cycle accounting is monotone in work
    assert!(get(Cycles) > 0, "{label}: cycles charged");
}

#[test]
fn invariants_hold_for_every_benchmark_pattern() {
    let config = HierarchyConfig::experiment_default();
    for id in BenchmarkId::ALL {
        let spec = WorkloadSpec::for_benchmark(id);
        let c = drive(spec.pattern_for(&config), spec.store_fraction, 20_000, 42);
        check_invariants(&c, id.short_name());
    }
}

#[test]
fn invariants_hold_under_mask_thrashing() {
    // repeatedly switching masks mid-stream must not break the accounting
    let config = HierarchyConfig::experiment_default();
    let mut hier = Hierarchy::new(config, 7);
    let ways = config.llc.ways;
    let narrow = AllocationSetting::new(0, 2).to_cbm(ways).expect("valid");
    let wide = AllocationSetting::new(0, 6).to_cbm(ways).expect("valid");
    let mut gen = AccessGenerator::new(
        AccessPattern::PointerChase {
            footprint_lines: 4096,
        },
        0,
        0.3,
        8,
    );
    for i in 0..30_000u64 {
        if i % 512 == 0 {
            hier.set_llc_mask(0, if (i / 512) % 2 == 0 { narrow } else { wide });
        }
        let (a, k) = gen.next_access();
        hier.access(0, a, k);
    }
    check_invariants(&hier.counters_of(0), "mask-thrash");
}

#[test]
fn two_workload_totals_are_independent() {
    // counters are strictly per-workload: running B must not change A's
    let config = HierarchyConfig::experiment_default();
    let ways = config.llc.ways;
    let run_a = |with_b: bool, seed: u64| -> CounterSet {
        let mut hier = Hierarchy::new(config, seed);
        hier.set_llc_mask(0, AllocationSetting::new(0, 2).to_cbm(ways).expect("ok"));
        hier.set_llc_mask(1, AllocationSetting::new(10, 2).to_cbm(ways).expect("ok"));
        let mut ga = AccessGenerator::new(
            AccessPattern::Stream {
                footprint_lines: 2000,
            },
            0,
            0.0,
            seed,
        );
        let mut gb = AccessGenerator::new(
            AccessPattern::Stream {
                footprint_lines: 2000,
            },
            1 << 42,
            0.0,
            seed ^ 1,
        );
        for _ in 0..5000 {
            let (a, k) = ga.next_access();
            hier.access(0, a, k);
            if with_b {
                let (b, kb) = gb.next_access();
                hier.access(1, b, kb);
            }
        }
        hier.counters_of(0)
    };
    let solo = run_a(false, 9);
    let duo = run_a(true, 9);
    // disjoint masks, disjoint address spaces: identical counter streams
    // except the possibility of replacement-rng divergence, which disjoint
    // masks prevent at the LLC and separate private caches prevent above it
    assert_eq!(solo.get(Counter::LlcMisses), duo.get(Counter::LlcMisses));
    assert_eq!(solo.get(Counter::L1dLoads), duo.get(Counter::L1dLoads));
    assert_eq!(duo.get(Counter::LlcEvictionsSuffered), 0);
}
