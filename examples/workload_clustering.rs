//! The §5.2 insight experiment: clustering runtime conditions by the deep
//! forest's learned *concepts* exposes the arrival-rate / service-time /
//! timeout interaction behind effective allocation, while clustering raw
//! hardware counters does not.
//!
//! ```sh
//! cargo run --release --example workload_clustering
//! ```

use stca_repro::core::insight::{cluster_by_concepts, cluster_by_counters};
use stca_repro::core::{ModelConfig, Predictor};
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::profiler::profile::{ProfileRow, ProfileSet};
use stca_repro::profiler::sampler::CounterOrdering;
use stca_repro::util::Rng64;
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

fn main() {
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Redis);
    let mut rng = Rng64::new(3);
    let mut profiles = ProfileSet::new();
    println!(
        "profiling {}({}) over random conditions ...",
        pair.0, pair.1
    );
    for i in 0..12 {
        let condition = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
        let spec = ExperimentSpec {
            measured_queries: 120,
            warmup_queries: 20,
            accesses_per_query: Some(1000),
            ..ExperimentSpec::standard(condition.clone(), 600 + i)
        };
        let outcome = TestEnvironment::new(spec).run();
        for (j, w) in outcome.workloads.iter().enumerate() {
            profiles.push(ProfileRow::from_outcome(
                &condition,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }
    let predictor = Predictor::train(&profiles, &ModelConfig::quick(9));

    let k = 3;
    let mut rng = Rng64::new(17);
    let concepts = cluster_by_concepts(&predictor, &profiles, k, &mut rng);
    let counters = cluster_by_counters(&profiles, k, &mut rng);

    let show = |name: &str, a: &stca_repro::core::insight::ClusterAnalysis| {
        println!("\n{name} clustering (k={k}):");
        println!(
            "{:>8} {:>6} {:>10} {:>10} {:>8} {:>8}",
            "cluster", "size", "mean util", "mean T", "mean EA", "EA std"
        );
        for (i, c) in a.clusters.iter().enumerate() {
            if c.size == 0 {
                continue;
            }
            println!(
                "{:>8} {:>6} {:>10.2} {:>10.2} {:>8.2} {:>8.3}",
                i, c.size, c.mean_utilization, c.mean_timeout, c.mean_ea, c.ea_std
            );
        }
        println!(
            "weighted within-cluster EA dispersion: {:.4}",
            a.weighted_ea_dispersion()
        );
    };
    show("concept-space", &concepts);
    show("raw-counter", &counters);
    println!(
        "\nThe concept clustering should separate EA regimes more cleanly \
         (lower dispersion), revealing that EA depends jointly on arrival \
         rate and timeout — the interaction the paper reports raw counters miss."
    );
}
