//! Model-driven policy exploration (the paper's §5.2 workflow): profile a
//! pair, train the model, explore the 5x5 timeout grid, pick the
//! SLO-matched timeout vector, and verify the chosen policy in the test
//! environment against the no-sharing baseline.
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```

use stca_repro::baselines::policies::no_sharing;
use stca_repro::cat::PairLayout;
use stca_repro::core::{ModelConfig, PolicyExplorer, Predictor};
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::profiler::profile::{ProfileRow, ProfileSet};
use stca_repro::profiler::sampler::CounterOrdering;
use stca_repro::util::Rng64;
use stca_repro::workloads::{BenchmarkId, RuntimeCondition, WorkloadSpec};

fn run_policies(
    pair: (BenchmarkId, BenchmarkId),
    policies: &[stca_repro::cat::ShortTermPolicy],
    seed: u64,
) -> Vec<f64> {
    let cond = RuntimeCondition::pair(pair.0, 0.9, 6.0, pair.1, 0.9, 6.0);
    let spec = ExperimentSpec {
        measured_queries: 200,
        warmup_queries: 30,
        accesses_per_query: Some(1200),
        ..ExperimentSpec::standard(cond, seed)
    };
    let out = TestEnvironment::new(spec).run_with_policies(Some(policies.to_vec()));
    out.workloads
        .iter()
        .map(|w| w.p95_response() / WorkloadSpec::for_benchmark(w.benchmark).mean_service_time)
        .collect()
}

fn main() {
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let layout = PairLayout::symmetric(2, 2);

    // profile
    let mut rng = Rng64::new(11);
    let mut profiles = ProfileSet::new();
    println!("profiling {}({}) ...", pair.0, pair.1);
    for i in 0..10 {
        let condition = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
        let spec = ExperimentSpec {
            measured_queries: 150,
            warmup_queries: 20,
            accesses_per_query: Some(1200),
            ..ExperimentSpec::standard(condition.clone(), 300 + i)
        };
        let outcome = TestEnvironment::new(spec).run();
        for (j, w) in outcome.workloads.iter().enumerate() {
            profiles.push(ProfileRow::from_outcome(
                &condition,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }

    // train + explore
    println!("training and exploring the timeout grid at 90% arrival ...");
    let predictor = Predictor::train(&profiles, &ModelConfig::quick(5));
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, 0.9);
    let result = explorer.explore();
    println!(
        "\npredicted normalized p95 over the 5x5 grid (rows = T_{}, cols = T_{}):",
        pair.0, pair.1
    );
    for (i, row) in result.grid.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|(a, b)| format!("{a:.1}/{b:.1}")).collect();
        println!(
            "  T={:4.2} | {}",
            stca_repro::core::explorer::TIMEOUT_GRID[i],
            cells.join("  ")
        );
    }
    println!(
        "\nchosen timeout vector: T_{} = {:.2}, T_{} = {:.2} (SLO intersection: {})",
        pair.0, result.timeout_a, pair.1, result.timeout_b, result.intersected
    );

    // verify against the no-sharing baseline
    let chosen = result.policies(&layout);
    let base = run_policies(pair, &no_sharing(&layout), 777);
    let ours = run_policies(pair, &chosen, 778);
    println!("\nverification in the test environment (p95 / expected service):");
    for (i, b) in [pair.0, pair.1].iter().enumerate() {
        println!(
            "  {:>8}: no-sharing {:.2}, model-driven {:.2}  -> speedup {:.2}x",
            b.short_name(),
            base[i],
            ours[i],
            base[i] / ours[i]
        );
    }
}
