//! Tour of the CAT substrate: resctrl-style schemata, class-of-service
//! tables, way layouts, and the §2 conjectures (private regions disjoint,
//! sharing degree at most 2) checked on real layouts.
//!
//! ```sh
//! cargo run --example cat_resctrl_demo
//! ```

use stca_repro::cat::layout::{
    private_regions_disjoint, private_ways, sharing_degree_bounded, ChainLayout,
};
use stca_repro::cat::resctrl::ResctrlFs;
use stca_repro::cat::{PairLayout, ShortTermPolicy};

fn main() {
    // --- resctrl-style programming, as the paper's tooling (pqos) does ---
    let ways = 20; // the E5-2683's 20-way, 40 MB LLC
    let mut fs = ResctrlFs::mount(ways, 8);
    let redis_default = fs.mkdir("redis-default").expect("COS available");
    let redis_boost = fs.mkdir("redis-boost").expect("COS available");
    // private ways #0-1; boost adds shared ways #2-3
    fs.write_schemata(redis_default, "L3:0=3")
        .expect("valid schemata");
    fs.write_schemata(redis_boost, "L3:0=f")
        .expect("valid schemata");
    fs.assign_task(redis_default, 42).expect("task assigned");
    let table = fs.commit().expect("commit to COS table");
    println!(
        "resctrl groups committed: task 42 runs under COS {}",
        fs.group_of(42)
    );
    println!(
        "  default mask {} ({} ways), boost mask {}",
        table.mask(redis_default).expect("exists").to_hex(),
        table.mask(redis_default).expect("exists").length(),
        table.mask(redis_boost).expect("exists").to_hex(),
    );

    // non-contiguous masks are rejected exactly as hardware rejects them
    let mut fs2 = ResctrlFs::mount(ways, 4);
    let g = fs2.mkdir("bad").expect("COS available");
    let err = fs2
        .write_schemata(g, "L3:0=5")
        .expect_err("0b101 is not contiguous");
    println!("\nwriting mask 0x5: rejected ({err})");

    // --- the paper's pairwise layout and the two conjectures ---
    let layout = PairLayout::symmetric(2, 2);
    let (pa, pb) = layout.policies(1.5, 0.75);
    println!(
        "\npair layout on 6 ways: A default {}, boosted {}",
        pa.default, pa.boosted
    );
    println!(
        "                       B default {}, boosted {}",
        pb.default, pb.boosted
    );
    println!("A's private ways: {:?}", private_ways(&pa, &[pb]));
    println!("B's private ways: {:?}", private_ways(&pb, &[pa]));
    println!(
        "conjecture 1 (private regions disjoint): {}",
        private_regions_disjoint(&[pa, pb])
    );
    println!(
        "conjecture 2 (sharing degree <= 2):      {}",
        sharing_degree_bounded(&[pa, pb])
    );

    // chains of 5 workloads still satisfy both — contiguity forces pairwise
    // interaction, which is why the paper's contention model is pairwise
    let chain = ChainLayout::new(5, 2, 1);
    let policies: Vec<ShortTermPolicy> = chain.policies(1.0);
    println!(
        "\nchain of 5 workloads ({} ways): disjoint={} bounded={}",
        chain.total_ways(),
        private_regions_disjoint(&policies),
        sharing_degree_bounded(&policies),
    );
    for (i, p) in policies.iter().enumerate() {
        println!(
            "  workload {i}: default {} boosted {}",
            p.default, p.boosted
        );
    }
}
