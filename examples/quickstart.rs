//! Quickstart: profile a collocated pair, train the model, predict
//! response time, and compare against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stca_repro::core::{ModelConfig, Predictor};
use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::profiler::profile::{ProfileRow, ProfileSet};
use stca_repro::profiler::sampler::CounterOrdering;
use stca_repro::util::Rng64;
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

fn main() {
    // 1. Stage 1 — profile Redis collocated with the Social microservice
    //    benchmark under a handful of random Table-2 conditions.
    let pair = (BenchmarkId::Redis, BenchmarkId::Social);
    let mut rng = Rng64::new(7);
    let mut profiles = ProfileSet::new();
    println!("profiling {}({}) ...", pair.0, pair.1);
    for i in 0..8 {
        let condition = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
        let spec = ExperimentSpec {
            measured_queries: 150,
            warmup_queries: 20,
            accesses_per_query: Some(1200),
            ..ExperimentSpec::standard(condition.clone(), 100 + i)
        };
        let outcome = TestEnvironment::new(spec).run();
        for (j, w) in outcome.workloads.iter().enumerate() {
            println!(
                "  condition {i}, {:>8}: util={:.2} timeout={:.2} -> mean resp {:.4}s, EA {:.2}",
                w.benchmark.short_name(),
                condition.workloads[j].utilization,
                condition.workloads[j].timeout_ratio,
                w.mean_response(),
                w.effective_allocation,
            );
            profiles.push(ProfileRow::from_outcome(
                &condition,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }

    // 2. Stage 2 — train the deep-forest models on the profiles.
    println!(
        "\ntraining deep forest on {} profile rows ...",
        profiles.len()
    );
    let predictor = Predictor::train(&profiles, &ModelConfig::quick(42));

    // 3. Stage 3 — predict response time for a fresh, unseen condition and
    //    compare with what the test environment actually measures.
    let condition = RuntimeCondition::pair(pair.0, 0.9, 0.75, pair.1, 0.9, 1.5);
    let spec = ExperimentSpec {
        measured_queries: 200,
        warmup_queries: 30,
        accesses_per_query: Some(1200),
        ..ExperimentSpec::standard(condition.clone(), 999)
    };
    let outcome = TestEnvironment::new(spec).run();
    println!("\nunseen condition: both at 90% arrival, T_redis=75%, T_social=150%");
    for (j, w) in outcome.workloads.iter().enumerate() {
        let row = ProfileRow::from_outcome(&condition, j, w, CounterOrdering::Grouped);
        let pred = predictor.predict_response(&row, w.benchmark);
        let measured = w.mean_response();
        println!(
            "  {:>8}: predicted mean {:.4}s (EA {:.2}), measured {:.4}s  -> APE {:.1}%",
            w.benchmark.short_name(),
            pred.mean_response,
            pred.ea,
            measured,
            stca_repro::util::absolute_percent_error(pred.mean_response, measured),
        );
    }
}
