//! Contention anatomy: how a neighbour's short-term allocations slow a
//! workload down, and how the effect strengthens with the neighbour's
//! arrival rate — the dynamic at the heart of the paper's Introduction.
//!
//! Runs kmeans collocated with redis. Kmeans keeps a fixed aggressive
//! policy (T=50%); redis sweeps its timeout from "always boost" to "never
//! boost" at two arrival intensities. Watch kmeans' effective allocation
//! and p95 degrade as redis boosts more often, especially at high load.
//!
//! ```sh
//! cargo run --release --example contention_study
//! ```

use stca_repro::profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_repro::workloads::{BenchmarkId, RuntimeCondition};

fn main() {
    let kmeans = BenchmarkId::Kmeans;
    let redis = BenchmarkId::Redis;
    println!("kmeans (T=0.5, util=0.7) collocated with redis sweeping its timeout\n");
    println!(
        "{:>10} {:>10} | {:>12} {:>12} {:>10} | {:>14}",
        "redis util", "redis T", "kmeans EA", "kmeans p95", "kmeans boost%", "redis boost%"
    );
    for &redis_util in &[0.4, 0.9] {
        for &redis_timeout in &[0.0, 0.5, 1.5, 3.0, 6.0] {
            let cond = RuntimeCondition::pair(kmeans, 0.7, 0.5, redis, redis_util, redis_timeout);
            let spec = ExperimentSpec {
                measured_queries: 200,
                warmup_queries: 30,
                accesses_per_query: Some(1500),
                ..ExperimentSpec::standard(
                    cond,
                    0xC0 + (redis_util * 100.0) as u64 + (redis_timeout * 10.0) as u64,
                )
            };
            let out = TestEnvironment::new(spec).run();
            let km = &out.workloads[0];
            let rd = &out.workloads[1];
            println!(
                "{:>10.1} {:>10.1} | {:>12.3} {:>11.3}s {:>12.1}% | {:>13.1}%",
                redis_util,
                redis_timeout,
                km.effective_allocation,
                km.p95_response(),
                km.boost_fraction() * 100.0,
                rd.boost_fraction() * 100.0,
            );
        }
        println!();
    }
    println!("Expected shape: as redis boosts more often (lower T) and more");
    println!("intensely (higher util), kmeans' effective allocation drops —");
    println!("the recurring-contention feedback the paper's policies balance.");
}
