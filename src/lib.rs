//! Umbrella crate for the STCA reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can depend on
//! a single package. See `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.

pub use stca_baselines as baselines;
pub use stca_cachesim as cachesim;
pub use stca_cat as cat;
pub use stca_core as core;
pub use stca_deepforest as deepforest;
pub use stca_fault as fault;
pub use stca_neuralnet as neuralnet;
pub use stca_obs as obs;
pub use stca_profiler as profiler;
pub use stca_queuesim as queuesim;
pub use stca_serve as serve;
pub use stca_util as util;
pub use stca_workloads as workloads;
