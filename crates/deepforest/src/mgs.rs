//! Multi-grain scanning: representational learning over the counter matrix.
//!
//! A square window slides over the 29 x T trace (Figure 4). Every window
//! position yields a small feature vector; a random forest trained on those
//! vectors (each labeled with its sample's effective allocation) acts as a
//! convolutional kernel, and the per-position *predictions* become the new
//! representational features handed to the cascade. Multiple window sizes
//! extract detail at different granularities — the paper uses four sizes and
//! shows in Figure 7c that shrinking windows 4x doubles error.

use crate::forest::{Forest, ForestConfig};
use stca_util::{Matrix, SeedStream};
use std::sync::{Arc, OnceLock};

/// Global MGS metrics, resolved once (transform runs per sample).
struct MgsMetrics {
    fits: Arc<stca_obs::Counter>,
    windows_fitted: Arc<stca_obs::Counter>,
    windows_skipped: Arc<stca_obs::Counter>,
    training_positions: Arc<stca_obs::Counter>,
    transforms: Arc<stca_obs::Counter>,
    window_fit_seconds: Arc<stca_obs::Histogram>,
    transform_seconds: Arc<stca_obs::Histogram>,
}

fn mgs_metrics() -> &'static MgsMetrics {
    static METRICS: OnceLock<MgsMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MgsMetrics {
        fits: stca_obs::counter("deepforest.mgs.fits_total"),
        windows_fitted: stca_obs::counter("deepforest.mgs.windows_fitted_total"),
        windows_skipped: stca_obs::counter("deepforest.mgs.windows_skipped_total"),
        training_positions: stca_obs::counter("deepforest.mgs.training_positions_total"),
        transforms: stca_obs::counter("deepforest.mgs.transforms_total"),
        window_fit_seconds: stca_obs::histogram("deepforest.mgs.window_fit_seconds"),
        transform_seconds: stca_obs::histogram("deepforest.mgs.transform_seconds"),
    })
}

/// Multi-grain scanning hyperparameters.
#[derive(Debug, Clone)]
pub struct MgsConfig {
    /// Square window sizes (clamped to the trace dimensions).
    pub window_sizes: Vec<usize>,
    /// Slide stride (1 = paper-exact; larger = cheaper).
    pub stride: usize,
    /// Trees in each window's forest (the paper uses 50).
    pub trees_per_window: usize,
    /// Cap on training instances taken per sample per window (cost control;
    /// positions are subsampled deterministically when they exceed it).
    pub max_positions_per_sample: usize,
    /// Opt-in histogram split finding for the window forests (see
    /// [`TreeConfig::bins`](crate::TreeConfig)). Window design matrices are
    /// the widest in the pipeline (`wr * wc` features), so this is where
    /// binning pays off the most.
    pub bins: Option<usize>,
}

impl Default for MgsConfig {
    fn default() -> Self {
        MgsConfig {
            window_sizes: vec![5, 10, 15],
            stride: 2,
            trees_per_window: 30,
            max_positions_per_sample: 48,
            bins: None,
        }
    }
}

impl MgsConfig {
    /// The paper's exact setting: windows 5/10/15/35 (35 clamps to the
    /// matrix), 50 trees per window.
    pub fn paper() -> Self {
        MgsConfig {
            window_sizes: vec![5, 10, 15, 35],
            stride: 1,
            trees_per_window: 50,
            max_positions_per_sample: usize::MAX,
            bins: None,
        }
    }
}

/// Window positions for a trace of `rows x cols` and a window clamped to
/// `(wr, wc)`: top-left corners stepping by `stride`.
fn positions(rows: usize, cols: usize, wr: usize, wc: usize, stride: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut r = 0;
    while r + wr <= rows {
        let mut c = 0;
        while c + wc <= cols {
            out.push((r, c));
            c += stride;
        }
        r += stride;
    }
    out
}

/// How many positions [`positions`] yields, without materializing them.
fn position_count(rows: usize, cols: usize, wr: usize, wc: usize, stride: usize) -> usize {
    if wr > rows || wc > cols {
        return 0;
    }
    ((rows - wr) / stride + 1) * ((cols - wc) / stride + 1)
}

fn window_vector(trace: &Matrix, r0: usize, c0: usize, wr: usize, wc: usize, buf: &mut Vec<f64>) {
    buf.clear();
    for r in r0..r0 + wr {
        buf.extend_from_slice(&trace.row(r)[c0..c0 + wc]);
    }
}

/// A fitted multi-grain scanner.
#[derive(Debug, Clone)]
pub struct MultiGrainScanner {
    /// (clamped window rows, cols, forest) per configured window size.
    windows: Vec<(usize, usize, Forest)>,
    stride: usize,
    trace_rows: usize,
    trace_cols: usize,
}

impl MultiGrainScanner {
    /// Fit one forest per window size over all samples' traces. Window
    /// sizes train in parallel; each window's position subsampling and
    /// forest draw from their own tagged streams, so the fitted scanner is
    /// identical at any thread count.
    pub fn fit(traces: &[Matrix], y: &[f64], config: &MgsConfig, stream: &SeedStream) -> Self {
        assert_eq!(traces.len(), y.len());
        assert!(!traces.is_empty());
        let rows = traces[0].rows();
        let cols = traces[0].cols();
        assert!(
            traces.iter().all(|t| t.rows() == rows && t.cols() == cols),
            "ragged traces"
        );
        let metrics = mgs_metrics();
        let fitted = stca_exec::par_map_indexed(&config.window_sizes, |wi, &w| {
            let wr = w.min(rows);
            let wc = w.min(cols);
            let pos = positions(rows, cols, wr, wc, config.stride);
            if pos.is_empty() {
                metrics.windows_skipped.inc();
                stca_obs::debug!("mgs window {w}: no positions on a {rows}x{cols} trace, skipped");
                return None;
            }
            let window_timer =
                stca_obs::StageTimer::with_histogram(metrics.window_fit_seconds.clone());
            let mut x = Matrix::zeros(0, 0);
            let mut labels = Vec::new();
            let mut buf = Vec::with_capacity(wr * wc);
            let mut sub_rng = stream.rng(0x3C5 + wi as u64);
            for (ti, trace) in traces.iter().enumerate() {
                let chosen: Vec<(usize, usize)> = if pos.len() > config.max_positions_per_sample {
                    sub_rng
                        .sample_indices(pos.len(), config.max_positions_per_sample)
                        .into_iter()
                        .map(|i| pos[i])
                        .collect()
                } else {
                    pos.clone()
                };
                for (r0, c0) in chosen {
                    window_vector(trace, r0, c0, wr, wc, &mut buf);
                    x.push_row(&buf);
                    labels.push(y[ti]);
                }
            }
            let forest_stream = stream.derive(0xF0123 + wi as u64);
            let forest = Forest::fit(
                &x,
                &labels,
                ForestConfig {
                    max_depth: 24,
                    bins: config.bins,
                    ..ForestConfig::random(config.trees_per_window)
                },
                &forest_stream,
            );
            metrics.windows_fitted.inc();
            metrics.training_positions.add(x.rows() as u64);
            let elapsed = window_timer.stop();
            stca_obs::debug!(
                "mgs window {w} ({wr}x{wc}): forest over {} positions in {elapsed:.3}s",
                x.rows()
            );
            Some((wr, wc, forest))
        });
        let windows: Vec<(usize, usize, Forest)> = fitted.into_iter().flatten().collect();
        metrics.fits.inc();
        MultiGrainScanner {
            windows,
            stride: config.stride,
            trace_rows: rows,
            trace_cols: cols,
        }
    }

    /// Number of representational features produced per sample.
    pub fn feature_count(&self) -> usize {
        self.windows
            .iter()
            .map(|(wr, wc, _)| {
                position_count(self.trace_rows, self.trace_cols, *wr, *wc, self.stride)
            })
            .sum()
    }

    /// Transform one trace into representational features (per-position
    /// kernel predictions, window sizes concatenated).
    pub fn transform(&self, trace: &Matrix) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.feature_count());
        let mut buf = Vec::new();
        self.transform_extend(trace, &mut out, &mut buf);
        out
    }

    /// Append the representational features for one trace to `out`,
    /// reusing `window_buf` for window gathers — the allocation-free
    /// counterpart of [`MultiGrainScanner::transform`] (`out` is *not*
    /// cleared, so callers can assemble a full feature vector in place).
    /// Positions are enumerated arithmetically; nothing is allocated once
    /// the two buffers have grown to steady-state capacity.
    pub fn transform_extend(&self, trace: &Matrix, out: &mut Vec<f64>, window_buf: &mut Vec<f64>) {
        assert_eq!(
            trace.rows(),
            self.trace_rows,
            "trace shape must match training"
        );
        assert_eq!(trace.cols(), self.trace_cols);
        let metrics = mgs_metrics();
        metrics.transforms.inc();
        let _timer = stca_obs::StageTimer::with_histogram(metrics.transform_seconds.clone());
        for (wr, wc, forest) in &self.windows {
            let mut r0 = 0;
            while r0 + wr <= self.trace_rows {
                let mut c0 = 0;
                while c0 + wc <= self.trace_cols {
                    window_vector(trace, r0, c0, *wr, *wc, window_buf);
                    out.push(forest.predict(window_buf));
                    c0 += self.stride;
                }
                r0 += self.stride;
            }
        }
    }

    /// Window shapes actually in use after clamping.
    pub fn window_shapes(&self) -> Vec<(usize, usize)> {
        self.windows.iter().map(|(r, c, _)| (*r, *c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_util::Rng64;

    /// Synthetic traces: class-A traces carry a bright patch in the top-left
    /// corner, class-B ones in the bottom-right. EA differs by class.
    fn patch_traces(n: usize, seed: u64) -> (Vec<Matrix>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut traces = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let mut t = Matrix::zeros(12, 10);
            for r in 0..12 {
                for c in 0..10 {
                    t[(r, c)] = rng.next_f64() * 0.2;
                }
            }
            let hot = i % 2 == 0;
            let (r0, c0) = if hot { (0, 0) } else { (8, 6) };
            for r in r0..r0 + 4 {
                for c in c0..c0 + 4 {
                    t[(r, c)] += 1.0;
                }
            }
            traces.push(t);
            y.push(if hot { 0.9 } else { 0.3 });
        }
        (traces, y)
    }

    fn small_config() -> MgsConfig {
        MgsConfig {
            window_sizes: vec![4, 8],
            stride: 2,
            trees_per_window: 15,
            max_positions_per_sample: 32,
            ..MgsConfig::default()
        }
    }

    #[test]
    fn positions_cover_grid() {
        let p = positions(12, 10, 4, 4, 2);
        // rows: 0,2,4,6,8 (5); cols: 0,2,4,6 (4) -> 20
        assert_eq!(p.len(), 20);
        assert!(p.contains(&(8, 6)));
        assert!(!p.contains(&(9, 0)));
    }

    #[test]
    fn transform_length_matches_feature_count() {
        let (traces, y) = patch_traces(30, 1);
        let mgs = MultiGrainScanner::fit(&traces, &y, &small_config(), &SeedStream::new(2));
        let f = mgs.transform(&traces[0]);
        assert_eq!(f.len(), mgs.feature_count());
        assert!(f.len() > 10);
    }

    #[test]
    fn kernel_features_separate_classes() {
        let (traces, y) = patch_traces(60, 3);
        let mgs = MultiGrainScanner::fit(&traces, &y, &small_config(), &SeedStream::new(4));
        // mean transformed feature should differ between classes
        let fa = mgs.transform(&traces[0]); // hot (y=0.9)
        let fb = mgs.transform(&traces[1]); // cold (y=0.3)
        let ma: f64 = fa.iter().sum::<f64>() / fa.len() as f64;
        let mb: f64 = fb.iter().sum::<f64>() / fb.len() as f64;
        assert!(
            (ma - mb).abs() > 0.05,
            "window kernels should respond to the patch location: {ma} vs {mb}"
        );
    }

    #[test]
    fn transform_extend_appends_and_matches_transform() {
        let (traces, y) = patch_traces(30, 9);
        let mgs = MultiGrainScanner::fit(&traces, &y, &small_config(), &SeedStream::new(10));
        let expected = mgs.transform(&traces[3]);
        let mut out = vec![7.0, 8.0]; // pre-existing content must survive
        let mut buf = Vec::new();
        mgs.transform_extend(&traces[3], &mut out, &mut buf);
        assert_eq!(&out[..2], &[7.0, 8.0]);
        assert_eq!(out.len(), 2 + expected.len());
        for (a, b) in out[2..].iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn binned_mgs_still_separates_classes() {
        let (traces, y) = patch_traces(60, 11);
        let cfg = MgsConfig {
            bins: Some(32),
            ..small_config()
        };
        let mgs = MultiGrainScanner::fit(&traces, &y, &cfg, &SeedStream::new(12));
        let fa = mgs.transform(&traces[0]);
        let fb = mgs.transform(&traces[1]);
        let ma: f64 = fa.iter().sum::<f64>() / fa.len() as f64;
        let mb: f64 = fb.iter().sum::<f64>() / fb.len() as f64;
        assert!((ma - mb).abs() > 0.05, "{ma} vs {mb}");
    }

    #[test]
    fn oversized_windows_clamp() {
        let (traces, y) = patch_traces(10, 5);
        let cfg = MgsConfig {
            window_sizes: vec![35],
            ..small_config()
        };
        let mgs = MultiGrainScanner::fit(&traces, &y, &cfg, &SeedStream::new(6));
        assert_eq!(mgs.window_shapes(), vec![(12, 10)]);
        assert_eq!(mgs.feature_count(), 1, "single clamped full-matrix window");
    }

    #[test]
    #[should_panic(expected = "shape must match")]
    fn mismatched_trace_shape_panics() {
        let (traces, y) = patch_traces(10, 7);
        let mgs = MultiGrainScanner::fit(&traces, &y, &small_config(), &SeedStream::new(8));
        mgs.transform(&Matrix::zeros(5, 5));
    }
}
