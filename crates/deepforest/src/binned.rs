//! Histogram-binned features for approximate split finding.
//!
//! The LightGBM-style device: quantize every feature into at most 256
//! quantile buckets **once per forest**, then find splits by scanning
//! cumulative bucket statistics instead of sorted sample values — O(n + B)
//! per feature per node with no per-node sorting and no per-node column
//! partitioning. The split is approximate (thresholds land on bucket
//! boundaries), which is why the mode is opt-in via
//! [`TreeConfig::bins`](crate::TreeConfig) and guarded by an
//! accuracy-tolerance test rather than the bit-identity golden test that
//! protects the exact presorted path.

use stca_util::Matrix;

/// Maximum number of buckets a feature may be quantized into; codes are
/// stored as `u8`.
pub const MAX_BINS: usize = 256;

/// A feature matrix quantized to `u8` bucket codes plus the real-valued
/// bucket boundaries, shared by every tree of a forest.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major bucket codes, aligned with the source matrix.
    codes: Vec<u8>,
    /// Per feature: ascending candidate thresholds between buckets
    /// (`boundaries[f].len() + 1` buckets; empty = constant feature).
    boundaries: Vec<Vec<f64>>,
}

/// Bucket code of `v` for a boundary list: the number of boundaries
/// strictly below `v`. This makes `code(v) <= b` equivalent to
/// `v <= boundaries[b]`, so a tree trained on codes predicts correctly on
/// raw values with `threshold = boundaries[b]`.
#[inline]
fn code_of(boundaries: &[f64], v: f64) -> u8 {
    boundaries.partition_point(|&e| e < v) as u8
}

impl BinnedMatrix {
    /// Quantize `x` into at most `bins` quantile buckets per feature
    /// (`bins` is clamped to `[2, 256]`). Features with at most `bins`
    /// distinct values are binned **losslessly** (an edge between every
    /// consecutive pair); wider features get weighted-quantile edges over
    /// the distinct-value distribution, so ties can never swallow a value
    /// boundary the way raw positional cuts would. O(F·n log n), once per
    /// forest.
    pub fn new(x: &Matrix, bins: usize) -> Self {
        let bins = bins.clamp(2, MAX_BINS);
        let (rows, cols) = (x.rows(), x.cols());
        let mut codes = vec![0u8; rows * cols];
        let mut boundaries = Vec::with_capacity(cols);
        let mut sorted = Vec::with_capacity(rows);
        let mut distinct: Vec<(f64, usize)> = Vec::new();
        for f in 0..cols {
            x.col_into(f, &mut sorted);
            sorted.sort_by(f64::total_cmp);
            // run-length encode the sorted column (NaNs compare unequal to
            // themselves and sort to an end; the `hi > lo` guards below keep
            // them out of the edge list)
            distinct.clear();
            for &v in &sorted {
                match distinct.last_mut() {
                    Some((last, count)) if *last == v => *count += 1,
                    _ => distinct.push((v, 1)),
                }
            }
            let mut edges: Vec<f64> = Vec::new();
            if distinct.len() <= bins {
                for w in distinct.windows(2) {
                    let (lo, hi) = (w[0].0, w[1].0);
                    if hi > lo {
                        edges.push(0.5 * (lo + hi));
                    }
                }
            } else {
                // place an edge at a value boundary whenever cumulative
                // count crosses the next 1/bins quantile
                let mut acc = 0usize;
                let mut next = 1usize;
                for w in distinct.windows(2) {
                    acc += w[0].1;
                    if acc * bins >= next * rows {
                        let (lo, hi) = (w[0].0, w[1].0);
                        if hi > lo {
                            edges.push(0.5 * (lo + hi));
                        }
                        while acc * bins >= next * rows {
                            next += 1;
                        }
                    }
                }
            }
            debug_assert!(edges.len() < MAX_BINS, "codes must fit u8");
            for r in 0..rows {
                codes[r * cols + f] = code_of(&edges, x[(r, f)]);
            }
            boundaries.push(edges);
        }
        BinnedMatrix {
            rows,
            cols,
            codes,
            boundaries,
        }
    }

    /// Rows of the source matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Features of the source matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bucket code of sample `r`, feature `f`.
    #[inline]
    pub fn code(&self, r: usize, f: usize) -> u8 {
        self.codes[r * self.cols + f]
    }

    /// Candidate thresholds for feature `f` (ascending; empty when the
    /// feature is constant or near-constant).
    #[inline]
    pub fn thresholds(&self, f: usize) -> &[f64] {
        &self.boundaries[f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_consistent_with_thresholds() {
        // the invariant the tree relies on: code(v) <= b  <=>  v <= edge[b]
        let x = Matrix::from_rows((0..64).map(|i| vec![i as f64]).collect::<Vec<_>>().as_ref());
        let b = BinnedMatrix::new(&x, 8);
        let edges = b.thresholds(0);
        assert!(!edges.is_empty() && edges.len() <= 7);
        for r in 0..64 {
            let v = x[(r, 0)];
            let c = b.code(r, 0) as usize;
            for (bi, &e) in edges.iter().enumerate() {
                assert_eq!(c <= bi, v <= e, "row {r} bucket {bi}");
            }
        }
    }

    #[test]
    fn constant_feature_has_no_thresholds() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let b = BinnedMatrix::new(&x, 16);
        assert!(b.thresholds(0).is_empty());
        assert!((0..3).all(|r| b.code(r, 0) == 0));
    }

    #[test]
    fn bins_clamped_and_bounded() {
        let x = Matrix::from_rows(
            (0..1000)
                .map(|i| vec![i as f64])
                .collect::<Vec<_>>()
                .as_ref(),
        );
        let b = BinnedMatrix::new(&x, 100_000);
        assert!(b.thresholds(0).len() < MAX_BINS);
        let max_code = (0..1000).map(|r| b.code(r, 0)).max().unwrap() as usize;
        assert_eq!(max_code, b.thresholds(0).len());
    }

    #[test]
    fn nan_values_code_to_zero_without_panic() {
        let x = Matrix::from_rows(&[vec![f64::NAN], vec![1.0], vec![2.0], vec![3.0]]);
        let b = BinnedMatrix::new(&x, 4);
        assert_eq!(b.code(0, 0), 0);
    }
}
