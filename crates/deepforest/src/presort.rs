//! Presorted feature columns for exact split finding.
//!
//! The classic CART/XGBoost-exact device: sort every feature column **once
//! per tree**, then keep the per-node views sorted by stable in-place
//! partitioning as the tree grows. The seed implementation re-collected and
//! re-sorted `(feature, target)` pairs for every candidate feature at every
//! node — O(F·n log n) *per node*; with presorting the whole per-level cost
//! drops to O(F·n) and the split scan itself touches two sequential arrays.
//!
//! Ordering contract (what makes the result **bit-identical** to sorting at
//! each node): columns are sorted stably under [`f64::total_cmp`] with ties
//! keeping the sample order of the tree's index array, and
//! [`SortedColumns::partition`] is a stable partition. A node's column view
//! is therefore exactly the sequence the seed implementation obtained by
//! stably sorting that node's (parent-ordered) sample list — so every
//! prefix-sum in the split scan accumulates the same values in the same
//! order, and every threshold midpoint is computed from the same pair of
//! neighbours.

use stca_util::{argsort_f64, Matrix};

/// Per-tree presorted feature columns over a set of sample rows
/// (duplicates allowed — bootstrap samples repeat rows).
///
/// Layout: one `(row-id, value)` pair array per feature, stored
/// column-major in two flat buffers, plus reusable partition scratch. A
/// node owns the contiguous range `[lo, hi)` of **every** column; splitting
/// a node partitions all columns over that range.
#[derive(Debug, Clone)]
pub struct SortedColumns {
    n: usize,
    features: usize,
    /// `features * n` row ids, column-major: feature `f` occupies
    /// `[f*n, (f+1)*n)`, ascending by value.
    ids: Vec<u32>,
    /// Feature values aligned with `ids` (avoids a strided matrix gather in
    /// the split scan).
    vals: Vec<f64>,
    scratch_ids: Vec<u32>,
    scratch_vals: Vec<f64>,
}

impl SortedColumns {
    /// Sort every column of `x` restricted to `rows` (in `rows` order for
    /// ties). O(F·n log n), once per tree.
    pub fn new(x: &Matrix, rows: &[u32]) -> Self {
        let n = rows.len();
        let features = x.cols();
        let mut ids = Vec::with_capacity(features * n);
        let mut vals = Vec::with_capacity(features * n);
        let mut col = Vec::with_capacity(n);
        for f in 0..features {
            col.clear();
            col.extend(rows.iter().map(|&r| x[(r as usize, f)]));
            let perm = argsort_f64(&col);
            ids.extend(perm.iter().map(|&p| rows[p as usize]));
            vals.extend(perm.iter().map(|&p| col[p as usize]));
        }
        SortedColumns {
            n,
            features,
            ids,
            vals,
            scratch_ids: Vec::with_capacity(n),
            scratch_vals: Vec::with_capacity(n),
        }
    }

    /// Number of samples per column.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when built over no samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Feature `f`'s sorted view of node range `[lo, hi)`: `(row ids,
    /// values)`, ascending by value.
    #[inline]
    pub fn col(&self, f: usize, lo: usize, hi: usize) -> (&[u32], &[f64]) {
        let base = f * self.n;
        (
            &self.ids[base + lo..base + hi],
            &self.vals[base + lo..base + hi],
        )
    }

    /// Stable-partition every column's `[lo, hi)` range so rows with
    /// `go_left[row] != 0` come first. `nl` must be the number of samples
    /// going left (counted by the caller from the node's sample list).
    pub fn partition(&mut self, lo: usize, hi: usize, nl: usize, go_left: &[u8]) {
        debug_assert!(nl <= hi - lo);
        for f in 0..self.features {
            let base = f * self.n;
            let ids = &mut self.ids[base + lo..base + hi];
            let vals = &mut self.vals[base + lo..base + hi];
            self.scratch_ids.clear();
            self.scratch_vals.clear();
            let mut write = 0;
            for read in 0..ids.len() {
                let id = ids[read];
                if go_left[id as usize] != 0 {
                    ids[write] = id;
                    vals[write] = vals[read];
                    write += 1;
                } else {
                    self.scratch_ids.push(id);
                    self.scratch_vals.push(vals[read]);
                }
            }
            debug_assert_eq!(write, nl, "marks disagree with left count");
            ids[write..].copy_from_slice(&self.scratch_ids);
            vals[write..].copy_from_slice(&self.scratch_vals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![3.0, 0.5],
            vec![1.0, 0.5],
            vec![2.0, 0.1],
            vec![1.0, 0.9],
        ])
    }

    #[test]
    fn columns_sorted_with_stable_ties() {
        let sc = SortedColumns::new(&matrix(), &[0, 1, 2, 3]);
        let (ids, vals) = sc.col(0, 0, 4);
        assert_eq!(vals, &[1.0, 1.0, 2.0, 3.0]);
        assert_eq!(ids, &[1, 3, 2, 0], "equal values keep sample order");
        let (ids, vals) = sc.col(1, 0, 4);
        assert_eq!(vals, &[0.1, 0.5, 0.5, 0.9]);
        assert_eq!(ids, &[2, 0, 1, 3]);
    }

    #[test]
    fn bootstrap_duplicates_allowed() {
        let sc = SortedColumns::new(&matrix(), &[2, 2, 0]);
        let (ids, vals) = sc.col(0, 0, 3);
        assert_eq!(vals, &[2.0, 2.0, 3.0]);
        assert_eq!(ids, &[2, 2, 0]);
    }

    #[test]
    fn partition_is_stable_in_every_column() {
        let mut sc = SortedColumns::new(&matrix(), &[0, 1, 2, 3]);
        // send rows 1 and 3 left (e.g. split "feature 0 <= 1.5")
        let mut marks = vec![0u8; 4];
        marks[1] = 1;
        marks[3] = 1;
        sc.partition(0, 4, 2, &marks);
        let (ids, vals) = sc.col(0, 0, 4);
        assert_eq!(&ids[..2], &[1, 3], "left group keeps sorted order");
        assert_eq!(&vals[..2], &[1.0, 1.0]);
        assert_eq!(&ids[2..], &[2, 0]);
        let (ids, _) = sc.col(1, 0, 4);
        assert_eq!(&ids[..2], &[1, 3], "column 1 partitioned consistently");
        assert_eq!(&ids[2..], &[2, 0]);
        // child ranges stay internally sorted
        let (_, vals) = sc.col(1, 0, 2);
        assert!(vals[0] <= vals[1]);
    }
}
