//! # stca-deepforest
//!
//! A from-scratch deep-forest (gcForest-style) regressor, the paper's Stage-2
//! learner (§4.1). Deep forests implement deep and representational learning
//! atop tree ensembles:
//!
//! * **Multi-grain scanning** ([`mgs`]) — sliding windows over the
//!   spatially-ordered 29 x T counter matrix act as convolutional kernels: a
//!   random forest maps each window to a predicted effective allocation, and
//!   the per-position predictions become new representational features.
//! * **Cascading** ([`cascade`]) — levels of forest ensembles, each level
//!   consuming the original features plus the previous level's *concepts*
//!   (per-forest predictions). Diversity comes from mixing random forests
//!   (√f best-gain splits) with completely-random forests (random
//!   feature/threshold, grown to purity).
//!
//! Unlike CNNs, deep forests train layer by layer with no backpropagation,
//! which is why the paper found them far more stable on small profiling
//! datasets (Figure 5) — a property the Figure-5 harness reproduces.
//!
//! The crate is self-contained (trees, forests, MGS, cascades, K-fold CV)
//! and independent of the profiling substrate: inputs are [`Sample`]s
//! (scalar features + an optional trace matrix).

pub mod binned;
pub mod cascade;
pub mod forest;
pub mod metrics;
pub mod mgs;
pub mod model;
pub mod presort;
pub mod scratch;
pub mod tree;

pub use binned::BinnedMatrix;
pub use cascade::{Cascade, CascadeConfig, CascadeScratch};
pub use forest::{Forest, ForestConfig, ForestKind};
pub use mgs::{MgsConfig, MultiGrainScanner};
pub use model::{DeepForest, DeepForestConfig, Sample};
pub use presort::SortedColumns;
pub use scratch::PredictScratch;
pub use tree::{RegressionTree, TreeConfig};
