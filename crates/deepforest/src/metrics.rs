//! Evaluation utilities: error metrics and K-fold cross-validation.
//!
//! The paper reports accuracy as absolute percent error (median and p95)
//! and stresses rigorous K-fold validation when comparing deep-forest
//! representations against simple models (§3.2).

use crate::model::{DeepForest, DeepForestConfig, Sample};
use stca_util::{absolute_percent_error, Rng64};

/// Absolute-percent-error summary of a prediction set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApeSummary {
    /// Median APE (percent).
    pub median: f64,
    /// 95th-percentile APE (percent).
    pub p95: f64,
    /// Mean APE (percent).
    pub mean: f64,
}

/// Summarize APEs of paired predictions/observations.
pub fn ape_summary(predicted: &[f64], observed: &[f64]) -> ApeSummary {
    assert_eq!(predicted.len(), observed.len());
    assert!(!predicted.is_empty());
    let mut apes: Vec<f64> = predicted
        .iter()
        .zip(observed)
        .map(|(&p, &o)| absolute_percent_error(p, o))
        .collect();
    let mean = apes.iter().sum::<f64>() / apes.len() as f64;
    let median = stca_util::stats::quantile_in_place(&mut apes, 0.5);
    // apes is now sorted
    let p95 = stca_util::stats::quantile_in_place(&mut apes, 0.95);
    ApeSummary { median, p95, mean }
}

/// K-fold cross-validated APE of a deep forest on a dataset. Folds are
/// assigned round-robin after a shuffle; each fold is predicted by a model
/// trained on the others.
pub fn kfold_ape(
    samples: &[Sample],
    y: &[f64],
    config: &DeepForestConfig,
    k: usize,
    rng: &mut Rng64,
) -> ApeSummary {
    assert_eq!(samples.len(), y.len());
    let n = samples.len();
    let k = k.clamp(2, n);
    let mut fold_of: Vec<usize> = (0..n).map(|i| i % k).collect();
    rng.shuffle(&mut fold_of);
    let mut pred = vec![0.0; n];
    for fold in 0..k {
        let train_idx: Vec<usize> = (0..n).filter(|&i| fold_of[i] != fold).collect();
        let test_idx: Vec<usize> = (0..n).filter(|&i| fold_of[i] == fold).collect();
        let train_s: Vec<Sample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
        let train_y: Vec<f64> = train_idx.iter().map(|&i| y[i]).collect();
        let mut cfg = config.clone();
        cfg.seed = config.seed ^ (fold as u64) << 32;
        let model = DeepForest::fit(&train_s, &train_y, &cfg);
        for &i in &test_idx {
            pred[i] = model.predict(&samples[i]);
        }
    }
    ape_summary(&pred, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::CascadeConfig;
    use stca_util::Matrix;

    #[test]
    fn ape_summary_values() {
        let s = ape_summary(&[110.0, 120.0, 90.0], &[100.0, 100.0, 100.0]);
        assert!((s.median - 10.0).abs() < 1e-9);
        assert!((s.mean - 40.0 / 3.0).abs() < 1e-9);
        assert!(s.p95 <= 20.0 && s.p95 >= s.median);
    }

    #[test]
    fn kfold_runs_all_samples() {
        let mut rng = Rng64::new(1);
        let samples: Vec<Sample> = (0..40)
            .map(|i| Sample {
                scalars: vec![i as f64 / 40.0],
                trace: Matrix::zeros(0, 0),
            })
            .collect();
        let y: Vec<f64> = samples.iter().map(|s| 1.0 + s.scalars[0]).collect();
        let cfg = DeepForestConfig {
            mgs: None,
            cascade: CascadeConfig {
                levels: 1,
                forests_per_level: 2,
                trees_per_forest: 10,
                folds: 2,
                ..CascadeConfig::default()
            },
            include_raw_trace: false,
            seed: 2,
        };
        let s = kfold_ape(&samples, &y, &cfg, 4, &mut rng);
        assert!(
            s.median < 15.0,
            "linear target is easy: median {}",
            s.median
        );
    }
}
