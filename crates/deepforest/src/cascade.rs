//! Cascaded forest levels — the deep-learning half of deep forests.
//!
//! Each level is an ensemble of forests (half random, half completely
//! random, for diversity). A level's per-forest predictions are the
//! *concepts* §3.2 describes: they are appended to the feature vector and
//! passed to the next level, so later levels reason over both raw features
//! and earlier abstractions. Concept columns used during training are
//! generated **out-of-fold** (3-fold cross-fitting), the standard gcForest
//! device that keeps a level from simply memorizing its own training
//! predictions.

use crate::forest::{Forest, ForestConfig};
use stca_util::{Matrix, SeedStream};
use std::sync::{Arc, OnceLock};

/// Global cascade metrics, resolved once (predict runs in hot loops).
struct CascadeMetrics {
    fits: Arc<stca_obs::Counter>,
    levels: Arc<stca_obs::Counter>,
    predicts: Arc<stca_obs::Counter>,
    level_fit_seconds: Arc<stca_obs::Histogram>,
    fit_seconds: Arc<stca_obs::Histogram>,
}

fn cascade_metrics() -> &'static CascadeMetrics {
    static METRICS: OnceLock<CascadeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CascadeMetrics {
        fits: stca_obs::counter("deepforest.cascade.fits_total"),
        levels: stca_obs::counter("deepforest.cascade.levels_fitted_total"),
        predicts: stca_obs::counter("deepforest.cascade.predicts_total"),
        level_fit_seconds: stca_obs::histogram("deepforest.cascade.level_fit_seconds"),
        fit_seconds: stca_obs::histogram("deepforest.cascade.fit_seconds"),
    })
}

/// Cascade hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct CascadeConfig {
    /// Number of cascade levels (the paper uses 4).
    pub levels: usize,
    /// Forests per level (the paper uses 4: 2 random + 2 completely
    /// random). Rounded up to an even number.
    pub forests_per_level: usize,
    /// Trees per forest (the paper's "estimators", 100).
    pub trees_per_forest: usize,
    /// Folds for out-of-fold concept generation.
    pub folds: usize,
    /// Opt-in histogram split finding for the random forests (see
    /// [`TreeConfig::bins`](crate::TreeConfig)); completely-random forests
    /// ignore it.
    pub bins: Option<usize>,
    /// Use the reference split finder (see
    /// [`TreeConfig::reference`](crate::TreeConfig)).
    pub reference: bool,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            levels: 3,
            forests_per_level: 4,
            trees_per_forest: 40,
            folds: 3,
            bins: None,
            reference: false,
        }
    }
}

impl CascadeConfig {
    /// The paper's setting: 4 levels x 4 forests x 100 estimators.
    pub fn paper() -> Self {
        CascadeConfig {
            levels: 4,
            forests_per_level: 4,
            trees_per_forest: 100,
            folds: 3,
            ..Default::default()
        }
    }
}

/// A fitted cascade.
#[derive(Debug, Clone)]
pub struct Cascade {
    levels: Vec<Vec<Forest>>,
    /// FNV-1a over the training window, hyperparameters, and a seed probe
    /// — see [`fit_fingerprint`]. Lets a warm start recognise a retrain on
    /// an unchanged window and reuse the previous model wholesale.
    fingerprint: u64,
}

/// FNV-1a fingerprint of one fit problem: every `x` and `y` bit, the
/// config knobs that shape the trees, and a probe draw from the seed
/// stream. Two calls share a fingerprint iff a cold [`Cascade::fit`] on
/// them would be bit-identical.
pub fn fit_fingerprint(x: &Matrix, y: &[f64], config: &CascadeConfig, stream: &SeedStream) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for shift in [0, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (v >> shift) & 0xFF;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(x.rows() as u64);
    mix(x.cols() as u64);
    for r in 0..x.rows() {
        for v in x.row(r) {
            mix(v.to_bits());
        }
    }
    for v in y {
        mix(v.to_bits());
    }
    mix(config.levels as u64);
    mix(config.forests_per_level as u64);
    mix(config.trees_per_forest as u64);
    mix(config.folds as u64);
    mix(config.bins.map_or(u64::MAX, |b| b as u64));
    mix(config.reference as u64);
    // probe the stream on a tag fit() never uses, so two streams that
    // would drive identical fits hash identically and others do not
    mix(stream.rng(0xF17E_F1FE).next_u64());
    h
}

fn forest_config(slot: usize, config: &CascadeConfig) -> ForestConfig {
    let base = if slot.is_multiple_of(2) {
        ForestConfig::random(config.trees_per_forest)
    } else {
        ForestConfig::completely_random(config.trees_per_forest)
    };
    ForestConfig {
        bins: config.bins,
        reference: config.reference,
        ..base
    }
}

/// Reusable buffers for allocation-free cascade prediction
/// ([`Cascade::predict_with`]).
#[derive(Debug, Default, Clone)]
pub struct CascadeScratch {
    augmented: Vec<f64>,
    concepts: Vec<f64>,
}

/// One unit of per-level training work: either a fold forest's out-of-fold
/// concept predictions, or the full-data forest kept for inference.
enum LevelFit {
    Concepts(usize, Vec<(usize, f64)>),
    Full(usize, Forest),
    Skipped,
}

impl Cascade {
    /// Fit the cascade on a design matrix. Within a level, every fold
    /// forest and full-data forest trains in parallel; each draws from its
    /// own tagged stream, so the cascade is identical at any thread count.
    pub fn fit(x: &Matrix, y: &[f64], config: CascadeConfig, stream: &SeedStream) -> Self {
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() >= 2, "cascade needs at least two samples");
        let metrics = cascade_metrics();
        let fit_timer = stca_obs::StageTimer::with_histogram(metrics.fit_seconds.clone());
        let n = x.rows();
        let forests_per_level = (config.forests_per_level.max(2) + 1) & !1; // even, >= 2
        let folds = config.folds.clamp(2, n);

        // fold assignment, fixed across levels
        let mut fold_of: Vec<usize> = (0..n).map(|i| i % folds).collect();
        stream.rng(0xF01D).shuffle(&mut fold_of);

        let mut augmented = x.clone();
        let mut levels: Vec<Vec<Forest>> = Vec::with_capacity(config.levels);
        for level in 0..config.levels {
            let level_timer =
                stca_obs::StageTimer::with_histogram(metrics.level_fit_seconds.clone());
            // per slot: `folds` out-of-fold forests plus the full-data one
            let tasks_per_slot = folds + 1;
            let fits = stca_exec::par_map_range(forests_per_level * tasks_per_slot, |k| {
                let slot = k / tasks_per_slot;
                let sub = k % tasks_per_slot;
                let fc = forest_config(slot, &config);
                if sub < folds {
                    let fold = sub;
                    let train_idx: Vec<usize> = (0..n).filter(|&i| fold_of[i] != fold).collect();
                    let test_idx: Vec<usize> = (0..n).filter(|&i| fold_of[i] == fold).collect();
                    if train_idx.is_empty() || test_idx.is_empty() {
                        return LevelFit::Skipped;
                    }
                    let xs = augmented.select_rows(&train_idx);
                    let ys: Vec<f64> = train_idx.iter().map(|&i| y[i]).collect();
                    let fstream =
                        stream.derive((level as u64) << 24 | (slot as u64) << 8 | fold as u64);
                    let f = Forest::fit(&xs, &ys, fc, &fstream);
                    let preds = test_idx
                        .iter()
                        .map(|&i| (i, f.predict(augmented.row(i))))
                        .collect();
                    LevelFit::Concepts(slot, preds)
                } else {
                    // full-data forest kept for inference
                    let fstream = stream.derive(0xFFFF_0000 | (level as u64) << 8 | slot as u64);
                    LevelFit::Full(slot, Forest::fit(&augmented, y, fc, &fstream))
                }
            });
            let mut level_forests: Vec<Option<Forest>> =
                (0..forests_per_level).map(|_| None).collect();
            let mut concepts = Matrix::zeros(n, forests_per_level);
            for fit in fits {
                match fit {
                    LevelFit::Concepts(slot, preds) => {
                        for (i, p) in preds {
                            concepts[(i, slot)] = p;
                        }
                    }
                    LevelFit::Full(slot, forest) => level_forests[slot] = Some(forest),
                    LevelFit::Skipped => {}
                }
            }
            let level_forests: Vec<Forest> = level_forests
                .into_iter()
                .map(|f| f.expect("one full-data forest per slot"))
                .collect();
            augmented = augmented.hcat(&concepts);
            levels.push(level_forests);
            metrics.levels.inc();
            let level_elapsed = level_timer.stop();
            stca_obs::debug!(
                "cascade level {level}: {forests_per_level} forests over {} features in {:.3}s",
                augmented.cols() - forests_per_level,
                level_elapsed
            );
        }
        metrics.fits.inc();
        let elapsed = fit_timer.stop();
        stca_obs::debug!(
            "cascade fit: {} levels on {n} samples in {elapsed:.3}s",
            levels.len()
        );
        Cascade {
            levels,
            fingerprint: fit_fingerprint(x, y, &config, stream),
        }
    }

    /// Warm-start retrain: fit on `(x, y)` reusing `prev` when the training
    /// problem is unchanged. If the window, hyperparameters, and seed
    /// stream fingerprint-match the fit that produced `prev`, the previous
    /// model is cloned wholesale (a cold fit would reproduce it bit for
    /// bit, so skipping the work cannot change any downstream decision);
    /// otherwise this falls back to a cold [`Cascade::fit`] on the new
    /// window. Either way the result is bit-identical to a cold fit with
    /// the same inputs, at any thread count.
    pub fn fit_warm_start(
        x: &Matrix,
        y: &[f64],
        config: CascadeConfig,
        stream: &SeedStream,
        prev: &Cascade,
    ) -> Self {
        if fit_fingerprint(x, y, &config, stream) == prev.fingerprint {
            cascade_metrics().fits.inc();
            return prev.clone();
        }
        Cascade::fit(x, y, config, stream)
    }

    /// The fingerprint of the fit problem that produced this cascade.
    pub fn fit_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Predict one feature vector. Convenience wrapper over
    /// [`Cascade::predict_with`] using a thread-local scratch, so repeated
    /// calls allocate nothing after the first.
    pub fn predict(&self, features: &[f64]) -> f64 {
        thread_local! {
            // own scratch, NOT shared with callers' PredictScratch: predict
            // may run while a caller-level scratch borrow is live
            static SCRATCH: std::cell::RefCell<CascadeScratch> =
                std::cell::RefCell::new(CascadeScratch::default());
        }
        SCRATCH.with(|s| self.predict_with(features, &mut s.borrow_mut()))
    }

    /// Predict one feature vector using caller-owned scratch buffers — the
    /// allocation-free hot path. Same arithmetic (and bit-identical result)
    /// as [`Cascade::predict`]: concepts accumulate per level in slot order
    /// and the prediction is the mean of the last level's concepts.
    pub fn predict_with(&self, features: &[f64], scratch: &mut CascadeScratch) -> f64 {
        cascade_metrics().predicts.inc();
        let augmented = &mut scratch.augmented;
        let concepts = &mut scratch.concepts;
        augmented.clear();
        augmented.extend_from_slice(features);
        let mut last_mean = None;
        for level in &self.levels {
            concepts.clear();
            for f in level {
                concepts.push(f.predict(augmented));
            }
            last_mean = Some(concepts.iter().sum::<f64>() / concepts.len() as f64);
            augmented.extend_from_slice(concepts);
        }
        last_mean.expect("cascade has at least one level")
    }

    /// Per-level concept vectors for one input — the learned abstractions
    /// the paper clusters to gain system insight (§5.2).
    pub fn concept_trajectory(&self, features: &[f64]) -> Vec<Vec<f64>> {
        let mut augmented: Vec<f64> = features.to_vec();
        let mut out = Vec::with_capacity(self.levels.len());
        for level in &self.levels {
            let concepts: Vec<f64> = level.iter().map(|f| f.predict(&augmented)).collect();
            augmented.extend_from_slice(&concepts);
            out.push(concepts);
        }
        out
    }

    /// All concepts flattened (one vector per input).
    pub fn concept_vector(&self, features: &[f64]) -> Vec<f64> {
        self.concept_trajectory(features).concat()
    }

    /// Level count.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_util::Rng64;

    /// XOR-ish target that defeats single shallow trees but not a cascade.
    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let noise: Vec<f64> = (0..4).map(|_| rng.next_f64()).collect();
            let mut row = vec![a, b];
            row.extend(noise);
            x.push_row(&row);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    fn small() -> CascadeConfig {
        CascadeConfig {
            levels: 2,
            forests_per_level: 4,
            trees_per_forest: 15,
            folds: 3,
            ..Default::default()
        }
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data(300, 1);
        let c = Cascade::fit(&x, &y, small(), &SeedStream::new(2));
        assert!(c.predict(&[0.9, 0.1, 0.5, 0.5, 0.5, 0.5]) > 0.6);
        assert!(c.predict(&[0.9, 0.9, 0.5, 0.5, 0.5, 0.5]) < 0.4);
        assert!(c.predict(&[0.1, 0.9, 0.5, 0.5, 0.5, 0.5]) > 0.6);
        assert!(c.predict(&[0.1, 0.1, 0.5, 0.5, 0.5, 0.5]) < 0.4);
    }

    #[test]
    fn concept_vector_shape() {
        let (x, y) = xor_data(60, 3);
        let c = Cascade::fit(&x, &y, small(), &SeedStream::new(4));
        let concepts = c.concept_vector(x.row(0));
        assert_eq!(concepts.len(), 2 * 4, "levels x forests concepts");
        let traj = c.concept_trajectory(x.row(0));
        assert_eq!(traj.len(), 2);
        assert_eq!(traj[0].len(), 4);
    }

    #[test]
    fn forests_per_level_rounds_to_even() {
        let (x, y) = xor_data(40, 5);
        let cfg = CascadeConfig {
            forests_per_level: 3,
            ..small()
        };
        let c = Cascade::fit(&x, &y, cfg, &SeedStream::new(6));
        assert_eq!(c.concept_trajectory(x.row(0))[0].len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data(80, 7);
        let c1 = Cascade::fit(&x, &y, small(), &SeedStream::new(8));
        let c2 = Cascade::fit(&x, &y, small(), &SeedStream::new(8));
        assert_eq!(c1.predict(x.row(3)), c2.predict(x.row(3)));
    }

    #[test]
    fn presorted_cascade_is_bit_identical_to_reference() {
        let (x, y) = xor_data(90, 10);
        let fast = Cascade::fit(&x, &y, small(), &SeedStream::new(11));
        let reference = Cascade::fit(
            &x,
            &y,
            CascadeConfig {
                reference: true,
                ..small()
            },
            &SeedStream::new(11),
        );
        for r in 0..x.rows() {
            assert_eq!(
                fast.predict(x.row(r)).to_bits(),
                reference.predict(x.row(r)).to_bits()
            );
        }
    }

    #[test]
    fn predict_with_matches_predict() {
        let (x, y) = xor_data(80, 12);
        let c = Cascade::fit(&x, &y, small(), &SeedStream::new(13));
        let mut scratch = CascadeScratch::default();
        for r in 0..x.rows() {
            assert_eq!(
                c.predict(x.row(r)).to_bits(),
                c.predict_with(x.row(r), &mut scratch).to_bits()
            );
        }
    }

    /// Bit-level equality probe: same fingerprint and bit-identical
    /// predictions across a spread of rows.
    fn assert_same_model(a: &Cascade, b: &Cascade, x: &Matrix, what: &str) {
        assert_eq!(a.fit_fingerprint(), b.fit_fingerprint(), "{what}");
        for r in 0..x.rows() {
            assert_eq!(
                a.predict(x.row(r)).to_bits(),
                b.predict(x.row(r)).to_bits(),
                "{what}: row {r}"
            );
        }
    }

    #[test]
    fn warm_start_on_identical_window_is_bit_identical_to_cold_fit() {
        let (x, y) = xor_data(90, 21);
        let cold = Cascade::fit(&x, &y, small(), &SeedStream::new(22));
        // same window, same seed: warm start must equal the cold fit bit
        // for bit, whether the retrain runs on 1 worker or 8
        for threads in [1usize, 8] {
            stca_exec::set_threads(threads);
            let warm = Cascade::fit_warm_start(&x, &y, small(), &SeedStream::new(22), &cold);
            assert_same_model(&cold, &warm, &x, &format!("warm start @ {threads} threads"));
        }
        stca_exec::set_threads(0);
    }

    #[test]
    fn warm_start_on_changed_window_equals_cold_fit_on_that_window() {
        let (x0, y0) = xor_data(80, 23);
        let prev = Cascade::fit(&x0, &y0, small(), &SeedStream::new(24));
        // a different window must NOT reuse prev: the result is exactly a
        // cold fit on the new window
        let (x1, y1) = xor_data(100, 25);
        let warm = Cascade::fit_warm_start(&x1, &y1, small(), &SeedStream::new(24), &prev);
        let cold = Cascade::fit(&x1, &y1, small(), &SeedStream::new(24));
        assert_same_model(&cold, &warm, &x1, "changed-window warm start");
        assert_ne!(
            prev.fit_fingerprint(),
            warm.fit_fingerprint(),
            "changed window must change the fingerprint"
        );
        // same window under a different seed also falls back to a cold fit
        let reseeded = Cascade::fit_warm_start(&x0, &y0, small(), &SeedStream::new(26), &prev);
        let cold_reseeded = Cascade::fit(&x0, &y0, small(), &SeedStream::new(26));
        assert_same_model(&cold_reseeded, &reseeded, &x0, "reseeded warm start");
    }

    #[test]
    fn tiny_dataset_does_not_panic() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![0.0, 0.5, 1.0];
        let c = Cascade::fit(&x, &y, small(), &SeedStream::new(9));
        let p = c.predict(&[1.0]);
        assert!((0.0..=1.0).contains(&p));
    }
}
