//! Reusable prediction buffers.
//!
//! Deep-forest inference assembles a feature vector (scalars + flattened
//! trace + MGS kernel features), then threads a growing augmented vector
//! through the cascade levels. Done naively that is four-plus heap
//! allocations per prediction — and predictions run in the tightest loops
//! in the workspace (policy search scores thousands of candidates).
//! [`PredictScratch`] owns every buffer the path needs; after the first
//! call the whole of [`DeepForest::predict_parts_with`] is allocation-free
//! (asserted by the `alloc_free_predict` integration test).
//!
//! [`DeepForest::predict_parts_with`]: crate::DeepForest::predict_parts_with

use crate::cascade::CascadeScratch;

/// Caller-owned buffers for allocation-free deep-forest prediction. One
/// scratch per thread; buffers grow to steady-state capacity on the first
/// prediction and are reused afterwards.
#[derive(Debug, Default, Clone)]
pub struct PredictScratch {
    /// Assembled feature vector (scalars ++ raw trace ++ MGS features).
    pub(crate) features: Vec<f64>,
    /// MGS window gather buffer.
    pub(crate) window: Vec<f64>,
    /// Cascade augmented/concept buffers.
    pub(crate) cascade: CascadeScratch,
}
