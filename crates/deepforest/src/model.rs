//! The full deep-forest regressor: multi-grain scanning + cascade.
//!
//! Inputs are [`Sample`]s — scalar runtime-condition features plus the
//! 29 x T counter-trace matrix. The cascade consumes the Eq.-2 layout the
//! paper describes: the *original* features (scalars + flattened trace, the
//! "580 original features" for a 29 x 20 trace) concatenated with the MGS
//! representational features.

use crate::cascade::{Cascade, CascadeConfig};
use crate::mgs::{MgsConfig, MultiGrainScanner};
use crate::scratch::PredictScratch;
use stca_util::{Matrix, SeedStream};
use std::sync::{Arc, OnceLock};

/// Global model metrics, resolved once (predict runs in policy-search hot
/// loops).
struct ModelMetrics {
    fits: Arc<stca_obs::Counter>,
    predicts: Arc<stca_obs::Counter>,
    fit_seconds: Arc<stca_obs::Histogram>,
    predict_seconds: Arc<stca_obs::Histogram>,
}

fn model_metrics() -> &'static ModelMetrics {
    static METRICS: OnceLock<ModelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ModelMetrics {
        fits: stca_obs::counter("deepforest.train.fits_total"),
        predicts: stca_obs::counter("deepforest.predict.predicts_total"),
        fit_seconds: stca_obs::histogram("deepforest.train.fit_seconds"),
        predict_seconds: stca_obs::histogram("deepforest.predict.seconds"),
    })
}

/// One model input: scalar features + counter trace.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Runtime-condition scalars (static + dynamic features).
    pub scalars: Vec<f64>,
    /// Counter-trace matrix (may be `0 x 0` for purely tabular inputs).
    pub trace: Matrix,
}

impl Sample {
    /// Tabular-only sample.
    pub fn tabular(scalars: Vec<f64>) -> Self {
        Sample {
            scalars,
            trace: Matrix::zeros(0, 0),
        }
    }
}

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct DeepForestConfig {
    /// MGS settings; `None` disables representational learning (an
    /// ablation the Figure-7c harness uses).
    pub mgs: Option<MgsConfig>,
    /// Cascade settings.
    pub cascade: CascadeConfig,
    /// Whether the flattened raw trace joins the cascade input (the
    /// "original features" of Figure 4).
    pub include_raw_trace: bool,
    /// Training seed.
    pub seed: u64,
}

impl Default for DeepForestConfig {
    fn default() -> Self {
        DeepForestConfig {
            mgs: Some(MgsConfig::default()),
            cascade: CascadeConfig::default(),
            include_raw_trace: true,
            seed: 0xD33F,
        }
    }
}

/// A fitted deep forest.
///
/// ```
/// use stca_deepforest::{DeepForest, DeepForestConfig, Sample};
/// // tabular-only usage: learn y = 2 x
/// let samples: Vec<Sample> =
///     (0..50).map(|i| Sample::tabular(vec![i as f64 / 50.0])).collect();
/// let y: Vec<f64> = samples.iter().map(|s| 2.0 * s.scalars[0]).collect();
/// let mut config = DeepForestConfig::default();
/// config.cascade.trees_per_forest = 10; // keep the doctest fast
/// let model = DeepForest::fit(&samples, &y, &config);
/// let pred = model.predict(&Sample::tabular(vec![0.5]));
/// assert!((pred - 1.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct DeepForest {
    mgs: Option<MultiGrainScanner>,
    cascade: Cascade,
    include_raw_trace: bool,
}

impl DeepForest {
    /// Fit on samples and targets.
    pub fn fit(samples: &[Sample], y: &[f64], config: &DeepForestConfig) -> Self {
        assert_eq!(samples.len(), y.len());
        assert!(!samples.is_empty());
        let metrics = model_metrics();
        let _timer = stca_obs::StageTimer::with_histogram(metrics.fit_seconds.clone());
        let stream = SeedStream::new(config.seed);
        let has_trace = samples[0].trace.rows() > 0 && samples[0].trace.cols() > 0;
        let mgs = match (&config.mgs, has_trace) {
            (Some(mc), true) => {
                let traces: Vec<Matrix> = samples.iter().map(|s| s.trace.clone()).collect();
                Some(MultiGrainScanner::fit(
                    &traces,
                    y,
                    mc,
                    &stream.derive(0x365),
                ))
            }
            _ => None,
        };
        let mut x = Matrix::zeros(0, 0);
        for s in samples {
            x.push_row(&assemble_features(s, &mgs, config.include_raw_trace));
        }
        let cascade = Cascade::fit(&x, y, config.cascade, &stream.derive(0xCA5));
        metrics.fits.inc();
        DeepForest {
            mgs,
            cascade,
            include_raw_trace: config.include_raw_trace,
        }
    }

    /// Predict one sample. Convenience wrapper over
    /// [`DeepForest::predict_parts_with`] using a thread-local scratch, so
    /// repeated calls allocate nothing after the first.
    pub fn predict(&self, sample: &Sample) -> f64 {
        self.predict_parts(&sample.scalars, &sample.trace)
    }

    /// Predict one sample using caller-owned scratch buffers.
    pub fn predict_with(&self, sample: &Sample, scratch: &mut PredictScratch) -> f64 {
        self.predict_parts_with(&sample.scalars, &sample.trace, scratch)
    }

    /// Predict from borrowed feature parts without building a [`Sample`] —
    /// callers that already hold scalars and a trace (the predictor hot
    /// path) avoid cloning either.
    pub fn predict_parts(&self, scalars: &[f64], trace: &Matrix) -> f64 {
        thread_local! {
            static SCRATCH: std::cell::RefCell<PredictScratch> =
                std::cell::RefCell::new(PredictScratch::default());
        }
        SCRATCH.with(|s| self.predict_parts_with(scalars, trace, &mut s.borrow_mut()))
    }

    /// The allocation-free prediction path: assemble features into the
    /// scratch's buffer (scalars ++ raw trace ++ MGS features, the Eq.-2
    /// layout) and run the cascade over reused buffers. Bit-identical to
    /// [`DeepForest::predict`].
    pub fn predict_parts_with(
        &self,
        scalars: &[f64],
        trace: &Matrix,
        scratch: &mut PredictScratch,
    ) -> f64 {
        let metrics = model_metrics();
        metrics.predicts.inc();
        let _timer = stca_obs::StageTimer::with_histogram(metrics.predict_seconds.clone());
        let PredictScratch {
            features,
            window,
            cascade,
        } = scratch;
        features.clear();
        features.extend_from_slice(scalars);
        if self.include_raw_trace {
            features.extend_from_slice(trace.as_slice());
        }
        if let Some(m) = &self.mgs {
            m.transform_extend(trace, features, window);
        }
        self.cascade.predict_with(features, cascade)
    }

    /// Predict many samples.
    pub fn predict_all(&self, samples: &[Sample]) -> Vec<f64> {
        let mut scratch = PredictScratch::default();
        samples
            .iter()
            .map(|s| self.predict_with(s, &mut scratch))
            .collect()
    }

    /// The learned concept vector for a sample (cascade-level outputs) —
    /// used for the workload-clustering insight of §5.2.
    pub fn concepts(&self, sample: &Sample) -> Vec<f64> {
        let f = assemble_features(sample, &self.mgs, self.include_raw_trace);
        self.cascade.concept_vector(&f)
    }

    /// Whether MGS is active.
    pub fn uses_mgs(&self) -> bool {
        self.mgs.is_some()
    }
}

fn assemble_features(
    sample: &Sample,
    mgs: &Option<MultiGrainScanner>,
    include_raw_trace: bool,
) -> Vec<f64> {
    let mut f = sample.scalars.clone();
    if include_raw_trace {
        f.extend_from_slice(sample.trace.as_slice());
    }
    if let Some(m) = mgs {
        f.extend(m.transform(&sample.trace));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgs::MgsConfig;
    use stca_util::Rng64;

    /// Synthetic task mimicking the EA structure: the label depends on a
    /// scalar (timeout) *and* on where activity sits in the trace.
    fn make_data(n: usize, seed: u64) -> (Vec<Sample>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut samples = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let timeout = rng.next_f64() * 3.0;
            let contended = rng.next_bool(0.5);
            let mut trace = Matrix::zeros(10, 8);
            for r in 0..10 {
                for c in 0..8 {
                    trace[(r, c)] = rng.next_f64() * 0.1;
                }
            }
            if contended {
                for r in 6..10 {
                    for c in 0..8 {
                        trace[(r, c)] += 0.8;
                    }
                }
            }
            let ea = if contended { 0.35 } else { 0.85 } - 0.05 * timeout;
            samples.push(Sample {
                scalars: vec![timeout, 0.5],
                trace,
            });
            y.push(ea);
        }
        (samples, y)
    }

    fn quick_config(seed: u64) -> DeepForestConfig {
        DeepForestConfig {
            mgs: Some(MgsConfig {
                window_sizes: vec![4],
                stride: 2,
                trees_per_window: 10,
                max_positions_per_sample: 16,
                ..MgsConfig::default()
            }),
            cascade: CascadeConfig {
                levels: 2,
                forests_per_level: 2,
                trees_per_forest: 12,
                folds: 3,
                ..CascadeConfig::default()
            },
            include_raw_trace: true,
            seed,
        }
    }

    #[test]
    fn fits_and_generalizes() {
        let (train_s, train_y) = make_data(120, 1);
        let (test_s, test_y) = make_data(40, 2);
        let model = DeepForest::fit(&train_s, &train_y, &quick_config(3));
        let pred = model.predict_all(&test_s);
        let mape = stca_util::median_ape(&pred, &test_y);
        assert!(mape < 25.0, "median APE {mape}%");
    }

    #[test]
    fn tabular_only_works() {
        let mut rng = Rng64::new(4);
        let samples: Vec<Sample> = (0..100)
            .map(|_| Sample::tabular(vec![rng.next_f64(), rng.next_f64()]))
            .collect();
        let y: Vec<f64> = samples.iter().map(|s| s.scalars[0] * 2.0).collect();
        let model = DeepForest::fit(&samples, &y, &quick_config(5));
        assert!(!model.uses_mgs());
        let p = model.predict(&Sample::tabular(vec![0.5, 0.5]));
        assert!((p - 1.0).abs() < 0.35, "prediction {p}");
    }

    #[test]
    fn mgs_disabled_by_config() {
        let (s, y) = make_data(40, 6);
        let mut cfg = quick_config(7);
        cfg.mgs = None;
        let model = DeepForest::fit(&s, &y, &cfg);
        assert!(!model.uses_mgs());
        // still predicts finite values
        assert!(model.predict(&s[0]).is_finite());
    }

    #[test]
    fn concepts_have_stable_length() {
        let (s, y) = make_data(50, 8);
        let model = DeepForest::fit(&s, &y, &quick_config(9));
        let c0 = model.concepts(&s[0]);
        let c1 = model.concepts(&s[1]);
        assert_eq!(c0.len(), c1.len());
        assert_eq!(c0.len(), 2 * 2, "levels x forests");
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, y) = make_data(60, 10);
        let m1 = DeepForest::fit(&s, &y, &quick_config(11));
        let m2 = DeepForest::fit(&s, &y, &quick_config(11));
        assert_eq!(m1.predict(&s[5]), m2.predict(&s[5]));
    }

    #[test]
    fn scratch_paths_match_predict() {
        let (s, y) = make_data(50, 12);
        let model = DeepForest::fit(&s, &y, &quick_config(13));
        let mut scratch = PredictScratch::default();
        for sample in s.iter().take(10) {
            let plain = model.predict(sample);
            assert_eq!(
                plain.to_bits(),
                model.predict_with(sample, &mut scratch).to_bits()
            );
            assert_eq!(
                plain.to_bits(),
                model
                    .predict_parts_with(&sample.scalars, &sample.trace, &mut scratch)
                    .to_bits()
            );
        }
    }

    #[test]
    fn binned_training_stays_accurate() {
        let (train_s, train_y) = make_data(120, 14);
        let (test_s, test_y) = make_data(40, 15);
        let mut cfg = quick_config(16);
        cfg.cascade.bins = Some(32);
        if let Some(m) = &mut cfg.mgs {
            m.bins = Some(32);
        }
        let model = DeepForest::fit(&train_s, &train_y, &cfg);
        let pred = model.predict_all(&test_s);
        let mape = stca_util::median_ape(&pred, &test_y);
        assert!(mape < 30.0, "median APE {mape}%");
    }
}
