//! CART regression trees, in the two flavours deep forests mix.
//!
//! *Random-forest* trees examine a random √f subset of features at each node
//! and take the best variance-reducing split. *Completely-random* trees pick
//! one random feature and a random threshold between that feature's min and
//! max at the node, splitting until leaves are pure (or a sample floor is
//! hit) — the diversity source §4.1 describes.

use stca_util::{Matrix, Rng64};

/// How a tree chooses its splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Try `ceil(sqrt(f))` random features, take the best SSE-reducing
    /// threshold among them.
    BestOfSqrt,
    /// Try every feature (classic CART; used by small baselines).
    BestOfAll,
    /// One random feature, one uniform-random threshold (completely-random
    /// trees).
    CompletelyRandom,
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Split strategy.
    pub strategy: SplitStrategy,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Maximum depth (u32::MAX = grow to purity).
    pub max_depth: u32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            strategy: SplitStrategy::BestOfSqrt,
            min_samples_leaf: 2,
            max_depth: 32,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: TreeConfig,
    nodes: Vec<Node>,
    rng: Rng64,
}

impl<'a> Builder<'a> {
    fn leaf_value(&self, idx: &[usize]) -> f64 {
        idx.iter().map(|&i| self.y[i]).sum::<f64>() / idx.len() as f64
    }

    fn is_pure(&self, idx: &[usize]) -> bool {
        let first = self.y[idx[0]];
        idx.iter().all(|&i| (self.y[i] - first).abs() < 1e-12)
    }

    /// Best (threshold, sse) for one feature over the node's samples, or
    /// None when the feature is constant.
    fn best_threshold(&self, feature: usize, idx: &[usize]) -> Option<(f64, f64)> {
        let mut pairs: Vec<(f64, f64)> = idx
            .iter()
            .map(|&i| (self.x[(i, feature)], self.y[i]))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
        if pairs[0].0 == pairs[pairs.len() - 1].0 {
            return None;
        }
        let n = pairs.len();
        let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
        let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
        let min_leaf = self.config.min_samples_leaf;
        let mut best: Option<(f64, f64)> = None;
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for i in 0..n - 1 {
            left_sum += pairs[i].1;
            left_sq += pairs[i].1 * pairs[i].1;
            // can't split between equal feature values
            if pairs[i].0 == pairs[i + 1].0 {
                continue;
            }
            let nl = i + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / nl as f64)
                + (right_sq - right_sum * right_sum / nr as f64);
            let threshold = 0.5 * (pairs[i].0 + pairs[i + 1].0);
            match best {
                Some((_, b)) if b <= sse => {}
                _ => best = Some((threshold, sse)),
            }
        }
        best
    }

    fn completely_random_split(&mut self, idx: &[usize]) -> Option<(usize, f64)> {
        let f = self.x.cols();
        // try a handful of random features before giving up on constants
        for _ in 0..8 {
            let feature = self.rng.next_index(f);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in idx {
                let v = self.x[(i, feature)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                let t = self.rng.next_range(lo, hi);
                // guarantee a non-degenerate partition
                let (mut nl, mut nr) = (0, 0);
                for &i in idx {
                    if self.x[(i, feature)] <= t {
                        nl += 1;
                    } else {
                        nr += 1;
                    }
                }
                if nl > 0 && nr > 0 {
                    return Some((feature, t));
                }
            }
        }
        None
    }

    fn build(&mut self, idx: &mut Vec<usize>, depth: u32) -> u32 {
        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        if idx.len() < 2 * self.config.min_samples_leaf
            || depth >= self.config.max_depth
            || self.is_pure(idx)
        {
            let v = self.leaf_value(idx);
            self.nodes[node_id as usize] = Node::Leaf { value: v };
            return node_id;
        }
        let split = match self.config.strategy {
            SplitStrategy::CompletelyRandom => self.completely_random_split(idx),
            SplitStrategy::BestOfSqrt | SplitStrategy::BestOfAll => {
                let f = self.x.cols();
                let tried: Vec<usize> = if self.config.strategy == SplitStrategy::BestOfAll {
                    (0..f).collect()
                } else {
                    let k = (f as f64).sqrt().ceil() as usize;
                    self.rng.sample_indices(f, k.clamp(1, f))
                };
                let mut best: Option<(usize, f64, f64)> = None;
                for feat in tried {
                    if let Some((t, sse)) = self.best_threshold(feat, idx) {
                        match best {
                            Some((_, _, b)) if b <= sse => {}
                            _ => best = Some((feat, t, sse)),
                        }
                    }
                }
                best.map(|(feat, t, _)| (feat, t))
            }
        };
        let Some((feature, threshold)) = split else {
            let v = self.leaf_value(idx);
            self.nodes[node_id as usize] = Node::Leaf { value: v };
            return node_id;
        };
        let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.x[(i, feature)] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            let v = self.leaf_value(idx);
            self.nodes[node_id as usize] = Node::Leaf { value: v };
            return node_id;
        }
        idx.clear();
        idx.shrink_to_fit();
        let left = self.build(&mut left_idx, depth + 1);
        let right = self.build(&mut right_idx, depth + 1);
        self.nodes[node_id as usize] = Node::Split {
            feature: feature as u32,
            threshold,
            left,
            right,
        };
        node_id
    }
}

impl RegressionTree {
    /// Fit a tree on rows `idx` of `(x, y)`.
    pub fn fit_indices(
        x: &Matrix,
        y: &[f64],
        idx: &[usize],
        config: TreeConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert_eq!(x.rows(), y.len());
        assert!(!idx.is_empty(), "cannot fit a tree on no samples");
        let mut b = Builder {
            x,
            y,
            config,
            nodes: Vec::new(),
            rng: rng.derive_stream(0x7EE),
        };
        let mut root_idx = idx.to_vec();
        b.build(&mut root_idx, 0);
        RegressionTree { nodes: b.nodes }
    }

    /// Fit on all rows.
    pub fn fit(x: &Matrix, y: &[f64], config: TreeConfig, rng: &mut Rng64) -> Self {
        let idx: Vec<usize> = (0..x.rows()).collect();
        Self::fit_indices(x, y, &idx, config, rng)
    }

    /// Predict one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes (size diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulate per-feature split counts into `counts` (length must cover
    /// every feature index the tree was trained on).
    pub fn count_feature_splits(&self, counts: &mut [u64]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1;
            }
        }
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> u32 {
        fn walk(nodes: &[Node], id: usize) -> u32 {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, *left as usize).max(walk(nodes, *right as usize))
                }
            }
        }
        walk(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = 1 if x0 > 0.5 else 0; x1 is noise
        let mut rng = Rng64::new(1);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            x.push_row(&[a, b]);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data(200);
        let mut rng = Rng64::new(2);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(tree.predict(&[0.9, 0.5]) > 0.9);
        assert!(tree.predict(&[0.1, 0.5]) < 0.1);
    }

    #[test]
    fn pure_targets_make_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![5.0, 5.0, 5.0];
        let mut rng = Rng64::new(3);
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 5.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        // noisy target keeps the tree splitting until the leaf floor stops it
        let mut rng = Rng64::new(4);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..120 {
            let a = rng.next_f64();
            x.push_row(&[a, rng.next_f64()]);
            y.push(a + rng.next_gaussian());
        }
        let small = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                min_samples_leaf: 1,
                ..Default::default()
            },
            &mut rng,
        );
        let big = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                min_samples_leaf: 25,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(
            big.node_count() < small.node_count(),
            "leaf floor must prune: {} vs {}",
            big.node_count(),
            small.node_count()
        );
    }

    #[test]
    fn max_depth_caps_tree() {
        let (x, y) = step_data(300);
        let mut rng = Rng64::new(5);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                max_depth: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn completely_random_tree_still_learns_strong_signal() {
        let (x, y) = step_data(400);
        let mut rng = Rng64::new(6);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::CompletelyRandom,
                min_samples_leaf: 2,
                max_depth: u32::MAX,
            },
            &mut rng,
        );
        // grown to purity, training error is ~0 even with random splits
        assert!(tree.predict(&[0.95, 0.2]) > 0.5);
        assert!(tree.predict(&[0.05, 0.2]) < 0.5);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn constant_features_become_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let mut rng = Rng64::new(7);
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_counts_identify_informative_feature() {
        let (x, y) = step_data(300);
        let mut rng = Rng64::new(9);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                ..Default::default()
            },
            &mut rng,
        );
        let mut counts = vec![0u64; 2];
        tree.count_feature_splits(&mut counts);
        assert!(counts[0] >= 1, "x0 carries the signal");
        assert!(counts[0] >= counts[1]);
    }

    #[test]
    fn fit_indices_uses_subset_only() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let y = vec![0.0, 1.0, 1000.0];
        let mut rng = Rng64::new(8);
        let tree = RegressionTree::fit_indices(
            &x,
            &y,
            &[0, 1],
            TreeConfig {
                min_samples_leaf: 1,
                ..Default::default()
            },
            &mut rng,
        );
        // never saw row 2: prediction bounded by training targets
        assert!(tree.predict(&[100.0]) <= 1.0);
    }
}
