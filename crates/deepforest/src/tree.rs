//! CART regression trees, in the two flavours deep forests mix.
//!
//! *Random-forest* trees examine a random √f subset of features at each node
//! and take the best variance-reducing split. *Completely-random* trees pick
//! one random feature and a random threshold between that feature's min and
//! max at the node, splitting until leaves are pure (or a sample floor is
//! hit) — the diversity source §4.1 describes.
//!
//! ## Split-finding engines
//!
//! Best-split trees choose among three engines:
//!
//! * **Presorted exact**: every feature column is sorted once per tree
//!   ([`SortedColumns`](crate::presort::SortedColumns)) and the per-node
//!   views are maintained by stable in-place partitioning — the
//!   CART/XGBoost-exact device. Produces **bit-identical** trees to the
//!   reference engine (the ordering argument lives in [`crate::presort`]),
//!   while removing the per-node re-sort entirely. Selected automatically
//!   whenever its cost model wins (see `presort_pays_off`): always for
//!   [`SplitStrategy::BestOfAll`], and for [`SplitStrategy::BestOfSqrt`]
//!   when the matrix is narrow or deep enough that maintaining every
//!   column beats re-sorting the √f sampled ones.
//! * **Histogram** (opt-in via [`TreeConfig::bins`]): features are
//!   quantized to at most 256 quantile buckets
//!   ([`BinnedMatrix`](crate::binned::BinnedMatrix)) and splits scan
//!   cumulative bucket statistics — approximate but O(n + bins) per feature
//!   per node, the LightGBM device for the large MGS window forests.
//! * **Reference** ([`TreeConfig::reference`]): the original implementation
//!   that re-collects and re-sorts `(feature, target)` pairs at every node.
//!   Kept as the golden baseline for bit-identity tests and for
//!   before/after training benchmarks (`microbench_train`).
//!
//! All engines share one sample-index array partitioned in place as the
//! tree grows; no per-node index vectors are allocated.

use crate::binned::BinnedMatrix;
use crate::presort::SortedColumns;
use stca_util::{stable_partition_in_place, Matrix, Rng64};

/// How a tree chooses its splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Try `ceil(sqrt(f))` random features, take the best SSE-reducing
    /// threshold among them.
    BestOfSqrt,
    /// Try every feature (classic CART; used by small baselines).
    BestOfAll,
    /// One random feature, one uniform-random threshold (completely-random
    /// trees).
    CompletelyRandom,
}

/// Tree growth limits and split-finding engine selection.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Split strategy.
    pub strategy: SplitStrategy,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Maximum depth (u32::MAX = grow to purity).
    pub max_depth: u32,
    /// Opt-in histogram split finding: quantize every feature into at most
    /// this many quantile buckets (clamped to `[2, 256]`) and scan bucket
    /// statistics instead of sorted samples. Approximate — thresholds land
    /// on bucket boundaries — but much faster on wide feature matrices.
    /// `None` (the default) keeps the exact presorted engine. Ignored by
    /// completely-random trees, which never scan thresholds.
    pub bins: Option<usize>,
    /// Use the unoptimized reference split finder (per-node re-sorting, as
    /// the original implementation did). Exists so golden tests can assert
    /// the presorted engine is bit-identical and so training benchmarks can
    /// report before/after timings; takes precedence over [`bins`].
    ///
    /// [`bins`]: TreeConfig::bins
    pub reference: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            strategy: SplitStrategy::BestOfSqrt,
            min_samples_leaf: 2,
            max_depth: 32,
            bins: None,
            reference: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// The split-finding machinery a builder carries. Only best-split
/// strategies consult it; completely-random trees sample thresholds from
/// per-node min/max and need no column structure.
enum Engine<'a> {
    /// Per-node collect + sort (the seed implementation, golden baseline).
    Reference,
    /// Presorted columns, partitioned in place at each split (exact).
    Presorted(SortedColumns),
    /// Quantized bucket scan (approximate).
    Binned(&'a BinnedMatrix),
}

/// Which engine to dispatch to (copyable tag, so dispatch does not hold a
/// borrow of the engine across `&mut self` calls).
#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Reference,
    Presorted,
    Binned,
}

/// Cost model: does maintaining presorted columns beat per-node re-sorting?
///
/// Presorting partitions **every** column at every split — O(F·n) per tree
/// level — while the reference engine sorts only the `k` features a node
/// actually tries — O(k·n·log n) per level. Presort therefore wins exactly
/// when `k·log2(n)` comfortably exceeds `F`: always for [`BestOfAll`]
/// (`k = F`), but for [`BestOfSqrt`] only on narrow or deep data (wide
/// matrices consult too few of the columns being maintained). Both engines
/// produce bit-identical trees, so this is purely a cost decision; the
/// constant is calibrated with `microbench_train`.
///
/// [`BestOfAll`]: SplitStrategy::BestOfAll
/// [`BestOfSqrt`]: SplitStrategy::BestOfSqrt
fn presort_pays_off(strategy: SplitStrategy, features: usize, n: usize) -> bool {
    match strategy {
        SplitStrategy::BestOfAll => true,
        SplitStrategy::CompletelyRandom => false,
        SplitStrategy::BestOfSqrt => {
            let k = (features as f64).sqrt().ceil() as u64;
            let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
            k * log_n >= 3 * features as u64
        }
    }
}

/// Reusable per-bucket accumulators for the histogram engine.
struct HistScratch {
    count: Vec<u32>,
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl HistScratch {
    fn new(buckets: usize) -> Self {
        HistScratch {
            count: vec![0; buckets],
            sum: vec![0.0; buckets],
            sumsq: vec![0.0; buckets],
        }
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: TreeConfig,
    nodes: Vec<Node>,
    rng: Rng64,
    /// The tree's sample rows (bootstrap order at the root). Every node
    /// owns a contiguous range; splits partition it stably in place.
    order: Vec<u32>,
    /// Spill buffer for the stable partition.
    scratch: Vec<u32>,
    engine: Engine<'a>,
    /// Per-row go-left marks (presorted engine only; indexed by row id).
    marks: Vec<u8>,
    /// Bucket accumulators (histogram engine only).
    hist: HistScratch,
}

impl<'a> Builder<'a> {
    fn leaf_value(&self, lo: usize, hi: usize) -> f64 {
        let sum: f64 = self.order[lo..hi].iter().map(|&i| self.y[i as usize]).sum();
        sum / (hi - lo) as f64
    }

    fn is_pure(&self, lo: usize, hi: usize) -> bool {
        let first = self.y[self.order[lo] as usize];
        self.order[lo..hi]
            .iter()
            .all(|&i| (self.y[i as usize] - first).abs() < 1e-12)
    }

    /// Best (threshold, sse) for one feature, reference engine: collect the
    /// node's `(feature, target)` pairs and sort them — O(n log n) per
    /// feature per node. Total order comparison: a stray NaN feature value
    /// (e.g. injected by a fault plan that bypasses sanitization) sorts
    /// deterministically to the end instead of panicking mid-training.
    fn best_threshold_reference(
        &mut self,
        feature: usize,
        lo: usize,
        hi: usize,
    ) -> Option<(f64, f64)> {
        let mut pairs: Vec<(f64, f64)> = self.order[lo..hi]
            .iter()
            .map(|&i| (self.x[(i as usize, feature)], self.y[i as usize]))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pairs[0].0 == pairs[pairs.len() - 1].0 {
            return None;
        }
        let n = pairs.len();
        let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
        let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
        let min_leaf = self.config.min_samples_leaf;
        let mut best: Option<(f64, f64)> = None;
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for i in 0..n - 1 {
            left_sum += pairs[i].1;
            left_sq += pairs[i].1 * pairs[i].1;
            // can't split between equal feature values
            if pairs[i].0 == pairs[i + 1].0 {
                continue;
            }
            let nl = i + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / nl as f64)
                + (right_sq - right_sum * right_sum / nr as f64);
            let threshold = 0.5 * (pairs[i].0 + pairs[i + 1].0);
            match best {
                Some((_, b)) if b <= sse => {}
                _ => best = Some((threshold, sse)),
            }
        }
        best
    }

    /// Best (threshold, sse) for one feature, presorted engine: the node's
    /// column view is already sorted, so this is a single sequential scan —
    /// the same prefix-sum arithmetic as the reference engine over the same
    /// value sequence, hence bit-identical results.
    fn best_threshold_presorted(
        &mut self,
        feature: usize,
        lo: usize,
        hi: usize,
    ) -> Option<(f64, f64)> {
        let Engine::Presorted(columns) = &self.engine else {
            unreachable!("presorted dispatch without presorted engine");
        };
        let (ids, vals) = columns.col(feature, lo, hi);
        let n = ids.len();
        if vals[0] == vals[n - 1] {
            return None;
        }
        let total_sum: f64 = ids.iter().map(|&i| self.y[i as usize]).sum();
        let total_sq: f64 = ids
            .iter()
            .map(|&i| {
                let v = self.y[i as usize];
                v * v
            })
            .sum();
        let min_leaf = self.config.min_samples_leaf;
        let mut best: Option<(f64, f64)> = None;
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for i in 0..n - 1 {
            let yi = self.y[ids[i] as usize];
            left_sum += yi;
            left_sq += yi * yi;
            if vals[i] == vals[i + 1] {
                continue;
            }
            let nl = i + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / nl as f64)
                + (right_sq - right_sum * right_sum / nr as f64);
            let threshold = 0.5 * (vals[i] + vals[i + 1]);
            match best {
                Some((_, b)) if b <= sse => {}
                _ => best = Some((threshold, sse)),
            }
        }
        best
    }

    /// Best (threshold, sse) for one feature, histogram engine: accumulate
    /// per-bucket target statistics over the node's samples and scan bucket
    /// boundaries cumulatively. Thresholds are bucket edges, so the split
    /// is approximate; candidate count is bounded by `bins`.
    fn best_threshold_binned(
        &mut self,
        feature: usize,
        lo: usize,
        hi: usize,
    ) -> Option<(f64, f64)> {
        let Engine::Binned(binned) = &self.engine else {
            unreachable!("binned dispatch without binned engine");
        };
        let edges = binned.thresholds(feature);
        if edges.is_empty() {
            return None;
        }
        let buckets = edges.len() + 1;
        let hist = &mut self.hist;
        hist.count[..buckets].fill(0);
        hist.sum[..buckets].fill(0.0);
        hist.sumsq[..buckets].fill(0.0);
        for &i in &self.order[lo..hi] {
            let c = binned.code(i as usize, feature) as usize;
            let yi = self.y[i as usize];
            hist.count[c] += 1;
            hist.sum[c] += yi;
            hist.sumsq[c] += yi * yi;
        }
        let n = hi - lo;
        let total_sum: f64 = hist.sum[..buckets].iter().sum();
        let total_sq: f64 = hist.sumsq[..buckets].iter().sum();
        let min_leaf = self.config.min_samples_leaf.max(1);
        let mut best: Option<(f64, f64)> = None;
        let mut left_n = 0usize;
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (b, &threshold) in edges.iter().enumerate() {
            left_n += hist.count[b] as usize;
            left_sum += hist.sum[b];
            left_sq += hist.sumsq[b];
            let right_n = n - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n as f64)
                + (right_sq - right_sum * right_sum / right_n as f64);
            match best {
                Some((_, b)) if b <= sse => {}
                _ => best = Some((threshold, sse)),
            }
        }
        best
    }

    /// Best (feature, threshold) across the strategy's candidate features.
    fn best_split(&mut self, lo: usize, hi: usize) -> Option<(usize, f64)> {
        let f = self.x.cols();
        let sampled: Option<Vec<usize>> = if self.config.strategy == SplitStrategy::BestOfAll {
            None
        } else {
            let k = (f as f64).sqrt().ceil() as usize;
            Some(self.rng.sample_indices(f, k.clamp(1, f)))
        };
        let kind = match self.engine {
            Engine::Reference => EngineKind::Reference,
            Engine::Presorted(_) => EngineKind::Presorted,
            Engine::Binned(_) => EngineKind::Binned,
        };
        let tried = sampled.as_ref().map_or(f, |s| s.len());
        let mut best: Option<(usize, f64, f64)> = None;
        for t in 0..tried {
            let feat = sampled.as_ref().map_or(t, |s| s[t]);
            let cand = match kind {
                EngineKind::Reference => self.best_threshold_reference(feat, lo, hi),
                EngineKind::Presorted => self.best_threshold_presorted(feat, lo, hi),
                EngineKind::Binned => self.best_threshold_binned(feat, lo, hi),
            };
            if let Some((threshold, sse)) = cand {
                match best {
                    Some((_, _, b)) if b <= sse => {}
                    _ => best = Some((feat, threshold, sse)),
                }
            }
        }
        best.map(|(feat, t, _)| (feat, t))
    }

    fn completely_random_split(&mut self, lo: usize, hi: usize) -> Option<(usize, f64)> {
        let f = self.x.cols();
        // try a handful of random features before giving up on constants
        for _ in 0..8 {
            let feature = self.rng.next_index(f);
            let mut lo_v = f64::INFINITY;
            let mut hi_v = f64::NEG_INFINITY;
            for &i in &self.order[lo..hi] {
                let v = self.x[(i as usize, feature)];
                lo_v = lo_v.min(v);
                hi_v = hi_v.max(v);
            }
            if hi_v > lo_v {
                let t = self.rng.next_range(lo_v, hi_v);
                // guarantee a non-degenerate partition
                let (mut nl, mut nr) = (0, 0);
                for &i in &self.order[lo..hi] {
                    if self.x[(i as usize, feature)] <= t {
                        nl += 1;
                    } else {
                        nr += 1;
                    }
                }
                if nl > 0 && nr > 0 {
                    return Some((feature, t));
                }
            }
        }
        None
    }

    fn build(&mut self, lo: usize, hi: usize, depth: u32) -> u32 {
        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let n = hi - lo;
        if n < 2 * self.config.min_samples_leaf
            || depth >= self.config.max_depth
            || self.is_pure(lo, hi)
        {
            let v = self.leaf_value(lo, hi);
            self.nodes[node_id as usize] = Node::Leaf { value: v };
            return node_id;
        }
        let split = match self.config.strategy {
            SplitStrategy::CompletelyRandom => self.completely_random_split(lo, hi),
            SplitStrategy::BestOfSqrt | SplitStrategy::BestOfAll => self.best_split(lo, hi),
        };
        let Some((feature, threshold)) = split else {
            let v = self.leaf_value(lo, hi);
            self.nodes[node_id as usize] = Node::Leaf { value: v };
            return node_id;
        };
        // count the left group (same predicate as the partition below); a
        // degenerate side — possible when midpoint rounding collapses onto a
        // neighbour value, or when a NaN threshold sends everything right —
        // falls back to a leaf exactly as the reference implementation did.
        let nl = if let Engine::Presorted(_) = self.engine {
            let mut nl = 0usize;
            for &i in &self.order[lo..hi] {
                let left = (self.x[(i as usize, feature)] <= threshold) as u8;
                self.marks[i as usize] = left;
                nl += left as usize;
            }
            nl
        } else {
            self.order[lo..hi]
                .iter()
                .filter(|&&i| self.x[(i as usize, feature)] <= threshold)
                .count()
        };
        if nl == 0 || nl == n {
            let v = self.leaf_value(lo, hi);
            self.nodes[node_id as usize] = Node::Leaf { value: v };
            return node_id;
        }
        // stable in-place partition of the node's sample range — and, for
        // the presorted engine, of every feature column's matching range
        match &mut self.engine {
            Engine::Presorted(columns) => {
                columns.partition(lo, hi, nl, &self.marks);
                let marks = &self.marks;
                stable_partition_in_place(&mut self.order[lo..hi], &mut self.scratch, |i| {
                    marks[i as usize] != 0
                });
            }
            _ => {
                let x = self.x;
                stable_partition_in_place(&mut self.order[lo..hi], &mut self.scratch, |i| {
                    x[(i as usize, feature)] <= threshold
                });
            }
        }
        let left = self.build(lo, lo + nl, depth + 1);
        let right = self.build(lo + nl, hi, depth + 1);
        self.nodes[node_id as usize] = Node::Split {
            feature: feature as u32,
            threshold,
            left,
            right,
        };
        node_id
    }
}

impl RegressionTree {
    /// Fit a tree on rows `idx` of `(x, y)`.
    pub fn fit_indices(
        x: &Matrix,
        y: &[f64],
        idx: &[usize],
        config: TreeConfig,
        rng: &mut Rng64,
    ) -> Self {
        if let (Some(bins), false, false) = (
            config.bins,
            config.reference,
            config.strategy == SplitStrategy::CompletelyRandom,
        ) {
            let binned = BinnedMatrix::new(x, bins);
            return Self::fit_with_engine(x, y, idx, config, rng, Some(&binned));
        }
        Self::fit_with_engine(x, y, idx, config, rng, None)
    }

    /// Fit a tree against a pre-quantized feature matrix (histogram mode).
    /// Forests build the [`BinnedMatrix`] once and share it across trees so
    /// the quantization cost is amortized; `binned` must have been built
    /// from `x`. Completely-random and reference configurations fall back
    /// to their usual engines.
    pub fn fit_indices_prebinned(
        x: &Matrix,
        binned: &BinnedMatrix,
        y: &[f64],
        idx: &[usize],
        config: TreeConfig,
        rng: &mut Rng64,
    ) -> Self {
        assert_eq!(binned.rows(), x.rows(), "binned matrix shape mismatch");
        assert_eq!(binned.cols(), x.cols(), "binned matrix shape mismatch");
        let use_hist = !config.reference && config.strategy != SplitStrategy::CompletelyRandom;
        Self::fit_with_engine(x, y, idx, config, rng, use_hist.then_some(binned))
    }

    fn fit_with_engine(
        x: &Matrix,
        y: &[f64],
        idx: &[usize],
        config: TreeConfig,
        rng: &mut Rng64,
        binned: Option<&BinnedMatrix>,
    ) -> Self {
        assert_eq!(x.rows(), y.len());
        assert!(!idx.is_empty(), "cannot fit a tree on no samples");
        assert!(x.rows() <= u32::MAX as usize, "row ids are u32");
        let order: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
        let best_split = config.strategy != SplitStrategy::CompletelyRandom;
        let engine = if config.reference || !best_split {
            // completely-random trees never consult the engine
            Engine::Reference
        } else if let Some(bm) = binned {
            Engine::Binned(bm)
        } else if presort_pays_off(config.strategy, x.cols(), order.len()) {
            Engine::Presorted(SortedColumns::new(x, &order))
        } else {
            Engine::Reference
        };
        let presorted = matches!(engine, Engine::Presorted(_));
        let hist_buckets = match &engine {
            Engine::Binned(_) => crate::binned::MAX_BINS,
            _ => 0,
        };
        let n = order.len();
        let mut b = Builder {
            x,
            y,
            config,
            nodes: Vec::new(),
            rng: rng.derive_stream(0x7EE),
            order,
            scratch: Vec::with_capacity(n),
            engine,
            marks: vec![0; if presorted { x.rows() } else { 0 }],
            hist: HistScratch::new(hist_buckets),
        };
        b.build(0, n, 0);
        RegressionTree { nodes: b.nodes }
    }

    /// Fit on all rows.
    pub fn fit(x: &Matrix, y: &[f64], config: TreeConfig, rng: &mut Rng64) -> Self {
        let idx: Vec<usize> = (0..x.rows()).collect();
        Self::fit_indices(x, y, &idx, config, rng)
    }

    /// Predict one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes (size diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulate per-feature split counts into `counts` (length must cover
    /// every feature index the tree was trained on).
    pub fn count_feature_splits(&self, counts: &mut [u64]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1;
            }
        }
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> u32 {
        fn walk(nodes: &[Node], id: usize) -> u32 {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, *left as usize).max(walk(nodes, *right as usize))
                }
            }
        }
        walk(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = 1 if x0 > 0.5 else 0; x1 is noise
        let mut rng = Rng64::new(1);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            x.push_row(&[a, b]);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    /// Data with heavy feature-value ties, the case where stable ordering
    /// (and therefore prefix-sum order) actually matters.
    fn tied_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = (rng.next_f64() * 8.0).floor() / 8.0; // quantized: many ties
            let b = (rng.next_f64() * 4.0).floor() / 4.0;
            let c = rng.next_f64();
            x.push_row(&[a, b, c]);
            y.push(2.0 * a - b + 0.1 * rng.next_gaussian());
        }
        (x, y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data(200);
        let mut rng = Rng64::new(2);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(tree.predict(&[0.9, 0.5]) > 0.9);
        assert!(tree.predict(&[0.1, 0.5]) < 0.1);
    }

    #[test]
    fn presorted_is_bit_identical_to_reference() {
        let (x, y) = tied_data(160, 11);
        for strategy in [SplitStrategy::BestOfAll, SplitStrategy::BestOfSqrt] {
            let fast = RegressionTree::fit(
                &x,
                &y,
                TreeConfig {
                    strategy,
                    ..Default::default()
                },
                &mut Rng64::new(3),
            );
            let reference = RegressionTree::fit(
                &x,
                &y,
                TreeConfig {
                    strategy,
                    reference: true,
                    ..Default::default()
                },
                &mut Rng64::new(3),
            );
            assert_eq!(fast.node_count(), reference.node_count());
            let mut probe_rng = Rng64::new(4);
            for _ in 0..50 {
                let p: Vec<f64> = (0..3).map(|_| probe_rng.next_f64()).collect();
                assert_eq!(
                    fast.predict(&p).to_bits(),
                    reference.predict(&p).to_bits(),
                    "presorted trees must match the reference bit for bit"
                );
            }
        }
    }

    #[test]
    fn presorted_matches_reference_on_bootstrap_duplicates() {
        let (x, y) = tied_data(80, 17);
        let mut rng = Rng64::new(5);
        let idx: Vec<usize> = (0..120).map(|_| rng.next_index(80)).collect();
        let fast =
            RegressionTree::fit_indices(&x, &y, &idx, TreeConfig::default(), &mut Rng64::new(6));
        let reference = RegressionTree::fit_indices(
            &x,
            &y,
            &idx,
            TreeConfig {
                reference: true,
                ..Default::default()
            },
            &mut Rng64::new(6),
        );
        for r in 0..x.rows() {
            assert_eq!(
                fast.predict(x.row(r)).to_bits(),
                reference.predict(x.row(r)).to_bits()
            );
        }
    }

    #[test]
    fn nan_feature_value_yields_finite_tree() {
        // a stray NaN (e.g. injected by a fault plan that bypasses
        // sanitization) must not panic mid-training, and every leaf the
        // tree can reach must stay finite
        let (mut x, y) = step_data(100);
        x[(7, 1)] = f64::NAN;
        x[(42, 0)] = f64::NAN;
        for strategy in [
            SplitStrategy::BestOfAll,
            SplitStrategy::BestOfSqrt,
            SplitStrategy::CompletelyRandom,
        ] {
            let mut rng = Rng64::new(8);
            let tree = RegressionTree::fit(
                &x,
                &y,
                TreeConfig {
                    strategy,
                    ..Default::default()
                },
                &mut rng,
            );
            for r in 0..x.rows() {
                let p = tree.predict(x.row(r));
                assert!(p.is_finite(), "{strategy:?}: prediction {p} for row {r}");
            }
            assert!(tree.predict(&[0.5, 0.5]).is_finite());
        }
    }

    #[test]
    fn histogram_mode_learns_step_function() {
        let (x, y) = step_data(300);
        let mut rng = Rng64::new(9);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                bins: Some(16),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(tree.predict(&[0.9, 0.5]) > 0.85);
        assert!(tree.predict(&[0.1, 0.5]) < 0.15);
    }

    #[test]
    fn histogram_thresholds_are_bucket_edges() {
        let (x, y) = step_data(200);
        let binned = BinnedMatrix::new(&x, 8);
        let mut rng = Rng64::new(10);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let tree = RegressionTree::fit_indices_prebinned(
            &x,
            &binned,
            &y,
            &idx,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                bins: Some(8),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(tree.node_count() > 1);
        // fewer candidate thresholds than exact mode, but the signal at
        // x0 ~ 0.5 is coarse enough to survive quantization
        assert!(tree.predict(&[0.95, 0.5]) > 0.8);
    }

    #[test]
    fn pure_targets_make_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![5.0, 5.0, 5.0];
        let mut rng = Rng64::new(3);
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 5.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        // noisy target keeps the tree splitting until the leaf floor stops it
        let mut rng = Rng64::new(4);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..120 {
            let a = rng.next_f64();
            x.push_row(&[a, rng.next_f64()]);
            y.push(a + rng.next_gaussian());
        }
        let small = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                min_samples_leaf: 1,
                ..Default::default()
            },
            &mut rng,
        );
        let big = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                min_samples_leaf: 25,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(
            big.node_count() < small.node_count(),
            "leaf floor must prune: {} vs {}",
            big.node_count(),
            small.node_count()
        );
    }

    #[test]
    fn max_depth_caps_tree() {
        let (x, y) = step_data(300);
        let mut rng = Rng64::new(5);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                max_depth: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn completely_random_tree_still_learns_strong_signal() {
        let (x, y) = step_data(400);
        let mut rng = Rng64::new(6);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::CompletelyRandom,
                min_samples_leaf: 2,
                max_depth: u32::MAX,
                ..Default::default()
            },
            &mut rng,
        );
        // grown to purity, training error is ~0 even with random splits
        assert!(tree.predict(&[0.95, 0.2]) > 0.5);
        assert!(tree.predict(&[0.05, 0.2]) < 0.5);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn constant_features_become_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let mut rng = Rng64::new(7);
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_counts_identify_informative_feature() {
        let (x, y) = step_data(300);
        let mut rng = Rng64::new(9);
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                ..Default::default()
            },
            &mut rng,
        );
        let mut counts = vec![0u64; 2];
        tree.count_feature_splits(&mut counts);
        assert!(counts[0] >= 1, "x0 carries the signal");
        assert!(counts[0] >= counts[1]);
    }

    #[test]
    fn fit_indices_uses_subset_only() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let y = vec![0.0, 1.0, 1000.0];
        let mut rng = Rng64::new(8);
        let tree = RegressionTree::fit_indices(
            &x,
            &y,
            &[0, 1],
            TreeConfig {
                min_samples_leaf: 1,
                ..Default::default()
            },
            &mut rng,
        );
        // never saw row 2: prediction bounded by training targets
        assert!(tree.predict(&[100.0]) <= 1.0);
    }
}
