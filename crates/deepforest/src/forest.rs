//! Bagged forests of regression trees.
//!
//! Two kinds, per §4.1: *random forests* (√f best-split trees on bootstrap
//! samples) and *completely-random forests* (random-split trees grown to
//! purity). Cascade levels mix both kinds to keep the ensemble diverse.

use crate::binned::BinnedMatrix;
use crate::tree::{RegressionTree, SplitStrategy, TreeConfig};
use stca_util::{Matrix, SeedStream};
use std::sync::{Arc, OnceLock};

/// Global training metrics, resolved once (forests fit in hot loops —
/// cascades and MGS windows fit many per model).
struct TrainMetrics {
    forest_fits: Arc<stca_obs::Counter>,
    trees_fitted: Arc<stca_obs::Counter>,
    forest_fit_seconds: Arc<stca_obs::Histogram>,
    bin_build_seconds: Arc<stca_obs::Histogram>,
}

fn train_metrics() -> &'static TrainMetrics {
    static METRICS: OnceLock<TrainMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TrainMetrics {
        forest_fits: stca_obs::counter("deepforest.train.forest_fits_total"),
        trees_fitted: stca_obs::counter("deepforest.train.trees_fitted_total"),
        forest_fit_seconds: stca_obs::histogram("deepforest.train.forest_fit_seconds"),
        bin_build_seconds: stca_obs::histogram("deepforest.train.bin_build_seconds"),
    })
}

/// Which forest flavour to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestKind {
    /// √f best-gain splits (classic random forest).
    Random,
    /// Random feature + random threshold, grown to purity.
    CompletelyRandom,
}

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Forest flavour.
    pub kind: ForestKind,
    /// Number of trees ("estimators" in the paper's Figure 7c ablation).
    pub trees: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Bootstrap-sample each tree's training set.
    pub bootstrap: bool,
    /// Opt-in histogram split finding (see [`TreeConfig::bins`]). The
    /// quantized matrix is built **once per forest** and shared by every
    /// tree. Ignored by completely-random forests.
    pub bins: Option<usize>,
    /// Use the reference split finder (see [`TreeConfig::reference`]).
    pub reference: bool,
}

impl ForestConfig {
    /// Default random forest with the given tree count.
    pub fn random(trees: usize) -> Self {
        ForestConfig {
            kind: ForestKind::Random,
            trees,
            min_samples_leaf: 2,
            max_depth: 32,
            bootstrap: true,
            bins: None,
            reference: false,
        }
    }

    /// Default completely-random forest with the given tree count.
    pub fn completely_random(trees: usize) -> Self {
        ForestConfig {
            kind: ForestKind::CompletelyRandom,
            trees,
            min_samples_leaf: 2,
            max_depth: 48,
            bootstrap: true,
            bins: None,
            reference: false,
        }
    }

    fn tree_config(&self) -> TreeConfig {
        TreeConfig {
            strategy: match self.kind {
                ForestKind::Random => SplitStrategy::BestOfSqrt,
                ForestKind::CompletelyRandom => SplitStrategy::CompletelyRandom,
            },
            min_samples_leaf: self.min_samples_leaf,
            max_depth: self.max_depth,
            bins: self.bins,
            reference: self.reference,
        }
    }
}

/// A fitted forest.
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<RegressionTree>,
}

impl Forest {
    /// Fit a forest on `(x, y)`. Trees train in parallel; each draws its
    /// randomness from a per-tree tagged stream, so the fitted forest is
    /// identical at any thread count.
    pub fn fit(x: &Matrix, y: &[f64], config: ForestConfig, stream: &SeedStream) -> Self {
        assert!(config.trees >= 1);
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() > 0, "empty training set");
        let metrics = train_metrics();
        let _timer = stca_obs::StageTimer::with_histogram(metrics.forest_fit_seconds.clone());
        let n = x.rows();
        let tree_config = config.tree_config();
        // histogram mode quantizes once per forest; every tree shares the codes
        let binned: Option<BinnedMatrix> = match (config.kind, config.reference, config.bins) {
            (ForestKind::Random, false, Some(bins)) => {
                let bin_timer =
                    stca_obs::StageTimer::with_histogram(metrics.bin_build_seconds.clone());
                let bm = BinnedMatrix::new(x, bins);
                bin_timer.stop();
                Some(bm)
            }
            _ => None,
        };
        let trees = stca_exec::par_map_range(config.trees, |t| {
            let mut tree_rng = stream.rng(0xF0 + t as u64);
            let idx: Vec<usize> = if config.bootstrap {
                (0..n).map(|_| tree_rng.next_index(n)).collect()
            } else {
                (0..n).collect()
            };
            match &binned {
                Some(bm) => RegressionTree::fit_indices_prebinned(
                    x,
                    bm,
                    y,
                    &idx,
                    tree_config,
                    &mut tree_rng,
                ),
                None => RegressionTree::fit_indices(x, y, &idx, tree_config, &mut tree_rng),
            }
        });
        metrics.forest_fits.inc();
        metrics.trees_fitted.add(config.trees as u64);
        Forest { trees }
    }

    /// Mean prediction across trees.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict every row of a matrix.
    pub fn predict_matrix(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Split-frequency feature importance: the fraction of all splits in
    /// the forest that test each feature (sums to 1 for a non-stump
    /// forest). Cheap, standard, and good enough to see which counters the
    /// EA model leans on.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut counts = vec![0u64; n_features];
        for t in &self.trees {
            t.count_feature_splits(&mut counts);
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; n_features];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_util::Rng64;

    fn noisy_plane(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        // y = 2 x0 - x1 + noise
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            x.push_row(&[a, b, rng.next_f64()]);
            y.push(2.0 * a - b + rng.next_gaussian() * 0.05);
        }
        (x, y)
    }

    fn mse(forest: &Forest, x: &Matrix, y: &[f64]) -> f64 {
        let pred = forest.predict_matrix(x);
        pred.iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64
    }

    #[test]
    fn random_forest_fits_plane() {
        let (x, y) = noisy_plane(400, 1);
        let (xt, yt) = noisy_plane(100, 2);
        let f = Forest::fit(&x, &y, ForestConfig::random(40), &SeedStream::new(3));
        let err = mse(&f, &xt, &yt);
        assert!(err < 0.05, "test MSE {err}");
    }

    #[test]
    fn completely_random_forest_fits_too() {
        let (x, y) = noisy_plane(400, 4);
        let (xt, yt) = noisy_plane(100, 5);
        let f = Forest::fit(
            &x,
            &y,
            ForestConfig::completely_random(60),
            &SeedStream::new(6),
        );
        let err = mse(&f, &xt, &yt);
        assert!(err < 0.1, "test MSE {err}");
    }

    #[test]
    fn more_trees_reduce_variance() {
        let (x, y) = noisy_plane(200, 7);
        let (xt, yt) = noisy_plane(200, 8);
        let stream = SeedStream::new(9);
        let small = Forest::fit(&x, &y, ForestConfig::random(2), &stream);
        let big = Forest::fit(&x, &y, ForestConfig::random(60), &stream);
        assert!(mse(&big, &xt, &yt) < mse(&small, &xt, &yt) * 1.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_plane(100, 10);
        let f1 = Forest::fit(&x, &y, ForestConfig::random(10), &SeedStream::new(11));
        let f2 = Forest::fit(&x, &y, ForestConfig::random(10), &SeedStream::new(11));
        assert_eq!(f1.predict(&[0.3, 0.7, 0.1]), f2.predict(&[0.3, 0.7, 0.1]));
    }

    #[test]
    fn feature_importance_finds_signal() {
        let (x, y) = noisy_plane(300, 20);
        let f = Forest::fit(&x, &y, ForestConfig::random(30), &SeedStream::new(21));
        let imp = f.feature_importance(3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // features 0 and 1 carry the plane; feature 2 is noise
        assert!(imp[0] > imp[2], "{imp:?}");
        assert!(imp[1] > imp[2], "{imp:?}");
    }

    #[test]
    fn presorted_forest_is_bit_identical_to_reference() {
        let (x, y) = noisy_plane(150, 30);
        let fast = Forest::fit(&x, &y, ForestConfig::random(12), &SeedStream::new(31));
        let reference = Forest::fit(
            &x,
            &y,
            ForestConfig {
                reference: true,
                ..ForestConfig::random(12)
            },
            &SeedStream::new(31),
        );
        for r in 0..x.rows() {
            assert_eq!(
                fast.predict(x.row(r)).to_bits(),
                reference.predict(x.row(r)).to_bits()
            );
        }
    }

    #[test]
    fn histogram_forest_stays_accurate() {
        let (x, y) = noisy_plane(400, 32);
        let (xt, yt) = noisy_plane(100, 33);
        let f = Forest::fit(
            &x,
            &y,
            ForestConfig {
                bins: Some(32),
                ..ForestConfig::random(40)
            },
            &SeedStream::new(34),
        );
        let err = mse(&f, &xt, &yt);
        assert!(err < 0.06, "test MSE {err}");
    }

    #[test]
    fn single_sample_forest() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let y = vec![7.0];
        let f = Forest::fit(&x, &y, ForestConfig::random(5), &SeedStream::new(12));
        assert_eq!(f.predict(&[0.0, 0.0]), 7.0);
    }
}
