//! Concept-space clustering — the §5.2 insight analysis.
//!
//! The paper's final experiment clusters workload conditions by the
//! *concepts* the deep forest learned and finds a complex interaction
//! between arrival rate, service time and timeout that clustering the raw
//! hardware counters alone does not reveal. This module reproduces both
//! clusterings and quantifies how well each separates conditions by their
//! effective allocation.

use crate::predictor::Predictor;
use stca_profiler::profile::ProfileSet;
use stca_util::kmeans::kmeans;
use stca_util::{OnlineStats, Rng64};

/// One cluster's summary statistics over the conditions assigned to it.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Conditions in the cluster.
    pub size: usize,
    /// Mean utilization of members.
    pub mean_utilization: f64,
    /// Mean timeout ratio of members.
    pub mean_timeout: f64,
    /// Mean effective allocation of members.
    pub mean_ea: f64,
    /// EA standard deviation within the cluster (lower = the clustering
    /// separates EA regimes better).
    pub ea_std: f64,
}

/// Result of clustering a profile set.
#[derive(Debug, Clone)]
pub struct ClusterAnalysis {
    /// Cluster assignment per profile row.
    pub assignment: Vec<usize>,
    /// Per-cluster summaries.
    pub clusters: Vec<ClusterSummary>,
}

impl ClusterAnalysis {
    /// Mean within-cluster EA standard deviation, weighted by cluster size.
    /// The paper's qualitative claim — concept clusters align with EA
    /// regimes, counter clusters do not — shows up as a lower value here
    /// for concept-space clustering.
    pub fn weighted_ea_dispersion(&self) -> f64 {
        let total: usize = self.clusters.iter().map(|c| c.size).sum();
        if total == 0 {
            return 0.0;
        }
        self.clusters
            .iter()
            .map(|c| c.ea_std * c.size as f64)
            .sum::<f64>()
            / total as f64
    }
}

fn summarize(profiles: &ProfileSet, assignment: &[usize], k: usize) -> ClusterAnalysis {
    let mut clusters = Vec::with_capacity(k);
    for c in 0..k {
        let members: Vec<usize> = (0..assignment.len())
            .filter(|&i| assignment[i] == c)
            .collect();
        let mut util = OnlineStats::new();
        let mut timeout = OnlineStats::new();
        let mut ea = OnlineStats::new();
        for &i in &members {
            let r = &profiles.rows[i];
            util.push(r.static_features[0]);
            timeout.push(r.static_features[1]);
            ea.push(r.ea);
        }
        clusters.push(ClusterSummary {
            size: members.len(),
            mean_utilization: util.mean(),
            mean_timeout: timeout.mean(),
            mean_ea: ea.mean(),
            ea_std: ea.std_dev(),
        });
    }
    ClusterAnalysis {
        assignment: assignment.to_vec(),
        clusters,
    }
}

fn normalize_columns(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dims = points[0].len();
    for d in 0..dims {
        let mut stats = OnlineStats::new();
        for p in points.iter() {
            stats.push(p[d]);
        }
        let (mean, std) = (stats.mean(), stats.std_dev().max(1e-12));
        for p in points.iter_mut() {
            p[d] = (p[d] - mean) / std;
        }
    }
}

/// Cluster profile rows by the deep forest's learned concepts.
pub fn cluster_by_concepts(
    predictor: &Predictor,
    profiles: &ProfileSet,
    k: usize,
    rng: &mut Rng64,
) -> ClusterAnalysis {
    let mut points: Vec<Vec<f64>> = profiles
        .rows
        .iter()
        .map(|r| predictor.concepts(r))
        .collect();
    normalize_columns(&mut points);
    let res = kmeans(&points, k, 100, rng);
    summarize(profiles, &res.assignment, res.centroids.len())
}

/// Cluster profile rows by the raw hardware-counter trace alone (the
/// comparison the paper draws: counters without learned concepts miss the
/// arrival/service/timeout interaction).
pub fn cluster_by_counters(profiles: &ProfileSet, k: usize, rng: &mut Rng64) -> ClusterAnalysis {
    let mut points: Vec<Vec<f64>> = profiles
        .rows
        .iter()
        .map(|r| {
            // per-counter means over the trace window (29 features)
            (0..r.trace.rows())
                .map(|row| {
                    let vals = r.trace.row(row);
                    vals.iter().sum::<f64>() / vals.len().max(1) as f64
                })
                .collect()
        })
        .collect();
    normalize_columns(&mut points);
    let res = kmeans(&points, k, 100, rng);
    summarize(profiles, &res.assignment, res.centroids.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ModelConfig;
    use crate::Predictor;
    use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
    use stca_profiler::profile::ProfileRow;
    use stca_profiler::sampler::CounterOrdering;
    use stca_workloads::{BenchmarkId, RuntimeCondition};

    fn fixture() -> (ProfileSet, Predictor) {
        let mut rng = Rng64::new(5);
        let mut set = ProfileSet::new();
        for i in 0..6 {
            let cond =
                RuntimeCondition::random_pair(BenchmarkId::Kmeans, BenchmarkId::Redis, &mut rng);
            let out = TestEnvironment::new(ExperimentSpec::quick(cond.clone(), 900 + i)).run();
            for (j, w) in out.workloads.iter().enumerate() {
                set.push(ProfileRow::from_outcome(
                    &cond,
                    j,
                    w,
                    CounterOrdering::Grouped,
                ));
            }
        }
        let p = Predictor::train(&set, &ModelConfig::quick(6));
        (set, p)
    }

    #[test]
    fn both_clusterings_partition_all_rows() {
        let (profiles, predictor) = fixture();
        let mut rng = Rng64::new(7);
        let by_c = cluster_by_concepts(&predictor, &profiles, 3, &mut rng);
        let by_h = cluster_by_counters(&profiles, 3, &mut rng);
        assert_eq!(by_c.assignment.len(), profiles.len());
        assert_eq!(by_h.assignment.len(), profiles.len());
        assert_eq!(
            by_c.clusters.iter().map(|c| c.size).sum::<usize>(),
            profiles.len()
        );
        assert_eq!(
            by_h.clusters.iter().map(|c| c.size).sum::<usize>(),
            profiles.len()
        );
    }

    #[test]
    fn summaries_carry_finite_stats() {
        let (profiles, predictor) = fixture();
        let mut rng = Rng64::new(8);
        let a = cluster_by_concepts(&predictor, &profiles, 2, &mut rng);
        for c in &a.clusters {
            if c.size > 0 {
                assert!(c.mean_ea.is_finite());
                assert!(c.mean_utilization >= 0.25 && c.mean_utilization <= 0.95);
            }
        }
        assert!(a.weighted_ea_dispersion().is_finite());
    }
}
