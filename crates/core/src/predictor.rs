//! The Stage 1→2→3 response-time predictor.
//!
//! Training consumes Eq.-2 profile rows. Two deep forests are fitted: one
//! for **effective cache allocation** (the paper's key intermediate metric —
//! learnable from few profiles and stable across conditions) and one for
//! **base service time** under the condition's contention (normalized by
//! the workload's expected service time). Prediction assembles the Stage-3
//! queueing simulation from those two quantities:
//!
//! ```text
//! boost_rate  = EA x (l_a'/l_a)
//! service     = demand shape scaled to (predicted base service)
//! arrivals    = Poisson at the condition's utilization
//! response    = G/G/2 + STAP discrete-event simulation
//! ```
//!
//! As in the paper's evaluation, the *inputs* at prediction time are the
//! observable profile features of the target condition (runtime conditions
//! and sampled counters); its measured response times are never seen.
//!
//! ## Degraded modes
//!
//! Prediction inputs can be damaged (fault-injected traces, sensors stuck
//! at NaN). Rather than poisoning the policy search, [`Predictor::predict_ea`]
//! degrades through a fixed fallback chain, counting each tier in
//! `fault.predictor_fallbacks_total`:
//!
//! 1. **deep forest** — scalars and trace all finite (the normal path);
//! 2. **scalar tabular model** — trace damaged but scalars finite: a plain
//!    random forest trained on the scalar features alone at [`Predictor::train`] time;
//! 3. **analytic queue model** — even the scalars are damaged: EA falls back
//!    to `1/allocation_ratio` (a boost that buys nothing, the conservative
//!    Eq.-3 floor), and base service to the workload's expected service.

use stca_baselines::{TabularKind, TabularModel};
use stca_deepforest::{DeepForest, DeepForestConfig, Sample};
use stca_profiler::profile::{ProfileRow, ProfileSet, Target};
use stca_queuesim::{QueueSim, StationConfig};
use stca_util::Seconds;
use stca_workloads::{BenchmarkId, WorkloadSpec};

/// Predictor hyperparameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Deep-forest configuration for the EA model.
    pub ea_forest: DeepForestConfig,
    /// Deep-forest configuration for the base-service model (usually a
    /// lighter cascade; the target is smoother).
    pub service_forest: DeepForestConfig,
    /// Queries simulated per Stage-3 prediction.
    pub sim_queries: usize,
    /// Stage-3 simulation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // base service is predictable from scalars + raw trace: no MGS
        let service = DeepForestConfig {
            mgs: None,
            ..DeepForestConfig::default()
        };
        ModelConfig {
            ea_forest: DeepForestConfig::default(),
            service_forest: service,
            sim_queries: 3000,
            seed: 0x57A6E3,
        }
    }
}

impl ModelConfig {
    /// A mid-sized configuration for the figure harnesses: close to the
    /// paper's shape (multi-window MGS, multi-level cascade) at a tree
    /// count that trains in seconds on a few hundred profiles.
    pub fn standard(seed: u64) -> Self {
        use stca_deepforest::{CascadeConfig, MgsConfig};
        let cascade = CascadeConfig {
            levels: 3,
            forests_per_level: 4,
            trees_per_forest: 40,
            folds: 3,
            ..CascadeConfig::default()
        };
        let mgs = MgsConfig {
            window_sizes: vec![5, 10, 15],
            stride: 2,
            trees_per_window: 25,
            max_positions_per_sample: 40,
            ..MgsConfig::default()
        };
        ModelConfig {
            ea_forest: DeepForestConfig {
                mgs: Some(mgs),
                cascade,
                include_raw_trace: true,
                seed,
            },
            service_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed: seed ^ 0x5E41,
            },
            sim_queries: 2500,
            seed,
        }
    }

    /// The "simple ML" configuration of Figure 8e: no multi-grain scanning
    /// and a single cascade level — effectively a plain random forest over
    /// the flattened profile features, still feeding the Stage-3 queueing
    /// conversion.
    pub fn simple_ml(seed: u64) -> Self {
        use stca_deepforest::CascadeConfig;
        let cascade = CascadeConfig {
            levels: 1,
            forests_per_level: 2,
            trees_per_forest: 40,
            folds: 3,
            ..CascadeConfig::default()
        };
        ModelConfig {
            ea_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed,
            },
            service_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed: seed ^ 0x5E41,
            },
            sim_queries: 2500,
            seed,
        }
    }

    /// A fast configuration for tests and quick experiments.
    pub fn quick(seed: u64) -> Self {
        use stca_deepforest::{CascadeConfig, MgsConfig};
        let cascade = CascadeConfig {
            levels: 2,
            forests_per_level: 2,
            trees_per_forest: 12,
            folds: 3,
            ..CascadeConfig::default()
        };
        let mgs = MgsConfig {
            window_sizes: vec![5, 10],
            stride: 3,
            trees_per_window: 10,
            max_positions_per_sample: 24,
            ..MgsConfig::default()
        };
        ModelConfig {
            ea_forest: DeepForestConfig {
                mgs: Some(mgs),
                cascade,
                include_raw_trace: true,
                seed,
            },
            service_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed: seed ^ 0x5E41,
            },
            sim_queries: 1200,
            seed,
        }
    }
}

/// Response-time prediction for one condition.
#[derive(Debug, Clone)]
pub struct ResponsePrediction {
    /// Predicted effective cache allocation.
    pub ea: f64,
    /// Predicted base (unboosted) mean service time, seconds.
    pub base_service: Seconds,
    /// Predicted mean response time, seconds.
    pub mean_response: Seconds,
    /// Predicted median response time.
    pub median_response: Seconds,
    /// Predicted p95 response time.
    pub p95_response: Seconds,
    /// Boost rate handed to the Stage-3 simulator.
    pub boost_rate: f64,
}

/// The trained predictor.
pub struct Predictor {
    ea_model: DeepForest,
    service_model: DeepForest,
    /// Scalar-only fallback models for rows with damaged traces.
    ea_scalar: TabularModel,
    service_scalar: TabularModel,
    config: ModelConfig,
}

fn to_sample(row: &ProfileRow) -> Sample {
    Sample {
        scalars: row.scalar_features(),
        trace: row.trace.clone(),
    }
}

/// Analytic EA floor used when no model can run: a grant assumed to buy no
/// speedup at all yields `EA = 1/ratio` (Eq. 3 with unchanged service time).
fn analytic_ea(allocation_ratio: f64) -> f64 {
    if allocation_ratio.is_finite() && allocation_ratio >= 1.0 {
        (1.0 / allocation_ratio).clamp(0.01, 2.0)
    } else {
        0.5
    }
}

fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

fn fallback(tier: &str) {
    stca_obs::counter("fault.predictor_fallbacks_total").inc();
    stca_obs::counter(&format!("fault.predictor_fallback_{tier}_total")).inc();
}

impl Predictor {
    /// Train on a profile set (Stage 2).
    pub fn train(profiles: &ProfileSet, config: &ModelConfig) -> Predictor {
        assert!(!profiles.is_empty(), "cannot train on an empty profile set");
        stca_obs::time_scope!("core.predictor.train_seconds");
        stca_obs::counter("core.predictor.trainings_total").inc();
        stca_obs::info!("training predictor on {} profile rows", profiles.len());
        let samples: Vec<Sample> = profiles.rows.iter().map(to_sample).collect();
        let ea: Vec<f64> = profiles.rows.iter().map(|r| Target::Ea.of(r)).collect();
        let service: Vec<f64> = profiles
            .rows
            .iter()
            .map(|r| Target::BaseService.of(r))
            .collect();
        // scalar-only design matrix for the degraded-trace fallback models
        let k = profiles.rows[0].scalar_features().len();
        let mut scalars = stca_util::Matrix::zeros(profiles.len(), k);
        for (i, row) in profiles.rows.iter().enumerate() {
            scalars.row_mut(i).copy_from_slice(&row.scalar_features());
        }
        let tabular = TabularKind::RandomForest { trees: 30 };
        Predictor {
            ea_model: DeepForest::fit(&samples, &ea, &config.ea_forest),
            service_model: DeepForest::fit(&samples, &service, &config.service_forest),
            ea_scalar: TabularModel::fit(tabular, &scalars, &ea, config.seed ^ 0xFA11BACC),
            service_scalar: TabularModel::fit(
                tabular,
                &scalars,
                &service,
                config.seed ^ 0xFA11_5E41,
            ),
            config: config.clone(),
        }
    }

    /// Predict effective cache allocation for a profile row, degrading
    /// through the fallback chain (deep forest → scalar forest → analytic)
    /// when the row's features are damaged. Always returns a finite value
    /// in `[0.01, 2.0]`.
    pub fn predict_ea(&self, row: &ProfileRow) -> f64 {
        let scalars_ok = all_finite(&row.static_features);
        let trace_ok = all_finite(row.trace.as_slice());
        let raw = if scalars_ok && trace_ok {
            // borrow the row's parts directly: no Sample, no trace clone
            self.ea_model
                .predict_parts(&row.static_features, &row.trace)
        } else if scalars_ok {
            fallback("scalar");
            self.ea_scalar.predict(&row.static_features)
        } else {
            fallback("analytic");
            analytic_ea(row.allocation_ratio)
        };
        if raw.is_finite() {
            raw.clamp(0.01, 2.0)
        } else {
            fallback("analytic");
            analytic_ea(row.allocation_ratio)
        }
    }

    /// Forest-only EA prediction with **no fallback**: errors on damaged
    /// features or a non-finite forest output instead of degrading.
    ///
    /// This is the primary tier the serving loop's circuit breaker wraps —
    /// the breaker needs failures *surfaced* so it can count them and trip,
    /// where [`predict_ea`] would silently absorb them into the chain.
    ///
    /// [`predict_ea`]: Predictor::predict_ea
    pub fn predict_ea_strict(&self, row: &ProfileRow) -> Result<f64, stca_fault::StcaError> {
        if !all_finite(&row.static_features) || !all_finite(row.trace.as_slice()) {
            return Err(stca_fault::StcaError::invalid_input(
                "predict_ea_strict: non-finite features",
            ));
        }
        let raw = self
            .ea_model
            .predict_parts(&row.static_features, &row.trace);
        if raw.is_finite() {
            Ok(raw.clamp(0.01, 2.0))
        } else {
            Err(stca_fault::StcaError::invalid_input(
                "predict_ea_strict: non-finite forest output",
            ))
        }
    }

    /// The degraded tail of the fallback chain, skipping the deep forest:
    /// the scalar tabular model when the scalars are finite (tier 1), else
    /// the analytic EA floor (tier 2). Always finite in `[0.01, 2.0]`.
    pub fn predict_ea_degraded(&self, row: &ProfileRow) -> (f64, u8) {
        if all_finite(&row.static_features) {
            let raw = self.ea_scalar.predict(&row.static_features);
            if raw.is_finite() {
                return (raw.clamp(0.01, 2.0), 1);
            }
        }
        (analytic_ea(row.allocation_ratio), 2)
    }

    /// Predict normalized base service time for a profile row, with the
    /// same degradation chain as [`predict_ea`]; the analytic tier is the
    /// workload's expected service (norm 1.0).
    ///
    /// [`predict_ea`]: Predictor::predict_ea
    pub fn predict_base_service_norm(&self, row: &ProfileRow) -> f64 {
        let scalars_ok = all_finite(&row.static_features);
        let trace_ok = all_finite(row.trace.as_slice());
        let raw = if scalars_ok && trace_ok {
            self.service_model
                .predict_parts(&row.static_features, &row.trace)
        } else if scalars_ok {
            fallback("scalar");
            self.service_scalar.predict(&row.static_features)
        } else {
            fallback("analytic");
            1.0
        };
        if raw.is_finite() {
            raw.clamp(0.05, 20.0)
        } else {
            fallback("analytic");
            1.0
        }
    }

    /// Full Stage-3 prediction of the response-time distribution for the
    /// workload described by `row` (which benchmark it is tells the model
    /// the service-time scale and demand shape).
    pub fn predict_response(&self, row: &ProfileRow, benchmark: BenchmarkId) -> ResponsePrediction {
        stca_obs::time_scope!("core.predictor.predict_seconds");
        stca_obs::counter("core.predictor.predictions_total").inc();
        let spec = WorkloadSpec::for_benchmark(benchmark);
        let ea = self.predict_ea(row);
        let base_norm = self.predict_base_service_norm(row);
        let base_service = base_norm * spec.mean_service_time;
        // damaged condition features would hand the simulator NaN rates;
        // substitute neutral values (moderate load, never-boost timeout)
        let utilization = if row.static_features[0].is_finite() {
            row.static_features[0].clamp(0.05, 0.98)
        } else {
            stca_obs::counter("fault.predictor_invalid_conditions_total").inc();
            0.5
        };
        let timeout_ratio = if row.static_features[1].is_finite() {
            row.static_features[1].max(0.0)
        } else {
            stca_obs::counter("fault.predictor_invalid_conditions_total").inc();
            6.0
        };
        let ratio = if row.allocation_ratio.is_finite() {
            row.allocation_ratio.max(1.0)
        } else {
            2.0
        };
        let boost_rate = stca_profiler::ea::boost_rate_from_ea(ea, ratio);
        let servers = 2;
        let station = StationConfig {
            inter_arrival: stca_util::Distribution::Exponential {
                // open-loop rate is set by the *expected* service time, as
                // in the test environment
                mean: spec.mean_service_time / (utilization * servers as f64),
            },
            service: spec.demand.scaled(base_service),
            expected_service: spec.mean_service_time,
            timeout_ratio,
            boost_rate,
            servers,
            shared_boost: true,
            measured_queries: self.config.sim_queries,
            warmup_queries: self.config.sim_queries / 10,
        };
        let result = QueueSim::new(station, self.config.seed).run();
        ResponsePrediction {
            ea,
            base_service,
            mean_response: result.mean_response(),
            median_response: result.median_response(),
            p95_response: result.p95_response(),
            boost_rate,
        }
    }

    /// Access the trained EA deep forest (concept extraction, §5.2).
    pub fn ea_model(&self) -> &DeepForest {
        &self.ea_model
    }

    /// Concept vector of a profile row under the EA model.
    pub fn concepts(&self, row: &ProfileRow) -> Vec<f64> {
        self.ea_model.concepts(&to_sample(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
    use stca_profiler::profile::ProfileRow;
    use stca_profiler::sampler::CounterOrdering;
    use stca_util::Rng64;
    use stca_workloads::RuntimeCondition;

    /// Build a small profile set from real quick experiments.
    fn small_profiles(n: usize, seed: u64) -> (ProfileSet, Vec<BenchmarkId>) {
        let mut rng = Rng64::new(seed);
        let mut set = ProfileSet::new();
        let mut benchmarks = Vec::new();
        for i in 0..n {
            let cond =
                RuntimeCondition::random_pair(BenchmarkId::Kmeans, BenchmarkId::Bfs, &mut rng);
            let out =
                TestEnvironment::new(ExperimentSpec::quick(cond.clone(), seed ^ i as u64)).run();
            for (j, w) in out.workloads.iter().enumerate() {
                set.push(ProfileRow::from_outcome(
                    &cond,
                    j,
                    w,
                    CounterOrdering::Grouped,
                ));
                benchmarks.push(w.benchmark);
            }
        }
        (set, benchmarks)
    }

    #[test]
    fn train_and_predict_end_to_end() {
        let (profiles, benchmarks) = small_profiles(6, 42);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(1));
        let row = &profiles.rows[0];
        let pred = predictor.predict_response(row, benchmarks[0]);
        assert!(pred.ea > 0.0 && pred.ea <= 2.0);
        assert!(pred.mean_response > 0.0);
        assert!(pred.p95_response >= pred.median_response);
        assert!(pred.base_service > 0.0);
    }

    #[test]
    fn predictions_track_targets_on_training_data() {
        let (profiles, _) = small_profiles(8, 7);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(2));
        // in-sample EA predictions should correlate with labels (loose:
        // deep forest is regularized via out-of-fold concepts)
        let mut err = 0.0;
        for row in &profiles.rows {
            err += (predictor.predict_ea(row) - row.ea).abs();
        }
        let mean_err = err / profiles.rows.len() as f64;
        assert!(mean_err < 0.3, "mean in-sample EA error {mean_err}");
    }

    #[test]
    fn fallback_chain_survives_damaged_rows() {
        let (profiles, benchmarks) = small_profiles(4, 11);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(4));

        // tier 2: all-NaN trace, finite scalars → scalar model
        let mut damaged = profiles.rows[0].clone();
        for v in damaged.trace.as_mut_slice() {
            *v = f64::NAN;
        }
        let ea = predictor.predict_ea(&damaged);
        assert!(
            ea.is_finite() && (0.01..=2.0).contains(&ea),
            "scalar tier EA {ea}"
        );
        let svc = predictor.predict_base_service_norm(&damaged);
        assert!(svc.is_finite() && svc > 0.0);

        // tier 3: scalars damaged too → analytic queue model
        let mut wrecked = damaged.clone();
        for v in &mut wrecked.static_features {
            *v = f64::NAN;
        }
        let ea = predictor.predict_ea(&wrecked);
        assert!(
            ea.is_finite() && (0.01..=2.0).contains(&ea),
            "analytic tier EA {ea}"
        );
        assert!(
            (ea - 1.0 / wrecked.allocation_ratio).abs() < 1e-12,
            "analytic tier is the EA floor"
        );

        // even a full response prediction stays finite on wrecked inputs
        let pred = predictor.predict_response(&wrecked, benchmarks[0]);
        assert!(pred.mean_response.is_finite() && pred.mean_response > 0.0);
        assert!(pred.p95_response.is_finite());
    }

    #[test]
    fn fallbacks_are_counted() {
        let (profiles, _) = small_profiles(3, 13);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(5));
        let before = stca_obs::counter("fault.predictor_fallbacks_total").get();
        let mut damaged = profiles.rows[0].clone();
        damaged.trace.as_mut_slice()[0] = f64::INFINITY;
        predictor.predict_ea(&damaged);
        let after = stca_obs::counter("fault.predictor_fallbacks_total").get();
        assert!(after > before);
    }

    #[test]
    fn concepts_are_extractable() {
        let (profiles, _) = small_profiles(4, 9);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(3));
        let c = predictor.concepts(&profiles.rows[0]);
        assert!(!c.is_empty());
        assert!(c.iter().all(|v| v.is_finite()));
    }
}
