//! The Stage 1→2→3 response-time predictor.
//!
//! Training consumes Eq.-2 profile rows. Two deep forests are fitted: one
//! for **effective cache allocation** (the paper's key intermediate metric —
//! learnable from few profiles and stable across conditions) and one for
//! **base service time** under the condition's contention (normalized by
//! the workload's expected service time). Prediction assembles the Stage-3
//! queueing simulation from those two quantities:
//!
//! ```text
//! boost_rate  = EA x (l_a'/l_a)
//! service     = demand shape scaled to (predicted base service)
//! arrivals    = Poisson at the condition's utilization
//! response    = G/G/2 + STAP discrete-event simulation
//! ```
//!
//! As in the paper's evaluation, the *inputs* at prediction time are the
//! observable profile features of the target condition (runtime conditions
//! and sampled counters); its measured response times are never seen.

use stca_deepforest::{DeepForest, DeepForestConfig, Sample};
use stca_profiler::profile::{ProfileRow, ProfileSet, Target};
use stca_queuesim::{QueueSim, StationConfig};
use stca_util::Seconds;
use stca_workloads::{BenchmarkId, WorkloadSpec};

/// Predictor hyperparameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Deep-forest configuration for the EA model.
    pub ea_forest: DeepForestConfig,
    /// Deep-forest configuration for the base-service model (usually a
    /// lighter cascade; the target is smoother).
    pub service_forest: DeepForestConfig,
    /// Queries simulated per Stage-3 prediction.
    pub sim_queries: usize,
    /// Stage-3 simulation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // base service is predictable from scalars + raw trace: no MGS
        let service = DeepForestConfig {
            mgs: None,
            ..DeepForestConfig::default()
        };
        ModelConfig {
            ea_forest: DeepForestConfig::default(),
            service_forest: service,
            sim_queries: 3000,
            seed: 0x57A6E3,
        }
    }
}

impl ModelConfig {
    /// A mid-sized configuration for the figure harnesses: close to the
    /// paper's shape (multi-window MGS, multi-level cascade) at a tree
    /// count that trains in seconds on a few hundred profiles.
    pub fn standard(seed: u64) -> Self {
        use stca_deepforest::{CascadeConfig, MgsConfig};
        let cascade = CascadeConfig {
            levels: 3,
            forests_per_level: 4,
            trees_per_forest: 40,
            folds: 3,
        };
        let mgs = MgsConfig {
            window_sizes: vec![5, 10, 15],
            stride: 2,
            trees_per_window: 25,
            max_positions_per_sample: 40,
        };
        ModelConfig {
            ea_forest: DeepForestConfig {
                mgs: Some(mgs),
                cascade,
                include_raw_trace: true,
                seed,
            },
            service_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed: seed ^ 0x5E41,
            },
            sim_queries: 2500,
            seed,
        }
    }

    /// The "simple ML" configuration of Figure 8e: no multi-grain scanning
    /// and a single cascade level — effectively a plain random forest over
    /// the flattened profile features, still feeding the Stage-3 queueing
    /// conversion.
    pub fn simple_ml(seed: u64) -> Self {
        use stca_deepforest::CascadeConfig;
        let cascade = CascadeConfig {
            levels: 1,
            forests_per_level: 2,
            trees_per_forest: 40,
            folds: 3,
        };
        ModelConfig {
            ea_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed,
            },
            service_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed: seed ^ 0x5E41,
            },
            sim_queries: 2500,
            seed,
        }
    }

    /// A fast configuration for tests and quick experiments.
    pub fn quick(seed: u64) -> Self {
        use stca_deepforest::{CascadeConfig, MgsConfig};
        let cascade = CascadeConfig {
            levels: 2,
            forests_per_level: 2,
            trees_per_forest: 12,
            folds: 3,
        };
        let mgs = MgsConfig {
            window_sizes: vec![5, 10],
            stride: 3,
            trees_per_window: 10,
            max_positions_per_sample: 24,
        };
        ModelConfig {
            ea_forest: DeepForestConfig {
                mgs: Some(mgs),
                cascade,
                include_raw_trace: true,
                seed,
            },
            service_forest: DeepForestConfig {
                mgs: None,
                cascade,
                include_raw_trace: true,
                seed: seed ^ 0x5E41,
            },
            sim_queries: 1200,
            seed,
        }
    }
}

/// Response-time prediction for one condition.
#[derive(Debug, Clone)]
pub struct ResponsePrediction {
    /// Predicted effective cache allocation.
    pub ea: f64,
    /// Predicted base (unboosted) mean service time, seconds.
    pub base_service: Seconds,
    /// Predicted mean response time, seconds.
    pub mean_response: Seconds,
    /// Predicted median response time.
    pub median_response: Seconds,
    /// Predicted p95 response time.
    pub p95_response: Seconds,
    /// Boost rate handed to the Stage-3 simulator.
    pub boost_rate: f64,
}

/// The trained predictor.
pub struct Predictor {
    ea_model: DeepForest,
    service_model: DeepForest,
    config: ModelConfig,
}

fn to_sample(row: &ProfileRow) -> Sample {
    Sample {
        scalars: row.scalar_features(),
        trace: row.trace.clone(),
    }
}

impl Predictor {
    /// Train on a profile set (Stage 2).
    pub fn train(profiles: &ProfileSet, config: &ModelConfig) -> Predictor {
        assert!(!profiles.is_empty(), "cannot train on an empty profile set");
        stca_obs::time_scope!("core.predictor.train_seconds");
        stca_obs::counter("core.predictor.trainings_total").inc();
        stca_obs::info!("training predictor on {} profile rows", profiles.len());
        let samples: Vec<Sample> = profiles.rows.iter().map(to_sample).collect();
        let ea: Vec<f64> = profiles.rows.iter().map(|r| Target::Ea.of(r)).collect();
        let service: Vec<f64> = profiles
            .rows
            .iter()
            .map(|r| Target::BaseService.of(r))
            .collect();
        Predictor {
            ea_model: DeepForest::fit(&samples, &ea, &config.ea_forest),
            service_model: DeepForest::fit(&samples, &service, &config.service_forest),
            config: config.clone(),
        }
    }

    /// Predict effective cache allocation for a profile row.
    pub fn predict_ea(&self, row: &ProfileRow) -> f64 {
        self.ea_model.predict(&to_sample(row)).clamp(0.01, 2.0)
    }

    /// Predict normalized base service time for a profile row.
    pub fn predict_base_service_norm(&self, row: &ProfileRow) -> f64 {
        self.service_model
            .predict(&to_sample(row))
            .clamp(0.05, 20.0)
    }

    /// Full Stage-3 prediction of the response-time distribution for the
    /// workload described by `row` (which benchmark it is tells the model
    /// the service-time scale and demand shape).
    pub fn predict_response(&self, row: &ProfileRow, benchmark: BenchmarkId) -> ResponsePrediction {
        stca_obs::time_scope!("core.predictor.predict_seconds");
        stca_obs::counter("core.predictor.predictions_total").inc();
        let spec = WorkloadSpec::for_benchmark(benchmark);
        let ea = self.predict_ea(row);
        let base_norm = self.predict_base_service_norm(row);
        let base_service = base_norm * spec.mean_service_time;
        let utilization = row.static_features[0];
        let timeout_ratio = row.static_features[1];
        let boost_rate = stca_profiler::ea::boost_rate_from_ea(ea, row.allocation_ratio);
        let servers = 2;
        let station = StationConfig {
            inter_arrival: stca_util::Distribution::Exponential {
                // open-loop rate is set by the *expected* service time, as
                // in the test environment
                mean: spec.mean_service_time / (utilization * servers as f64),
            },
            service: spec.demand.scaled(base_service),
            expected_service: spec.mean_service_time,
            timeout_ratio,
            boost_rate,
            servers,
            shared_boost: true,
            measured_queries: self.config.sim_queries,
            warmup_queries: self.config.sim_queries / 10,
        };
        let result = QueueSim::new(station, self.config.seed).run();
        ResponsePrediction {
            ea,
            base_service,
            mean_response: result.mean_response(),
            median_response: result.median_response(),
            p95_response: result.p95_response(),
            boost_rate,
        }
    }

    /// Access the trained EA deep forest (concept extraction, §5.2).
    pub fn ea_model(&self) -> &DeepForest {
        &self.ea_model
    }

    /// Concept vector of a profile row under the EA model.
    pub fn concepts(&self, row: &ProfileRow) -> Vec<f64> {
        self.ea_model.concepts(&to_sample(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
    use stca_profiler::profile::ProfileRow;
    use stca_profiler::sampler::CounterOrdering;
    use stca_util::Rng64;
    use stca_workloads::RuntimeCondition;

    /// Build a small profile set from real quick experiments.
    fn small_profiles(n: usize, seed: u64) -> (ProfileSet, Vec<BenchmarkId>) {
        let mut rng = Rng64::new(seed);
        let mut set = ProfileSet::new();
        let mut benchmarks = Vec::new();
        for i in 0..n {
            let cond =
                RuntimeCondition::random_pair(BenchmarkId::Kmeans, BenchmarkId::Bfs, &mut rng);
            let out =
                TestEnvironment::new(ExperimentSpec::quick(cond.clone(), seed ^ i as u64)).run();
            for (j, w) in out.workloads.iter().enumerate() {
                set.push(ProfileRow::from_outcome(
                    &cond,
                    j,
                    w,
                    CounterOrdering::Grouped,
                ));
                benchmarks.push(w.benchmark);
            }
        }
        (set, benchmarks)
    }

    #[test]
    fn train_and_predict_end_to_end() {
        let (profiles, benchmarks) = small_profiles(6, 42);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(1));
        let row = &profiles.rows[0];
        let pred = predictor.predict_response(row, benchmarks[0]);
        assert!(pred.ea > 0.0 && pred.ea <= 2.0);
        assert!(pred.mean_response > 0.0);
        assert!(pred.p95_response >= pred.median_response);
        assert!(pred.base_service > 0.0);
    }

    #[test]
    fn predictions_track_targets_on_training_data() {
        let (profiles, _) = small_profiles(8, 7);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(2));
        // in-sample EA predictions should correlate with labels (loose:
        // deep forest is regularized via out-of-fold concepts)
        let mut err = 0.0;
        for row in &profiles.rows {
            err += (predictor.predict_ea(row) - row.ea).abs();
        }
        let mean_err = err / profiles.rows.len() as f64;
        assert!(mean_err < 0.3, "mean in-sample EA error {mean_err}");
    }

    #[test]
    fn concepts_are_extractable() {
        let (profiles, _) = small_profiles(4, 9);
        let predictor = Predictor::train(&profiles, &ModelConfig::quick(3));
        let c = predictor.concepts(&profiles.rows[0]);
        assert!(!c.is_empty());
        assert!(c.iter().all(|v| v.is_finite()));
    }
}
