//! The scenario pipeline: profile → dataset → train → explore → serve,
//! driven by a [`stca_scenario::ScenarioSpec`].
//!
//! Each stage writes its artifact into the scenario's artifact directory
//! and records an FNV-1a hash in `scenario.ckpt.json`; a re-run (same
//! spec, any `--threads`) skips finished stages whose artifacts are still
//! on disk and reproduces the remaining ones bit-identically. The
//! checkpoint meta is the spec fingerprint, so editing the spec
//! invalidates stale stage state instead of resuming into it.
//!
//! The module also hosts the spec-driven building blocks the `stca`
//! subcommands share with the runner ([`profile_conditions`],
//! [`train_predictor`], [`run_serve`], [`render_explore`]) so flag-built
//! specs and scenario files execute the exact same code path.

use crate::{ExplorationResult, ModelConfig, PolicyExplorer, Predictor};
use stca_cachesim::{CacheGeometry, HierarchyConfig};
use stca_cat::layout::ExperimentLayout;
use stca_fault::{Checkpoint, RetryPolicy, StcaError};
use stca_profiler::executor::{run_experiment_checked, ExperimentSpec};
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_profiler::sampler::CounterOrdering;
use stca_profiler::storage;
use stca_scenario::{fnv1a, ModelKind, PredictorKind, ScenarioSpec, Stage};
use stca_serve::{FleetReport, ServeReport};
use stca_util::Rng64;
use stca_workloads::{RuntimeCondition, WorkloadSpec};
use std::path::{Path, PathBuf};

/// The hierarchy configuration of a spec's `[cat]` section: the
/// experiment default, with the LLC re-sized to `ways` (preserving the
/// per-way size) when `ways` is nonzero.
pub fn hierarchy_config(spec: &ScenarioSpec) -> HierarchyConfig {
    let base = HierarchyConfig::experiment_default();
    if spec.cat.ways == 0 {
        return base;
    }
    let ways = spec.cat.ways as usize;
    let per_way = base.llc.size_bytes / base.llc.ways;
    HierarchyConfig {
        llc: CacheGeometry::new(per_way * ways, ways, base.llc.line_size),
        ..base
    }
}

/// The way layout of a spec's `[cat]` section.
pub fn experiment_layout(spec: &ScenarioSpec) -> ExperimentLayout {
    ExperimentLayout::pair_symmetric(
        spec.cat.default_span as usize,
        spec.cat.boosted_span as usize,
    )
}

fn profile_meta(spec: &ScenarioSpec) -> String {
    let pair = spec.workloads.pair;
    let n = spec.profile.conditions;
    let seed = spec.profile.seed;
    let mut meta = format!(
        "profile/{}-{}/n{n}/seed{seed}/plan{:016x}",
        pair.0, pair.1, spec.fault.plan.seed
    );
    // the historical meta covers the historical defaults; non-default
    // experiment shape must invalidate checkpoints taken under another
    let p = &spec.profile;
    if (p.measured_queries, p.warmup_queries, p.accesses_per_query) != (200, 30, 1500) {
        meta.push_str(&format!(
            "/m{}w{}a{}",
            p.measured_queries, p.warmup_queries, p.accesses_per_query
        ));
    }
    if (spec.cat.ways, spec.cat.default_span, spec.cat.boosted_span) != (0, 2, 2) {
        meta.push_str(&format!(
            "/cat{}-{}-{}",
            spec.cat.ways, spec.cat.default_span, spec.cat.boosted_span
        ));
    }
    meta
}

/// Profile `[profile].conditions` random conditions of the spec's pair
/// under its fault plan, skipping conditions that exhaust their retries
/// and checkpointing finished ones when asked.
pub fn profile_conditions(
    spec: &ScenarioSpec,
    checkpoint: Option<&Path>,
) -> Result<ProfileSet, StcaError> {
    let pair = spec.workloads.pair;
    let n = spec.profile.conditions as usize;
    let seed = spec.profile.seed;
    let plan = &spec.fault.plan;
    let retry = RetryPolicy::with_max_retries(spec.fault.max_retries);
    let config = hierarchy_config(spec);
    let layout = experiment_layout(spec);
    let mut rng = Rng64::new(seed);
    // conditions are drawn serially; the experiments (the expensive part)
    // run in parallel, each with its original per-condition seed
    let conditions: Vec<RuntimeCondition> = (0..n)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    let meta = profile_meta(spec);
    let mut ckpt = match checkpoint {
        Some(path) => Some(Checkpoint::load_or_new(path, &meta)?),
        None => None,
    };
    let cached: Vec<Option<Vec<ProfileRow>>> = (0..n)
        .map(|i| {
            let ck = ckpt.as_ref()?;
            match ck.get(&format!("cond.{i}")) {
                Some(stca_obs::json::Value::Array(rows)) => rows
                    .iter()
                    .map(|v| storage::row_from_json(v).ok())
                    .collect(),
                Some(stca_obs::json::Value::String(s)) if s.starts_with("failed") => {
                    // a condition that failed in the previous run stays
                    // failed on resume (same plan seed ⇒ same faults)
                    Some(Vec::new())
                }
                _ => None,
            }
        })
        .collect();
    let accesses = match spec.profile.accesses_per_query {
        0 => None,
        v => Some(v),
    };
    let results = stca_exec::par_map_indexed_caught(&conditions, |i, condition| {
        if let Some(rows) = &cached[i] {
            return Ok(rows.clone());
        }
        stca_obs::info!(
            "[{}/{}] util=({:.2},{:.2}) T=({:.2},{:.2})",
            i + 1,
            n,
            condition.workloads[0].utilization,
            condition.workloads[1].utilization,
            condition.workloads[0].timeout_ratio,
            condition.workloads[1].timeout_ratio
        );
        let exp = ExperimentSpec {
            config,
            layout: layout.clone(),
            measured_queries: spec.profile.measured_queries as usize,
            warmup_queries: spec.profile.warmup_queries as usize,
            accesses_per_query: accesses,
            ..ExperimentSpec::standard(condition.clone(), seed ^ ((i as u64) << 16))
        };
        run_experiment_checked(exp, plan, &retry).map(|out| {
            out.workloads
                .iter()
                .enumerate()
                .map(|(j, w)| ProfileRow::from_outcome(condition, j, w, CounterOrdering::Grouped))
                .collect::<Vec<ProfileRow>>()
        })
    });
    let mut set = ProfileSet::new();
    let mut failed = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        let flattened = match result {
            Ok(inner) => inner.map_err(|e| e.to_string()),
            Err(panic_msg) => Err(format!("panicked: {panic_msg}")),
        };
        match flattened {
            Ok(rows) => {
                if rows.is_empty() {
                    failed += 1; // resumed failure marker
                } else if let Some(ck) = ckpt.as_mut() {
                    if cached[i].is_none() {
                        ck.put(
                            format!("cond.{i}"),
                            stca_obs::json::Value::Array(
                                rows.iter().map(storage::row_to_json).collect(),
                            ),
                        );
                    }
                }
                for row in rows {
                    set.push(row);
                }
            }
            Err(reason) => {
                failed += 1;
                stca_obs::counter("fault.conditions_failed_total").inc();
                stca_obs::warn!("condition {i} failed, skipping: {reason}");
                if let Some(ck) = ckpt.as_mut() {
                    ck.put(
                        format!("cond.{i}"),
                        stca_obs::json::Value::String(format!("failed: {reason}")),
                    );
                }
            }
        }
    }
    if let Some(ck) = ckpt.as_mut() {
        ck.save()?;
    }
    if failed > 0 {
        stca_obs::warn!("{failed}/{n} conditions failed under the fault plan");
    }
    if set.is_empty() {
        return Err(StcaError::invalid_input(format!(
            "all {n} profiling conditions failed under the fault plan"
        )));
    }
    Ok(set)
}

/// Load a profile store, rejecting empty ones.
pub fn load_profiles(path: &Path) -> Result<ProfileSet, StcaError> {
    let set = storage::load(path)?;
    if set.is_empty() {
        return Err(StcaError::invalid_input("profile file holds no rows"));
    }
    stca_obs::info!("loaded {} profile rows from {}", set.len(), path.display());
    Ok(set)
}

/// The model configuration a `[train]` section selects for a dataset of
/// `rows` rows. `auto` keeps the historical rule: `standard` at >= 30
/// rows, `quick` below.
pub fn model_config(kind: ModelKind, rows: usize, seed: u64) -> ModelConfig {
    match kind {
        ModelKind::Auto => {
            if rows >= 30 {
                ModelConfig::standard(seed)
            } else {
                ModelConfig::quick(seed)
            }
        }
        ModelKind::Quick => ModelConfig::quick(seed),
        ModelKind::Standard => ModelConfig::standard(seed),
        ModelKind::SimpleMl => ModelConfig::simple_ml(seed),
    }
}

/// Train the spec's model on a dataset with an explicit seed (the CLI
/// passes `train.seed` for predict/explore and `serve.seed` for the
/// historical trained-serve path).
pub fn train_predictor_seeded(spec: &ScenarioSpec, set: &ProfileSet, seed: u64) -> Predictor {
    Predictor::train(set, &model_config(spec.train.model, set.len(), seed))
}

/// Train the spec's model on a dataset with the spec's own train seed.
pub fn train_predictor(spec: &ScenarioSpec, set: &ProfileSet) -> Predictor {
    train_predictor_seeded(spec, set, spec.train.seed)
}

/// Render the explore grid exactly as `stca explore` prints it.
pub fn render_explore(spec: &ScenarioSpec, result: &ExplorationResult) -> String {
    use std::fmt::Write as _;
    let pair = spec.workloads.pair;
    let grid = &spec.explore.grid;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "predicted normalized p95 grid (rows: T_{}, cols: T_{}):",
        pair.0, pair.1
    );
    let _ = write!(out, "{:>8}", "");
    for t in grid {
        let _ = write!(out, "{t:>12.2}");
    }
    let _ = writeln!(out);
    for (i, row) in result.grid.iter().enumerate() {
        let _ = write!(out, "{:>8.2}", grid[i]);
        for (a, b) in row {
            let _ = write!(out, "{:>12}", format!("{a:.1}/{b:.1}"));
        }
        let _ = writeln!(out);
    }
    let _ = write!(
        out,
        "\nchosen: T_{} = {:.2}, T_{} = {:.2} (SLO intersection: {})",
        pair.0, result.timeout_a, pair.1, result.timeout_b, result.intersected
    );
    out
}

/// If anything downstream exhausts its retries mid-run, persist the
/// flight recorder before the error unwinds (the "dump on error" half
/// of the recorder contract; the trace artifact doubles as the target).
fn trace_dump_guard(
    tracing: bool,
    trace_error_path: Option<&Path>,
) -> Option<stca_fault::HookGuard> {
    if !tracing {
        return None;
    }
    let path = trace_error_path
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("stca-trace-error.json"));
    Some(stca_fault::register_error_dump_hook(move |err| {
        if let Some(dump) = stca_trace::active_dump() {
            if stca_trace::write_chrome_json(&path, &dump).is_ok() {
                eprintln!(
                    "fault: {err}; dumped {} in-flight traces to {}",
                    dump.traces.len(),
                    path.display()
                );
            }
        }
    }))
}

/// Resolve the spec's predictor and hand the serving loop a borrowed
/// model: `trained` loads + trains on the profile store with the
/// historical serve-seed derivation, `analytic` uses the closed-form EA
/// tier. Shared by the single-loop and fleet paths so both serve the
/// exact same model bytes.
fn with_serve_model<T>(
    spec: &ScenarioSpec,
    profiles: Option<&Path>,
    run: impl FnOnce(&dyn stca_serve::EaModel) -> Result<T, StcaError>,
) -> Result<T, StcaError> {
    match spec.serve.predictor {
        PredictorKind::Trained => {
            let path = profiles.ok_or_else(|| {
                StcaError::usage("serve.predictor = \"trained\" needs a profile store (--profiles)")
            })?;
            let set = load_profiles(path)?;
            let template = set.rows[0].clone();
            // the historical trained-serve path trains with the serve seed
            let model = crate::ServingPredictor::new(
                train_predictor_seeded(spec, &set, spec.serve.seed),
                template,
            );
            run(&model)
        }
        PredictorKind::Analytic => run(&stca_serve::AnalyticEa::default()),
    }
}

/// Run the serving loop as the spec describes it. `profiles` supplies the
/// trained-predictor dataset (required when `serve.predictor = trained`);
/// `trace_error_path` is where in-flight traces dump if a fault unwinds
/// mid-run (defaults to `stca-trace-error.json`).
pub fn run_serve(
    spec: &ScenarioSpec,
    profiles: Option<&Path>,
    trace_error_path: Option<&Path>,
) -> Result<ServeReport, StcaError> {
    let cfg = stca_scenario::convert::serve_config(spec);
    let stream = stca_scenario::convert::synthetic_stream(spec);
    let n = spec.serve.requests;
    let _dump_hook = trace_dump_guard(cfg.trace.is_some(), trace_error_path);
    let plan = &spec.fault.plan;
    stca_obs::info!(
        "serving {n} requests at {}/s (deadline {}s)",
        spec.serve.rate,
        spec.serve.deadline_s
    );
    with_serve_model(spec, profiles, |model| {
        stca_serve::serve(&cfg, model, plan, &stream, n)
    })
}

/// Run the sharded serving fleet as the spec describes it
/// (`[serve.fleet] shards > 1`). Same contract as [`run_serve`], but the
/// report carries per-shard accounting and the router's reroute/shed
/// tallies; callers must check [`FleetReport::balanced`].
pub fn run_fleet(
    spec: &ScenarioSpec,
    profiles: Option<&Path>,
    trace_error_path: Option<&Path>,
) -> Result<FleetReport, StcaError> {
    let cfg = stca_scenario::convert::fleet_config(spec).ok_or_else(|| {
        StcaError::usage("run_fleet needs [serve.fleet] shards > 1 (use run_serve otherwise)")
    })?;
    let stream = stca_scenario::convert::synthetic_stream(spec);
    let n = spec.serve.requests;
    let _dump_hook = trace_dump_guard(cfg.base.trace.is_some(), trace_error_path);
    let plan = &spec.fault.plan;
    stca_obs::info!(
        "serving {n} requests at {}/s across {} shards ({} router)",
        spec.serve.rate,
        cfg.shards,
        cfg.router.name()
    );
    with_serve_model(spec, profiles, |model| {
        stca_serve::serve_fleet(&cfg, model, plan, &stream, n)
    })
}

/// Resolved artifact paths of a scenario run: every stage output lives
/// under one directory; unset `[artifacts]` names get stage defaults.
#[derive(Debug, Clone)]
pub struct RunPaths {
    /// The artifact directory (created by the runner).
    pub dir: PathBuf,
    /// The pipeline checkpoint (`scenario.ckpt.json`).
    pub scenario_ckpt: PathBuf,
    /// Per-condition profile checkpoint.
    pub profile_ckpt: PathBuf,
    /// The profile store (`[profile].out`, resolved).
    pub profiles: PathBuf,
    /// Dataset summary JSON.
    pub dataset: PathBuf,
    /// Train summary JSON.
    pub train: PathBuf,
    /// Explore grid checkpoint.
    pub explore_ckpt: PathBuf,
    /// Explore report text (the `stca explore` table).
    pub explore: PathBuf,
    /// Per-request decision log.
    pub decision_log: PathBuf,
    /// JSON health snapshot.
    pub health: PathBuf,
    /// Chrome trace JSON (when tracing is enabled).
    pub trace_json: Option<PathBuf>,
    /// SVG trace waterfall (when requested).
    pub trace_svg: Option<PathBuf>,
}

impl RunPaths {
    /// Resolve artifact paths for `spec`. `dir_override` (the
    /// `--artifacts` flag) beats `[artifacts].dir` beats
    /// `runs/<scenario name>`.
    pub fn resolve(spec: &ScenarioSpec, dir_override: Option<&Path>) -> RunPaths {
        let art = &spec.artifacts;
        let dir = match dir_override {
            Some(d) => d.to_path_buf(),
            None if !art.dir.is_empty() => PathBuf::from(&art.dir),
            None => PathBuf::from("runs").join(&spec.scenario.name),
        };
        let in_dir = |name: &str, fallback: &str| {
            if name.is_empty() {
                dir.join(fallback)
            } else {
                dir.join(name)
            }
        };
        RunPaths {
            scenario_ckpt: dir.join("scenario.ckpt.json"),
            profile_ckpt: dir.join("profile.ckpt.json"),
            profiles: in_dir(&spec.profile.out, "profiles.stca"),
            dataset: dir.join("dataset.json"),
            train: dir.join("train.json"),
            explore_ckpt: dir.join("explore.ckpt.json"),
            explore: dir.join("explore.txt"),
            decision_log: in_dir(&art.decision_log, "decisions.log"),
            health: in_dir(&art.health, "health.json"),
            trace_json: spec
                .trace
                .enabled
                .then(|| in_dir(&art.trace_json, "trace.json")),
            trace_svg: if art.trace_svg.is_empty() {
                None
            } else {
                Some(dir.join(&art.trace_svg))
            },
            dir,
        }
    }
}

/// What happened to one stage of a scenario run.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// Which stage.
    pub stage: Stage,
    /// FNV-1a hash of the stage artifact (the decision hash for serve).
    pub hash: u64,
    /// Whether the stage was skipped because the checkpoint already held
    /// its hash and the artifact was still on disk.
    pub resumed: bool,
    /// One human line about the stage result.
    pub detail: String,
}

/// The result of a scenario run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-stage outcomes, in pipeline order.
    pub stages: Vec<StageOutcome>,
    /// Combined hash over (spec fingerprint, stage hashes) — the one
    /// number two runs of the same scenario must agree on.
    pub scenario_hash: u64,
    /// Where the artifacts live.
    pub dir: PathBuf,
}

fn file_hash(path: &Path) -> Result<u64, StcaError> {
    let bytes = std::fs::read(path).map_err(|e| StcaError::io(path.display().to_string(), e))?;
    Ok(fnv1a(&bytes))
}

fn write_text(path: &Path, text: &str) -> Result<(), StcaError> {
    std::fs::write(path, text).map_err(|e| StcaError::io(path.display().to_string(), e))
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Run a scenario's pipeline. Stages execute in order; each records its
/// artifact hash in the scenario checkpoint so an interrupted or
/// truncated (`until`) run resumes without recomputing finished stages.
/// Bit-identical at any thread count.
pub fn run_scenario(
    spec: &ScenarioSpec,
    dir_override: Option<&Path>,
    until: Option<Stage>,
) -> Result<RunSummary, StcaError> {
    let paths = RunPaths::resolve(spec, dir_override);
    std::fs::create_dir_all(&paths.dir)
        .map_err(|e| StcaError::io(paths.dir.display().to_string(), e))?;
    let meta = format!(
        "scenario/{}/{:016x}",
        spec.scenario.name,
        spec.fingerprint()
    );
    let mut ckpt = Checkpoint::load_or_new(&paths.scenario_ckpt, &meta)?;
    let mut stages = Vec::new();
    for &stage in &spec.scenario.pipeline {
        if let Some(limit) = until {
            if stage > limit {
                break;
            }
        }
        let key = format!("stage.{}", stage.name());
        let artifact = match stage {
            Stage::Profile => Some(paths.profiles.clone()),
            Stage::Dataset => Some(paths.dataset.clone()),
            Stage::Train => Some(paths.train.clone()),
            Stage::Explore => Some(paths.explore.clone()),
            Stage::Serve => Some(paths.decision_log.clone()),
        };
        let cached = match (ckpt.get(&key), &artifact) {
            (Some(stca_obs::json::Value::String(s)), Some(path)) if path.exists() => {
                u64::from_str_radix(s, 16).ok()
            }
            _ => None,
        };
        if let Some(hash) = cached {
            stca_obs::info!("stage {} already done (hash {})", stage.name(), hex(hash));
            stages.push(StageOutcome {
                stage,
                hash,
                resumed: true,
                detail: "resumed from checkpoint".to_string(),
            });
            continue;
        }
        let outcome = run_stage(spec, &paths, stage)?;
        ckpt.put(key, stca_obs::json::Value::String(hex(outcome.hash)));
        ckpt.save()?;
        stages.push(outcome);
    }
    let mut words = vec![spec.fingerprint()];
    words.extend(stages.iter().map(|s| s.hash));
    let scenario_hash = stca_fault::checkpoint::fingerprint(words);
    Ok(RunSummary {
        stages,
        scenario_hash,
        dir: paths.dir,
    })
}

fn run_stage(
    spec: &ScenarioSpec,
    paths: &RunPaths,
    stage: Stage,
) -> Result<StageOutcome, StcaError> {
    let outcome = match stage {
        Stage::Profile => {
            let set = profile_conditions(spec, Some(&paths.profile_ckpt))?;
            storage::save(&set, &paths.profiles)?;
            StageOutcome {
                stage,
                hash: file_hash(&paths.profiles)?,
                resumed: false,
                detail: format!("{} profile rows -> {}", set.len(), paths.profiles.display()),
            }
        }
        Stage::Dataset => {
            let set = load_profiles(&paths.profiles)?;
            let mut ea_min = f64::INFINITY;
            let mut ea_max = f64::NEG_INFINITY;
            let mut ea_sum = 0.0;
            for row in &set.rows {
                ea_min = ea_min.min(row.ea);
                ea_max = ea_max.max(row.ea);
                ea_sum += row.ea;
            }
            let rows = set.len();
            let json = format!(
                "{{\"rows\":{rows},\"static_features\":{},\"trace_shape\":[{},{}],\
                 \"ea_min\":\"{:016x}\",\"ea_max\":\"{:016x}\",\"ea_mean\":\"{:016x}\",\
                 \"profiles_hash\":\"{}\"}}\n",
                set.rows[0].static_features.len(),
                set.rows[0].trace.rows(),
                set.rows[0].trace.cols(),
                ea_min.to_bits(),
                ea_max.to_bits(),
                (ea_sum / rows as f64).to_bits(),
                hex(file_hash(&paths.profiles)?),
            );
            write_text(&paths.dataset, &json)?;
            StageOutcome {
                stage,
                hash: file_hash(&paths.dataset)?,
                resumed: false,
                detail: format!(
                    "{rows} rows, EA in [{ea_min:.3}, {ea_max:.3}] -> {}",
                    paths.dataset.display()
                ),
            }
        }
        Stage::Train => {
            let set = load_profiles(&paths.profiles)?;
            let predictor = train_predictor(spec, &set);
            // fingerprint the trained model through a fixed probe: the
            // explorer's prediction at the center of the timeout grid
            let explorer = PolicyExplorer::new(
                &predictor,
                &set,
                spec.workloads.pair.0,
                spec.workloads.pair.1,
                spec.explore.utilization,
            );
            let mid = spec.explore.grid[spec.explore.grid.len() / 2];
            let (pa, pb) = explorer.predict_point(mid, mid);
            let resolved = match spec.train.model {
                ModelKind::Auto if set.len() >= 30 => "standard",
                ModelKind::Auto => "quick",
                kind => kind.name(),
            };
            let json = format!(
                "{{\"model\":\"{resolved}\",\"rows\":{},\"seed\":{},\
                 \"probe_timeout\":\"{:016x}\",\
                 \"probe_p95\":[\"{:016x}\",\"{:016x}\"]}}\n",
                set.len(),
                spec.train.seed,
                mid.to_bits(),
                pa.to_bits(),
                pb.to_bits(),
            );
            write_text(&paths.train, &json)?;
            StageOutcome {
                stage,
                hash: file_hash(&paths.train)?,
                resumed: false,
                detail: format!(
                    "{resolved} model on {} rows, probe p95 ({pa:.2}, {pb:.2})",
                    set.len()
                ),
            }
        }
        Stage::Explore => {
            let set = load_profiles(&paths.profiles)?;
            let predictor = train_predictor(spec, &set);
            let explorer = PolicyExplorer::new(
                &predictor,
                &set,
                spec.workloads.pair.0,
                spec.workloads.pair.1,
                spec.explore.utilization,
            );
            let result =
                explorer.explore_with_grid_checkpointed(&spec.explore.grid, &paths.explore_ckpt)?;
            let mut text = render_explore(spec, &result);
            text.push('\n');
            write_text(&paths.explore, &text)?;
            StageOutcome {
                stage,
                hash: file_hash(&paths.explore)?,
                resumed: false,
                detail: format!(
                    "chosen T=({:.2}, {:.2}), SLO intersection {}",
                    result.timeout_a, result.timeout_b, result.intersected
                ),
            }
        }
        Stage::Serve => {
            let profiles = matches!(spec.serve.predictor, PredictorKind::Trained)
                .then(|| paths.profiles.as_path());
            if stca_scenario::convert::fleet_config(spec).is_some() {
                let report = run_fleet(spec, profiles, paths.trace_json.as_deref())?;
                if !report.balanced() {
                    return Err(StcaError::invalid_input(format!(
                        "fleet accounting invariant violated: {report:?}"
                    )));
                }
                let mut log = report.decision_log.join("\n");
                log.push('\n');
                write_text(&paths.decision_log, &log)?;
                stca_serve::write_fleet_health(&paths.health, &report)?;
                if let Some(dump) = &report.trace_dump {
                    if let Some(path) = &paths.trace_json {
                        stca_trace::write_chrome_json(path, dump)?;
                    }
                    if let Some(path) = &paths.trace_svg {
                        stca_trace::write_svg(path, dump)?;
                    }
                }
                return Ok(StageOutcome {
                    stage,
                    // like the single loop: the fleet decision hash is the
                    // determinism contract (it covers every shard's log
                    // plus the router's reroute/shed lines)
                    hash: report.decision_hash,
                    resumed: false,
                    detail: format!(
                        "{} shards: {} completed / {} rerouted / {} router-shed, decision hash {:016x}",
                        report.shards.len(),
                        report.completed(),
                        report.rerouted,
                        report.router_shed,
                        report.decision_hash
                    ),
                });
            }
            let report = run_serve(spec, profiles, paths.trace_json.as_deref())?;
            if !report.accounting.balanced() {
                return Err(StcaError::invalid_input(format!(
                    "accounting invariant violated: {:?}",
                    report.accounting
                )));
            }
            let mut log = report.decision_log.join("\n");
            log.push('\n');
            write_text(&paths.decision_log, &log)?;
            stca_serve::write_health(&paths.health, &report)?;
            if let Some(dump) = &report.trace_dump {
                if let Some(path) = &paths.trace_json {
                    stca_trace::write_chrome_json(path, dump)?;
                }
                if let Some(path) = &paths.trace_svg {
                    stca_trace::write_svg(path, dump)?;
                }
            }
            StageOutcome {
                stage,
                // the decision hash is the serving determinism contract;
                // artifact bytes hash through it via the decision log
                hash: report.decision_hash,
                resumed: false,
                detail: format!(
                    "{} completed / {} shed, decision hash {:016x}",
                    report.accounting.completed,
                    report.accounting.shed(),
                    report.decision_hash
                ),
            }
        }
    };
    Ok(outcome)
}

/// Sanity-check a spec before running: stages that read the profile
/// store need it produced by this pipeline or already on disk.
pub fn check_runnable(spec: &ScenarioSpec, dir_override: Option<&Path>) -> Result<(), StcaError> {
    let pipeline = &spec.scenario.pipeline;
    if pipeline.is_empty() {
        return Err(StcaError::usage("scenario pipeline is empty"));
    }
    let needs_profiles = pipeline.iter().any(|s| {
        matches!(s, Stage::Dataset | Stage::Train | Stage::Explore)
            || (matches!(s, Stage::Serve) && matches!(spec.serve.predictor, PredictorKind::Trained))
    });
    let produces_profiles = pipeline.contains(&Stage::Profile);
    if needs_profiles && !produces_profiles {
        let paths = RunPaths::resolve(spec, dir_override);
        if !paths.profiles.exists() {
            return Err(StcaError::usage(format!(
                "pipeline needs profiles but has no profile stage and {} does not exist",
                paths.profiles.display()
            )));
        }
    }
    // a pair must exist in the workload catalog for profiling; the spec
    // setter already guaranteed that, so only cross-field rules live here
    let _ = WorkloadSpec::for_benchmark(spec.workloads.pair.0);
    Ok(())
}
