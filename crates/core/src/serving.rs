//! Serving-side adapter: the trained [`Predictor`] as an
//! [`stca_serve::EaModel`].
//!
//! The serving loop speaks flat feature rows (seeded synthetic streams,
//! `features[0]` = allocation ratio in `(0, 1]`); the predictor speaks
//! [`ProfileRow`]s (Eq.-2 scalars plus a counter trace). The adapter
//! bridges them with a *template row* taken from the training set: each
//! request clones the template and overwrites its leading static features
//! with the request's, so the deep forest sees inputs shaped exactly like
//! its training data while the request still controls the EA-relevant
//! conditions.
//!
//! The tier split mirrors the breaker contract:
//!
//! - [`EaModel::predict_primary`] → [`Predictor::predict_ea_strict`], the
//!   forest with failures *surfaced* (the breaker counts them and trips);
//! - [`EaModel::predict_degraded`] → [`Predictor::predict_ea_degraded`],
//!   the scalar-model → analytic tail that always answers.

use crate::predictor::Predictor;
use stca_fault::StcaError;
use stca_profiler::profile::ProfileRow;
use stca_serve::EaModel;

/// A trained predictor bound to a template profile row, serving flat
/// feature vectors.
pub struct ServingPredictor {
    predictor: Predictor,
    template: ProfileRow,
}

impl ServingPredictor {
    /// Bind `predictor` to `template` (typically the first row of the
    /// training set — any row with the right feature shape works).
    pub fn new(predictor: Predictor, template: ProfileRow) -> ServingPredictor {
        ServingPredictor {
            predictor,
            template,
        }
    }

    /// Build a profile row for one request: template conditions with the
    /// request's features written over the leading static slots, and the
    /// serving allocation ratio (`l_a / l_a'` in `(0, 1]`) converted to
    /// the profiler's `l_a' / l_a >= 1` convention.
    fn fill_row(&self, features: &[f64]) -> ProfileRow {
        let mut row = self.template.clone();
        if let Some(&ratio) = features.first() {
            if ratio.is_finite() && ratio > 0.0 {
                row.allocation_ratio = (1.0 / ratio).max(1.0);
            }
        }
        let n = row.static_features.len();
        for (slot, &v) in row.static_features.iter_mut().zip(features.iter().take(n)) {
            *slot = v;
        }
        row
    }
}

impl EaModel for ServingPredictor {
    fn predict_primary(&self, features: &[f64]) -> Result<f64, StcaError> {
        self.predictor.predict_ea_strict(&self.fill_row(features))
    }

    fn predict_degraded(&self, features: &[f64]) -> (f64, u8) {
        self.predictor.predict_ea_degraded(&self.fill_row(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ModelConfig;
    use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
    use stca_profiler::profile::ProfileSet;
    use stca_profiler::sampler::CounterOrdering;
    use stca_serve::{serve, ServeConfig, SyntheticStream};
    use stca_util::Rng64;
    use stca_workloads::{BenchmarkId, RuntimeCondition};

    fn trained() -> ServingPredictor {
        let mut rng = Rng64::new(5);
        let mut set = ProfileSet::new();
        for i in 0..4 {
            let cond =
                RuntimeCondition::random_pair(BenchmarkId::Kmeans, BenchmarkId::Bfs, &mut rng);
            let out = TestEnvironment::new(ExperimentSpec::quick(cond.clone(), 5 ^ i)).run();
            for (j, w) in out.workloads.iter().enumerate() {
                set.push(ProfileRow::from_outcome(
                    &cond,
                    j,
                    w,
                    CounterOrdering::Grouped,
                ));
            }
        }
        let template = set.rows[0].clone();
        let predictor = Predictor::train(&set, &ModelConfig::quick(1));
        ServingPredictor::new(predictor, template)
    }

    #[test]
    fn trained_model_serves_finite_predictions() {
        let m = trained();
        let ea = m.predict_primary(&[0.5, 0.7, 1.5]).expect("finite row");
        assert!((0.01..=2.0).contains(&ea));
        let (dea, tier) = m.predict_degraded(&[0.5, 0.7, 1.5]);
        assert!((0.01..=2.0).contains(&dea));
        assert!(tier == 1 || tier == 2);
    }

    #[test]
    fn nan_features_error_the_primary_but_not_the_degraded_tier() {
        let m = trained();
        assert!(m.predict_primary(&[f64::NAN, 0.5]).is_err());
        let (dea, _) = m.predict_degraded(&[f64::NAN, 0.5]);
        assert!(dea.is_finite());
    }

    #[test]
    fn serving_loop_runs_on_the_trained_predictor() {
        let m = trained();
        let stream = SyntheticStream {
            seed: 9,
            rate: 40.0,
            deadline_s: 2.0,
            n_features: 3,
        };
        let cfg = ServeConfig::default();
        let r = serve(&cfg, &m, &stca_fault::FaultPlan::none(), &stream, 300).expect("serves");
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.accounting.completed > 0);
    }
}
