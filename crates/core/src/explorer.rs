//! Model-driven policy exploration (§5.2 "Managing Short-Term Allocation").
//!
//! For a collocated pair the explorer evaluates a 5 x 5 grid of timeout
//! vectors (5 independent settings per workload = 25 combinations, as in the
//! paper) *entirely under the model* — no test-environment runs. For a
//! candidate timeout vector the model needs profile features; since the
//! candidate was never profiled, the explorer substitutes the features of
//! the profiled condition nearest in (utilization, timeout) space and
//! overwrites its static features with the candidate's — the standard way a
//! profile-driven model extrapolates to unprofiled policies.
//!
//! Policy selection implements the paper's SLO-driven matching: **step 1**,
//! per workload, keep timeout settings whose predicted response time is
//! within 5% of that workload's best; **step 2**, choose a grid point in
//! the intersection. When the intersection is empty the explorer falls back
//! to minimizing the maximum normalized response time — the balanced
//! compromise the matching rule is after.

use crate::predictor::Predictor;
use stca_cat::{PairLayout, ShortTermPolicy};
use stca_fault::checkpoint::{f64s_to_value, fingerprint_f64s, value_to_f64s, Checkpoint};
use stca_fault::StcaError;
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_workloads::BenchmarkId;
use std::path::Path;

/// Default timeout grid (5 settings per workload).
pub const TIMEOUT_GRID: [f64; 5] = [0.25, 0.75, 1.5, 3.0, 6.0];

/// SLO-matching tolerance (settings within 5% of the per-workload best).
pub const SLO_TOLERANCE: f64 = 0.05;

/// Result of exploring one pair.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// Chosen timeout for workload A.
    pub timeout_a: f64,
    /// Chosen timeout for workload B.
    pub timeout_b: f64,
    /// Predicted p95 response (normalized by expected service) for A at the
    /// chosen point.
    pub predicted_a: f64,
    /// Predicted normalized p95 response for B at the chosen point.
    pub predicted_b: f64,
    /// The full predicted grid: `grid[i][j]` = (A's, B's) normalized p95
    /// at `(TIMEOUT_GRID[i], TIMEOUT_GRID[j])`.
    pub grid: Vec<Vec<(f64, f64)>>,
    /// Whether the SLO intersection was non-empty (step 2 succeeded
    /// without falling back to minimax).
    pub intersected: bool,
}

impl ExplorationResult {
    /// The chosen policies for the pair on a layout.
    pub fn policies(&self, layout: &PairLayout) -> Vec<ShortTermPolicy> {
        let (pa, pb) = layout.policies(self.timeout_a, self.timeout_b);
        vec![pa, pb]
    }
}

/// Model-driven policy explorer for one collocated pair.
pub struct PolicyExplorer<'a> {
    predictor: &'a Predictor,
    /// Profiles of this pair (feature source for unprofiled candidates).
    profiles: &'a ProfileSet,
    benchmark_a: BenchmarkId,
    benchmark_b: BenchmarkId,
    /// Utilization the policy must serve (Figure 8 uses 90%).
    utilization: f64,
}

impl<'a> PolicyExplorer<'a> {
    /// Create an explorer.
    pub fn new(
        predictor: &'a Predictor,
        profiles: &'a ProfileSet,
        benchmark_a: BenchmarkId,
        benchmark_b: BenchmarkId,
        utilization: f64,
    ) -> Self {
        assert!(!profiles.is_empty(), "explorer needs profile features");
        PolicyExplorer {
            predictor,
            profiles,
            benchmark_a,
            benchmark_b,
            utilization,
        }
    }

    /// Nearest profiled row in (own util, own timeout, other util, other
    /// timeout) space, with static features overwritten by the candidate's.
    fn synthesize_row(&self, own_timeout: f64, other_timeout: f64) -> ProfileRow {
        let target = [
            self.utilization,
            own_timeout,
            self.utilization,
            other_timeout,
        ];
        let nearest = self
            .profiles
            .rows
            .iter()
            .min_by(|a, b| {
                let d = |r: &ProfileRow| -> f64 {
                    r.static_features
                        .iter()
                        .zip(&target)
                        .map(|(x, t)| {
                            // timeouts span 0..6, utils 0.25..0.95: scale to
                            // comparable ranges
                            let scale = if (x - t).abs() > 1.0 { 6.0 } else { 1.0 };
                            ((x - t) / scale).powi(2)
                        })
                        .sum()
                };
                d(a).partial_cmp(&d(b)).expect("finite distances")
            })
            .expect("nonempty profiles");
        let mut row = nearest.clone();
        row.static_features[0] = self.utilization;
        row.static_features[1] = own_timeout;
        if row.static_features.len() >= 4 {
            row.static_features[2] = self.utilization;
            row.static_features[3] = other_timeout;
        }
        row
    }

    /// Predict A's and B's normalized p95 at one timeout vector.
    pub fn predict_point(&self, timeout_a: f64, timeout_b: f64) -> (f64, f64) {
        let row_a = self.synthesize_row(timeout_a, timeout_b);
        let row_b = self.synthesize_row(timeout_b, timeout_a);
        let pred_a = self.predictor.predict_response(&row_a, self.benchmark_a);
        let pred_b = self.predictor.predict_response(&row_b, self.benchmark_b);
        let es_a = stca_workloads::WorkloadSpec::for_benchmark(self.benchmark_a).mean_service_time;
        let es_b = stca_workloads::WorkloadSpec::for_benchmark(self.benchmark_b).mean_service_time;
        (pred_a.p95_response / es_a, pred_b.p95_response / es_b)
    }

    /// Explore the default 5x5 grid and select per the SLO matching rule.
    pub fn explore(&self) -> ExplorationResult {
        self.explore_with_grid(&TIMEOUT_GRID)
    }

    /// Explore an arbitrary timeout grid (the grid-granularity ablation
    /// compares 5-point and finer grids). Grid cells are evaluated in
    /// parallel; prediction is pure given the candidate point, so the
    /// result is identical at any thread count.
    pub fn explore_with_grid(&self, grid_points: &[f64]) -> ExplorationResult {
        assert!(!grid_points.is_empty());
        stca_obs::time_scope!("core.explorer.explore_seconds");
        let n = grid_points.len();
        let cells = stca_exec::par_map_range(n * n, |k| {
            self.predict_point(grid_points[k / n], grid_points[k % n])
        });
        stca_obs::counter("core.explorer.candidates_evaluated_total").add((n * n) as u64);
        self.select_from_cells(grid_points, cells)
    }

    /// [`explore_with_grid`] with crash recovery: each grid cell's
    /// prediction is persisted to a [`Checkpoint`] at `path` as soon as its
    /// batch (one grid row) completes. A re-run after a kill reloads the
    /// finished cells and computes only the remainder, yielding a result
    /// bit-identical to an uninterrupted run. The checkpoint meta
    /// fingerprints the pair, utilization, grid, and profile set, so a
    /// checkpoint from different inputs is discarded rather than mixed in.
    ///
    /// [`explore_with_grid`]: PolicyExplorer::explore_with_grid
    pub fn explore_with_grid_checkpointed(
        &self,
        grid_points: &[f64],
        path: &Path,
    ) -> Result<ExplorationResult, StcaError> {
        if grid_points.is_empty() {
            return Err(StcaError::invalid_input("empty timeout grid"));
        }
        stca_obs::time_scope!("core.explorer.explore_seconds");
        let n = grid_points.len();
        let meta = self.checkpoint_meta(grid_points);
        let mut ckpt = Checkpoint::load_or_new(path, &meta)?;
        let mut cells: Vec<Option<(f64, f64)>> = (0..n * n)
            .map(|k| {
                let pair = value_to_f64s(ckpt.get(&format!("cell.{k}"))?)?;
                (pair.len() == 2).then(|| (pair[0], pair[1]))
            })
            .collect();
        let resumed = cells.iter().filter(|c| c.is_some()).count();
        if resumed > 0 {
            stca_obs::info!(
                "explorer resuming: {resumed}/{} grid cells from {}",
                n * n,
                path.display()
            );
        }
        // compute the missing cells one grid row at a time, checkpointing
        // after each row so a kill loses at most one row of predictions
        for i in 0..n {
            let missing: Vec<usize> = (i * n..(i + 1) * n)
                .filter(|&k| cells[k].is_none())
                .collect();
            if missing.is_empty() {
                continue;
            }
            let computed = stca_exec::par_map_indexed(&missing, |_, &k| {
                self.predict_point(grid_points[k / n], grid_points[k % n])
            });
            stca_obs::counter("core.explorer.candidates_evaluated_total").add(missing.len() as u64);
            for (&k, cell) in missing.iter().zip(computed) {
                ckpt.put(format!("cell.{k}"), f64s_to_value(&[cell.0, cell.1]));
                cells[k] = Some(cell);
            }
            ckpt.save()?;
        }
        let cells: Vec<(f64, f64)> = cells
            .into_iter()
            .map(|c| c.expect("every cell computed or resumed"))
            .collect();
        Ok(self.select_from_cells(grid_points, cells))
    }

    /// Meta string tying a checkpoint to its exact inputs.
    fn checkpoint_meta(&self, grid_points: &[f64]) -> String {
        let mut words: Vec<f64> = vec![self.utilization];
        words.extend_from_slice(grid_points);
        for row in &self.profiles.rows {
            words.push(row.ea);
            words.extend_from_slice(&row.static_features);
        }
        format!(
            "explore/{}-{}/u{:.4}/g{}/p{}/{:016x}",
            self.benchmark_a,
            self.benchmark_b,
            self.utilization,
            grid_points.len(),
            self.profiles.len(),
            fingerprint_f64s(&words)
        )
    }

    /// SLO matching (step 1 + step 2) over a fully evaluated grid.
    fn select_from_cells(&self, grid_points: &[f64], cells: Vec<(f64, f64)>) -> ExplorationResult {
        let n = grid_points.len();
        let grid: Vec<Vec<(f64, f64)>> = cells.chunks(n).map(|row| row.to_vec()).collect();
        // step 1: per-workload near-best sets
        let best_a = grid
            .iter()
            .flatten()
            .map(|&(a, _)| a)
            .fold(f64::INFINITY, f64::min);
        let best_b = grid
            .iter()
            .flatten()
            .map(|&(_, b)| b)
            .fold(f64::INFINITY, f64::min);
        let mut intersection: Vec<(usize, usize)> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                let (a, b) = grid[i][j];
                if a <= best_a * (1.0 + SLO_TOLERANCE) && b <= best_b * (1.0 + SLO_TOLERANCE) {
                    intersection.push((i, j));
                }
            }
        }
        let intersected = !intersection.is_empty();
        // candidates outside the SLO intersection are pruned from step 2
        stca_obs::counter("core.explorer.candidates_pruned_total")
            .add((n * n - intersection.len()) as u64);
        if intersected {
            stca_obs::counter("core.explorer.slo_intersections_total").inc();
        } else {
            stca_obs::counter("core.explorer.minimax_fallbacks_total").inc();
        }
        stca_obs::debug!(
            "explorer {}({}) at util {:.2}: {} candidates, {} in SLO intersection",
            self.benchmark_a,
            self.benchmark_b,
            self.utilization,
            n * n,
            intersection.len()
        );
        let (bi, bj) = if intersected {
            // within the intersection, prefer the point with the lowest sum
            intersection
                .into_iter()
                .min_by(|&(i1, j1), &(i2, j2)| {
                    let s1 = grid[i1][j1].0 + grid[i1][j1].1;
                    let s2 = grid[i2][j2].0 + grid[i2][j2].1;
                    s1.partial_cmp(&s2).expect("finite")
                })
                .expect("nonempty intersection")
        } else {
            // step-2 fallback: minimax over normalized responses
            let mut best = (0, 0);
            let mut best_score = f64::INFINITY;
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                for j in 0..n {
                    let (a, b) = grid[i][j];
                    let score = (a / best_a).max(b / best_b);
                    if score < best_score {
                        best_score = score;
                        best = (i, j);
                    }
                }
            }
            best
        };
        ExplorationResult {
            timeout_a: grid_points[bi],
            timeout_b: grid_points[bj],
            predicted_a: grid[bi][bj].0,
            predicted_b: grid[bi][bj].1,
            grid,
            intersected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ModelConfig;
    use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
    use stca_profiler::profile::ProfileRow;
    use stca_profiler::sampler::CounterOrdering;
    use stca_util::Rng64;
    use stca_workloads::RuntimeCondition;

    fn build_explorer_fixture() -> (ProfileSet, Predictor) {
        let mut rng = Rng64::new(77);
        let mut set = ProfileSet::new();
        for i in 0..6 {
            let cond =
                RuntimeCondition::random_pair(BenchmarkId::Redis, BenchmarkId::Social, &mut rng);
            let out = TestEnvironment::new(ExperimentSpec::quick(cond.clone(), 500 + i)).run();
            for (j, w) in out.workloads.iter().enumerate() {
                set.push(ProfileRow::from_outcome(
                    &cond,
                    j,
                    w,
                    CounterOrdering::Grouped,
                ));
            }
        }
        let predictor = Predictor::train(&set, &ModelConfig::quick(5));
        (set, predictor)
    }

    #[test]
    fn explore_returns_grid_and_choice() {
        let (profiles, predictor) = build_explorer_fixture();
        let explorer = PolicyExplorer::new(
            &predictor,
            &profiles,
            BenchmarkId::Redis,
            BenchmarkId::Social,
            0.9,
        );
        let result = explorer.explore();
        assert_eq!(result.grid.len(), 5);
        assert!(TIMEOUT_GRID.contains(&result.timeout_a));
        assert!(TIMEOUT_GRID.contains(&result.timeout_b));
        assert!(result.predicted_a > 0.0);
        assert!(result.predicted_b > 0.0);
        // the chosen point's predictions match its grid cell
        let i = TIMEOUT_GRID
            .iter()
            .position(|&t| t == result.timeout_a)
            .expect("on grid");
        let j = TIMEOUT_GRID
            .iter()
            .position(|&t| t == result.timeout_b)
            .expect("on grid");
        assert_eq!(result.grid[i][j], (result.predicted_a, result.predicted_b));
    }

    #[test]
    fn checkpointed_explore_is_bit_identical_and_resumable() {
        let (profiles, predictor) = build_explorer_fixture();
        let explorer = PolicyExplorer::new(
            &predictor,
            &profiles,
            BenchmarkId::Redis,
            BenchmarkId::Social,
            0.9,
        );
        let plain = explorer.explore_with_grid(&TIMEOUT_GRID);
        let path =
            std::env::temp_dir().join(format!("stca-explore-ckpt-{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();

        let grids_match = |a: &ExplorationResult, b: &ExplorationResult| {
            assert_eq!(a.timeout_a, b.timeout_a);
            assert_eq!(a.timeout_b, b.timeout_b);
            for (ra, rb) in a.grid.iter().zip(&b.grid) {
                for (ca, cb) in ra.iter().zip(rb) {
                    assert_eq!(ca.0.to_bits(), cb.0.to_bits());
                    assert_eq!(ca.1.to_bits(), cb.1.to_bits());
                }
            }
        };

        // fresh checkpointed run matches the plain path bit-for-bit
        let full = explorer
            .explore_with_grid_checkpointed(&TIMEOUT_GRID, &path)
            .expect("fresh run");
        grids_match(&plain, &full);

        // simulate a mid-run kill: drop half the persisted cells, resume
        let text = std::fs::read_to_string(&path).expect("checkpoint exists");
        let mut doc = stca_obs::json::Value::parse(&text).expect("valid json");
        if let stca_obs::json::Value::Object(ref mut top) = doc {
            if let Some(stca_obs::json::Value::Object(entries)) = top.get_mut("entries") {
                let keys: Vec<String> = entries.keys().skip(12).cloned().collect();
                for k in keys {
                    entries.remove(&k);
                }
                assert_eq!(entries.len(), 12, "partial checkpoint");
            }
        }
        std::fs::write(&path, doc.to_string()).expect("write partial");
        let resumed = explorer
            .explore_with_grid_checkpointed(&TIMEOUT_GRID, &path)
            .expect("resumed run");
        grids_match(&plain, &resumed);

        // a third run resumes everything without recomputation
        let again = explorer
            .explore_with_grid_checkpointed(&TIMEOUT_GRID, &path)
            .expect("fully resumed run");
        grids_match(&plain, &again);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn policies_use_chosen_timeouts() {
        let layout = PairLayout::symmetric(2, 2);
        let r = ExplorationResult {
            timeout_a: 0.75,
            timeout_b: 3.0,
            predicted_a: 1.0,
            predicted_b: 1.0,
            grid: vec![],
            intersected: true,
        };
        let ps = r.policies(&layout);
        assert_eq!(ps[0].timeout_ratio, 0.75);
        assert_eq!(ps[1].timeout_ratio, 3.0);
        assert_eq!(ps[0].default, layout.default_a());
        assert_eq!(ps[1].boosted, layout.boosted_b());
    }
}
