//! `stca` — command-line front end for the short-term cache allocation
//! toolkit.
//!
//! ```text
//! stca characterize                                  Table-1 style benchmark characterization
//! stca profile --pair redis,social -n 10 -o p.stca   profile a collocation, save Eq.-2 rows
//! stca predict --profiles p.stca --pair redis,social --util 0.9 --timeouts 1.5,1.5
//! stca explore --profiles p.stca --pair redis,social --util 0.9
//! stca scenario run examples/scenarios/serve-heavy.stca
//! ```
//!
//! Every subcommand builds its configuration through one spine: a
//! [`stca_scenario::ScenarioSpec`] starts from defaults, an optional
//! `--spec FILE` scenario file layers on top, and flags override last —
//! *flag beats spec beats default*. `stca scenario run` executes a whole
//! spec as a checkpointed profile → dataset → train → explore → serve
//! pipeline.
//!
//! Every subcommand is deterministic given its seeds — including under an
//! injected fault plan (`--fault-plan` / `STCA_FAULT_PLAN`) and at any
//! `--threads`.
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error.

#![warn(clippy::unwrap_used)]

use stca_cachesim::Counter;
use stca_cat::AllocationSetting;
use stca_core::pipeline;
use stca_core::PolicyExplorer;
use stca_fault::{FaultPlan, StcaError};
use stca_profiler::storage;
use stca_scenario::{ScenarioSpec, SpecValue, Stage};
use stca_util::{Args, SpecError};
use stca_workloads::{AccessGenerator, BenchmarkId, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
stca — short-term cache allocation toolkit

USAGE:
  stca characterize [--accesses N]
  stca profile --pair A,B [-n CONDITIONS] [-o FILE] [--seed N]
  stca predict --profiles FILE --pair A,B --util U --timeouts TA,TB [--seed N]
  stca explore --profiles FILE --pair A,B [--util U] [--seed N]
  stca serve [--requests N] [--rate R] [--deadline S] [--seed N]
  stca scenario check FILE
  stca scenario run FILE [--artifacts DIR] [--until STAGE]
  stca trace report FILE [--decision-log FILE]
  stca trace check FILE...

Benchmarks: jac knn kmeans spkmeans spstream bfs social redis

Scenario files (stca scenario): one declarative spec drives the whole
profile -> dataset -> train -> explore -> serve pipeline (see the
\"Scenario files\" section of the README for the format):
  check FILE            parse + validate strictly (unknown keys exit 2)
                        and print the canonical resolved form
  run FILE              run the spec's pipeline; each stage checkpoints
                        into the artifact dir, a re-run resumes, and the
                        result is bit-identical at any --threads
  --artifacts DIR       artifact dir (default [artifacts].dir, else runs/<name>)
  --until STAGE         stop after STAGE (profile|dataset|train|explore|serve)

Spec layering (any subcommand): --spec FILE starts from a scenario file
instead of built-in defaults; flags override spec keys, spec keys
override defaults.

Serving (stca serve): replay a seeded arrival stream through the online
control loop (admission queue -> predict -> STAP decide -> drain):
  --requests N          requests to replay (default 100000)
  --rate R              mean arrival rate, requests per virtual second (200)
  --deadline S          per-request deadline budget, virtual seconds (0.5)
  --servers K           control-loop workers (2)
  --queue-cap N         admission queue capacity (64)
  --overload P          full-queue policy: shed-newest | shed-oldest | block
  --hysteresis K        consecutive agreeing decisions before a policy
                        change is applied (4)
  --breaker-threshold N consecutive primary-predictor failures that open
                        the circuit breaker (5)
  --breaker-cooldown S  open-state cooldown before half-open probes (1.0)
  --drain-grace S       drain window after the last arrival (5.0)
  --shards N            serve through a fleet of N shards (default 1: the
                        single loop); each shard owns its own queue,
                        breaker, hysteresis, and seeded predictor state
  --router KIND         shard router: rendezvous | least-loaded
  --reroute-max N       failover hops before the router sheds a request
                        flushed by a shard crash (2)
  --profiles FILE       serve with a predictor trained on FILE (default:
                        the analytic EA tier, no training required)
  --pair A,B            required with --profiles (training pair)
  --decision-log FILE   write the per-request decision log
  --health-out FILE     write a JSON health snapshot (report + serve.*)

Adaptation (stca serve): the drift-aware model lifecycle — per-shard
drift detection over EA residuals, warm-start candidate retrain, shadow
scoring, guarded promotion, automatic rollback. Off by default; any
other --adapt-* flag switches it on (bit-identical at any --threads):
  --adapt BOOL          enable/disable the lifecycle explicitly
  --adapt-epoch S       virtual seconds per lifecycle epoch (5.0)
  --adapt-window N      residual window size = retraining rows (256)
  --adapt-min-samples N observations before drift can fire (64)
  --adapt-threshold X   drift score that triggers a retrain (4.0)
  --adapt-shadow N      requests a candidate is shadow-scored on (64)
  --adapt-agree-tol X   EA tolerance for a shadow agreement (0.25)
  --adapt-agreement F   min shadow agreement fraction to promote (0.6)
  --adapt-guard N       post-promotion guard-window requests (128)
  --adapt-guard-band X  allowed residual regression factor (1.5)
  --adapt-history N     bounded model-version history depth (4)
  --adapt-budget S      virtual retrain budget; slower retrains abort (1.0)

Tracing (stca serve): any --trace-* flag enables the per-request flight
recorder (error-class traces always retained, completions head-sampled;
bit-identical at any --threads; the decision hash is unchanged):
  --trace-out FILE      write Chrome trace_event JSON (open in Perfetto
                        or about:tracing); also the error-dump target
  --trace-svg FILE      write an SVG waterfall of the retained traces
  --trace-sample N      head-sample 1 in N completed requests (64)
  --trace-ring N        sampled-completion ring capacity (256)

Trace artifacts (stca trace): consume dumps written by --trace-out:
  report FILE           per-stage latency tables, disposition counts, and
                        slowest retained requests; with --decision-log,
                        cross-check the retention invariant (every shed /
                        deadline-exceeded / drained decision has a trace)
  check FILE...         schema-validate trace JSON (exit 1 on the first
                        invalid file)

Parallelism (any subcommand):
  --threads N           worker threads (default: STCA_THREADS, else all cores);
                        results are identical at any thread count

Fault tolerance (profile/explore):
  --fault-plan SPEC     inject deterministic faults (presets: none, ci-default,
                        heavy; overrides: seed=, crash=, timeout=, dropout=,
                        corrupt=, stuck=, noise=, latency=); default:
                        STCA_FAULT_PLAN, else none
  --max-retries N       retry budget per experiment (default 3)
  --checkpoint FILE     persist finished work units (profile conditions,
                        explore grid cells); a re-run resumes from FILE and
                        produces bit-identical output

Observability (any subcommand):
  --metrics-out FILE    write a JSON metrics report and print a summary table
  STCA_LOG=info         enable logging (e.g. STCA_LOG=info,queuesim=trace)
";

/// Flags every subcommand understands but the spec layer does not own:
/// they configure the process (threads, metrics, logging) or name files
/// that feed the run rather than describe it.
const CLI_ONLY_FLAGS: [&str; 4] = ["spec", "checkpoint", "threads", "metrics-out"];

/// One subcommand's flag surface: `(flag, section, key)` mappings onto
/// the spec. Flags are applied in table order after the optional `--spec`
/// file, so they override it (and a later table entry overrides an
/// earlier one, which keeps `-o` winning over `--out`).
struct FlagMap {
    map: &'static [(&'static str, &'static str, &'static str)],
    /// Flags the subcommand handles itself after the table (e.g. the
    /// compound `--timeouts TA,TB`).
    extra: &'static [&'static str],
}

impl FlagMap {
    /// Build the subcommand's spec: defaults, then `--spec FILE`, then
    /// flag overrides — the one precedence rule of the CLI.
    fn build(&self, args: &Args) -> Result<ScenarioSpec, StcaError> {
        let mut spec = match args.get("spec") {
            Some(path) => stca_scenario::load_file(Path::new(path))?,
            None => ScenarioSpec::default(),
        };
        for (flag, _) in args.iter() {
            let known = self.map.iter().any(|(f, _, _)| *f == flag)
                || self.extra.contains(&flag)
                || CLI_ONLY_FLAGS.contains(&flag)
                || flag == "fault-plan";
            if !known {
                return Err(StcaError::usage(format!("unknown flag --{flag}")));
            }
        }
        for &(flag, section, key) in self.map {
            if let Some(v) = args.get(flag) {
                set_flag(&mut spec, flag, section, key, v)?;
            }
        }
        // fault plan: flag beats spec beats STCA_FAULT_PLAN beats none
        match args.get("fault-plan") {
            Some(v) => set_flag(&mut spec, "fault-plan", "fault", "plan", v)?,
            None => {
                if spec.fault.plan == FaultPlan::none() {
                    spec.fault.plan = FaultPlan::from_env()?;
                }
            }
        }
        Ok(spec)
    }
}

fn set_flag(
    spec: &mut ScenarioSpec,
    flag: &str,
    section: &str,
    key: &str,
    value: &str,
) -> Result<(), StcaError> {
    spec.set(section, key, &SpecValue::scalar(value))
        .map_err(|kind| SpecError::new(format!("flag --{flag}"), kind))?;
    Ok(())
}

/// Positional-free subcommands reject stray operands the old parser
/// silently mis-paired.
fn require_flag_unless_spec(args: &Args, flag: &str) -> Result<(), StcaError> {
    if args.get("spec").is_none() {
        args.require(flag)?;
    }
    Ok(())
}

fn cmd_characterize(args: &Args) -> Result<(), StcaError> {
    let spec = FlagMap {
        map: &[("accesses", "workloads", "accesses")],
        extra: &[],
    }
    .build(args)?;
    let n = spec.workloads.accesses;
    let config = pipeline::hierarchy_config(&spec);
    let ways = config.llc.ways;
    println!(
        "{:>10} {:>16} {:>14} {:>20}",
        "benchmark", "footprint(ways)", "LLC MPKA(2w)", "full-cache speedup"
    );
    for id in BenchmarkId::ALL {
        let wspec = WorkloadSpec::for_benchmark(id);
        let run = |alloc: AllocationSetting| -> Result<(f64, f64), StcaError> {
            let mut hier = stca_cachesim::Hierarchy::new(config, 42);
            let cbm = alloc.to_cbm(ways).map_err(|e| StcaError::InvalidInput {
                what: format!("allocation does not fit the LLC: {e}"),
            })?;
            hier.set_llc_mask(0, cbm);
            let mut gen =
                AccessGenerator::new(wspec.pattern_for(&config), 0, wspec.store_fraction, 42);
            for _ in 0..n / 2 {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
            }
            let before = hier.counters_of(0);
            for _ in 0..n {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
            }
            let c = hier.counters_of(0).delta(&before);
            Ok((
                c.get(Counter::LlcMisses) as f64 * 1000.0 / n as f64,
                c.get(Counter::Cycles) as f64 / n as f64,
            ))
        };
        let (mpka, cpa_private) = run(AllocationSetting::new(0, 2))?;
        let (_, cpa_full) = run(AllocationSetting::new(0, ways))?;
        println!(
            "{:>10} {:>16.2} {:>14.1} {:>19.2}x",
            id.short_name(),
            wspec.footprint_ways(&config),
            mpka,
            cpa_private / cpa_full
        );
    }
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), StcaError> {
    require_flag_unless_spec(args, "pair")?;
    let spec = FlagMap {
        map: &[
            ("pair", "workloads", "pair"),
            ("n", "profile", "conditions"),
            ("out", "profile", "out"),
            ("o", "profile", "out"),
            ("seed", "profile", "seed"),
            ("max-retries", "fault", "max_retries"),
        ],
        extra: &[],
    }
    .build(args)?;
    let pair = spec.workloads.pair;
    let n = spec.profile.conditions;
    stca_obs::info!("profiling {}({}) over {n} conditions", pair.0, pair.1);
    let set = pipeline::profile_conditions(&spec, args.path("checkpoint").as_deref())?;
    let out = PathBuf::from(&spec.profile.out);
    storage::save(&set, &out)?;
    println!("wrote {} profile rows to {}", set.len(), out.display());
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), StcaError> {
    for flag in ["pair", "profiles", "util", "timeouts"] {
        require_flag_unless_spec(args, flag)?;
    }
    let mut spec = FlagMap {
        map: &[
            ("pair", "workloads", "pair"),
            ("profiles", "profile", "out"),
            ("util", "predict", "utilization"),
            ("seed", "train", "seed"),
        ],
        extra: &["timeouts"],
    }
    .build(args)?;
    if let Some(timeouts) = args.get("timeouts") {
        let (ta, tb) = timeouts
            .split_once(',')
            .ok_or_else(|| StcaError::usage(format!("expected TA,TB, got {timeouts:?}")))?;
        set_flag(&mut spec, "timeouts", "predict", "timeout_a", ta.trim())?;
        set_flag(&mut spec, "timeouts", "predict", "timeout_b", tb.trim())?;
    }
    let pair = spec.workloads.pair;
    let (util, ta, tb) = (
        spec.predict.utilization,
        spec.predict.timeout_a,
        spec.predict.timeout_b,
    );
    let profiles = pipeline::load_profiles(Path::new(&spec.profile.out))?;
    let predictor = pipeline::train_predictor(&spec, &profiles);
    // ground the candidate on the nearest profiled condition via the explorer
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, util);
    let (pa, pb) = explorer.predict_point(ta, tb);
    let es_a = WorkloadSpec::for_benchmark(pair.0).mean_service_time;
    let es_b = WorkloadSpec::for_benchmark(pair.1).mean_service_time;
    println!("predicted p95 response at util {util:.2}, T=({ta:.2},{tb:.2}):");
    println!(
        "  {:>8}: {:.4}s ({:.2}x expected service)",
        pair.0.short_name(),
        pa * es_a,
        pa
    );
    println!(
        "  {:>8}: {:.4}s ({:.2}x expected service)",
        pair.1.short_name(),
        pb * es_b,
        pb
    );
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), StcaError> {
    for flag in ["pair", "profiles"] {
        require_flag_unless_spec(args, flag)?;
    }
    let spec = FlagMap {
        map: &[
            ("pair", "workloads", "pair"),
            ("profiles", "profile", "out"),
            ("util", "explore", "utilization"),
            ("seed", "train", "seed"),
        ],
        extra: &[],
    }
    .build(args)?;
    let pair = spec.workloads.pair;
    let profiles = pipeline::load_profiles(Path::new(&spec.profile.out))?;
    let predictor = pipeline::train_predictor(&spec, &profiles);
    let explorer = PolicyExplorer::new(
        &predictor,
        &profiles,
        pair.0,
        pair.1,
        spec.explore.utilization,
    );
    let result = match args.path("checkpoint") {
        Some(path) => explorer.explore_with_grid_checkpointed(&spec.explore.grid, &path)?,
        None => explorer.explore_with_grid(&spec.explore.grid),
    };
    println!("{}", pipeline::render_explore(&spec, &result));
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), StcaError> {
    if args.get("profiles").is_some() {
        // --pair is parsed for interface symmetry with predict/explore
        // (training data already fixes the pair); require it so the
        // trained path has a stable CLI shape
        require_flag_unless_spec(args, "pair")?;
    }
    let mut spec = FlagMap {
        map: &[
            ("pair", "workloads", "pair"),
            ("profiles", "profile", "out"),
            ("requests", "serve", "requests"),
            ("rate", "serve", "rate"),
            ("deadline", "serve", "deadline_s"),
            ("seed", "serve", "seed"),
            ("servers", "serve", "servers"),
            ("queue-cap", "serve", "queue_capacity"),
            ("overload", "serve", "overload"),
            ("hysteresis", "serve", "hysteresis_k"),
            ("breaker-threshold", "serve", "breaker_threshold"),
            ("breaker-cooldown", "serve", "breaker_cooldown_s"),
            ("drain-grace", "serve", "drain_grace_s"),
            ("shards", "serve.fleet", "shards"),
            ("router", "serve.fleet", "router"),
            ("reroute-max", "serve.fleet", "reroute_max"),
            ("adapt-epoch", "serve.adapt", "epoch_s"),
            ("adapt-window", "serve.adapt", "window"),
            ("adapt-min-samples", "serve.adapt", "min_samples"),
            ("adapt-threshold", "serve.adapt", "drift_threshold"),
            ("adapt-shadow", "serve.adapt", "shadow_requests"),
            ("adapt-agree-tol", "serve.adapt", "agree_tol"),
            ("adapt-agreement", "serve.adapt", "promote_agreement"),
            ("adapt-guard", "serve.adapt", "guard_requests"),
            ("adapt-guard-band", "serve.adapt", "guard_band"),
            ("adapt-history", "serve.adapt", "history"),
            ("adapt-budget", "serve.adapt", "retrain_budget_s"),
            ("adapt", "serve.adapt", "enabled"),
            ("decision-log", "artifacts", "decision_log"),
            ("health-out", "artifacts", "health"),
            ("trace-out", "artifacts", "trace_json"),
            ("trace-svg", "artifacts", "trace_svg"),
            ("trace-sample", "trace", "sample_every"),
            ("trace-ring", "trace", "ring_capacity"),
        ],
        extra: &[],
    }
    .build(args)?;
    if args.get("profiles").is_some() {
        set_flag(&mut spec, "profiles", "serve", "predictor", "trained")?;
    }
    let any_trace_flag = ["trace-out", "trace-svg", "trace-sample", "trace-ring"]
        .iter()
        .any(|f| args.get(f).is_some());
    if any_trace_flag {
        set_flag(&mut spec, "trace-out", "trace", "enabled", "true")?;
    }
    // any tuning flag switches the lifecycle on, mirroring --trace-*;
    // an explicit --adapt true/false still wins (applied above, and
    // re-applied here so it beats the implicit enable)
    let any_adapt_flag = [
        "adapt-epoch",
        "adapt-window",
        "adapt-min-samples",
        "adapt-threshold",
        "adapt-shadow",
        "adapt-agree-tol",
        "adapt-agreement",
        "adapt-guard",
        "adapt-guard-band",
        "adapt-history",
        "adapt-budget",
    ]
    .iter()
    .any(|f| args.get(f).is_some());
    if any_adapt_flag && args.get("adapt").is_none() {
        set_flag(&mut spec, "adapt", "serve.adapt", "enabled", "true")?;
    }
    let trace_out =
        (!spec.artifacts.trace_json.is_empty()).then(|| PathBuf::from(&spec.artifacts.trace_json));
    let trace_svg =
        (!spec.artifacts.trace_svg.is_empty()).then(|| PathBuf::from(&spec.artifacts.trace_svg));
    let profiles_path = matches!(spec.serve.predictor, stca_scenario::PredictorKind::Trained)
        .then(|| PathBuf::from(&spec.profile.out));
    let n = spec.serve.requests;
    if stca_scenario::convert::fleet_config(&spec).is_some() {
        return cmd_serve_fleet(
            &spec,
            profiles_path.as_deref(),
            trace_out.as_deref(),
            trace_svg.as_deref(),
        );
    }
    let report = pipeline::run_serve(&spec, profiles_path.as_deref(), trace_out.as_deref())?;
    let a = &report.accounting;
    println!(
        "served {} requests in {:.1} virtual seconds",
        n, report.virtual_end_s
    );
    println!(
        "  completed {}  shed {} (overload {} / deadline {} / failed {})  drained {}",
        a.completed,
        a.shed(),
        a.shed_overload,
        a.shed_deadline,
        a.shed_failed,
        a.drained
    );
    println!(
        "  deadline-exceeded {}  degraded {}  watchdog trips {}  retries {}",
        a.deadline_exceeded, report.degraded, report.watchdog_trips, report.retries
    );
    println!(
        "  breaker: opens {} closes {} probes {} rejects {}",
        report.breaker_opens, report.breaker_closes, report.breaker_probes, report.breaker_rejects
    );
    if let Some(ad) = &report.adapt {
        println!(
            "  adapt: drifts {}  retrains {} (failed {} / slow {})  promotions {}  \
             rollbacks {}  active v{}",
            ad.drifts,
            ad.retrains,
            ad.retrain_failures,
            ad.retrain_slows,
            ad.promotions,
            ad.rollbacks,
            ad.active_version
        );
    }
    println!(
        "  policy: applies {} suppressed {} (final timeout ratio {:.2})",
        report.policy_applies,
        report.policy_suppressed,
        stca_serve::TIMEOUT_GRID[report.final_timeout_idx]
    );
    println!(
        "  response: mean {:.4}s p50 {:.4}s p99 {:.4}s",
        report.mean_response_s, report.p50_response_s, report.p99_response_s
    );
    println!("  decision hash {:016x}", report.decision_hash);
    if let Some(dump) = &report.trace_dump {
        emit_trace_artifacts(dump, trace_out.as_deref(), trace_svg.as_deref())?;
    }
    if !a.balanced() {
        return Err(StcaError::invalid_input(format!(
            "accounting invariant violated: {a:?}"
        )));
    }
    if !spec.artifacts.decision_log.is_empty() {
        let path = PathBuf::from(&spec.artifacts.decision_log);
        let mut text = report.decision_log.join("\n");
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| StcaError::io(path.display().to_string(), e))?;
        println!("wrote decision log to {}", path.display());
    }
    if !spec.artifacts.health.is_empty() {
        let path = PathBuf::from(&spec.artifacts.health);
        stca_serve::write_health(&path, &report)?;
        println!("wrote health snapshot to {}", path.display());
    }
    Ok(())
}

/// Print trace summary + write the Chrome/SVG artifacts (shared by the
/// single-loop and fleet serve paths).
fn emit_trace_artifacts(
    dump: &stca_trace::TraceDump,
    trace_out: Option<&Path>,
    trace_svg: Option<&Path>,
) -> Result<(), StcaError> {
    let s = &dump.stats;
    println!(
        "  trace: retained {} error-class + {} sampled traces \
         (1/{} sampling, {} evicted, {} started)",
        s.retained_error, s.retained_normal, dump.sample_every, s.evicted_normal, s.started
    );
    if let Some(path) = trace_out {
        stca_trace::write_chrome_json(path, dump)?;
        println!(
            "wrote Chrome trace to {} (load in Perfetto or about:tracing)",
            path.display()
        );
    }
    if let Some(path) = trace_svg {
        stca_trace::write_svg(path, dump)?;
        println!("wrote trace waterfall to {}", path.display());
    }
    Ok(())
}

/// The `--shards N` (N > 1) serve path: route the arrival stream through
/// a sharded fleet, report per-shard and fleet-wide accounting, and
/// enforce the fleet invariant before writing artifacts.
fn cmd_serve_fleet(
    spec: &ScenarioSpec,
    profiles_path: Option<&Path>,
    trace_out: Option<&Path>,
    trace_svg: Option<&Path>,
) -> Result<(), StcaError> {
    let report = pipeline::run_fleet(spec, profiles_path, trace_out)?;
    println!(
        "served {} requests across {} shards in {:.1} virtual seconds",
        report.offered,
        report.shards.len(),
        report.virtual_end_s
    );
    println!(
        "  fleet: completed {}  rerouted {}  router-shed {}  crashed shards {:?}",
        report.completed(),
        report.rerouted,
        report.router_shed,
        report.crashed_shards()
    );
    for s in &report.shards {
        let a = &s.accounting;
        println!(
            "  shard {}: admitted {}  completed {}  shed {}  drained {}  \
             rerouted-out {}  crashes {}  p99 {:.4}s",
            s.id,
            a.admitted,
            a.completed,
            a.shed(),
            a.drained,
            s.rerouted_out,
            s.crashes,
            s.p99_response_s
        );
    }
    let (promos, rollbacks): (u64, u64) = report
        .shards
        .iter()
        .filter_map(|s| s.adapt.as_ref())
        .fold((0, 0), |(p, r), a| (p + a.promotions, r + a.rollbacks));
    if report.shards.iter().any(|s| s.adapt.is_some()) {
        println!("  adapt: promotions {promos}  rollbacks {rollbacks}");
    }
    println!(
        "  response: mean {:.4}s p50 {:.4}s p99 {:.4}s",
        report.mean_response_s, report.p50_response_s, report.p99_response_s
    );
    println!("  decision hash {:016x}", report.decision_hash);
    if let Some(dump) = &report.trace_dump {
        emit_trace_artifacts(dump, trace_out, trace_svg)?;
    }
    if !report.balanced() {
        return Err(StcaError::invalid_input(format!(
            "fleet accounting invariant violated: {report:?}"
        )));
    }
    if !spec.artifacts.decision_log.is_empty() {
        let path = PathBuf::from(&spec.artifacts.decision_log);
        let mut text = report.decision_log.join("\n");
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| StcaError::io(path.display().to_string(), e))?;
        println!("wrote decision log to {}", path.display());
    }
    if !spec.artifacts.health.is_empty() {
        let path = PathBuf::from(&spec.artifacts.health);
        stca_serve::write_fleet_health(&path, &report)?;
        println!("wrote health snapshot to {}", path.display());
    }
    Ok(())
}

/// `stca scenario check|run`: one positional scenario file, then flags.
fn cmd_scenario(argv: &[String]) -> Result<(), StcaError> {
    let Some(sub) = argv.first() else {
        return Err(StcaError::usage("scenario needs a subcommand: check | run"));
    };
    let rest = &argv[1..];
    let split = rest
        .iter()
        .position(|a| a.starts_with('-'))
        .unwrap_or(rest.len());
    let (files, flag_args) = rest.split_at(split);
    let args = Args::parse(flag_args)?;
    let [file] = files else {
        return Err(StcaError::usage(format!(
            "scenario {sub} takes exactly one scenario file"
        )));
    };
    let spec = stca_scenario::load_file(Path::new(file))?;
    match sub.as_str() {
        "check" => {
            pipeline::check_runnable(&spec, args.path("artifacts").as_deref())?;
            print_stdout(&spec.canonical())?;
            Ok(())
        }
        "run" => {
            let until = match args.get("until") {
                Some(s) => Some(Stage::parse(s).ok_or_else(|| {
                    StcaError::usage(format!(
                        "unknown stage {s:?} (expected one of: {})",
                        Stage::NAMES.join(", ")
                    ))
                })?),
                None => None,
            };
            let artifacts = args.path("artifacts");
            pipeline::check_runnable(&spec, artifacts.as_deref())?;
            println!(
                "scenario {} (spec fingerprint {:016x})",
                spec.scenario.name,
                spec.fingerprint()
            );
            let summary = pipeline::run_scenario(&spec, artifacts.as_deref(), until)?;
            for s in &summary.stages {
                println!(
                    "  stage {:<8} {} {:016x}  {}",
                    s.stage.name(),
                    if s.resumed { "resumed" } else { "done   " },
                    s.hash,
                    s.detail
                );
            }
            println!("scenario hash {:016x}", summary.scenario_hash);
            println!("artifacts in {}", summary.dir.display());
            Ok(())
        }
        other => Err(StcaError::usage(format!(
            "unknown scenario subcommand {other:?} (expected check | run)"
        ))),
    }
}

/// Write to stdout, exiting 0 quietly if the reader went away — piping
/// a report through `head` must not panic on the closed pipe.
fn print_stdout(text: &str) -> Result<(), StcaError> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(StcaError::io("stdout".to_string(), e)),
    }
}

/// `stca trace report|check`: positional trace files, then `--flag value`
/// pairs.
fn cmd_trace(argv: &[String]) -> Result<(), StcaError> {
    let Some(sub) = argv.first() else {
        return Err(StcaError::usage("trace needs a subcommand: report | check"));
    };
    let rest = &argv[1..];
    let split = rest
        .iter()
        .position(|a| a.starts_with('-'))
        .unwrap_or(rest.len());
    let (files, flag_args) = rest.split_at(split);
    let args = Args::parse(flag_args)?;
    match sub.as_str() {
        "report" => {
            let [file] = files else {
                return Err(StcaError::usage(
                    "trace report takes exactly one trace file",
                ));
            };
            let dump = stca_trace::read_chrome_json(Path::new(file))?;
            print_stdout(&stca_trace::report::render(&dump))?;
            if let Some(log_path) = args.path("decision-log") {
                let text = std::fs::read_to_string(&log_path)
                    .map_err(|e| StcaError::io(log_path.display().to_string(), e))?;
                let cc = stca_trace::report::cross_check(&dump, text.lines());
                print_stdout(&format!(
                    "\ncross-check vs {}: {} log lines, {} error decisions matched\n",
                    log_path.display(),
                    cc.log_lines,
                    cc.error_matched
                ))?;
                if cc.holds() {
                    print_stdout("retention invariant HOLDS: every shed/deadline-exceeded/drained decision has an agreeing trace\n")?;
                } else {
                    return Err(StcaError::invalid_input(format!(
                        "retention invariant VIOLATED: {} error decisions missing a trace \
                         (first: {:?}), {} disagreeing (first: {:?})",
                        cc.missing.len(),
                        cc.missing.first(),
                        cc.mismatched.len(),
                        cc.mismatched.first()
                    )));
                }
            }
            Ok(())
        }
        "check" => {
            if files.is_empty() {
                return Err(StcaError::usage(
                    "trace check needs at least one trace file",
                ));
            }
            for file in files {
                let dump = stca_trace::read_chrome_json(Path::new(file))?;
                let spans: usize = dump.traces.iter().map(|t| t.spans.len()).sum();
                print_stdout(&format!(
                    "{file}: ok — {} traces ({} error-class), {} spans, seed {:#x}, 1/{} sampling\n",
                    dump.traces.len(),
                    dump.traces.iter().filter(|t| t.is_error_class()).count(),
                    spans,
                    dump.seed,
                    dump.sample_every
                ))?;
            }
            Ok(())
        }
        other => Err(StcaError::usage(format!(
            "unknown trace subcommand {other:?} (expected report | check)"
        ))),
    }
}

fn real_main(argv: &[String]) -> Result<(), StcaError> {
    let Some(cmd) = argv.first() else {
        return Err(StcaError::usage("missing subcommand"));
    };
    if cmd == "trace" {
        return cmd_trace(&argv[1..]);
    }
    if cmd == "scenario" {
        return cmd_scenario(&argv[1..]);
    }
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "characterize" => cmd_characterize(&args),
        "profile" => cmd_profile(&args),
        "predict" => cmd_predict(&args),
        "explore" => cmd_explore(&args),
        "serve" => cmd_serve(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(StcaError::usage(format!("unknown subcommand {other:?}"))),
    }
}

fn main() -> ExitCode {
    // malformed STCA_LOG / STCA_LOG_FORMAT is a usage error, not something
    // to silently swallow into "logging off"
    if let Err(e) = stca_obs::try_init_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    stca_exec::init_from_env_and_args();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = real_main(&argv);
    stca_obs::emit_run_report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.exit_code() == 2 {
                eprintln!("\n{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}
