//! `stca` — command-line front end for the short-term cache allocation
//! toolkit.
//!
//! ```text
//! stca characterize                                  Table-1 style benchmark characterization
//! stca profile --pair redis,social -n 10 -o p.stca   profile a collocation, save Eq.-2 rows
//! stca predict --profiles p.stca --pair redis,social --util 0.9 --timeouts 1.5,1.5
//! stca explore --profiles p.stca --pair redis,social --util 0.9
//! ```
//!
//! Every subcommand is deterministic given `--seed` — including under an
//! injected fault plan (`--fault-plan` / `STCA_FAULT_PLAN`).
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error.

#![warn(clippy::unwrap_used)]

use stca_cachesim::{Counter, Hierarchy, HierarchyConfig};
use stca_cat::AllocationSetting;
use stca_core::{ModelConfig, PolicyExplorer, Predictor};
use stca_fault::{FaultPlan, RetryPolicy, StcaError};
use stca_profiler::executor::{run_experiment_checked, ExperimentSpec};
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_profiler::sampler::CounterOrdering;
use stca_profiler::storage;
use stca_util::Rng64;
use stca_workloads::{AccessGenerator, BenchmarkId, RuntimeCondition, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
stca — short-term cache allocation toolkit

USAGE:
  stca characterize [--accesses N]
  stca profile --pair A,B [-n CONDITIONS] [-o FILE] [--seed N]
  stca predict --profiles FILE --pair A,B --util U --timeouts TA,TB [--seed N]
  stca explore --profiles FILE --pair A,B [--util U] [--seed N]
  stca serve [--requests N] [--rate R] [--deadline S] [--seed N]
  stca trace report FILE [--decision-log FILE]
  stca trace check FILE...

Benchmarks: jac knn kmeans spkmeans spstream bfs social redis

Serving (stca serve): replay a seeded arrival stream through the online
control loop (admission queue -> predict -> STAP decide -> drain):
  --requests N          requests to replay (default 100000)
  --rate R              mean arrival rate, requests per virtual second (200)
  --deadline S          per-request deadline budget, virtual seconds (0.5)
  --servers K           control-loop workers (2)
  --queue-cap N         admission queue capacity (64)
  --overload P          full-queue policy: shed-newest | shed-oldest | block
  --hysteresis K        consecutive agreeing decisions before a policy
                        change is applied (4)
  --breaker-threshold N consecutive primary-predictor failures that open
                        the circuit breaker (5)
  --breaker-cooldown S  open-state cooldown before half-open probes (1.0)
  --drain-grace S       drain window after the last arrival (5.0)
  --profiles FILE       serve with a predictor trained on FILE (default:
                        the analytic EA tier, no training required)
  --pair A,B            required with --profiles (training pair)
  --decision-log FILE   write the per-request decision log
  --health-out FILE     write a JSON health snapshot (report + serve.*)

Tracing (stca serve): any --trace-* flag enables the per-request flight
recorder (error-class traces always retained, completions head-sampled;
bit-identical at any --threads; the decision hash is unchanged):
  --trace-out FILE      write Chrome trace_event JSON (open in Perfetto
                        or about:tracing); also the error-dump target
  --trace-svg FILE      write an SVG waterfall of the retained traces
  --trace-sample N      head-sample 1 in N completed requests (64)
  --trace-ring N        sampled-completion ring capacity (256)

Trace artifacts (stca trace): consume dumps written by --trace-out:
  report FILE           per-stage latency tables, disposition counts, and
                        slowest retained requests; with --decision-log,
                        cross-check the retention invariant (every shed /
                        deadline-exceeded / drained decision has a trace)
  check FILE...         schema-validate trace JSON (exit 1 on the first
                        invalid file)

Parallelism (any subcommand):
  --threads N           worker threads (default: STCA_THREADS, else all cores);
                        results are identical at any thread count

Fault tolerance (profile/explore):
  --fault-plan SPEC     inject deterministic faults (presets: none, ci-default,
                        heavy; overrides: seed=, crash=, timeout=, dropout=,
                        corrupt=, stuck=, noise=, latency=); default:
                        STCA_FAULT_PLAN, else none
  --max-retries N       retry budget per experiment (default 3)
  --checkpoint FILE     persist finished work units (profile conditions,
                        explore grid cells); a re-run resumes from FILE and
                        produces bit-identical output

Observability (any subcommand):
  --metrics-out FILE    write a JSON metrics report and print a summary table
  STCA_LOG=info         enable logging (e.g. STCA_LOG=info,queuesim=trace)
";

fn parse_benchmark(s: &str) -> Result<BenchmarkId, StcaError> {
    BenchmarkId::ALL
        .iter()
        .copied()
        .find(|b| b.short_name() == s)
        .ok_or_else(|| StcaError::usage(format!("unknown benchmark {s:?}")))
}

fn parse_pair(s: &str) -> Result<(BenchmarkId, BenchmarkId), StcaError> {
    let (a, b) = s
        .split_once(',')
        .ok_or_else(|| StcaError::usage(format!("expected A,B pair, got {s:?}")))?;
    Ok((parse_benchmark(a.trim())?, parse_benchmark(b.trim())?))
}

/// Minimal flag parser: `--name value` and `-n value` pairs after the
/// subcommand.
struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, StcaError> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .or_else(|| argv[i].strip_prefix('-'))
                .ok_or_else(|| StcaError::usage(format!("expected flag, got {:?}", argv[i])))?;
            let value = argv
                .get(i + 1)
                .ok_or_else(|| StcaError::usage(format!("flag --{key} needs a value")))?;
            flags.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, StcaError> {
        self.get(name)
            .ok_or_else(|| StcaError::usage(format!("missing required flag --{name}")))
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, StcaError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| StcaError::usage(format!("bad --{name}: {e}"))),
        }
    }

    /// Resolve the fault plan: `--fault-plan` wins, else `STCA_FAULT_PLAN`,
    /// else no injection.
    fn fault_plan(&self) -> Result<FaultPlan, StcaError> {
        match self.get("fault-plan") {
            Some(spec) => FaultPlan::parse(spec),
            None => FaultPlan::from_env(),
        }
    }

    fn retry_policy(&self) -> Result<RetryPolicy, StcaError> {
        Ok(RetryPolicy::with_max_retries(
            self.get_parsed("max-retries", 3u32)?,
        ))
    }

    fn checkpoint_path(&self) -> Option<PathBuf> {
        self.get("checkpoint").map(PathBuf::from)
    }
}

fn cmd_characterize(args: &Args) -> Result<(), StcaError> {
    let n: u64 = args.get_parsed("accesses", 100_000u64)?;
    let config = HierarchyConfig::experiment_default();
    let ways = config.llc.ways;
    println!(
        "{:>10} {:>16} {:>14} {:>20}",
        "benchmark", "footprint(ways)", "LLC MPKA(2w)", "full-cache speedup"
    );
    for id in BenchmarkId::ALL {
        let spec = WorkloadSpec::for_benchmark(id);
        let run = |alloc: AllocationSetting| -> Result<(f64, f64), StcaError> {
            let mut hier = Hierarchy::new(config, 42);
            let cbm = alloc.to_cbm(ways).map_err(|e| StcaError::InvalidInput {
                what: format!("allocation does not fit the LLC: {e}"),
            })?;
            hier.set_llc_mask(0, cbm);
            let mut gen =
                AccessGenerator::new(spec.pattern_for(&config), 0, spec.store_fraction, 42);
            for _ in 0..n / 2 {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
            }
            let before = hier.counters_of(0);
            for _ in 0..n {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
            }
            let c = hier.counters_of(0).delta(&before);
            Ok((
                c.get(Counter::LlcMisses) as f64 * 1000.0 / n as f64,
                c.get(Counter::Cycles) as f64 / n as f64,
            ))
        };
        let (mpka, cpa_private) = run(AllocationSetting::new(0, 2))?;
        let (_, cpa_full) = run(AllocationSetting::new(0, ways))?;
        println!(
            "{:>10} {:>16.2} {:>14.1} {:>19.2}x",
            id.short_name(),
            spec.footprint_ways(&config),
            mpka,
            cpa_private / cpa_full
        );
    }
    Ok(())
}

/// Profile `n` conditions of a pair under a fault plan, skipping conditions
/// that exhaust their retries and checkpointing finished ones when asked.
fn profile_conditions(
    pair: (BenchmarkId, BenchmarkId),
    n: usize,
    seed: u64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    checkpoint: Option<&Path>,
) -> Result<ProfileSet, StcaError> {
    let mut rng = Rng64::new(seed);
    // conditions are drawn serially; the experiments (the expensive part)
    // run in parallel, each with its original per-condition seed
    let conditions: Vec<RuntimeCondition> = (0..n)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    let meta = format!(
        "profile/{}-{}/n{n}/seed{seed}/plan{:016x}",
        pair.0, pair.1, plan.seed
    );
    let mut ckpt = match checkpoint {
        Some(path) => Some(stca_fault::Checkpoint::load_or_new(path, &meta)?),
        None => None,
    };
    let cached: Vec<Option<Vec<ProfileRow>>> = (0..n)
        .map(|i| {
            let ck = ckpt.as_ref()?;
            match ck.get(&format!("cond.{i}")) {
                Some(stca_obs::json::Value::Array(rows)) => rows
                    .iter()
                    .map(|v| storage::row_from_json(v).ok())
                    .collect(),
                Some(stca_obs::json::Value::String(s)) if s.starts_with("failed") => {
                    // a condition that failed in the previous run stays
                    // failed on resume (same plan seed ⇒ same faults)
                    Some(Vec::new())
                }
                _ => None,
            }
        })
        .collect();
    let results = stca_exec::par_map_indexed_caught(&conditions, |i, condition| {
        if let Some(rows) = &cached[i] {
            return Ok(rows.clone());
        }
        stca_obs::info!(
            "[{}/{}] util=({:.2},{:.2}) T=({:.2},{:.2})",
            i + 1,
            n,
            condition.workloads[0].utilization,
            condition.workloads[1].utilization,
            condition.workloads[0].timeout_ratio,
            condition.workloads[1].timeout_ratio
        );
        let spec = ExperimentSpec {
            measured_queries: 200,
            warmup_queries: 30,
            accesses_per_query: Some(1500),
            ..ExperimentSpec::standard(condition.clone(), seed ^ ((i as u64) << 16))
        };
        run_experiment_checked(spec, plan, retry).map(|out| {
            out.workloads
                .iter()
                .enumerate()
                .map(|(j, w)| ProfileRow::from_outcome(condition, j, w, CounterOrdering::Grouped))
                .collect::<Vec<ProfileRow>>()
        })
    });
    let mut set = ProfileSet::new();
    let mut failed = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        let flattened = match result {
            Ok(inner) => inner.map_err(|e| e.to_string()),
            Err(panic_msg) => Err(format!("panicked: {panic_msg}")),
        };
        match flattened {
            Ok(rows) => {
                if rows.is_empty() {
                    failed += 1; // resumed failure marker
                } else if let Some(ck) = ckpt.as_mut() {
                    if cached[i].is_none() {
                        ck.put(
                            format!("cond.{i}"),
                            stca_obs::json::Value::Array(
                                rows.iter().map(storage::row_to_json).collect(),
                            ),
                        );
                    }
                }
                for row in rows {
                    set.push(row);
                }
            }
            Err(reason) => {
                failed += 1;
                stca_obs::counter("fault.conditions_failed_total").inc();
                stca_obs::warn!("condition {i} failed, skipping: {reason}");
                if let Some(ck) = ckpt.as_mut() {
                    ck.put(
                        format!("cond.{i}"),
                        stca_obs::json::Value::String(format!("failed: {reason}")),
                    );
                }
            }
        }
    }
    if let Some(ck) = ckpt.as_mut() {
        ck.save()?;
    }
    if failed > 0 {
        stca_obs::warn!("{failed}/{n} conditions failed under the fault plan");
    }
    if set.is_empty() {
        return Err(StcaError::invalid_input(format!(
            "all {n} profiling conditions failed under the fault plan"
        )));
    }
    Ok(set)
}

fn cmd_profile(args: &Args) -> Result<(), StcaError> {
    let pair = parse_pair(args.require("pair")?)?;
    let n: usize = args.get_parsed("n", 10usize)?;
    let seed: u64 = args.get_parsed("seed", 2022u64)?;
    let out: PathBuf = PathBuf::from(args.get("o").or(args.get("out")).unwrap_or("profiles.stca"));
    let plan = args.fault_plan()?;
    let retry = args.retry_policy()?;
    stca_obs::info!("profiling {}({}) over {n} conditions", pair.0, pair.1);
    let set = profile_conditions(
        pair,
        n,
        seed,
        &plan,
        &retry,
        args.checkpoint_path().as_deref(),
    )?;
    storage::save(&set, &out)?;
    println!("wrote {} profile rows to {}", set.len(), out.display());
    Ok(())
}

fn load_profiles(args: &Args) -> Result<ProfileSet, StcaError> {
    let path = PathBuf::from(args.require("profiles")?);
    let set = storage::load(&path)?;
    if set.is_empty() {
        return Err(StcaError::invalid_input("profile file holds no rows"));
    }
    stca_obs::info!("loaded {} profile rows from {}", set.len(), path.display());
    Ok(set)
}

fn train(set: &ProfileSet, seed: u64) -> Predictor {
    let config = if set.len() >= 30 {
        ModelConfig::standard(seed)
    } else {
        ModelConfig::quick(seed)
    };
    Predictor::train(set, &config)
}

fn cmd_predict(args: &Args) -> Result<(), StcaError> {
    let pair = parse_pair(args.require("pair")?)?;
    let util: f64 = args
        .require("util")?
        .parse()
        .map_err(|e| StcaError::usage(format!("bad --util: {e}")))?;
    let timeouts = args.require("timeouts")?;
    let (ta, tb) = timeouts
        .split_once(',')
        .ok_or_else(|| StcaError::usage(format!("expected TA,TB, got {timeouts:?}")))?;
    let (ta, tb): (f64, f64) = (
        ta.parse()
            .map_err(|e| StcaError::usage(format!("bad timeout: {e}")))?,
        tb.parse()
            .map_err(|e| StcaError::usage(format!("bad timeout: {e}")))?,
    );
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let profiles = load_profiles(args)?;
    let predictor = train(&profiles, seed);
    // ground the candidate on the nearest profiled condition via the explorer
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, util);
    let (pa, pb) = explorer.predict_point(ta, tb);
    let es_a = WorkloadSpec::for_benchmark(pair.0).mean_service_time;
    let es_b = WorkloadSpec::for_benchmark(pair.1).mean_service_time;
    println!("predicted p95 response at util {util:.2}, T=({ta:.2},{tb:.2}):");
    println!(
        "  {:>8}: {:.4}s ({:.2}x expected service)",
        pair.0.short_name(),
        pa * es_a,
        pa
    );
    println!(
        "  {:>8}: {:.4}s ({:.2}x expected service)",
        pair.1.short_name(),
        pb * es_b,
        pb
    );
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), StcaError> {
    let pair = parse_pair(args.require("pair")?)?;
    let util: f64 = args.get_parsed("util", 0.9f64)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let profiles = load_profiles(args)?;
    let predictor = train(&profiles, seed);
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, util);
    let result = match args.checkpoint_path() {
        Some(path) => {
            explorer.explore_with_grid_checkpointed(&stca_core::explorer::TIMEOUT_GRID, &path)?
        }
        None => explorer.explore(),
    };
    println!(
        "predicted normalized p95 grid (rows: T_{}, cols: T_{}):",
        pair.0, pair.1
    );
    print!("{:>8}", "");
    for t in stca_core::explorer::TIMEOUT_GRID {
        print!("{t:>12.2}");
    }
    println!();
    for (i, row) in result.grid.iter().enumerate() {
        print!("{:>8.2}", stca_core::explorer::TIMEOUT_GRID[i]);
        for (a, b) in row {
            print!("{:>12}", format!("{a:.1}/{b:.1}"));
        }
        println!();
    }
    println!(
        "\nchosen: T_{} = {:.2}, T_{} = {:.2} (SLO intersection: {})",
        pair.0, result.timeout_a, pair.1, result.timeout_b, result.intersected
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), StcaError> {
    use stca_serve::{BreakerConfig, OverloadPolicy, ServeConfig, SyntheticStream};
    let n: u64 = args.get_parsed("requests", 100_000u64)?;
    let rate: f64 = args.get_parsed("rate", 200.0f64)?;
    let deadline: f64 = args.get_parsed("deadline", 0.5f64)?;
    let seed: u64 = args.get_parsed("seed", 2022u64)?;
    let decision_log = args.get("decision-log").map(PathBuf::from);
    let trace_out = args.get("trace-out").map(PathBuf::from);
    let trace_svg = args.get("trace-svg").map(PathBuf::from);
    let tracing_on = trace_out.is_some()
        || trace_svg.is_some()
        || args.get("trace-sample").is_some()
        || args.get("trace-ring").is_some();
    let trace_cfg = if tracing_on {
        let sample_every: u64 = args.get_parsed("trace-sample", 64u64)?;
        let ring: usize = args.get_parsed("trace-ring", 256usize)?;
        Some(stca_trace::TraceConfig {
            seed: seed ^ 0x7ACE,
            sample_every,
            ring_capacity: ring,
            ..stca_trace::TraceConfig::default()
        })
    } else {
        None
    };
    // if anything downstream exhausts its retries mid-run, persist the
    // flight recorder before the error unwinds (the "dump on error" half
    // of the recorder contract; `--trace-out` doubles as the dump target)
    let _dump_hook = trace_cfg.map(|_| {
        let path = trace_out
            .clone()
            .unwrap_or_else(|| PathBuf::from("stca-trace-error.json"));
        stca_fault::register_error_dump_hook(move |err| {
            if let Some(dump) = stca_trace::active_dump() {
                if stca_trace::write_chrome_json(&path, &dump).is_ok() {
                    eprintln!(
                        "fault: {err}; dumped {} in-flight traces to {}",
                        dump.traces.len(),
                        path.display()
                    );
                }
            }
        })
    });
    let cfg = ServeConfig {
        servers: args.get_parsed("servers", 2usize)?,
        queue_capacity: args.get_parsed("queue-cap", 64usize)?,
        overload: OverloadPolicy::parse(args.get("overload").unwrap_or("shed-newest"))?,
        hysteresis_k: args.get_parsed("hysteresis", 4u32)?,
        breaker: BreakerConfig {
            failure_threshold: args.get_parsed("breaker-threshold", 5u32)?,
            cooldown_s: args.get_parsed("breaker-cooldown", 1.0f64)?,
            seed: seed ^ 0xB4EA,
            ..BreakerConfig::default()
        },
        drain_grace_s: args.get_parsed("drain-grace", 5.0f64)?,
        keep_decision_log: decision_log.is_some(),
        trace: trace_cfg,
        ..ServeConfig::default()
    };
    let stream = SyntheticStream {
        seed,
        rate,
        deadline_s: deadline,
        n_features: 6,
    };
    let plan = args.fault_plan()?;
    stca_obs::info!("serving {n} requests at {rate}/s (deadline {deadline}s)");
    let report = match args.get("profiles") {
        Some(_) => {
            let profiles = load_profiles(args)?;
            // --pair is parsed for interface symmetry with predict/explore
            // (training data already fixes the pair); require it so the
            // trained path has a stable CLI shape
            parse_pair(args.require("pair")?)?;
            let template = profiles.rows[0].clone();
            let model = stca_core::ServingPredictor::new(train(&profiles, seed), template);
            stca_serve::serve(&cfg, &model, &plan, &stream, n)?
        }
        None => stca_serve::serve(&cfg, &stca_serve::AnalyticEa::default(), &plan, &stream, n)?,
    };
    let a = &report.accounting;
    println!(
        "served {} requests in {:.1} virtual seconds",
        n, report.virtual_end_s
    );
    println!(
        "  completed {}  shed {} (overload {} / deadline {} / failed {})  drained {}",
        a.completed,
        a.shed(),
        a.shed_overload,
        a.shed_deadline,
        a.shed_failed,
        a.drained
    );
    println!(
        "  deadline-exceeded {}  degraded {}  watchdog trips {}  retries {}",
        a.deadline_exceeded, report.degraded, report.watchdog_trips, report.retries
    );
    println!(
        "  breaker: opens {} closes {} probes {} rejects {}",
        report.breaker_opens, report.breaker_closes, report.breaker_probes, report.breaker_rejects
    );
    println!(
        "  policy: applies {} suppressed {} (final timeout ratio {:.2})",
        report.policy_applies,
        report.policy_suppressed,
        stca_serve::TIMEOUT_GRID[report.final_timeout_idx]
    );
    println!(
        "  response: mean {:.4}s p50 {:.4}s p99 {:.4}s",
        report.mean_response_s, report.p50_response_s, report.p99_response_s
    );
    println!("  decision hash {:016x}", report.decision_hash);
    if let Some(dump) = &report.trace_dump {
        let s = &dump.stats;
        println!(
            "  trace: retained {} error-class + {} sampled traces \
             (1/{} sampling, {} evicted, {} started)",
            s.retained_error, s.retained_normal, dump.sample_every, s.evicted_normal, s.started
        );
        if let Some(path) = &trace_out {
            stca_trace::write_chrome_json(path, dump)?;
            println!(
                "wrote Chrome trace to {} (load in Perfetto or about:tracing)",
                path.display()
            );
        }
        if let Some(path) = &trace_svg {
            stca_trace::write_svg(path, dump)?;
            println!("wrote trace waterfall to {}", path.display());
        }
    }
    if !a.balanced() {
        return Err(StcaError::invalid_input(format!(
            "accounting invariant violated: {a:?}"
        )));
    }
    if let Some(path) = decision_log {
        let mut text = report.decision_log.join("\n");
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| StcaError::io(path.display().to_string(), e))?;
        println!("wrote decision log to {}", path.display());
    }
    if let Some(path) = args.get("health-out") {
        let path = PathBuf::from(path);
        stca_serve::write_health(&path, &report)?;
        println!("wrote health snapshot to {}", path.display());
    }
    Ok(())
}

/// Write to stdout, exiting 0 quietly if the reader went away — piping
/// a report through `head` must not panic on the closed pipe.
fn print_stdout(text: &str) -> Result<(), StcaError> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(StcaError::io("stdout".to_string(), e)),
    }
}

/// `stca trace report|check`: positional trace files, then `--flag value`
/// pairs (the only subcommand family with positional operands).
fn cmd_trace(argv: &[String]) -> Result<(), StcaError> {
    let Some(sub) = argv.first() else {
        return Err(StcaError::usage("trace needs a subcommand: report | check"));
    };
    let rest = &argv[1..];
    let split = rest
        .iter()
        .position(|a| a.starts_with('-'))
        .unwrap_or(rest.len());
    let (files, flag_args) = rest.split_at(split);
    let args = Args::parse(flag_args)?;
    match sub.as_str() {
        "report" => {
            let [file] = files else {
                return Err(StcaError::usage(
                    "trace report takes exactly one trace file",
                ));
            };
            let dump = stca_trace::read_chrome_json(Path::new(file))?;
            print_stdout(&stca_trace::report::render(&dump))?;
            if let Some(log_path) = args.get("decision-log") {
                let log_path = PathBuf::from(log_path);
                let text = std::fs::read_to_string(&log_path)
                    .map_err(|e| StcaError::io(log_path.display().to_string(), e))?;
                let cc = stca_trace::report::cross_check(&dump, text.lines());
                print_stdout(&format!(
                    "\ncross-check vs {}: {} log lines, {} error decisions matched\n",
                    log_path.display(),
                    cc.log_lines,
                    cc.error_matched
                ))?;
                if cc.holds() {
                    print_stdout("retention invariant HOLDS: every shed/deadline-exceeded/drained decision has an agreeing trace\n")?;
                } else {
                    return Err(StcaError::invalid_input(format!(
                        "retention invariant VIOLATED: {} error decisions missing a trace \
                         (first: {:?}), {} disagreeing (first: {:?})",
                        cc.missing.len(),
                        cc.missing.first(),
                        cc.mismatched.len(),
                        cc.mismatched.first()
                    )));
                }
            }
            Ok(())
        }
        "check" => {
            if files.is_empty() {
                return Err(StcaError::usage(
                    "trace check needs at least one trace file",
                ));
            }
            for file in files {
                let dump = stca_trace::read_chrome_json(Path::new(file))?;
                let spans: usize = dump.traces.iter().map(|t| t.spans.len()).sum();
                print_stdout(&format!(
                    "{file}: ok — {} traces ({} error-class), {} spans, seed {:#x}, 1/{} sampling\n",
                    dump.traces.len(),
                    dump.traces.iter().filter(|t| t.is_error_class()).count(),
                    spans,
                    dump.seed,
                    dump.sample_every
                ))?;
            }
            Ok(())
        }
        other => Err(StcaError::usage(format!(
            "unknown trace subcommand {other:?} (expected report | check)"
        ))),
    }
}

fn real_main(argv: &[String]) -> Result<(), StcaError> {
    let Some(cmd) = argv.first() else {
        return Err(StcaError::usage("missing subcommand"));
    };
    if cmd == "trace" {
        return cmd_trace(&argv[1..]);
    }
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "characterize" => cmd_characterize(&args),
        "profile" => cmd_profile(&args),
        "predict" => cmd_predict(&args),
        "explore" => cmd_explore(&args),
        "serve" => cmd_serve(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(StcaError::usage(format!("unknown subcommand {other:?}"))),
    }
}

fn main() -> ExitCode {
    // malformed STCA_LOG / STCA_LOG_FORMAT is a usage error, not something
    // to silently swallow into "logging off"
    if let Err(e) = stca_obs::try_init_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    stca_exec::init_from_env_and_args();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = real_main(&argv);
    stca_obs::emit_run_report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.exit_code() == 2 {
                eprintln!("\n{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}
