//! `stca` — command-line front end for the short-term cache allocation
//! toolkit.
//!
//! ```text
//! stca characterize                                  Table-1 style benchmark characterization
//! stca profile --pair redis,social -n 10 -o p.stca   profile a collocation, save Eq.-2 rows
//! stca predict --profiles p.stca --pair redis,social --util 0.9 --timeouts 1.5,1.5
//! stca explore --profiles p.stca --pair redis,social --util 0.9
//! ```
//!
//! Every subcommand is deterministic given `--seed`.

use stca_cachesim::{Counter, Hierarchy, HierarchyConfig};
use stca_cat::AllocationSetting;
use stca_core::{ModelConfig, PolicyExplorer, Predictor};
use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_profiler::sampler::CounterOrdering;
use stca_profiler::storage;
use stca_util::Rng64;
use stca_workloads::{AccessGenerator, BenchmarkId, RuntimeCondition, WorkloadSpec};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
stca — short-term cache allocation toolkit

USAGE:
  stca characterize [--accesses N]
  stca profile --pair A,B [-n CONDITIONS] [-o FILE] [--seed N]
  stca predict --profiles FILE --pair A,B --util U --timeouts TA,TB [--seed N]
  stca explore --profiles FILE --pair A,B [--util U] [--seed N]

Benchmarks: jac knn kmeans spkmeans spstream bfs social redis

Parallelism (any subcommand):
  --threads N           worker threads (default: STCA_THREADS, else all cores);
                        results are identical at any thread count

Observability (any subcommand):
  --metrics-out FILE    write a JSON metrics report and print a summary table
  STCA_LOG=info         enable logging (e.g. STCA_LOG=info,queuesim=trace)
";

fn parse_benchmark(s: &str) -> Result<BenchmarkId, String> {
    BenchmarkId::ALL
        .iter()
        .copied()
        .find(|b| b.short_name() == s)
        .ok_or_else(|| format!("unknown benchmark {s:?}"))
}

fn parse_pair(s: &str) -> Result<(BenchmarkId, BenchmarkId), String> {
    let (a, b) = s
        .split_once(',')
        .ok_or_else(|| format!("expected A,B pair, got {s:?}"))?;
    Ok((parse_benchmark(a.trim())?, parse_benchmark(b.trim())?))
}

/// Minimal flag parser: `--name value` and `-n value` pairs after the
/// subcommand.
struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .or_else(|| argv[i].strip_prefix('-'))
                .ok_or_else(|| format!("expected flag, got {:?}", argv[i]))?;
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
        }
    }
}

fn cmd_characterize(args: &Args) -> Result<(), String> {
    let n: u64 = args.get_parsed("accesses", 100_000u64)?;
    let config = HierarchyConfig::experiment_default();
    let ways = config.llc.ways;
    println!(
        "{:>10} {:>16} {:>14} {:>20}",
        "benchmark", "footprint(ways)", "LLC MPKA(2w)", "full-cache speedup"
    );
    for id in BenchmarkId::ALL {
        let spec = WorkloadSpec::for_benchmark(id);
        let run = |alloc: AllocationSetting| -> (f64, f64) {
            let mut hier = Hierarchy::new(config, 42);
            hier.set_llc_mask(0, alloc.to_cbm(ways).expect("valid"));
            let mut gen =
                AccessGenerator::new(spec.pattern_for(&config), 0, spec.store_fraction, 42);
            for _ in 0..n / 2 {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
            }
            let before = hier.counters_of(0);
            for _ in 0..n {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
            }
            let c = hier.counters_of(0).delta(&before);
            (
                c.get(Counter::LlcMisses) as f64 * 1000.0 / n as f64,
                c.get(Counter::Cycles) as f64 / n as f64,
            )
        };
        let (mpka, cpa_private) = run(AllocationSetting::new(0, 2));
        let (_, cpa_full) = run(AllocationSetting::new(0, ways));
        println!(
            "{:>10} {:>16.2} {:>14.1} {:>19.2}x",
            id.short_name(),
            spec.footprint_ways(&config),
            mpka,
            cpa_private / cpa_full
        );
    }
    Ok(())
}

fn profile_conditions(pair: (BenchmarkId, BenchmarkId), n: usize, seed: u64) -> ProfileSet {
    let mut rng = Rng64::new(seed);
    // conditions are drawn serially; the experiments (the expensive part)
    // run in parallel, each with its original per-condition seed
    let conditions: Vec<RuntimeCondition> = (0..n)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    let outcomes = stca_exec::par_map_indexed(&conditions, |i, condition| {
        stca_obs::info!(
            "[{}/{}] util=({:.2},{:.2}) T=({:.2},{:.2})",
            i + 1,
            n,
            condition.workloads[0].utilization,
            condition.workloads[1].utilization,
            condition.workloads[0].timeout_ratio,
            condition.workloads[1].timeout_ratio
        );
        let spec = ExperimentSpec {
            measured_queries: 200,
            warmup_queries: 30,
            accesses_per_query: Some(1500),
            ..ExperimentSpec::standard(condition.clone(), seed ^ ((i as u64) << 16))
        };
        TestEnvironment::new(spec).run()
    });
    let mut set = ProfileSet::new();
    for (condition, out) in conditions.iter().zip(&outcomes) {
        for (j, w) in out.workloads.iter().enumerate() {
            set.push(ProfileRow::from_outcome(
                condition,
                j,
                w,
                CounterOrdering::Grouped,
            ));
        }
    }
    set
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let pair = parse_pair(args.require("pair")?)?;
    let n: usize = args.get_parsed("n", 10usize)?;
    let seed: u64 = args.get_parsed("seed", 2022u64)?;
    let out: PathBuf = PathBuf::from(args.get("o").or(args.get("out")).unwrap_or("profiles.stca"));
    stca_obs::info!("profiling {}({}) over {n} conditions", pair.0, pair.1);
    let set = profile_conditions(pair, n, seed);
    storage::save(&set, &out).map_err(|e| e.to_string())?;
    println!("wrote {} profile rows to {}", set.len(), out.display());
    Ok(())
}

fn load_profiles(args: &Args) -> Result<ProfileSet, String> {
    let path = PathBuf::from(args.require("profiles")?);
    let set = storage::load(&path).map_err(|e| e.to_string())?;
    if set.is_empty() {
        return Err("profile file holds no rows".into());
    }
    stca_obs::info!("loaded {} profile rows from {}", set.len(), path.display());
    Ok(set)
}

fn train(set: &ProfileSet, seed: u64) -> Predictor {
    let config = if set.len() >= 30 {
        ModelConfig::standard(seed)
    } else {
        ModelConfig::quick(seed)
    };
    Predictor::train(set, &config)
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let pair = parse_pair(args.require("pair")?)?;
    let util: f64 = args
        .require("util")?
        .parse()
        .map_err(|e| format!("bad --util: {e}"))?;
    let timeouts = args.require("timeouts")?;
    let (ta, tb) = timeouts
        .split_once(',')
        .ok_or_else(|| format!("expected TA,TB, got {timeouts:?}"))?;
    let (ta, tb): (f64, f64) = (
        ta.parse().map_err(|e| format!("bad timeout: {e}"))?,
        tb.parse().map_err(|e| format!("bad timeout: {e}"))?,
    );
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let profiles = load_profiles(args)?;
    let predictor = train(&profiles, seed);
    // ground the candidate on the nearest profiled condition via the explorer
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, util);
    let (pa, pb) = explorer.predict_point(ta, tb);
    let es_a = WorkloadSpec::for_benchmark(pair.0).mean_service_time;
    let es_b = WorkloadSpec::for_benchmark(pair.1).mean_service_time;
    println!("predicted p95 response at util {util:.2}, T=({ta:.2},{tb:.2}):");
    println!(
        "  {:>8}: {:.4}s ({:.2}x expected service)",
        pair.0.short_name(),
        pa * es_a,
        pa
    );
    println!(
        "  {:>8}: {:.4}s ({:.2}x expected service)",
        pair.1.short_name(),
        pb * es_b,
        pb
    );
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), String> {
    let pair = parse_pair(args.require("pair")?)?;
    let util: f64 = args.get_parsed("util", 0.9f64)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let profiles = load_profiles(args)?;
    let predictor = train(&profiles, seed);
    let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, util);
    let result = explorer.explore();
    println!(
        "predicted normalized p95 grid (rows: T_{}, cols: T_{}):",
        pair.0, pair.1
    );
    print!("{:>8}", "");
    for t in stca_core::explorer::TIMEOUT_GRID {
        print!("{t:>12.2}");
    }
    println!();
    for (i, row) in result.grid.iter().enumerate() {
        print!("{:>8.2}", stca_core::explorer::TIMEOUT_GRID[i]);
        for (a, b) in row {
            print!("{:>12}", format!("{a:.1}/{b:.1}"));
        }
        println!();
    }
    println!(
        "\nchosen: T_{} = {:.2}, T_{} = {:.2} (SLO intersection: {})",
        pair.0, result.timeout_a, pair.1, result.timeout_b, result.intersected
    );
    Ok(())
}

fn main() -> ExitCode {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "characterize" => cmd_characterize(&args),
        "profile" => cmd_profile(&args),
        "predict" => cmd_predict(&args),
        "explore" => cmd_explore(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    stca_obs::emit_run_report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
