//! # stca-core
//!
//! The paper's primary contribution: a model-driven approach for choosing
//! short-term cache allocation policies in collocated settings.
//!
//! * [`predictor::Predictor`] — the three-stage pipeline. Stage 1 profiles
//!   come from `stca-profiler`; Stage 2 trains deep forests mapping profile
//!   features to effective cache allocation (and to base service time, the
//!   second quantity Stage 3 needs); Stage 3 converts EA to response-time
//!   distributions with the `stca-queuesim` G/G/k + STAP simulator.
//! * [`explorer::PolicyExplorer`] — model-driven policy search: a 5 x 5
//!   timeout grid per collocated pair (25 settings, as in §5.2), the
//!   SLO-driven matching rule (settings within 5% of each workload's best,
//!   intersected), and the resulting timeout vector.
//! * [`insight`] — the §5.2 analysis: clustering workload conditions by the
//!   deep forest's learned *concepts* reveals the arrival-rate /
//!   service-time / timeout interaction that clustering raw counters does
//!   not.

#![warn(clippy::unwrap_used)]

pub mod explorer;
pub mod insight;
pub mod pipeline;
pub mod predictor;
pub mod serving;

pub use explorer::{ExplorationResult, PolicyExplorer};
pub use predictor::{ModelConfig, Predictor, ResponsePrediction};
pub use serving::ServingPredictor;
