//! Byte-identity regression tests for the `stca` CLI.
//!
//! The spec-layer refactor routed every subcommand's config through
//! `ScenarioSpec` + flag overrides. These tests pin the observable
//! behavior to hashes captured from the pre-refactor binary: decision
//! hashes straight from serve stdout, FNV-1a of the profile store and of
//! explore/predict/characterize stdout. They also pin the override
//! precedence rule (flag beats spec beats default), strict rejection of
//! unknown flags/keys (exit 2), and `stca scenario run`'s thread
//! invariance + checkpoint resume.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_stca");

fn run_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .current_dir(dir)
        .env_remove("STCA_FAULT_PLAN")
        .env_remove("STCA_THREADS")
        .output()
        .expect("spawn stca")
}

fn stdout_of(dir: &Path, args: &[&str]) -> String {
    let out = run_in(dir, args);
    assert!(
        out.status.success(),
        "stca {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stca-cli-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// `stca serve` with pure flags reproduces the pre-refactor decision
/// hashes, with and without fault injection.
#[test]
fn serve_decision_hashes_match_pre_refactor_goldens() {
    let dir = temp_dir("serve");
    let out = stdout_of(&dir, &["serve", "--requests", "20000", "--threads", "2"]);
    assert!(
        out.contains("decision hash 1e138c92db208e79"),
        "default serve drifted:\n{out}"
    );
    let out = stdout_of(
        &dir,
        &[
            "serve",
            "--requests",
            "30000",
            "--rate",
            "600",
            "--deadline",
            "0.25",
            "--queue-cap",
            "16",
            "--fault-plan",
            "heavy",
            "--seed",
            "2022",
            "--threads",
            "2",
        ],
    );
    assert!(
        out.contains("decision hash ebed4ff2a16abe70"),
        "heavy-fault serve drifted:\n{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The full flag-driven chain — profile store bytes, explore and predict
/// stdout, trained serve — is byte-identical to the pre-refactor binary.
#[test]
fn profile_explore_predict_trained_serve_match_goldens() {
    let dir = temp_dir("chain");
    stdout_of(
        &dir,
        &[
            "profile",
            "--pair",
            "kmeans,bfs",
            "-n",
            "4",
            "--seed",
            "2022",
            "-o",
            "prof.stca",
            "--threads",
            "2",
        ],
    );
    let store = std::fs::read(dir.join("prof.stca")).expect("profile store");
    assert_eq!(
        fnv1a(&store),
        0x3897335ca389b65c,
        "profile store bytes drifted"
    );

    let out = stdout_of(
        &dir,
        &[
            "explore",
            "--profiles",
            "prof.stca",
            "--pair",
            "kmeans,bfs",
            "--threads",
            "2",
        ],
    );
    assert_eq!(
        fnv1a(out.as_bytes()),
        0x6e1cb72ca5660331,
        "explore stdout drifted:\n{out}"
    );

    let out = stdout_of(
        &dir,
        &[
            "predict",
            "--profiles",
            "prof.stca",
            "--pair",
            "kmeans,bfs",
            "--util",
            "0.9",
            "--timeouts",
            "1.5,1.5",
            "--threads",
            "2",
        ],
    );
    assert_eq!(
        fnv1a(out.as_bytes()),
        0x429c09858ae33d1b,
        "predict stdout drifted:\n{out}"
    );

    let out = stdout_of(
        &dir,
        &[
            "serve",
            "--requests",
            "20000",
            "--profiles",
            "prof.stca",
            "--pair",
            "kmeans,bfs",
            "--seed",
            "2022",
            "--threads",
            "2",
        ],
    );
    assert!(
        out.contains("decision hash 18297e851d0faa70"),
        "trained serve drifted:\n{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn characterize_stdout_matches_golden() {
    let dir = temp_dir("char");
    let out = stdout_of(
        &dir,
        &["characterize", "--accesses", "20000", "--threads", "2"],
    );
    assert_eq!(
        fnv1a(out.as_bytes()),
        0x4a7781f1ee7fd32f,
        "characterize stdout drifted:\n{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Flag beats spec beats default: a spec file overrides the built-in
/// default, and an explicit flag overrides the spec.
#[test]
fn flag_beats_spec_beats_default() {
    let dir = temp_dir("precedence");
    let spec = dir.join("mini.stca");
    std::fs::write(&spec, "[serve]\nrequests = 4000\nrate = 400\n").expect("write spec");
    let spec = spec.to_str().expect("utf8 path");

    // Spec beats the built-in default of 100000 requests.
    let out = stdout_of(&dir, &["serve", "--spec", spec, "--threads", "1"]);
    assert!(
        out.contains("served 4000 requests"),
        "spec override lost:\n{out}"
    );

    // Flag beats the spec's 4000.
    let out = stdout_of(
        &dir,
        &[
            "serve",
            "--spec",
            spec,
            "--requests",
            "2500",
            "--threads",
            "1",
        ],
    );
    assert!(
        out.contains("served 2500 requests"),
        "flag override lost:\n{out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Unknown flags and unknown spec keys are usage errors (exit 2) that
/// name the offender.
#[test]
fn unknown_flags_and_keys_exit_2() {
    let dir = temp_dir("strict");
    let out = run_in(&dir, &["serve", "--warp", "9"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("warp"),
        "stderr must name the flag"
    );

    let bad = dir.join("bad.stca");
    std::fs::write(&bad, "[serve]\nrequests = 5\nwarp = 9\n").expect("write spec");
    let out = run_in(
        &dir,
        &["scenario", "check", bad.to_str().expect("utf8 path")],
    );
    assert_eq!(out.status.code(), Some(2), "unknown key must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("\"warp\"") && err.contains("line 3"),
        "bad error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

const MINI_SCENARIO: &str = "\
[scenario]
name = \"mini\"
pipeline = [\"profile\", \"dataset\", \"train\", \"explore\", \"serve\"]

[profile]
conditions = 2
seed = 2022

[serve]
requests = 5000
seed = 2022
predictor = \"trained\"
";

fn scenario_hash(out: &str) -> &str {
    out.lines()
        .find_map(|l| l.strip_prefix("scenario hash "))
        .unwrap_or_else(|| panic!("no scenario hash in:\n{out}"))
}

/// `stca scenario run` is bit-identical across thread counts and resumes
/// finished stages from the checkpoint, mid-pipeline included.
#[test]
fn scenario_run_is_thread_invariant_and_resumable() {
    let dir = temp_dir("scenario");
    let spec = dir.join("mini.stca");
    std::fs::write(&spec, MINI_SCENARIO).expect("write scenario");
    let spec = spec.to_str().expect("utf8 path");

    let t1 = stdout_of(
        &dir,
        &[
            "scenario",
            "run",
            spec,
            "--artifacts",
            "a",
            "--threads",
            "1",
        ],
    );
    let t8 = stdout_of(
        &dir,
        &[
            "scenario",
            "run",
            spec,
            "--artifacts",
            "b",
            "--threads",
            "8",
        ],
    );
    assert_eq!(
        scenario_hash(&t1),
        scenario_hash(&t8),
        "--threads 1 vs 8 diverged:\n{t1}\n---\n{t8}"
    );

    // Stop mid-pipeline, then finish: the first three stages must resume.
    let partial = stdout_of(
        &dir,
        &[
            "scenario",
            "run",
            spec,
            "--artifacts",
            "c",
            "--until",
            "train",
            "--threads",
            "2",
        ],
    );
    assert!(!partial.contains("explore"), "--until overshot:\n{partial}");
    let full = stdout_of(
        &dir,
        &[
            "scenario",
            "run",
            spec,
            "--artifacts",
            "c",
            "--threads",
            "2",
        ],
    );
    for stage in ["profile", "dataset", "train"] {
        let line = full
            .lines()
            .find(|l| l.contains(stage))
            .unwrap_or_else(|| panic!("no {stage} line in:\n{full}"));
        assert!(
            line.contains("resumed"),
            "{stage} re-ran instead of resuming:\n{full}"
        );
    }
    assert_eq!(
        scenario_hash(&full),
        scenario_hash(&t1),
        "resumed run diverged from fresh run"
    );

    // A complete re-run resumes everything and lands on the same hash.
    let rerun = stdout_of(
        &dir,
        &[
            "scenario",
            "run",
            spec,
            "--artifacts",
            "a",
            "--threads",
            "4",
        ],
    );
    let resumed = rerun
        .lines()
        .filter(|l| l.trim_start().starts_with("stage ") && l.contains("resumed"))
        .count();
    assert_eq!(resumed, 5, "all stages must resume:\n{rerun}");
    assert_eq!(scenario_hash(&rerun), scenario_hash(&t1));
    std::fs::remove_dir_all(&dir).ok();
}
