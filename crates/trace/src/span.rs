//! Span records, trace dispositions, and the per-request trace context.
//!
//! A **trace** is the full story of one serving request on the virtual
//! clock: a sequence of stage spans (`queue_wait` → `predict` → `decide`
//! → …) plus the final disposition the accounting invariant assigns it.
//! Everything here is plain data built in the serving loop's *serial*
//! replay phase, so trace content is bit-identical at any thread count by
//! construction — there is no locking, no wall clock, and no
//! thread-dependent state anywhere in a trace.

/// A pipeline stage a span can cover. A closed enum (rather than free
/// strings) keeps span construction allocation-free in the serving hot
/// loop and gives the artifact checker a schema to validate against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Zero-length marker at arrival: the admission decision point.
    Admission,
    /// Arrival → dispatch: time spent in the bounded admission queue.
    QueueWait,
    /// The predict stage (primary behind the breaker, or degraded chain).
    Predict,
    /// The STAP decide stage.
    Decide,
    /// Zero-length marker: hysteresis applied a policy and ran the
    /// budgeted validation sim.
    ValidatePolicy,
    /// Zero-length marker at drain: the request never started.
    Drain,
    /// Zero-length marker: the fleet router moved (or shed) the request —
    /// `from_shard` / `to_shard` args carry the hop.
    Route,
    /// The adapt loop retrained a candidate model while this request was
    /// being served — `version` / `outcome` args carry the result.
    Retrain,
    /// This request was shadow-scored: the candidate's prediction was
    /// computed and compared, never served (`agree` arg carries the
    /// verdict).
    Shadow,
    /// Zero-length marker: a candidate model was promoted to serving at
    /// this request (`version` arg).
    Promote,
    /// Zero-length marker: the guard band regressed and the previous
    /// model version was re-installed (`from` / `to` version args).
    Rollback,
}

impl Stage {
    /// All stages in pipeline order (table/report ordering).
    pub const ALL: [Stage; 11] = [
        Stage::Admission,
        Stage::QueueWait,
        Stage::Predict,
        Stage::Decide,
        Stage::ValidatePolicy,
        Stage::Drain,
        Stage::Route,
        Stage::Retrain,
        Stage::Shadow,
        Stage::Promote,
        Stage::Rollback,
    ];

    /// Stable wire name (Chrome `name` field, report tables).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Predict => "predict",
            Stage::Decide => "decide",
            Stage::ValidatePolicy => "validate_policy",
            Stage::Drain => "drain",
            Stage::Route => "route",
            Stage::Retrain => "retrain",
            Stage::Shadow => "shadow",
            Stage::Promote => "promote",
            Stage::Rollback => "rollback",
        }
    }

    /// Parse a wire name back into a stage.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.name() == s)
    }
}

/// How a request's story ended. Mirrors the serving loop's accounting
/// buckets, with late completions split out so the flight recorder can
/// retain them as error-class traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Completed within its deadline.
    Completed,
    /// Completed, but the response exceeded the deadline budget.
    DeadlineExceeded,
    /// Shed by the overload policy at admission.
    ShedOverload,
    /// Shed because the deadline budget ran out before or mid-service.
    ShedDeadline,
    /// Shed because a stage stayed stuck after its retry.
    ShedFailed,
    /// Dropped at drain: could not start within the grace window.
    Drained,
    /// Shed by the fleet router: no routable shard at admission, or the
    /// reroute hop budget ran out while resolving an in-flight request.
    RouterShed,
}

impl Disposition {
    /// Every disposition, for schema validation.
    pub const ALL: [Disposition; 7] = [
        Disposition::Completed,
        Disposition::DeadlineExceeded,
        Disposition::ShedOverload,
        Disposition::ShedDeadline,
        Disposition::ShedFailed,
        Disposition::Drained,
        Disposition::RouterShed,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Disposition::Completed => "completed",
            Disposition::DeadlineExceeded => "deadline_exceeded",
            Disposition::ShedOverload => "shed_overload",
            Disposition::ShedDeadline => "shed_deadline",
            Disposition::ShedFailed => "shed_failed",
            Disposition::Drained => "drained",
            Disposition::RouterShed => "router_shed",
        }
    }

    /// Parse a wire name back into a disposition.
    pub fn parse(s: &str) -> Option<Disposition> {
        Disposition::ALL.into_iter().find(|d| d.name() == s)
    }

    /// Whether the disposition alone makes a trace error-class (the
    /// flight recorder never head-samples these away).
    pub fn is_error(self) -> bool {
        !matches!(self, Disposition::Completed)
    }
}

/// A span argument value (Chrome `args` entry).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Numeric argument.
    Num(f64),
    /// Text argument.
    Text(String),
}

/// One stage span on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The pipeline stage this span covers.
    pub stage: Stage,
    /// Virtual start time, seconds.
    pub start_s: f64,
    /// Virtual end time, seconds (`>= start_s`; equal for markers).
    pub end_s: f64,
    /// Stage-specific arguments (`tier`, `mode`, `timeout_idx`, …).
    pub args: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in virtual seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// A completed request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Deterministic trace id: a pure function of `(trace seed, seq)`.
    pub trace_id: u64,
    /// Request sequence number.
    pub seq: u64,
    /// Virtual arrival time, seconds.
    pub arrival_s: f64,
    /// Virtual time the disposition was assigned, seconds.
    pub end_s: f64,
    /// Virtual server the request was dispatched to (`None` if it never
    /// left the queue).
    pub server: Option<usize>,
    /// How the request ended.
    pub disposition: Disposition,
    /// A stage tripped the watchdog and was retried during this request.
    pub watchdog_retry: bool,
    /// The circuit breaker changed state (open or close) while this
    /// request was in its predict stage.
    pub breaker_transition: bool,
    /// Head-sampling verdict for this trace (pure function of seed+seq).
    pub sampled: bool,
    /// The stage spans, in pipeline order.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Error-class traces bypass head sampling and are always retained:
    /// any non-completed disposition, a deadline-exceeded completion, a
    /// watchdog retry, or a breaker transition.
    pub fn is_error_class(&self) -> bool {
        self.disposition.is_error() || self.watchdog_retry || self.breaker_transition
    }

    /// Total time from arrival to disposition, virtual seconds.
    pub fn total_s(&self) -> f64 {
        self.end_s - self.arrival_s
    }
}

/// Builder for one in-flight request trace. Created by
/// [`FlightRecorder::begin`](crate::FlightRecorder::begin), carried
/// through the serving pipeline, and finished into the recorder.
#[derive(Debug, Clone)]
pub struct TraceCtx {
    trace: Trace,
}

impl TraceCtx {
    /// Start a trace for request `seq` arriving at `arrival_s`.
    pub fn new(trace_id: u64, seq: u64, arrival_s: f64, sampled: bool) -> TraceCtx {
        let mut trace = Trace {
            trace_id,
            seq,
            arrival_s,
            end_s: arrival_s,
            server: None,
            disposition: Disposition::Completed,
            watchdog_retry: false,
            breaker_transition: false,
            sampled,
            spans: Vec::with_capacity(4),
        };
        trace.spans.push(SpanRecord {
            stage: Stage::Admission,
            start_s: arrival_s,
            end_s: arrival_s,
            args: Vec::new(),
        });
        TraceCtx { trace }
    }

    /// Append a span; returns it for argument attachment.
    pub fn push_span(&mut self, stage: Stage, start_s: f64, end_s: f64) -> &mut SpanRecord {
        self.trace.spans.push(SpanRecord {
            stage,
            start_s,
            end_s,
            args: Vec::new(),
        });
        self.trace
            .spans
            .last_mut()
            .expect("span pushed on the line above")
    }

    /// Record which virtual server served the request.
    pub fn set_server(&mut self, server: usize) {
        self.trace.server = Some(server);
    }

    /// Attach an argument to the admission marker span — the fleet layer
    /// stamps the owning shard here so shard identity survives reroutes.
    pub fn annotate_admission(&mut self, key: &'static str, value: AttrValue) {
        if let Some(first) = self.trace.spans.first_mut() {
            first.args.push((key, value));
        }
    }

    /// Mark that the watchdog retried a stage of this request.
    pub fn flag_watchdog_retry(&mut self) {
        self.trace.watchdog_retry = true;
    }

    /// Mark that the breaker transitioned during this request.
    pub fn flag_breaker_transition(&mut self) {
        self.trace.breaker_transition = true;
    }

    /// This trace's head-sampling verdict.
    pub fn sampled(&self) -> bool {
        self.trace.sampled
    }

    /// This trace's id.
    pub fn trace_id(&self) -> u64 {
        self.trace.trace_id
    }

    /// Close the trace with its final disposition.
    pub fn finish(mut self, disposition: Disposition, end_s: f64) -> Trace {
        self.trace.disposition = disposition;
        self.trace.end_s = end_s;
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_disposition_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
        for d in Disposition::ALL {
            assert_eq!(Disposition::parse(d.name()), Some(d));
        }
        assert_eq!(Stage::parse("nope"), None);
        assert_eq!(Disposition::parse(""), None);
    }

    #[test]
    fn error_classification() {
        let mut ctx = TraceCtx::new(0xAB, 3, 1.0, false);
        ctx.push_span(Stage::QueueWait, 1.0, 1.2);
        let t = ctx.finish(Disposition::Completed, 1.5);
        assert!(!t.is_error_class());

        let mut ctx = TraceCtx::new(0xAB, 4, 1.0, true);
        ctx.flag_watchdog_retry();
        let t = ctx.finish(Disposition::Completed, 1.5);
        assert!(
            t.is_error_class(),
            "retry makes a completed trace error-class"
        );

        let t = TraceCtx::new(0xAB, 5, 1.0, false).finish(Disposition::ShedOverload, 1.0);
        assert!(t.is_error_class());
        assert!((t.total_s() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ctx_starts_with_admission_marker() {
        let ctx = TraceCtx::new(1, 0, 2.5, true);
        let t = ctx.finish(Disposition::Drained, 3.0);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].stage, Stage::Admission);
        assert_eq!(t.spans[0].duration_s(), 0.0);
    }
}
