//! Dependency-free SVG timeline/waterfall renderer for trace dumps.
//!
//! One row per retained trace (arrival order), one colored bar per stage
//! span on a shared virtual-time axis, with a stage legend and time
//! ticks. Output is deterministic: same dump, same bytes.

use crate::recorder::TraceDump;
use crate::span::{Stage, Trace};
use std::fmt::Write as _;

const ROW_H: f64 = 16.0;
const ROW_GAP: f64 = 4.0;
const MARGIN_LEFT: f64 = 170.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 28.0;
const MARGIN_RIGHT: f64 = 20.0;
const PLOT_W: f64 = 860.0;
const TICKS: usize = 8;
/// Zero-length marker spans are drawn as thin slivers of this width.
const MARKER_W: f64 = 2.0;
/// Cap on rendered rows so a soak dump stays a viewable file.
pub const MAX_ROWS: usize = 400;

fn stage_color(stage: Stage) -> &'static str {
    match stage {
        Stage::Admission => "#6c757d",
        Stage::QueueWait => "#f0ad4e",
        Stage::Predict => "#3f7fbf",
        Stage::Decide => "#5cb85c",
        Stage::ValidatePolicy => "#9b59b6",
        Stage::Drain => "#d9534f",
        Stage::Route => "#17a2b8",
        Stage::Retrain => "#8d6e63",
        Stage::Shadow => "#34495e",
        Stage::Promote => "#2ecc71",
        Stage::Rollback => "#e67e22",
    }
}

fn fmt_num(v: f64) -> String {
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

fn row_label(trace: &Trace) -> String {
    let mut label = format!("#{} {}", trace.seq, trace.disposition.name());
    if trace.watchdog_retry {
        label.push_str(" ⟳");
    }
    if trace.breaker_transition {
        label.push_str(" ⚡");
    }
    label
}

/// Render a dump as an SVG waterfall. Rows beyond [`MAX_ROWS`] are
/// elided (noted in the subtitle) — error-class traces sort first in the
/// dump's retention, but here rows keep arrival order for readability.
pub fn to_svg(dump: &TraceDump) -> String {
    let shown = dump.traces.len().min(MAX_ROWS);
    let elided = dump.traces.len() - shown;
    let traces = &dump.traces[..shown];

    let (t0, t1) = traces.iter().fold((f64::MAX, f64::MIN), |(lo, hi), t| {
        (lo.min(t.arrival_s), hi.max(t.end_s))
    });
    let (t0, t1) = if traces.is_empty() || t1 <= t0 {
        (0.0, 1.0)
    } else {
        (t0, t1)
    };
    let span = t1 - t0;
    let x = |t: f64| MARGIN_LEFT + (t - t0) / span * PLOT_W;

    let height = MARGIN_TOP + shown as f64 * (ROW_H + ROW_GAP) + MARGIN_BOTTOM;
    let width = MARGIN_LEFT + PLOT_W + MARGIN_RIGHT;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(
        out,
        "<rect width=\"{width}\" height=\"{height}\" fill=\"#ffffff\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{MARGIN_LEFT}\" y=\"16\" font-size=\"14\" fill=\"#212529\">\
         stca trace waterfall — {} traces (seed {}, 1/{} sampling{})</text>",
        dump.traces.len(),
        dump.seed,
        dump.sample_every.max(1),
        if elided > 0 {
            format!(", {elided} rows elided")
        } else {
            String::new()
        }
    );

    // legend
    let mut lx = MARGIN_LEFT;
    for stage in Stage::ALL {
        let _ = writeln!(
            out,
            "<rect x=\"{lx}\" y=\"24\" width=\"10\" height=\"10\" fill=\"{}\"/>",
            stage_color(stage)
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"33\" fill=\"#212529\">{}</text>",
            lx + 13.0,
            stage.name()
        );
        lx += 13.0 + 8.0 * stage.name().len() as f64 + 18.0;
    }

    // time axis + ticks
    let axis_y = height - MARGIN_BOTTOM + 6.0;
    let _ = writeln!(
        out,
        "<line x1=\"{MARGIN_LEFT}\" y1=\"{axis_y}\" x2=\"{}\" y2=\"{axis_y}\" \
         stroke=\"#adb5bd\"/>",
        MARGIN_LEFT + PLOT_W
    );
    for i in 0..=TICKS {
        let t = t0 + span * i as f64 / TICKS as f64;
        let tx = x(t);
        let _ = writeln!(
            out,
            "<line x1=\"{tx}\" y1=\"{MARGIN_TOP}\" x2=\"{tx}\" y2=\"{axis_y}\" \
             stroke=\"#e9ecef\"/>"
        );
        let _ = writeln!(
            out,
            "<text x=\"{tx}\" y=\"{}\" text-anchor=\"middle\" fill=\"#495057\">{}s</text>",
            axis_y + 14.0,
            fmt_num(t)
        );
    }

    // rows
    for (row, trace) in traces.iter().enumerate() {
        let y = MARGIN_TOP + row as f64 * (ROW_H + ROW_GAP);
        let label_fill = if trace.is_error_class() {
            "#c0392b"
        } else {
            "#212529"
        };
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" fill=\"{label_fill}\">{}</text>",
            MARGIN_LEFT - 8.0,
            y + ROW_H - 4.0,
            row_label(trace)
        );
        for sp in &trace.spans {
            let x0 = x(sp.start_s);
            let w = ((sp.end_s - sp.start_s) / span * PLOT_W).max(MARKER_W);
            let _ = writeln!(
                out,
                "<rect x=\"{}\" y=\"{y}\" width=\"{}\" height=\"{ROW_H}\" \
                 fill=\"{}\"><title>{} {}s–{}s (trace 0x{:016x})</title></rect>",
                fmt_num(x0),
                fmt_num(w),
                stage_color(sp.stage),
                sp.stage.name(),
                fmt_num(sp.start_s),
                fmt_num(sp.end_s),
                trace.trace_id
            );
        }
    }

    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceConfig};
    use crate::span::Disposition;

    fn dump_with(n: u64) -> TraceDump {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 1,
            ring_capacity: 1024,
            error_capacity: 1024,
            ..TraceConfig::default()
        });
        for seq in 0..n {
            let mut ctx = rec.begin(seq, seq as f64 * 0.1);
            ctx.push_span(Stage::QueueWait, seq as f64 * 0.1, seq as f64 * 0.1 + 0.05);
            let disp = if seq % 5 == 0 {
                Disposition::ShedDeadline
            } else {
                Disposition::Completed
            };
            let t = ctx.finish(disp, seq as f64 * 0.1 + 0.2);
            rec.record(t);
        }
        rec.dump()
    }

    #[test]
    fn renders_wellformed_deterministic_svg() {
        let dump = dump_with(10);
        let svg = to_svg(&dump);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg ").count(), 1);
        // every stage in the legend, every trace a row label
        for stage in Stage::ALL {
            assert!(svg.contains(stage.name()));
        }
        assert!(svg.contains("#0 shed_deadline"));
        assert!(svg.contains("#1 completed"));
        // byte-stable
        assert_eq!(to_svg(&dump), svg);
    }

    #[test]
    fn empty_dump_still_renders() {
        let rec = FlightRecorder::new(TraceConfig::default());
        let svg = to_svg(&rec.dump());
        assert!(svg.starts_with("<svg "));
        assert!(svg.contains("0 traces"));
    }

    #[test]
    fn row_cap_elides_but_notes() {
        let dump = dump_with(MAX_ROWS as u64 + 25);
        let svg = to_svg(&dump);
        assert!(svg.contains("25 rows elided"));
        assert_eq!(svg.matches("<text x=\"162\"").count(), MAX_ROWS);
    }
}
