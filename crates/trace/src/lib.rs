//! Deterministic per-request span tracing, flight recorder, and
//! run-artifact toolkit for the STCA serving plane.
//!
//! The serving loop replays arrivals on a virtual clock; this crate
//! records each request's story as a trace of stage spans, retains a
//! bounded window of them in a [`FlightRecorder`] (error-class traces
//! always, normal traces by seeded head-sampling), and turns dumps into
//! reviewable artifacts: Chrome `trace_event` JSON (Perfetto-loadable),
//! an SVG waterfall, and per-stage latency tables cross-checked against
//! the decision log.
//!
//! Determinism contract: trace ids, sampling verdicts, span boundaries,
//! and every artifact byte are pure functions of the run's seeds and
//! configuration — never the wall clock or thread schedule — so they are
//! bit-identical at any `--threads` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod chrome;
pub mod recorder;
pub mod report;
pub mod span;
pub mod svg;

pub use recorder::{
    active_dump, set_active, ActiveRecorderGuard, FlightRecorder, RecorderStats, TraceConfig,
    TraceDump,
};
pub use span::{AttrValue, Disposition, SpanRecord, Stage, Trace, TraceCtx};

use stca_fault::StcaError;
use std::path::Path;

/// Write a dump as Chrome `trace_event` JSON.
pub fn write_chrome_json(path: &Path, dump: &TraceDump) -> Result<(), StcaError> {
    std::fs::write(path, chrome::to_chrome_json(dump))
        .map_err(|e| StcaError::io(path.display().to_string(), e))
}

/// Write a dump as an SVG waterfall.
pub fn write_svg(path: &Path, dump: &TraceDump) -> Result<(), StcaError> {
    std::fs::write(path, svg::to_svg(dump))
        .map_err(|e| StcaError::io(path.display().to_string(), e))
}

/// Read and schema-validate a Chrome trace JSON file back into a dump.
pub fn read_chrome_json(path: &Path) -> Result<TraceDump, StcaError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| StcaError::io(path.display().to_string(), e))?;
    chrome::from_chrome_json(&text)
        .map_err(|e| StcaError::invalid_input(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Disposition;

    #[test]
    fn file_round_trip() {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        let mut ctx = rec.begin(0, 0.0);
        ctx.push_span(Stage::QueueWait, 0.0, 0.5);
        rec.record(ctx.finish(Disposition::Completed, 0.7));
        let dump = rec.dump();

        let dir = std::env::temp_dir().join("stca_trace_lib_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let json = dir.join("t.json");
        let svg = dir.join("t.svg");
        write_chrome_json(&json, &dump).expect("writes json");
        write_svg(&svg, &dump).expect("writes svg");
        assert_eq!(read_chrome_json(&json).expect("round-trips"), dump);
        assert!(std::fs::read_to_string(&svg)
            .expect("svg readable")
            .starts_with("<svg "));
        std::fs::remove_dir_all(&dir).ok();
    }
}
