//! Chrome `trace_event` JSON export/import for flight-recorder dumps.
//!
//! One artifact format serves two masters: the emitted JSON loads
//! directly in `about:tracing` / Perfetto (spans become complete events
//! on per-server tracks), and `stca trace report` / `trace_check` parse
//! the same file back losslessly. Timestamps are virtual seconds scaled
//! to microseconds (the unit Chrome expects); trace ids are rendered as
//! hex strings because JSON numbers cannot hold a full `u64`.
//!
//! Layout:
//!
//! ```json
//! {
//!   "traceEvents": [ {"name":"predict","ph":"X","ts":..,"dur":..,
//!                     "pid":1,"tid":..,"cat":"completed",
//!                     "args":{"seq":..,"trace_id":"0x..",..}}, .. ],
//!   "displayTimeUnit": "ms",
//!   "stca": { "seed":.., "sample_every":.., "stats":{..},
//!             "traces":[ {per-trace metadata}, .. ] }
//! }
//! ```
//!
//! Span payloads live only in `traceEvents`; per-trace metadata
//! (disposition, flags, sampling verdict) lives only under
//! `stca.traces`; import joins the two on `seq`.

use crate::recorder::{RecorderStats, TraceDump};
use crate::span::{AttrValue, Disposition, SpanRecord, Stage, Trace};
use stca_obs::json::Value;
use std::collections::BTreeMap;

/// Virtual seconds → Chrome microseconds.
const US_PER_S: f64 = 1e6;

/// Span argument keys the exporter/importer understand. Import interns
/// arg keys against this table (span args use `&'static str` keys);
/// unknown keys are dropped with a validation note rather than leaked.
pub const KNOWN_ARG_KEYS: [&str; 16] = [
    "mode",
    "tier",
    "verdict",
    "ea",
    "timeout_idx",
    "timeout_s",
    "applied",
    "queue_depth",
    "deadline_s",
    "resp_s",
    "stage",
    "retries",
    "shard",
    "from_shard",
    "to_shard",
    "hops",
];

fn intern_arg_key(key: &str) -> Option<&'static str> {
    KNOWN_ARG_KEYS.iter().find(|k| **k == key).copied()
}

fn hex_id(id: u64) -> String {
    format!("0x{id:016x}")
}

fn parse_hex_id(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Track id for a trace: server k → tid k+1; never dispatched → tid 0.
fn tid_for(trace: &Trace) -> f64 {
    trace.server.map_or(0.0, |s| s as f64 + 1.0)
}

fn span_event(trace: &Trace, span: &SpanRecord) -> Value {
    let mut args = vec![
        ("seq", Value::Number(trace.seq as f64)),
        ("trace_id", Value::String(hex_id(trace.trace_id))),
    ];
    for (k, v) in &span.args {
        let val = match v {
            AttrValue::Num(n) => Value::Number(*n),
            AttrValue::Text(t) => Value::String(t.clone()),
        };
        args.push((k, val));
    }
    obj(vec![
        ("name", Value::String(span.stage.name().to_string())),
        ("cat", Value::String(trace.disposition.name().to_string())),
        ("ph", Value::String("X".to_string())),
        ("ts", Value::Number(span.start_s * US_PER_S)),
        ("dur", Value::Number(span.duration_s() * US_PER_S)),
        ("pid", Value::Number(1.0)),
        ("tid", Value::Number(tid_for(trace))),
        ("args", obj(args)),
    ])
}

fn thread_name_event(tid: f64, name: &str) -> Value {
    obj(vec![
        ("name", Value::String("thread_name".to_string())),
        ("ph", Value::String("M".to_string())),
        ("pid", Value::Number(1.0)),
        ("tid", Value::Number(tid)),
        ("args", obj(vec![("name", Value::String(name.to_string()))])),
    ])
}

fn trace_meta(trace: &Trace) -> Value {
    obj(vec![
        ("seq", Value::Number(trace.seq as f64)),
        ("trace_id", Value::String(hex_id(trace.trace_id))),
        ("arrival_s", Value::Number(trace.arrival_s)),
        ("end_s", Value::Number(trace.end_s)),
        (
            "server",
            trace
                .server
                .map_or(Value::Null, |s| Value::Number(s as f64)),
        ),
        (
            "disposition",
            Value::String(trace.disposition.name().to_string()),
        ),
        ("watchdog_retry", Value::Bool(trace.watchdog_retry)),
        ("breaker_transition", Value::Bool(trace.breaker_transition)),
        ("sampled", Value::Bool(trace.sampled)),
    ])
}

fn stats_obj(stats: &RecorderStats) -> Value {
    obj(vec![
        ("started", Value::Number(stats.started as f64)),
        ("retained_error", Value::Number(stats.retained_error as f64)),
        (
            "retained_normal",
            Value::Number(stats.retained_normal as f64),
        ),
        ("evicted_normal", Value::Number(stats.evicted_normal as f64)),
        ("dropped_error", Value::Number(stats.dropped_error as f64)),
        ("unsampled", Value::Number(stats.unsampled as f64)),
    ])
}

/// Render a flight-recorder dump as a Chrome `trace_event` JSON document.
pub fn to_chrome_json(dump: &TraceDump) -> String {
    let mut events = Vec::new();
    let mut tids: Vec<u64> = dump.traces.iter().map(|t| tid_for(t) as u64).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let label = if tid == 0 {
            "queue / shed".to_string()
        } else {
            format!("server {}", tid - 1)
        };
        events.push(thread_name_event(tid as f64, &label));
    }
    for trace in &dump.traces {
        for span in &trace.spans {
            events.push(span_event(trace, span));
        }
    }
    let stca = obj(vec![
        ("seed", Value::Number(dump.seed as f64)),
        ("sample_every", Value::Number(dump.sample_every as f64)),
        ("stats", stats_obj(&dump.stats)),
        (
            "traces",
            Value::Array(dump.traces.iter().map(trace_meta).collect()),
        ),
    ]);
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ms".to_string())),
        ("stca", stca),
    ])
    .to_string()
}

/// A schema violation found while parsing/validating a Chrome trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chrome trace schema: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, SchemaError> {
    v.get(key)
        .ok_or_else(|| SchemaError(format!("{ctx}: missing key {key:?}")))
}

fn num(v: &Value, key: &str, ctx: &str) -> Result<f64, SchemaError> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| SchemaError(format!("{ctx}: {key:?} is not a number")))
}

fn text<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a str, SchemaError> {
    match field(v, key, ctx)? {
        Value::String(s) => Ok(s),
        _ => Err(SchemaError(format!("{ctx}: {key:?} is not a string"))),
    }
}

fn boolean(v: &Value, key: &str, ctx: &str) -> Result<bool, SchemaError> {
    match field(v, key, ctx)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(SchemaError(format!("{ctx}: {key:?} is not a bool"))),
    }
}

/// Parse and schema-validate a Chrome trace document back into a
/// [`TraceDump`]. This is the checker `trace_check` and `stca trace
/// report` share: every event must be a metadata event or a complete
/// (`ph:"X"`) event with a known stage name, microsecond timestamps,
/// and args joining it to a trace declared under `stca.traces`.
pub fn from_chrome_json(text_in: &str) -> Result<TraceDump, SchemaError> {
    let root = Value::parse(text_in).map_err(|e| SchemaError(e.to_string()))?;
    let events = match field(&root, "traceEvents", "root")? {
        Value::Array(items) => items,
        _ => return Err(SchemaError("root: traceEvents is not an array".into())),
    };
    let stca = field(&root, "stca", "root")?;
    let seed = num(stca, "seed", "stca")? as u64;
    let sample_every = num(stca, "sample_every", "stca")? as u64;
    let stats_v = field(stca, "stats", "stca")?;
    let stats = RecorderStats {
        started: num(stats_v, "started", "stca.stats")? as u64,
        retained_error: num(stats_v, "retained_error", "stca.stats")? as u64,
        retained_normal: num(stats_v, "retained_normal", "stca.stats")? as u64,
        evicted_normal: num(stats_v, "evicted_normal", "stca.stats")? as u64,
        dropped_error: num(stats_v, "dropped_error", "stca.stats")? as u64,
        unsampled: num(stats_v, "unsampled", "stca.stats")? as u64,
    };

    let mut by_seq: BTreeMap<u64, Trace> = BTreeMap::new();
    let metas = match field(stca, "traces", "stca")? {
        Value::Array(items) => items,
        _ => return Err(SchemaError("stca.traces is not an array".into())),
    };
    for (i, m) in metas.iter().enumerate() {
        let ctx = format!("stca.traces[{i}]");
        let seq = num(m, "seq", &ctx)? as u64;
        let disposition = Disposition::parse(text(m, "disposition", &ctx)?)
            .ok_or_else(|| SchemaError(format!("{ctx}: unknown disposition")))?;
        let server = match field(m, "server", &ctx)? {
            Value::Null => None,
            Value::Number(n) => Some(*n as usize),
            _ => return Err(SchemaError(format!("{ctx}: server must be null or number"))),
        };
        let trace = Trace {
            trace_id: parse_hex_id(text(m, "trace_id", &ctx)?)
                .ok_or_else(|| SchemaError(format!("{ctx}: bad trace_id")))?,
            seq,
            arrival_s: num(m, "arrival_s", &ctx)?,
            end_s: num(m, "end_s", &ctx)?,
            server,
            disposition,
            watchdog_retry: boolean(m, "watchdog_retry", &ctx)?,
            breaker_transition: boolean(m, "breaker_transition", &ctx)?,
            sampled: boolean(m, "sampled", &ctx)?,
            spans: Vec::new(),
        };
        if by_seq.insert(seq, trace).is_some() {
            return Err(SchemaError(format!("{ctx}: duplicate seq {seq}")));
        }
    }

    for (i, e) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let ph = text(e, "ph", &ctx)?;
        if ph == "M" {
            continue; // metadata (thread names)
        }
        if ph != "X" {
            return Err(SchemaError(format!("{ctx}: unsupported phase {ph:?}")));
        }
        let stage = Stage::parse(text(e, "name", &ctx)?)
            .ok_or_else(|| SchemaError(format!("{ctx}: unknown stage name")))?;
        let ts = num(e, "ts", &ctx)?;
        let dur = num(e, "dur", &ctx)?;
        if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
            return Err(SchemaError(format!("{ctx}: bad ts/dur")));
        }
        let args = field(e, "args", &ctx)?;
        let seq = num(args, "seq", &ctx)? as u64;
        let event_id = parse_hex_id(text(args, "trace_id", &ctx)?)
            .ok_or_else(|| SchemaError(format!("{ctx}: bad args.trace_id")))?;
        let trace = by_seq
            .get_mut(&seq)
            .ok_or_else(|| SchemaError(format!("{ctx}: seq {seq} not in stca.traces")))?;
        if trace.trace_id != event_id {
            return Err(SchemaError(format!(
                "{ctx}: trace_id mismatch for seq {seq}"
            )));
        }
        let mut span = SpanRecord {
            stage,
            start_s: ts / US_PER_S,
            end_s: (ts + dur) / US_PER_S,
            args: Vec::new(),
        };
        if let Value::Object(map) = args {
            for (k, v) in map {
                if k == "seq" || k == "trace_id" {
                    continue;
                }
                if let Some(key) = intern_arg_key(k) {
                    let attr = match v {
                        Value::Number(n) => AttrValue::Num(*n),
                        Value::String(s) => AttrValue::Text(s.clone()),
                        _ => return Err(SchemaError(format!("{ctx}: arg {k:?} must be scalar"))),
                    };
                    span.args.push((key, attr));
                }
            }
        }
        trace.spans.push(span);
    }

    let mut traces: Vec<Trace> = by_seq.into_values().collect();
    for t in &mut traces {
        t.spans
            .sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.stage.cmp(&b.stage)));
        if t.spans.is_empty() {
            return Err(SchemaError(format!("trace seq {} has no spans", t.seq)));
        }
    }
    Ok(TraceDump {
        seed,
        sample_every,
        stats,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceConfig};
    use crate::span::{Disposition, Stage};

    fn sample_dump() -> TraceDump {
        let mut rec = FlightRecorder::new(TraceConfig {
            seed: 7,
            sample_every: 1,
            ring_capacity: 16,
            error_capacity: 16,
        });
        let mut ctx = rec.begin(0, 0.0);
        ctx.push_span(Stage::QueueWait, 0.0, 0.25)
            .args
            .push(("queue_depth", AttrValue::Num(3.0)));
        ctx.set_server(2);
        let p = ctx.push_span(Stage::Predict, 0.25, 0.75);
        p.args.push(("mode", AttrValue::Text("strict".into())));
        p.args.push(("tier", AttrValue::Num(0.0)));
        ctx.push_span(Stage::Decide, 0.75, 0.8);
        let t = ctx.finish(Disposition::Completed, 0.8);
        rec.record(t);

        let mut ctx = rec.begin(1, 0.1);
        ctx.flag_breaker_transition();
        let t = ctx.finish(Disposition::ShedOverload, 0.1);
        rec.record(t);
        rec.dump()
    }

    #[test]
    fn chrome_round_trip_is_lossless() {
        let dump = sample_dump();
        let json = to_chrome_json(&dump);
        let back = from_chrome_json(&json).expect("valid schema");
        assert_eq!(back, dump);
        // and the rendered text itself is stable
        assert_eq!(to_chrome_json(&back), json);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        let dump = sample_dump();
        let good = to_chrome_json(&dump);
        assert!(from_chrome_json("{}").is_err());
        assert!(from_chrome_json("not json").is_err());
        assert!(from_chrome_json(&good.replace("\"predict\"", "\"mystery\"")).is_err());
        assert!(from_chrome_json(&good.replace("shed_overload", "vanished")).is_err());
        // event referencing an undeclared seq (args objects only — the
        // stca.traces meta entry spells seq differently in key order)
        assert!(
            from_chrome_json(&good.replace("\"args\":{\"seq\":1", "\"args\":{\"seq\":99")).is_err()
        );
    }

    #[test]
    fn timestamps_are_microseconds() {
        let dump = sample_dump();
        let json = to_chrome_json(&dump);
        let root = Value::parse(&json).expect("parses");
        let events = match root.get("traceEvents") {
            Some(Value::Array(items)) => items,
            _ => panic!("traceEvents missing"),
        };
        let predict = events
            .iter()
            .find(|e| matches!(e.get("name"), Some(Value::String(s)) if s == "predict"))
            .expect("predict event");
        assert_eq!(predict.get("ts").and_then(Value::as_f64), Some(250_000.0));
        assert_eq!(predict.get("dur").and_then(Value::as_f64), Some(500_000.0));
    }
}
