//! The flight recorder: bounded retention of request traces with an
//! error-first eviction policy.
//!
//! Two retention classes:
//!
//! * **normal** — completed-in-deadline traces that won the seeded
//!   head-sampling lottery. Kept in a bounded ring: the newest
//!   `ring_capacity` survive, older ones are evicted (counted).
//! * **error** — every trace that ends in shed / deadline-exceeded /
//!   drain, tripped the watchdog, or saw a breaker transition. These
//!   bypass sampling entirely and are *never* evicted to make room for
//!   normal traffic; only the (large) `error_capacity` bounds them, and
//!   overflow is dropped-and-counted rather than silently lost.
//!
//! The sampling decision is a pure function of `(seed, seq)` — never the
//! wall clock, never an atomic counter — so the retained trace set is
//! bit-identical at any `--threads` value.

use crate::span::{Trace, TraceCtx};
use stca_util::rng::splitmix64;

const SAMPLE_SALT: u64 = 0x005A_3CE1_7AD0_u64;
const ID_SALT: u64 = 0x007A_CE1D_5EED_u64;

/// Flight-recorder tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Seed for trace ids and the head-sampling lottery.
    pub seed: u64,
    /// Head-sample one request in `sample_every` (1 = every request,
    /// 0 = none; error-class traces are always retained regardless).
    pub sample_every: u64,
    /// Ring capacity for sampled normal traces (newest win).
    pub ring_capacity: usize,
    /// Upper bound on retained error traces (overflow is counted).
    pub error_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0x7ACE,
            sample_every: 64,
            ring_capacity: 256,
            error_capacity: 1 << 22,
        }
    }
}

impl TraceConfig {
    /// Deterministic nonzero trace id for request `seq`.
    pub fn trace_id(&self, seq: u64) -> u64 {
        let mut s = self.seed ^ ID_SALT ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let id = splitmix64(&mut s);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Head-sampling verdict for request `seq`: a pure function of
    /// `(seed, seq)`, bit-identical at any thread count.
    pub fn sampled(&self, seq: u64) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        let mut s = self.seed ^ SAMPLE_SALT ^ seq.wrapping_mul(0xD1B5_4A32_D192_ED03);
        splitmix64(&mut s).is_multiple_of(self.sample_every)
    }
}

/// Retention counters for one recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Traces begun (one per offered request when tracing is on).
    pub started: u64,
    /// Error-class traces currently retained.
    pub retained_error: u64,
    /// Sampled normal traces currently retained.
    pub retained_normal: u64,
    /// Sampled normal traces evicted by the ring bound.
    pub evicted_normal: u64,
    /// Error traces dropped because `error_capacity` was hit.
    pub dropped_error: u64,
    /// Normal traces that lost the sampling lottery (not retained).
    pub unsampled: u64,
}

/// The recorder itself. No interior synchronization: the serving loop's
/// serial phase is the only writer. When out-of-band dumps are wanted,
/// wrap it in a mutex and publish it via [`set_active`] — locks there are
/// uncontended in normal operation.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cfg: TraceConfig,
    normal: std::collections::VecDeque<Trace>,
    errors: Vec<Trace>,
    started: u64,
    evicted_normal: u64,
    dropped_error: u64,
    unsampled: u64,
}

impl FlightRecorder {
    /// Empty recorder with the given tunables.
    pub fn new(cfg: TraceConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            normal: std::collections::VecDeque::new(),
            errors: Vec::new(),
            started: 0,
            evicted_normal: 0,
            dropped_error: 0,
            unsampled: 0,
        }
    }

    /// The configuration this recorder runs under.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Open a trace context for request `seq` arriving at `arrival_s`.
    pub fn begin(&mut self, seq: u64, arrival_s: f64) -> TraceCtx {
        self.started += 1;
        TraceCtx::new(
            self.cfg.trace_id(seq),
            seq,
            arrival_s,
            self.cfg.sampled(seq),
        )
    }

    /// File a finished trace under the retention policy.
    pub fn record(&mut self, trace: Trace) {
        if trace.is_error_class() {
            if self.errors.len() < self.cfg.error_capacity {
                self.errors.push(trace);
            } else {
                self.dropped_error += 1;
            }
        } else if trace.sampled {
            if self.cfg.ring_capacity == 0 {
                self.evicted_normal += 1;
                return;
            }
            if self.normal.len() >= self.cfg.ring_capacity {
                self.normal.pop_front();
                self.evicted_normal += 1;
            }
            self.normal.push_back(trace);
        } else {
            self.unsampled += 1;
        }
    }

    /// Point-in-time retention counters.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            started: self.started,
            retained_error: self.errors.len() as u64,
            retained_normal: self.normal.len() as u64,
            evicted_normal: self.evicted_normal,
            dropped_error: self.dropped_error,
            unsampled: self.unsampled,
        }
    }

    /// Snapshot every retained trace (errors + sampled ring), sorted by
    /// request sequence number, plus the stats — the unit every artifact
    /// (Chrome JSON, SVG, report tables) is generated from.
    pub fn dump(&self) -> TraceDump {
        let mut traces: Vec<Trace> = self
            .errors
            .iter()
            .chain(self.normal.iter())
            .cloned()
            .collect();
        traces.sort_by_key(|t| t.seq);
        TraceDump {
            seed: self.cfg.seed,
            sample_every: self.cfg.sample_every,
            stats: self.stats(),
            traces,
        }
    }
}

fn active_slot(
) -> &'static std::sync::Mutex<Option<std::sync::Arc<std::sync::Mutex<FlightRecorder>>>> {
    static ACTIVE: std::sync::OnceLock<
        std::sync::Mutex<Option<std::sync::Arc<std::sync::Mutex<FlightRecorder>>>>,
    > = std::sync::OnceLock::new();
    ACTIVE.get_or_init(|| std::sync::Mutex::new(None))
}

/// Clears the process-wide active recorder when dropped.
#[must_use = "dropping the guard immediately deactivates the recorder"]
pub struct ActiveRecorderGuard(());

impl Drop for ActiveRecorderGuard {
    fn drop(&mut self) {
        if let Ok(mut slot) = active_slot().lock() {
            *slot = None;
        }
    }
}

/// Publish `rec` as the process-wide active recorder so out-of-band
/// diagnostics (the CLI's error-dump hook, a signal handler) can snapshot
/// it mid-run via [`active_dump`]. The serving loop installs its recorder
/// for the duration of a traced run; the returned guard clears the slot.
/// A second concurrent traced run replaces the first — last writer wins,
/// which is fine for the one-serving-loop-per-process CLI.
pub fn set_active(rec: std::sync::Arc<std::sync::Mutex<FlightRecorder>>) -> ActiveRecorderGuard {
    if let Ok(mut slot) = active_slot().lock() {
        *slot = Some(rec);
    }
    ActiveRecorderGuard(())
}

/// Snapshot the active recorder, if a traced run is in flight.
pub fn active_dump() -> Option<TraceDump> {
    let slot = active_slot().lock().ok()?;
    let rec = slot.as_ref()?;
    let rec = rec.lock().ok()?;
    Some(rec.dump())
}

/// A serializable snapshot of a flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDump {
    /// Trace seed the ids and sampling derive from.
    pub seed: u64,
    /// Head-sampling rate the run used.
    pub sample_every: u64,
    /// Retention counters at dump time.
    pub stats: RecorderStats,
    /// Retained traces, sorted by sequence number.
    pub traces: Vec<Trace>,
}

impl TraceDump {
    /// Look up a retained trace by request sequence number.
    pub fn by_seq(&self, seq: u64) -> Option<&Trace> {
        self.traces
            .binary_search_by_key(&seq, |t| t.seq)
            .ok()
            .map(|i| &self.traces[i])
    }

    /// Merge per-shard dumps into one fleet dump: traces are concatenated
    /// and re-sorted by sequence number, retention counters are summed.
    /// Deterministic for any input order of equal content — the fleet
    /// always passes shards in id order, and each request terminates in
    /// exactly one recorder, so seqs stay unique and `by_seq` keeps
    /// working. `seed`/`sample_every` come from the first dump (all shards
    /// share one `TraceConfig`). Returns `None` for an empty input.
    pub fn merge(dumps: impl IntoIterator<Item = TraceDump>) -> Option<TraceDump> {
        let mut iter = dumps.into_iter();
        let mut out = iter.next()?;
        for d in iter {
            debug_assert_eq!(d.seed, out.seed, "shards must share one trace seed");
            debug_assert_eq!(d.sample_every, out.sample_every);
            out.stats.started += d.stats.started;
            out.stats.retained_error += d.stats.retained_error;
            out.stats.retained_normal += d.stats.retained_normal;
            out.stats.evicted_normal += d.stats.evicted_normal;
            out.stats.dropped_error += d.stats.dropped_error;
            out.stats.unsampled += d.stats.unsampled;
            out.traces.extend(d.traces);
        }
        out.traces.sort_by_key(|t| t.seq);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Disposition;

    fn cfg() -> TraceConfig {
        TraceConfig {
            seed: 99,
            sample_every: 2,
            ring_capacity: 4,
            error_capacity: 8,
        }
    }

    fn finish(rec: &mut FlightRecorder, seq: u64, disp: Disposition) {
        let ctx = rec.begin(seq, seq as f64);
        let t = ctx.finish(disp, seq as f64 + 0.5);
        rec.record(t);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_n() {
        let c = cfg();
        let picks: Vec<bool> = (0..10_000).map(|s| c.sampled(s)).collect();
        let again: Vec<bool> = (0..10_000).map(|s| c.sampled(s)).collect();
        assert_eq!(picks, again);
        let hits = picks.iter().filter(|&&b| b).count();
        assert!(
            (4000..6000).contains(&hits),
            "1-in-2 sampling: {hits}/10000"
        );
        // a different seed draws a different lottery
        let other = TraceConfig { seed: 100, ..c };
        assert_ne!(
            picks,
            (0..10_000).map(|s| other.sampled(s)).collect::<Vec<_>>()
        );
        // rate 0 disables sampling
        let off = TraceConfig {
            sample_every: 0,
            ..c
        };
        assert!((0..1000).all(|s| !off.sampled(s)));
    }

    #[test]
    fn trace_ids_are_nonzero_unique_and_stable() {
        let c = cfg();
        let ids: Vec<u64> = (0..1000).map(|s| c.trace_id(s)).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "1000 ids collide");
        assert_eq!(ids, (0..1000).map(|s| c.trace_id(s)).collect::<Vec<_>>());
    }

    #[test]
    fn errors_survive_normal_ring_churn() {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 1, // sample everything
            ring_capacity: 4,
            ..cfg()
        });
        // two early errors, then a flood of normal traffic
        finish(&mut rec, 0, Disposition::ShedOverload);
        finish(&mut rec, 1, Disposition::DeadlineExceeded);
        for seq in 2..100 {
            finish(&mut rec, seq, Disposition::Completed);
        }
        let dump = rec.dump();
        assert!(
            dump.by_seq(0).is_some(),
            "error trace evicted by normal churn"
        );
        assert!(dump.by_seq(1).is_some());
        let stats = rec.stats();
        assert_eq!(stats.retained_error, 2);
        assert_eq!(stats.retained_normal, 4, "ring keeps the newest 4");
        assert_eq!(stats.evicted_normal, 94);
        assert_eq!(stats.started, 100);
        // the ring kept the *newest* normals
        for seq in 96..100 {
            assert!(dump.by_seq(seq).is_some());
        }
    }

    #[test]
    fn error_capacity_drops_and_counts_overflow() {
        let mut rec = FlightRecorder::new(cfg()); // error_capacity 8
        for seq in 0..20 {
            finish(&mut rec, seq, Disposition::ShedDeadline);
        }
        let stats = rec.stats();
        assert_eq!(stats.retained_error, 8);
        assert_eq!(stats.dropped_error, 12);
    }

    #[test]
    fn active_recorder_is_dumpable_until_the_guard_drops() {
        use std::sync::{Arc, Mutex};
        let rec = Arc::new(Mutex::new(FlightRecorder::new(TraceConfig {
            sample_every: 1,
            ..cfg()
        })));
        let guard = set_active(Arc::clone(&rec));
        {
            let mut r = rec.lock().expect("unpoisoned");
            let ctx = r.begin(0, 0.0);
            let t = ctx.finish(Disposition::ShedFailed, 0.25);
            r.record(t);
        }
        let dump = active_dump().expect("recorder is active");
        assert_eq!(dump.traces.len(), 1);
        assert_eq!(dump.stats.retained_error, 1);
        drop(guard);
        assert!(active_dump().is_none(), "guard must clear the slot");
    }

    #[test]
    fn merged_dump_sums_stats_and_stays_seq_sorted() {
        let mk = |seqs: &[u64]| {
            let mut rec = FlightRecorder::new(TraceConfig {
                sample_every: 1,
                ..cfg()
            });
            for &s in seqs {
                finish(&mut rec, s, Disposition::ShedDeadline);
            }
            rec.dump()
        };
        let merged = TraceDump::merge([mk(&[9, 2]), mk(&[5]), mk(&[0, 7])]).expect("non-empty");
        let seqs: Vec<u64> = merged.traces.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 2, 5, 7, 9]);
        assert_eq!(merged.stats.started, 5);
        assert_eq!(merged.stats.retained_error, 5);
        assert_eq!(merged.by_seq(7).map(|t| t.seq), Some(7));
        assert!(TraceDump::merge(std::iter::empty()).is_none());
    }

    #[test]
    fn dump_is_seq_sorted_and_indexable() {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 1,
            ..cfg()
        });
        finish(&mut rec, 7, Disposition::Completed);
        finish(&mut rec, 3, Disposition::ShedFailed);
        finish(&mut rec, 5, Disposition::Completed);
        let dump = rec.dump();
        let seqs: Vec<u64> = dump.traces.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![3, 5, 7]);
        assert_eq!(
            dump.by_seq(5).map(|t| t.disposition),
            Some(Disposition::Completed)
        );
        assert!(dump.by_seq(4).is_none());
    }
}
