//! `stca trace report`: per-stage latency breakdown tables from trace
//! dumps, and the decision-log ↔ flight-recorder cross-check.
//!
//! The cross-check is the retention invariant the soak bench asserts:
//! every decision-log line with an error disposition (`shed_overload`,
//! `shed_deadline`, `failed`, `drained`) must have a retained trace
//! whose disposition agrees. Completed requests are only retained when
//! head-sampled, so `disp=ok` lines are checked one-way (if a trace is
//! retained it must agree, absence is fine).

use crate::recorder::TraceDump;
use crate::span::{Disposition, Stage};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate span timings for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Spans observed.
    pub count: u64,
    /// Sum of span durations, virtual seconds.
    pub total_s: f64,
    /// Longest span, virtual seconds.
    pub max_s: f64,
    /// Median span duration, virtual seconds.
    pub p50_s: f64,
    /// 99th-percentile span duration, virtual seconds.
    pub p99_s: f64,
}

impl StageStats {
    /// Mean span duration, virtual seconds.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Per-stage timing breakdown over every retained trace.
pub fn stage_breakdown(dump: &TraceDump) -> BTreeMap<Stage, StageStats> {
    let mut durations: BTreeMap<Stage, Vec<f64>> = BTreeMap::new();
    for trace in &dump.traces {
        for span in &trace.spans {
            durations
                .entry(span.stage)
                .or_default()
                .push(span.duration_s());
        }
    }
    durations
        .into_iter()
        .map(|(stage, mut ds)| {
            ds.sort_by(f64::total_cmp);
            let stats = StageStats {
                count: ds.len() as u64,
                total_s: ds.iter().sum(),
                max_s: ds.last().copied().unwrap_or(0.0),
                p50_s: quantile_sorted(&ds, 0.50),
                p99_s: quantile_sorted(&ds, 0.99),
            };
            (stage, stats)
        })
        .collect()
}

/// Disposition counts over the retained traces.
pub fn disposition_counts(dump: &TraceDump) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for trace in &dump.traces {
        *counts.entry(trace.disposition.name()).or_insert(0) += 1;
    }
    counts
}

fn fmt_ms(s: f64) -> String {
    format!("{:.3}", s * 1e3)
}

/// Render the human-readable report: retention stats, disposition
/// counts, and the per-stage latency table. Deterministic output.
pub fn render(dump: &TraceDump) -> String {
    let mut out = String::new();
    let st = &dump.stats;
    let _ = writeln!(
        out,
        "trace report — seed {} · 1/{} sampling · {} retained \
         ({} error-class, {} sampled normal; {} evicted, {} error drops)",
        dump.seed,
        dump.sample_every.max(1),
        dump.traces.len(),
        st.retained_error,
        st.retained_normal,
        st.evicted_normal,
        st.dropped_error,
    );
    out.push('\n');

    out.push_str("dispositions (retained traces)\n");
    for (name, count) in disposition_counts(dump) {
        let _ = writeln!(out, "  {name:<18} {count:>8}");
    }
    let flagged_retry = dump.traces.iter().filter(|t| t.watchdog_retry).count();
    let flagged_breaker = dump.traces.iter().filter(|t| t.breaker_transition).count();
    let _ = writeln!(out, "  {:<18} {flagged_retry:>8}", "~watchdog_retry");
    let _ = writeln!(out, "  {:<18} {flagged_breaker:>8}", "~breaker_transition");
    out.push('\n');

    out.push_str("stage                 spans   mean_ms    p50_ms    p99_ms    max_ms  total_s\n");
    let breakdown = stage_breakdown(dump);
    for stage in Stage::ALL {
        let Some(s) = breakdown.get(&stage) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8.3}",
            stage.name(),
            s.count,
            fmt_ms(s.mean_s()),
            fmt_ms(s.p50_s),
            fmt_ms(s.p99_s),
            fmt_ms(s.max_s),
            s.total_s,
        );
    }

    // slowest retained traces: the "clickable p99" view
    let mut by_total: Vec<_> = dump.traces.iter().collect();
    by_total.sort_by(|a, b| b.total_s().total_cmp(&a.total_s()).then(a.seq.cmp(&b.seq)));
    out.push('\n');
    out.push_str("slowest retained traces\n");
    for t in by_total.iter().take(5) {
        let _ = writeln!(
            out,
            "  seq={:<8} trace=0x{:016x} {:<17} total={}ms",
            t.seq,
            t.trace_id,
            t.disposition.name(),
            fmt_ms(t.total_s()),
        );
    }
    out
}

/// One decision-log line, parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogLine {
    /// Request sequence number.
    pub seq: u64,
    /// Disposition the serving loop assigned.
    pub disposition: Disposition,
}

/// Parse a serving-loop decision-log line (`seq=N disp=TOKEN ...`).
/// `disp=ok` maps to [`Disposition::Completed`] (the log does not split
/// out deadline-exceeded completions); `disp=failed` maps to
/// [`Disposition::ShedFailed`].
pub fn parse_log_line(line: &str) -> Option<LogLine> {
    let mut seq = None;
    let mut disp = None;
    for tok in line.split_ascii_whitespace() {
        if let Some(v) = tok.strip_prefix("seq=") {
            seq = v.parse::<u64>().ok();
        } else if let Some(v) = tok.strip_prefix("disp=") {
            disp = match v {
                "ok" => Some(Disposition::Completed),
                "failed" => Some(Disposition::ShedFailed),
                other => Disposition::parse(other),
            };
        }
    }
    Some(LogLine {
        seq: seq?,
        disposition: disp?,
    })
}

/// Result of cross-checking a decision log against a trace dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCheck {
    /// Decision-log lines parsed.
    pub log_lines: u64,
    /// Error-disposition log lines that had a retained trace.
    pub error_matched: u64,
    /// Error-disposition seqs with NO retained trace (invariant breach).
    pub missing: Vec<u64>,
    /// Seqs where the retained disposition disagrees with the log
    /// (completed↔deadline_exceeded disagreements are allowed).
    pub mismatched: Vec<u64>,
}

impl CrossCheck {
    /// The retention invariant holds: every error-class decision has a
    /// retained, agreeing trace.
    pub fn holds(&self) -> bool {
        self.missing.is_empty() && self.mismatched.is_empty()
    }
}

fn agrees(logged: Disposition, retained: Disposition) -> bool {
    match logged {
        // the log's `ok` covers both completion flavours
        Disposition::Completed => matches!(
            retained,
            Disposition::Completed | Disposition::DeadlineExceeded
        ),
        other => retained == other,
    }
}

/// Check the retention invariant: every error-disposition log line has a
/// retained trace with an agreeing disposition. Non-log lines are
/// ignored so the whole decision log can be fed in unfiltered.
pub fn cross_check<'a>(dump: &TraceDump, lines: impl Iterator<Item = &'a str>) -> CrossCheck {
    let mut out = CrossCheck::default();
    for line in lines {
        let Some(parsed) = parse_log_line(line) else {
            continue;
        };
        out.log_lines += 1;
        match dump.by_seq(parsed.seq) {
            Some(trace) => {
                if !agrees(parsed.disposition, trace.disposition) {
                    out.mismatched.push(parsed.seq);
                } else if parsed.disposition.is_error() {
                    out.error_matched += 1;
                }
            }
            None => {
                if parsed.disposition.is_error() {
                    out.missing.push(parsed.seq);
                }
                // unretained `ok` lines are expected: head sampling
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceConfig};
    use crate::span::Stage;

    fn dump() -> TraceDump {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 1,
            ring_capacity: 64,
            error_capacity: 64,
            ..TraceConfig::default()
        });
        for seq in 0..6u64 {
            let t0 = seq as f64;
            let mut ctx = rec.begin(seq, t0);
            ctx.push_span(Stage::QueueWait, t0, t0 + 0.010);
            ctx.push_span(Stage::Predict, t0 + 0.010, t0 + 0.014);
            let disp = if seq == 3 {
                Disposition::ShedDeadline
            } else {
                Disposition::Completed
            };
            rec.record(ctx.finish(disp, t0 + 0.016));
        }
        rec.dump()
    }

    #[test]
    fn stage_breakdown_aggregates_durations() {
        let b = stage_breakdown(&dump());
        let qw = b.get(&Stage::QueueWait).expect("queue_wait spans");
        assert_eq!(qw.count, 6);
        assert!((qw.mean_s() - 0.010).abs() < 1e-12);
        assert!((qw.max_s - 0.010).abs() < 1e-12);
        let p = b.get(&Stage::Predict).expect("predict spans");
        assert!((p.total_s - 6.0 * 0.004).abs() < 1e-12);
    }

    #[test]
    fn render_is_deterministic_and_mentions_stages() {
        let d = dump();
        let text = render(&d);
        assert_eq!(render(&d), text);
        assert!(text.contains("queue_wait"));
        assert!(text.contains("shed_deadline"));
        assert!(text.contains("slowest retained traces"));
    }

    #[test]
    fn log_line_parsing() {
        assert_eq!(
            parse_log_line("seq=42 disp=ok tier=0 ea=3ff0 t=1 applied=1 resp=3f50"),
            Some(LogLine {
                seq: 42,
                disposition: Disposition::Completed
            })
        );
        assert_eq!(
            parse_log_line("seq=7 disp=failed stage=decide"),
            Some(LogLine {
                seq: 7,
                disposition: Disposition::ShedFailed
            })
        );
        assert_eq!(parse_log_line("noise"), None);
        assert_eq!(parse_log_line("seq=1 disp=???"), None);
    }

    #[test]
    fn cross_check_passes_on_consistent_log() {
        let d = dump();
        let log = [
            "seq=0 disp=ok",
            "seq=3 disp=shed_deadline stage=queue",
            "seq=5 disp=ok",
            "not a log line",
        ];
        let cc = cross_check(&d, log.iter().copied());
        assert!(cc.holds(), "{cc:?}");
        assert_eq!(cc.log_lines, 3);
        assert_eq!(cc.error_matched, 1);
    }

    #[test]
    fn cross_check_flags_missing_and_mismatched() {
        let d = dump();
        let log = [
            "seq=99 disp=drained",      // never retained
            "seq=3 disp=shed_overload", // retained as shed_deadline
            "seq=1 disp=ok",            // agrees
        ];
        let cc = cross_check(&d, log.iter().copied());
        assert!(!cc.holds());
        assert_eq!(cc.missing, vec![99]);
        assert_eq!(cc.mismatched, vec![3]);
    }

    #[test]
    fn unretained_ok_lines_are_not_violations() {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 0, // retain nothing normal
            ..TraceConfig::default()
        });
        let ctx = rec.begin(0, 0.0);
        rec.record(ctx.finish(Disposition::Completed, 0.1));
        let cc = cross_check(&rec.dump(), ["seq=0 disp=ok"].iter().copied());
        assert!(cc.holds());
    }
}
