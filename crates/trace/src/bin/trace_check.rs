//! `trace_check`: tiny schema validator for Chrome trace JSON artifacts.
//!
//! ```text
//! trace_check run.trace.json [more.json ...]
//! ```
//!
//! Parses each file with the same strict schema the `stca trace report`
//! importer uses, prints a one-line summary per file, and exits nonzero
//! on the first invalid artifact — the CI `trace-smoke` job gates on it.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::path::Path;
use std::process::ExitCode;

fn check(path: &Path) -> Result<String, String> {
    let dump = stca_trace::read_chrome_json(path).map_err(|e| e.to_string())?;
    let errors = dump.traces.iter().filter(|t| t.is_error_class()).count();
    let spans: usize = dump.traces.iter().map(|t| t.spans.len()).sum();
    Ok(format!(
        "{}: ok — {} traces ({} error-class), {} spans, seed {}, 1/{} sampling",
        path.display(),
        dump.traces.len(),
        errors,
        spans,
        dump.seed,
        dump.sample_every.max(1),
    ))
}

fn main() -> ExitCode {
    // a literal "--" is an option terminator, not a file
    let args: Vec<String> = std::env::args().skip(1).filter(|a| a != "--").collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: trace_check <trace.json> [more.json ...]");
        return ExitCode::from(2);
    }
    for arg in &args {
        match check(Path::new(arg)) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("{arg}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
