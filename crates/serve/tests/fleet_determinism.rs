//! Router and fleet determinism: routing decisions and the fleet
//! decision-log hash must be bit-identical at 1 vs 8 worker threads,
//! under healthy, heavy, and shard-crash-only fault plans.

use stca_fault::FaultPlan;
use stca_serve::{
    serve_fleet, AnalyticEa, FleetConfig, FleetReport, RouterKind, ServeConfig, SyntheticStream,
};

fn fleet_cfg(router: RouterKind) -> FleetConfig {
    FleetConfig {
        base: ServeConfig {
            queue_capacity: 16,
            sim_budget_events: 0,
            keep_decision_log: true,
            ..ServeConfig::default()
        },
        shards: 4,
        router,
        reroute_max: 2,
        epoch_s: 1.0,
    }
}

fn run_at(cfg: &FleetConfig, plan: &FaultPlan, threads: usize) -> FleetReport {
    stca_exec::set_threads(threads);
    let stream = SyntheticStream {
        seed: 2022,
        rate: 300.0,
        deadline_s: 0.5,
        n_features: 4,
    };
    serve_fleet(cfg, &AnalyticEa::default(), plan, &stream, 8_000).expect("fleet runs")
}

/// Routing decisions live in the decision log (`shard=` suffixes on every
/// shard entry, `disp=reroute from= to=` router entries), so hash plus
/// log equality pins the full routing trace, not just outcomes.
fn assert_bit_identical(plan: &FaultPlan, router: RouterKind, label: &str) {
    let cfg = fleet_cfg(router);
    let one = run_at(&cfg, plan, 1);
    let eight = run_at(&cfg, plan, 8);
    assert_eq!(
        one.decision_hash, eight.decision_hash,
        "{label}: fleet decision hash differs across thread counts"
    );
    assert_eq!(
        one.decision_log, eight.decision_log,
        "{label}: routing/decision log differs across thread counts"
    );
    assert_eq!(one.rerouted, eight.rerouted, "{label}: reroute counts");
    assert_eq!(one.router_shed, eight.router_shed, "{label}: router sheds");
    for (a, b) in one.shards.iter().zip(&eight.shards) {
        assert_eq!(
            a.accounting, b.accounting,
            "{label}: shard {} accounting differs",
            a.id
        );
        assert_eq!(a.rerouted_out, b.rerouted_out, "{label}: shard {}", a.id);
        assert_eq!(a.crashes, b.crashes, "{label}: shard {}", a.id);
        assert_eq!(
            a.p99_response_s.to_bits(),
            b.p99_response_s.to_bits(),
            "{label}: shard {} p99",
            a.id
        );
    }
    assert_eq!(
        one.p99_response_s.to_bits(),
        eight.p99_response_s.to_bits(),
        "{label}: fleet p99"
    );
    assert!(one.balanced(), "{label}: fleet invariant");
    stca_exec::set_threads(1);
}

#[test]
fn healthy_fleet_is_thread_count_invariant() {
    assert_bit_identical(&FaultPlan::none(), RouterKind::Rendezvous, "healthy");
}

#[test]
fn heavy_plan_fleet_is_thread_count_invariant() {
    assert_bit_identical(&FaultPlan::heavy(), RouterKind::Rendezvous, "heavy");
}

#[test]
fn shard_crash_plan_fleet_is_thread_count_invariant() {
    let plan = FaultPlan::parse("shard_crash=0.4,seed=17").expect("plan");
    assert_bit_identical(&plan, RouterKind::Rendezvous, "shard-crash");
    // crashes must actually fire for this to be a failover test
    let r = run_at(&fleet_cfg(RouterKind::Rendezvous), &plan, 1);
    assert!(
        r.shards.iter().any(|s| s.crashes > 0),
        "40% shard-crash plan produced no crashes: {r:?}"
    );
    assert!(r.rerouted > 0, "crashes must flush and reroute queued work");
}

#[test]
fn least_loaded_router_is_thread_count_invariant() {
    assert_bit_identical(&FaultPlan::heavy(), RouterKind::LeastLoaded, "least-loaded");
}
