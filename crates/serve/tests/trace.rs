//! Tracing integration tests: sampling determinism across thread counts,
//! the flight-recorder retention invariant against the decision log, the
//! tracing-changes-nothing guarantee, and histogram exemplars.

use stca_fault::FaultPlan;
use stca_serve::{serve, AnalyticEa, ServeConfig, ServeReport, SyntheticStream};
use stca_trace::{report::cross_check, TraceConfig};

fn traced_cfg() -> ServeConfig {
    ServeConfig {
        servers: 2,
        queue_capacity: 8,
        sim_budget_events: 500,
        keep_decision_log: true,
        trace: Some(TraceConfig {
            seed: 0x7ACE,
            sample_every: 8,
            ring_capacity: 128,
            error_capacity: 1 << 20,
        }),
        ..ServeConfig::default()
    }
}

fn stream() -> SyntheticStream {
    SyntheticStream {
        seed: 7,
        rate: 400.0,
        deadline_s: 0.5,
        n_features: 4,
    }
}

fn run(cfg: &ServeConfig, plan: &FaultPlan, n: u64) -> ServeReport {
    serve(cfg, &AnalyticEa::default(), plan, &stream(), n).expect("serve runs")
}

/// Bit-identical sampled trace ids and span orderings at `--threads 1`
/// vs `8`, under both the `none` and `heavy` fault plans. One test owns
/// the global thread-pool setting to avoid races with parallel tests.
#[test]
fn traces_are_bit_identical_across_thread_counts() {
    let cfg = traced_cfg();
    for plan in [FaultPlan::none(), FaultPlan::heavy()] {
        stca_exec::set_threads(1);
        let single = run(&cfg, &plan, 4_000);
        stca_exec::set_threads(8);
        let eight = run(&cfg, &plan, 4_000);
        stca_exec::set_threads(0); // back to auto

        assert_eq!(single.decision_hash, eight.decision_hash);
        let d1 = single.trace_dump.expect("tracing on");
        let d8 = eight.trace_dump.expect("tracing on");
        assert_eq!(d1.stats, d8.stats, "retention counters must match");
        assert_eq!(d1.traces.len(), d8.traces.len(), "same retained trace set");
        for (a, b) in d1.traces.iter().zip(d8.traces.iter()) {
            assert_eq!(a.trace_id, b.trace_id);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.sampled, b.sampled);
            assert_eq!(a.disposition, b.disposition);
            assert_eq!(
                a.spans.len(),
                b.spans.len(),
                "seq {} span count differs",
                a.seq
            );
            for (sa, sb) in a.spans.iter().zip(b.spans.iter()) {
                assert_eq!(sa.stage, sb.stage, "seq {}", a.seq);
                assert_eq!(sa.start_s.to_bits(), sb.start_s.to_bits(), "seq {}", a.seq);
                assert_eq!(sa.end_s.to_bits(), sb.end_s.to_bits(), "seq {}", a.seq);
            }
        }
        // the whole trace (args included) must agree, and so must the
        // rendered artifacts, byte for byte
        assert_eq!(d1.traces, d8.traces);
        assert_eq!(
            stca_trace::chrome::to_chrome_json(&d1),
            stca_trace::chrome::to_chrome_json(&d8)
        );
        assert_eq!(stca_trace::svg::to_svg(&d1), stca_trace::svg::to_svg(&d8));
    }
}

/// Tracing must not perturb the run: same decisions, same virtual time,
/// same accounting with the recorder on or off.
#[test]
fn tracing_does_not_change_decisions_or_virtual_time() {
    let traced = traced_cfg();
    let untraced = ServeConfig {
        trace: None,
        ..traced_cfg()
    };
    let plan = FaultPlan::heavy();
    let a = run(&traced, &plan, 4_000);
    let b = run(&untraced, &plan, 4_000);
    assert_eq!(a.decision_hash, b.decision_hash);
    assert_eq!(a.decision_log, b.decision_log);
    assert_eq!(a.accounting, b.accounting);
    assert_eq!(a.virtual_end_s.to_bits(), b.virtual_end_s.to_bits());
    assert_eq!(a.p50_response_s.to_bits(), b.p50_response_s.to_bits());
    assert!(b.trace_dump.is_none());
}

/// Retention invariant: every shed / deadline-exceeded / drained request
/// in the decision log has a retained trace that agrees with it.
#[test]
fn every_error_decision_has_a_retained_trace() {
    // overload-heavy settings so all shed paths fire
    let cfg = ServeConfig {
        queue_capacity: 4,
        ..traced_cfg()
    };
    let stream = SyntheticStream {
        rate: 1200.0,
        deadline_s: 0.08,
        ..self::stream()
    };
    let plan = FaultPlan::heavy();
    let report = serve(&cfg, &AnalyticEa::default(), &plan, &stream, 6_000).expect("serve runs");
    let dump = report.trace_dump.as_ref().expect("tracing on");
    assert!(report.accounting.shed() > 0, "{:?}", report.accounting);
    let cc = cross_check(dump, report.decision_log.iter().map(String::as_str));
    assert!(
        cc.holds(),
        "missing {:?} mismatched {:?}",
        &cc.missing[..cc.missing.len().min(5)],
        &cc.mismatched[..cc.mismatched.len().min(5)]
    );
    assert_eq!(cc.log_lines as u64, report.decision_log.len() as u64);
    assert!(cc.error_matched > 0);
    // watchdog retries and breaker transitions are retained even when
    // the request completed fine
    assert!(
        dump.traces
            .iter()
            .any(|t| t.watchdog_retry || t.breaker_transition),
        "heavy plan must retain flagged completions"
    );
}

/// p99 exemplars resolve to real request trace ids.
#[test]
fn exemplars_resolve_to_real_requests() {
    let cfg = traced_cfg();
    let tc = cfg.trace.expect("traced");
    let report = run(&cfg, &FaultPlan::none(), 4_000);
    assert!(report.accounting.completed > 0);
    let hist = stca_obs::histogram("serve.response_seconds");
    let id = hist
        .exemplar_for_quantile(0.99)
        .expect("p99 bucket has an exemplar after a traced run");
    let seq = (0..8_000u64).find(|&s| tc.trace_id(s) == id);
    assert!(
        seq.is_some(),
        "exemplar 0x{id:016x} is not a known trace id"
    );
}
