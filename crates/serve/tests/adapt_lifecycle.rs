//! Lifecycle safety properties of the drift-aware serving fleet, proved
//! against the decision log itself:
//!
//! * shadow candidates never serve — every adapt-served `v=N` line
//!   appears only after that shard logged `event=promote version=N`,
//!   and every base-served tier-0 line carries exactly the base model's
//!   EA bits;
//! * rollbacks compose with drains and crash reroutes — per-shard
//!   accounting stays exact (`admitted = completed + shed + drained +
//!   rerouted_out`) under a plan that forces both;
//! * the whole lifecycle is bit-identical at 1 vs 8 worker threads.

use std::collections::HashSet;

use stca_fault::FaultPlan;
use stca_serve::{
    serve_fleet, AdaptConfig, AnalyticEa, EaModel, FleetConfig, FleetReport, ServeConfig,
    SyntheticStream,
};

const REQUESTS: u64 = 30_000;

fn adapt_cfg() -> AdaptConfig {
    AdaptConfig {
        enabled: true,
        epoch_s: 2.0,
        window: 128,
        min_samples: 32,
        drift_threshold: 1.5,
        shadow_requests: 32,
        agree_tol: 0.25,
        promote_agreement: 0.5,
        guard_requests: 64,
        guard_band: 1.5,
        history: 4,
        ..AdaptConfig::default()
    }
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        base: ServeConfig {
            queue_capacity: 32,
            keep_decision_log: true,
            adapt: adapt_cfg(),
            ..ServeConfig::default()
        },
        shards: 4,
        ..FleetConfig::default()
    }
}

fn stream() -> SyntheticStream {
    SyntheticStream {
        seed: 2022,
        rate: 1_200.0,
        deadline_s: 0.25,
        n_features: 6,
    }
}

fn run_at(cfg: &FleetConfig, plan: &FaultPlan, threads: usize) -> FleetReport {
    stca_exec::set_threads(threads);
    let r =
        serve_fleet(cfg, &AnalyticEa::default(), plan, &stream(), REQUESTS).expect("fleet runs");
    stca_exec::set_threads(1);
    r
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
}

/// Every `v=N` serving line is preceded (in its own shard's log) by
/// `event=promote version=N`, and every line served without a version
/// suffix carries the base model's exact EA bits — so a shadow-scored
/// candidate observably never served a request.
#[test]
fn candidates_never_serve_before_their_promotion() {
    let plan = FaultPlan::parse(
        "drift_burst=0.8,retrain_fail=0.15,retrain_slow=0.15,promote_corrupt=0.5,seed=2022",
    )
    .expect("plan");
    let r = run_at(&fleet_cfg(), &plan, 2);
    let (promotions, rollbacks) = totals(&r);
    assert!(promotions >= 1, "plan must promote: {r:?}");
    assert!(rollbacks >= 1, "plan must roll back: {r:?}");

    // regenerate the arrival stream: features by seq, then the base EA
    let (requests, _) = stream().chunk(0, REQUESTS as usize, 0.0);
    let base = AnalyticEa::default();

    let n_shards = r.shards.len();
    let mut promoted: Vec<HashSet<u64>> = vec![HashSet::new(); n_shards];
    let mut base_served = 0u64;
    let mut adapt_served = 0u64;
    for line in &r.decision_log {
        let Some(shard) = field(line, "shard=").and_then(|s| s.parse::<usize>().ok()) else {
            continue; // router lines carry no shard suffix
        };
        if line.starts_with("event=promote ") {
            let v: u64 = field(line, "version=")
                .and_then(|s| s.parse().ok())
                .expect("promote line names its version");
            promoted[shard].insert(v);
            continue;
        }
        if !line.contains(" disp=ok ") {
            continue;
        }
        let seq: usize = field(line, "seq=")
            .and_then(|s| s.parse().ok())
            .expect("ok line names its seq");
        let tier: u32 = field(line, "tier=")
            .and_then(|s| s.parse().ok())
            .expect("ok line names its tier");
        let ea_bits = u64::from_str_radix(field(line, "ea=").expect("ea bits"), 16).expect("hex");
        match field(line, "v=").map(|s| s.parse::<u64>().expect("version")) {
            Some(v) => {
                adapt_served += 1;
                assert!(
                    promoted[shard].contains(&v),
                    "shard {shard} served candidate v{v} before its promotion: {line}"
                );
            }
            None if tier == 0 => {
                base_served += 1;
                let want = base
                    .predict_primary(&requests[seq].features)
                    .expect("analytic EA");
                assert_eq!(
                    ea_bits,
                    want.to_bits(),
                    "shard {shard} seq {seq}: unversioned serve must be the base model: {line}"
                );
            }
            None => {} // degraded tiers serve the fallback chain
        }
    }
    assert!(base_served > 0, "no base-served requests audited");
    assert!(adapt_served > 0, "no adapt-served requests audited");
}

/// Rollbacks keep composing with coordinated drains and crash-flush
/// reroutes: per-shard accounting stays exact and the fleet balances.
#[test]
fn rollback_during_drain_preserves_accounting() {
    let plan = FaultPlan::parse(
        "drift_burst=0.8,promote_corrupt=0.8,shard_crash=0.25,shard_stall=0.2,seed=7",
    )
    .expect("plan");
    let r = run_at(&fleet_cfg(), &plan, 2);
    let (promotions, rollbacks) = totals(&r);
    assert!(promotions >= 1, "plan must promote: {r:?}");
    assert!(rollbacks >= 1, "plan must roll back: {r:?}");
    assert!(
        r.shards.iter().any(|s| s.crashes > 0),
        "crash plan must crash a shard: {r:?}"
    );
    for s in &r.shards {
        let a = &s.accounting;
        assert_eq!(
            a.admitted,
            a.completed + a.shed() + a.drained + s.rerouted_out,
            "shard {} accounting identity broke: {a:?} rerouted_out={}",
            s.id,
            s.rerouted_out
        );
    }
    assert!(r.balanced(), "fleet invariant: {r:?}");
}

/// The full lifecycle — drift scores, retrain outcomes, shadow verdicts,
/// promotions, rollbacks — replays bit-identically at 1 vs 8 threads.
#[test]
fn adapt_fleet_is_thread_count_invariant() {
    let plan = FaultPlan::parse(
        "drift_burst=0.8,retrain_fail=0.15,retrain_slow=0.15,promote_corrupt=0.5,seed=2022",
    )
    .expect("plan");
    let cfg = fleet_cfg();
    let one = run_at(&cfg, &plan, 1);
    let eight = run_at(&cfg, &plan, 8);
    assert_eq!(
        one.decision_hash, eight.decision_hash,
        "fleet decision hash differs across thread counts"
    );
    assert_eq!(
        one.decision_log, eight.decision_log,
        "lifecycle/decision log differs across thread counts"
    );
    for (a, b) in one.shards.iter().zip(&eight.shards) {
        assert_eq!(a.accounting, b.accounting, "shard {} accounting", a.id);
        assert_eq!(a.adapt, b.adapt, "shard {} lifecycle stats", a.id);
    }
    let (promotions, rollbacks) = totals(&one);
    assert!(promotions >= 1 && rollbacks >= 1, "lifecycle must run");
}

fn totals(r: &FleetReport) -> (u64, u64) {
    r.shards
        .iter()
        .filter_map(|s| s.adapt.as_ref())
        .fold((0, 0), |(p, rb), a| (p + a.promotions, rb + a.rollbacks))
}
