//! The serving loop: admission → predict → decide → drain, on a virtual
//! clock, deterministic at any thread count.
//!
//! ## Execution model
//!
//! The replayed arrival stream is processed in fixed-size chunks. Each
//! chunk runs two phases:
//!
//! 1. **Parallel compute** — for every request in the chunk, the pure
//!    per-request work is computed on the worker pool: the primary model
//!    call, the degraded fallback, the injected predictor fault, and the
//!    injected stage stalls. All of it is a pure function of the request
//!    (seed, features, sequence number), so input-order results are
//!    bit-identical at any `--threads`.
//! 2. **Serial replay** — requests are admitted, queued, dispatched to
//!    virtual servers, and completed in arrival order. Everything
//!    stateful lives here: queue occupancy, overload shedding, deadline
//!    budgets, the circuit breaker (verdicts frozen in request order),
//!    hysteresis, the watchdog retry path, and the decision log.
//!
//! The split means the expensive model calls parallelise while every
//! stateful decision happens in one deterministic order — the same design
//! as the training pipeline's tagged seed streams, applied to serving.
//!
//! ## Accounting invariant
//!
//! Every request offered to the loop ends in exactly one disposition:
//!
//! ```text
//! admitted = completed + shed_overload + shed_deadline + shed_failed + drained
//! ```
//!
//! [`Accounting::balanced`] checks it; the soak bench and the property
//! tests assert it after every run, faulted or not.

use crate::adapt::{AdaptConfig, AdaptStats};
use crate::breaker::{BreakerConfig, BreakerState};
use crate::model::{EaModel, StationModel, TIMEOUT_GRID};
use crate::request::SyntheticStream;
use crate::shard::{compute_request, DecisionSink, Pending, ShardCore};
use stca_fault::{FaultInjector, FaultPlan, StcaError};
use stca_obs::json::Value;
use stca_trace::{TraceConfig, TraceDump};
use std::collections::BTreeMap;
use std::path::Path;

/// What the loop does when a request arrives to a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Shed the arriving request (default: protects queued work).
    ShedNewest,
    /// Shed the oldest queued request and admit the new one.
    ShedOldest,
    /// Admit anyway; the overflow is counted as blocked back-pressure.
    Block,
}

impl OverloadPolicy {
    /// Parse a CLI token: `shed-newest`, `shed-oldest`, or `block`.
    pub fn parse(s: &str) -> Result<Self, StcaError> {
        match s {
            "shed-newest" => Ok(OverloadPolicy::ShedNewest),
            "shed-oldest" => Ok(OverloadPolicy::ShedOldest),
            "block" => Ok(OverloadPolicy::Block),
            _ => Err(StcaError::usage(format!(
                "overload policy {s:?}: want shed-newest, shed-oldest, or block"
            ))),
        }
    }

    /// The CLI token for this policy.
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::ShedNewest => "shed-newest",
            OverloadPolicy::ShedOldest => "shed-oldest",
            OverloadPolicy::Block => "block",
        }
    }
}

/// Serving-loop configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual control-loop workers executing predict/decide stages.
    pub servers: usize,
    /// Bounded admission queue capacity (waiting requests).
    pub queue_capacity: usize,
    /// What happens when the queue is full.
    pub overload: OverloadPolicy,
    /// Hysteresis threshold: consecutive agreeing decisions before a new
    /// timeout is applied.
    pub hysteresis_k: u32,
    /// Circuit breaker tunables for the primary predictor.
    pub breaker: BreakerConfig,
    /// Per-stage watchdog budget, virtual seconds.
    pub watchdog_budget_s: f64,
    /// Drain grace after the last arrival, virtual seconds: queued work
    /// that cannot start within the grace is dropped as drained.
    pub drain_grace_s: f64,
    /// Base virtual cost of the predict stage, seconds.
    pub predict_cost_s: f64,
    /// Base virtual cost of the decide stage, seconds.
    pub decide_cost_s: f64,
    /// The station the STAP decision targets.
    pub station: StationModel,
    /// Event budget for the budgeted validation simulation run when a new
    /// policy is applied; 0 disables validation sims.
    pub sim_budget_events: u64,
    /// Requests per parallel compute chunk.
    pub chunk: usize,
    /// Keep the full decision log in the report (the rolling hash is
    /// always computed; the log itself costs memory on big replays).
    pub keep_decision_log: bool,
    /// Per-request span tracing: `Some` enables the flight recorder.
    /// Tracing never perturbs decisions or virtual time — the decision
    /// hash is identical with tracing on or off.
    pub trace: Option<TraceConfig>,
    /// Drift-aware model lifecycle (disabled by default: the loop is
    /// byte-identical to the pre-adapt implementation when off).
    pub adapt: AdaptConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            servers: 2,
            queue_capacity: 64,
            overload: OverloadPolicy::ShedNewest,
            hysteresis_k: 4,
            breaker: BreakerConfig::default(),
            watchdog_budget_s: 0.25,
            drain_grace_s: 5.0,
            predict_cost_s: 0.004,
            decide_cost_s: 0.002,
            station: StationModel::default(),
            sim_budget_events: 4000,
            chunk: 4096,
            keep_decision_log: false,
            trace: None,
            adapt: AdaptConfig::default(),
        }
    }
}

impl ServeConfig {
    pub(crate) fn validate(&self) -> Result<(), StcaError> {
        if self.servers == 0 {
            return Err(StcaError::invalid_input("serve: servers must be >= 1"));
        }
        if self.chunk == 0 {
            return Err(StcaError::invalid_input("serve: chunk must be >= 1"));
        }
        for (name, v) in [
            ("watchdog_budget_s", self.watchdog_budget_s),
            ("drain_grace_s", self.drain_grace_s),
            ("predict_cost_s", self.predict_cost_s),
            ("decide_cost_s", self.decide_cost_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(StcaError::invalid_input(format!(
                    "serve: {name} = {v} must be finite and >= 0"
                )));
            }
        }
        if self.watchdog_budget_s < self.predict_cost_s.max(self.decide_cost_s) {
            return Err(StcaError::invalid_input(
                "serve: watchdog budget below base stage cost would kill every stage",
            ));
        }
        if !(0.0..1.0).contains(&self.station.utilization) {
            return Err(StcaError::invalid_input(
                "serve: station utilization must be in [0, 1)",
            ));
        }
        self.adapt.validate()?;
        Ok(())
    }
}

/// Exact request accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Requests offered to the loop (every generated arrival).
    pub admitted: u64,
    /// Requests that produced a decision (possibly past deadline).
    pub completed: u64,
    /// Requests shed by the overload policy at admission.
    pub shed_overload: u64,
    /// Requests shed because the deadline budget ran out before or
    /// during service.
    pub shed_deadline: u64,
    /// Requests shed because a stage stayed stuck after its retry.
    pub shed_failed: u64,
    /// Requests dropped at drain because they could not start within the
    /// grace period.
    pub drained: u64,
    /// Overflow admissions under [`OverloadPolicy::Block`] (informational;
    /// these requests are still in `admitted` and end in a disposition).
    pub blocked: u64,
    /// Completed requests whose response exceeded the deadline.
    pub deadline_exceeded: u64,
}

impl Accounting {
    /// Total shed, all causes.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline + self.shed_failed
    }

    /// The invariant: every offered request has exactly one disposition.
    pub fn balanced(&self) -> bool {
        self.admitted == self.completed + self.shed() + self.drained
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Exact request accounting.
    pub accounting: Accounting,
    /// Breaker trips (closed → open and failed-probe re-opens).
    pub breaker_opens: u64,
    /// Breaker recoveries (half-open → closed).
    pub breaker_closes: u64,
    /// Probe calls admitted while half-open.
    pub breaker_probes: u64,
    /// Calls short-circuited to the degraded chain while open.
    pub breaker_rejects: u64,
    /// Requests answered by the degraded predictor chain.
    pub degraded: u64,
    /// Watchdog interventions (stage cut off at its budget).
    pub watchdog_trips: u64,
    /// Stage retries after a watchdog trip.
    pub retries: u64,
    /// Policy changes applied by the hysteresis controller.
    pub policy_applies: u64,
    /// Decisions suppressed by hysteresis.
    pub policy_suppressed: u64,
    /// Budgeted validation simulations run on policy application.
    pub policy_validations: u64,
    /// Validation sims that hit their event budget.
    pub sim_budget_exhausted: u64,
    /// Timeout-grid index applied when the run ended.
    pub final_timeout_idx: usize,
    /// Mean response of completed requests, seconds.
    pub mean_response_s: f64,
    /// Median response, seconds.
    pub p50_response_s: f64,
    /// 99th-percentile response, seconds.
    pub p99_response_s: f64,
    /// Rolling FNV-1a hash over every decision-log entry.
    pub decision_hash: u64,
    /// Full decision log (empty unless `keep_decision_log`).
    pub decision_log: Vec<String>,
    /// Virtual time when the drain finished.
    pub virtual_end_s: f64,
    /// Flight-recorder dump (`Some` when tracing was enabled).
    pub trace_dump: Option<TraceDump>,
    /// Model-lifecycle counters (`Some` when adaptation was enabled).
    pub adapt: Option<AdaptStats>,
}

impl ServeReport {
    /// The report as a JSON tree (health snapshots, CLI output).
    pub fn to_json_value(&self) -> Value {
        let num = |v: f64| Value::Number(v);
        let int = |v: u64| Value::Number(v as f64);
        let mut acct = BTreeMap::new();
        let a = &self.accounting;
        acct.insert("admitted".into(), int(a.admitted));
        acct.insert("completed".into(), int(a.completed));
        acct.insert("shed_overload".into(), int(a.shed_overload));
        acct.insert("shed_deadline".into(), int(a.shed_deadline));
        acct.insert("shed_failed".into(), int(a.shed_failed));
        acct.insert("drained".into(), int(a.drained));
        acct.insert("blocked".into(), int(a.blocked));
        acct.insert("deadline_exceeded".into(), int(a.deadline_exceeded));
        acct.insert("balanced".into(), Value::Bool(a.balanced()));
        let mut breaker = BTreeMap::new();
        breaker.insert("opens".into(), int(self.breaker_opens));
        breaker.insert("closes".into(), int(self.breaker_closes));
        breaker.insert("probes".into(), int(self.breaker_probes));
        breaker.insert("rejects".into(), int(self.breaker_rejects));
        let mut policy = BTreeMap::new();
        policy.insert("applies".into(), int(self.policy_applies));
        policy.insert("suppressed".into(), int(self.policy_suppressed));
        policy.insert("validations".into(), int(self.policy_validations));
        policy.insert(
            "sim_budget_exhausted".into(),
            int(self.sim_budget_exhausted),
        );
        policy.insert(
            "applied_timeout_ratio".into(),
            num(TIMEOUT_GRID[self.final_timeout_idx]),
        );
        let mut resp = BTreeMap::new();
        resp.insert("mean_s".into(), num(self.mean_response_s));
        resp.insert("p50_s".into(), num(self.p50_response_s));
        resp.insert("p99_s".into(), num(self.p99_response_s));
        let mut root = BTreeMap::new();
        root.insert("accounting".into(), Value::Object(acct));
        root.insert("breaker".into(), Value::Object(breaker));
        root.insert("policy".into(), Value::Object(policy));
        root.insert("response".into(), Value::Object(resp));
        root.insert("degraded".into(), int(self.degraded));
        root.insert("watchdog_trips".into(), int(self.watchdog_trips));
        root.insert("retries".into(), int(self.retries));
        root.insert(
            "decision_hash".into(),
            Value::String(format!("{:016x}", self.decision_hash)),
        );
        root.insert("virtual_end_s".into(), num(self.virtual_end_s));
        if let Some(a) = &self.adapt {
            let mut adapt = BTreeMap::new();
            adapt.insert("drifts".into(), int(a.drifts));
            adapt.insert("retrains".into(), int(a.retrains));
            adapt.insert("retrain_failures".into(), int(a.retrain_failures));
            adapt.insert("retrain_slows".into(), int(a.retrain_slows));
            adapt.insert("shadow_scored".into(), int(a.shadow_scored));
            adapt.insert("shadow_agree".into(), int(a.shadow_agree));
            adapt.insert("promotions".into(), int(a.promotions));
            adapt.insert("promote_refused".into(), int(a.promote_refused));
            adapt.insert("rollbacks".into(), int(a.rollbacks));
            adapt.insert("guard_passes".into(), int(a.guard_passes));
            adapt.insert("active_version".into(), int(a.active_version));
            adapt.insert("last_drift_score".into(), num(a.last_drift_score));
            adapt.insert("last_shadow_agreement".into(), num(a.last_shadow_agreement));
            root.insert("adapt".into(), Value::Object(adapt));
        }
        if let Some(dump) = &self.trace_dump {
            let st = &dump.stats;
            let mut trace = BTreeMap::new();
            trace.insert("retained_error".into(), int(st.retained_error));
            trace.insert("retained_normal".into(), int(st.retained_normal));
            trace.insert("evicted_normal".into(), int(st.evicted_normal));
            trace.insert("dropped_error".into(), int(st.dropped_error));
            trace.insert("sample_every".into(), int(dump.sample_every));
            root.insert("trace".into(), Value::Object(trace));
        }
        Value::Object(root)
    }
}

/// Write a JSON health snapshot: the report plus every `serve.*` metric
/// currently in the global registry.
pub fn write_health(path: &Path, report: &ServeReport) -> Result<(), StcaError> {
    let mut root = match report.to_json_value() {
        Value::Object(m) => m,
        _ => unreachable!("report serialises to an object"),
    };
    let mut metrics = BTreeMap::new();
    for (name, metric) in stca_obs::registry().snapshot_prefixed("serve.") {
        match metric {
            stca_obs::metrics::Metric::Counter(c) => {
                metrics.insert(name, Value::Number(c.get() as f64));
            }
            stca_obs::metrics::Metric::Gauge(g) => {
                metrics.insert(name, Value::Number(g.get()));
            }
            stca_obs::metrics::Metric::Histogram(h) => {
                metrics.insert(name, Value::Number(h.mean()));
            }
        }
    }
    root.insert("metrics".into(), Value::Object(metrics));
    let json = Value::Object(root).to_string();
    std::fs::write(path, json).map_err(|e| StcaError::io(path.display().to_string(), e))
}

/// Run the serving loop over `n_requests` replayed arrivals.
///
/// Deterministic: with the same config, stream, plan, and model, the
/// decision hash and report are bit-identical at any thread count.
pub fn serve(
    cfg: &ServeConfig,
    model: &dyn EaModel,
    plan: &FaultPlan,
    stream: &SyntheticStream,
    n_requests: u64,
) -> Result<ServeReport, StcaError> {
    cfg.validate()?;
    if !(stream.rate.is_finite() && stream.rate > 0.0) {
        return Err(StcaError::invalid_input(format!(
            "serve: arrival rate {} must be finite and positive",
            stream.rate
        )));
    }
    if !(stream.deadline_s.is_finite() && stream.deadline_s > 0.0) {
        return Err(StcaError::invalid_input(format!(
            "serve: deadline {} must be finite and positive",
            stream.deadline_s
        )));
    }
    let run_key = stream.seed ^ 0x5E4E;
    let injectors: [FaultInjector; 2] = [plan.injector(run_key, 0), plan.injector(run_key, 1)];
    let mut state = ShardCore::new(cfg, stream.seed, None);
    state.install_adapt(plan);
    let mut sink = DecisionSink::new(cfg.keep_decision_log);
    // publish the recorder so error-dump hooks can snapshot it mid-run
    let _active = state.recorder.clone().map(stca_trace::set_active);
    let timer = stca_obs::StageTimer::with_histogram(stca_obs::histogram("serve.run_seconds"));
    let mut seq = 0u64;
    let mut t_cursor = 0.0f64;
    let mut last_arrival = 0.0f64;
    while seq < n_requests {
        let count = ((n_requests - seq).min(cfg.chunk as u64)) as usize;
        let (reqs, new_t) = stream.chunk(seq, count, t_cursor);
        t_cursor = new_t;
        last_arrival = new_t;
        // phase 1: pure per-request compute, input-order results. When
        // tracing, each worker tags its thread with the request's trace
        // id so histograms recorded inside the model call (e.g.
        // `deepforest.predict.seconds`) pick up exemplars.
        let trace_cfg = cfg.trace;
        let computed = stca_exec::par_map_indexed(&reqs, |_, r| {
            if let Some(tc) = &trace_cfg {
                stca_obs::set_current_trace_id(tc.trace_id(r.seq));
            }
            let comp = compute_request(model, &injectors, r);
            if trace_cfg.is_some() {
                stca_obs::set_current_trace_id(0);
            }
            comp
        });
        // phase 2: serial replay in arrival order
        for (r, comp) in reqs.into_iter().zip(computed) {
            let ctx = state
                .recorder
                .as_ref()
                .and_then(|rec| rec.lock().ok())
                .map(|mut rec| rec.begin(r.seq, r.arrival_s));
            state.arrive(
                Pending {
                    seq: r.seq,
                    arrival_s: r.arrival_s,
                    ready_s: r.arrival_s,
                    deadline_s: r.deadline_s,
                    hops: 0,
                    features: r.features,
                    comp,
                    ctx,
                },
                &mut sink,
            );
        }
        seq += count as u64;
        stca_obs::gauge("serve.queue_depth").set(state.queue_depth() as f64);
    }
    let virtual_end = state.drain(last_arrival, &mut sink);
    stca_obs::clear_virtual_now();
    timer.stop();

    // responses → percentiles
    let mut responses = std::mem::take(&mut state.responses);
    let mean = if responses.is_empty() {
        0.0
    } else {
        responses.iter().sum::<f64>() / responses.len() as f64
    };
    let p50 = stca_util::stats::quantile_in_place(&mut responses, 0.50);
    let p99 = stca_util::stats::quantile_in_place(&mut responses, 0.99);

    let report = ServeReport {
        accounting: state.acct,
        breaker_opens: state.breaker.opens,
        breaker_closes: state.breaker.closes,
        breaker_probes: state.breaker.probes,
        breaker_rejects: state.breaker.rejects,
        degraded: state.degraded,
        watchdog_trips: state.watchdog_trips,
        retries: state.retries,
        policy_applies: state.hyst.applies,
        policy_suppressed: state.hyst.suppressed,
        policy_validations: state.policy_validations,
        sim_budget_exhausted: state.sim_budget_exhausted,
        final_timeout_idx: state.hyst.applied(),
        mean_response_s: mean,
        p50_response_s: p50,
        p99_response_s: p99,
        decision_hash: sink.hash(),
        decision_log: sink.into_log(),
        virtual_end_s: virtual_end,
        trace_dump: state
            .recorder
            .as_ref()
            .and_then(|rec| rec.lock().ok())
            .map(|rec| rec.dump()),
        adapt: state.lifecycle.as_ref().map(|lc| lc.stats),
    };
    debug_assert!(matches!(
        state.breaker.state(),
        BreakerState::Closed { .. } | BreakerState::Open { .. }
    ));
    flush_metrics(&report);
    Ok(report)
}

/// Flush run totals into the global `serve.*` metrics.
fn flush_metrics(r: &ServeReport) {
    let a = &r.accounting;
    for (name, v) in [
        ("serve.admitted_total", a.admitted),
        ("serve.completed_total", a.completed),
        ("serve.shed_total", a.shed()),
        ("serve.shed_overload_total", a.shed_overload),
        ("serve.shed_deadline_total", a.shed_deadline),
        ("serve.shed_failed_total", a.shed_failed),
        ("serve.drained_total", a.drained),
        ("serve.blocked_total", a.blocked),
        ("serve.deadline_exceeded_total", a.deadline_exceeded),
        ("serve.degraded_total", r.degraded),
        ("serve.breaker_opens_total", r.breaker_opens),
        ("serve.breaker_closes_total", r.breaker_closes),
        ("serve.breaker_probes_total", r.breaker_probes),
        ("serve.breaker_rejects_total", r.breaker_rejects),
        ("serve.watchdog_trips_total", r.watchdog_trips),
        ("serve.retries_total", r.retries),
        ("serve.policy_applies_total", r.policy_applies),
        ("serve.policy_suppressed_total", r.policy_suppressed),
        ("serve.policy_validations_total", r.policy_validations),
        ("serve.sim_budget_exhausted_total", r.sim_budget_exhausted),
    ] {
        if v > 0 {
            stca_obs::counter(name).add(v);
        }
    }
    if let Some(a) = r.adapt {
        for (name, v) in [
            ("serve.adapt.drifts_total", a.drifts),
            ("serve.adapt.retrains_total", a.retrains),
            ("serve.adapt.retrain_failures_total", a.retrain_failures),
            ("serve.adapt.retrain_slows_total", a.retrain_slows),
            ("serve.adapt.shadow_scored_total", a.shadow_scored),
            ("serve.adapt.promotions_total", a.promotions),
            ("serve.adapt.promote_refused_total", a.promote_refused),
            ("serve.adapt.rollbacks_total", a.rollbacks),
            ("serve.adapt.guard_passes_total", a.guard_passes),
        ] {
            if v > 0 {
                stca_obs::counter(name).add(v);
            }
        }
        stca_obs::gauge("serve.adapt.drift_score").set(a.last_drift_score);
        stca_obs::gauge("serve.adapt.shadow_agreement").set(a.last_shadow_agreement);
        stca_obs::gauge("serve.adapt.active_version").set(a.active_version as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticEa;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            servers: 2,
            queue_capacity: 8,
            sim_budget_events: 500,
            keep_decision_log: true,
            ..ServeConfig::default()
        }
    }

    fn stream(rate: f64, deadline: f64) -> SyntheticStream {
        SyntheticStream {
            seed: 7,
            rate,
            deadline_s: deadline,
            n_features: 4,
        }
    }

    fn run(cfg: &ServeConfig, plan: &FaultPlan, rate: f64, deadline: f64, n: u64) -> ServeReport {
        serve(
            cfg,
            &AnalyticEa::default(),
            plan,
            &stream(rate, deadline),
            n,
        )
        .expect("serve runs")
    }

    #[test]
    fn accounting_balances_under_light_load() {
        let r = run(&small_cfg(), &FaultPlan::none(), 50.0, 1.0, 2_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert_eq!(r.accounting.admitted, 2_000);
        assert!(r.accounting.completed > 1_900, "{:?}", r.accounting);
        assert_eq!(r.degraded, 0);
        assert_eq!(r.breaker_opens, 0);
    }

    #[test]
    fn overload_sheds_and_still_balances() {
        // 2 servers x ~6ms of work per request supports ~330 req/s;
        // offer 3x that
        let r = run(&small_cfg(), &FaultPlan::none(), 1000.0, 1.0, 5_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.accounting.shed_overload > 0, "{:?}", r.accounting);
        let log_entries = r.decision_log.len() as u64;
        assert_eq!(
            log_entries,
            r.accounting.completed + r.accounting.shed() + r.accounting.drained,
            "every disposition is logged exactly once"
        );
    }

    #[test]
    fn shed_oldest_keeps_fresh_work() {
        let cfg = ServeConfig {
            overload: OverloadPolicy::ShedOldest,
            ..small_cfg()
        };
        let r = run(&cfg, &FaultPlan::none(), 1000.0, 1.0, 5_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.accounting.shed_overload > 0);
    }

    #[test]
    fn block_policy_admits_overflow() {
        let cfg = ServeConfig {
            overload: OverloadPolicy::Block,
            drain_grace_s: 1e9, // let the backlog finish
            ..small_cfg()
        };
        let r = run(&cfg, &FaultPlan::none(), 600.0, 1e9, 3_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert_eq!(r.accounting.shed_overload, 0);
        assert!(r.accounting.blocked > 0);
        assert_eq!(
            r.accounting.completed + r.accounting.shed_deadline,
            3_000,
            "block policy never drops at admission: {:?}",
            r.accounting
        );
    }

    #[test]
    fn tight_deadlines_shed_instead_of_serving_stale_work() {
        let r = run(&small_cfg(), &FaultPlan::none(), 1000.0, 0.02, 3_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.accounting.shed_deadline > 0, "{:?}", r.accounting);
    }

    #[test]
    fn injected_predictor_faults_trip_and_recover_the_breaker() {
        let plan = FaultPlan::parse("predict_fail=0.5,seed=3").expect("plan");
        let cfg = ServeConfig {
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown_s: 0.5,
                probe_fraction: 0.5,
                success_to_close: 2,
                seed: 11,
            },
            ..small_cfg()
        };
        let r = run(&cfg, &plan, 50.0, 1.0, 4_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.breaker_opens > 0, "breaker must trip under 50% faults");
        assert!(r.breaker_closes > 0, "breaker must recover via probes");
        assert!(r.breaker_rejects > 0, "open periods short-circuit calls");
        assert!(r.degraded > 0);
    }

    #[test]
    fn stalls_trip_the_watchdog_and_fail_double_stalls() {
        let plan = FaultPlan::parse("stall=0.3,latency=0.2,seed=5").expect("plan");
        let r = run(&small_cfg(), &plan, 20.0, 10.0, 2_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.watchdog_trips > 0);
        assert!(r.retries > 0);
        assert!(
            r.accounting.shed_failed > 0,
            "0.09% double-stall rate over 2000 requests: {:?}",
            r.accounting
        );
    }

    #[test]
    fn heavy_plan_end_to_end_still_balances() {
        let r = run(&small_cfg(), &FaultPlan::heavy(), 200.0, 0.5, 5_000);
        assert!(r.accounting.balanced(), "{:?}", r.accounting);
        assert!(r.degraded > 0);
    }

    #[test]
    fn report_is_bit_identical_across_runs() {
        let plan = FaultPlan::heavy();
        let a = run(&small_cfg(), &plan, 200.0, 0.5, 3_000);
        let b = run(&small_cfg(), &plan, 200.0, 0.5, 3_000);
        assert_eq!(a.decision_hash, b.decision_hash);
        assert_eq!(a.accounting, b.accounting);
        assert_eq!(a.p99_response_s.to_bits(), b.p99_response_s.to_bits());
        assert_eq!(a.decision_log, b.decision_log);
    }

    #[test]
    fn policy_applies_run_budgeted_validation_sims() {
        let cfg = ServeConfig {
            hysteresis_k: 2,
            sim_budget_events: 50, // tiny budget: must exhaust
            ..small_cfg()
        };
        let r = run(&cfg, &FaultPlan::none(), 50.0, 1.0, 2_000);
        assert!(r.policy_applies > 0, "EA spread must flip the policy");
        assert_eq!(r.policy_validations, r.policy_applies);
        assert_eq!(r.sim_budget_exhausted, r.policy_validations);
    }

    #[test]
    fn hysteresis_suppresses_flapping_decisions() {
        let low_k = ServeConfig {
            hysteresis_k: 1,
            ..small_cfg()
        };
        let high_k = ServeConfig {
            hysteresis_k: 64,
            ..small_cfg()
        };
        let a = run(&low_k, &FaultPlan::none(), 50.0, 1.0, 2_000);
        let b = run(&high_k, &FaultPlan::none(), 50.0, 1.0, 2_000);
        assert!(
            b.policy_applies < a.policy_applies,
            "k=64 ({}) must flap less than k=1 ({})",
            b.policy_applies,
            a.policy_applies
        );
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let model = AnalyticEa::default();
        let plan = FaultPlan::none();
        let s = stream(10.0, 1.0);
        let bad = ServeConfig {
            servers: 0,
            ..ServeConfig::default()
        };
        assert!(serve(&bad, &model, &plan, &s, 10).is_err());
        let bad = ServeConfig {
            watchdog_budget_s: 0.0001,
            ..ServeConfig::default()
        };
        assert!(serve(&bad, &model, &plan, &s, 10).is_err());
        let bad_stream = SyntheticStream {
            rate: f64::NAN,
            ..s.clone()
        };
        assert!(serve(&ServeConfig::default(), &model, &plan, &bad_stream, 10).is_err());
    }

    #[test]
    fn health_snapshot_writes_valid_json() {
        let r = run(&small_cfg(), &FaultPlan::ci_default(), 100.0, 1.0, 1_000);
        let dir = std::env::temp_dir().join("stca_serve_health_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("health.json");
        write_health(&path, &r).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        let v = stca_obs::json::Value::parse(&text).expect("valid JSON");
        match v {
            Value::Object(m) => {
                assert!(m.contains_key("accounting"));
                assert!(m.contains_key("breaker"));
                assert!(m.contains_key("metrics"));
            }
            other => panic!("expected object, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
