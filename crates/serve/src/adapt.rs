//! Drift-aware model lifecycle: detection → retrain → shadow → guarded
//! promotion → automatic rollback.
//!
//! The offline pipeline fits the EA model once and assumes the counter
//! distribution it profiled is the one it serves. This module closes the
//! loop *safely*: each shard runs an independent [`Lifecycle`] that
//!
//! 1. **detects drift** over a sliding window of EA residuals
//!    (Page-Hinkley cumulative deviation) and counter-distribution shift
//!    (window mean of the allocation ratio against a frozen baseline),
//! 2. **retrains** a small cascade on the window via
//!    [`Cascade::fit_warm_start`] when drift fires — unless the fault plan
//!    says the retrain errors (`retrain_fail`) or stalls past its
//!    virtual-time budget (`retrain_slow`),
//! 3. **shadow-scores** the candidate on live requests: its prediction is
//!    computed and compared against the observed target but *never
//!    served*,
//! 4. **promotes atomically** behind the breaker — a promotion is refused
//!    outright while the breaker is open or the shard is draining — and
//! 5. **rolls back automatically** to the previous model version (bounded
//!    history) if post-promotion residuals or deadline-miss rates regress
//!    past the guard band, e.g. because the promotion was corrupted by the
//!    `promote_corrupt` fault.
//!
//! Everything runs in the shard's *serial* replay phase on the virtual
//! clock. Lifecycle faults are rolled per `(plan seed, shard id, epoch)`
//! with `epoch = floor(virtual_now / epoch_s)`, and retrain seed streams
//! are derived from the shard seed and a monotonic version id — so the
//! whole lifecycle, including every injected failure, is bit-identical at
//! any `--threads`. Wall-clock retrain latency feeds only the
//! `serve.adapt.retrain_seconds` histogram, never a decision.

use stca_deepforest::{Cascade, CascadeConfig};
use stca_fault::{FaultPlan, StcaError};
use stca_util::{Matrix, SeedStream};
use std::collections::VecDeque;
use std::sync::Arc;

/// Tag deriving the retrain seed stream from the shard seed.
const TAG_RETRAIN: u64 = 0xADA7;
/// Page-Hinkley drift tolerance: residual deviations below this never
/// accumulate, so jitter on a healthy model cannot creep up to the
/// threshold.
const PH_DELTA: f64 = 0.05;
/// Absolute slack added on top of the multiplicative guard band, so a
/// near-zero baseline does not make the guard impossibly strict.
const GUARD_SLACK: f64 = 0.05;
/// Distribution-shift score is the window-mean deviation of the
/// allocation ratio in baseline standard deviations, floored here.
const SHIFT_STD_FLOOR: f64 = 1e-3;

/// Candidate retrain hyperparameters: a deliberately small cascade so a
/// 256-row window retrains in milliseconds.
const RETRAIN_CASCADE: CascadeConfig = CascadeConfig {
    levels: 1,
    forests_per_level: 2,
    trees_per_forest: 12,
    folds: 2,
    bins: Some(32),
    reference: false,
};

/// Online-adaptation configuration (the `[serve.adapt]` scenario section
/// and the `stca serve --adapt-*` flags).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Master switch. Disabled (the default) leaves the serving loop
    /// byte-identical to a build without this module.
    pub enabled: bool,
    /// Lifecycle epoch length, virtual seconds: `drift_burst`,
    /// `retrain_fail`, `retrain_slow`, and `promote_corrupt` faults are
    /// rolled once per `(shard, epoch)`.
    pub epoch_s: f64,
    /// Sliding-window capacity (feature rows + observed targets) the
    /// retrain fits on.
    pub window: usize,
    /// Residual observations required before drift may fire.
    pub min_samples: usize,
    /// Drift threshold: fires when the Page-Hinkley statistic or the
    /// distribution-shift score exceeds it.
    pub drift_threshold: f64,
    /// Live requests a candidate is shadow-scored on before the
    /// promotion decision.
    pub shadow_requests: u64,
    /// Absolute tolerance when comparing the candidate's shadow
    /// prediction against the served model's error.
    pub agree_tol: f64,
    /// Minimum shadow agreement fraction for promotion.
    pub promote_agreement: f64,
    /// Post-promotion guard window, requests.
    pub guard_requests: u64,
    /// Multiplicative regression band: the guard rolls back when the
    /// post-promotion residual mean (or deadline-miss rate) exceeds
    /// `baseline * guard_band + 0.05`.
    pub guard_band: f64,
    /// Bounded model-version history depth for rollback.
    pub history: usize,
    /// Virtual-time retrain budget, seconds: an injected `retrain_slow`
    /// stall past this abandons the candidate.
    pub retrain_budget_s: f64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            enabled: false,
            epoch_s: 5.0,
            window: 256,
            min_samples: 64,
            drift_threshold: 4.0,
            shadow_requests: 64,
            agree_tol: 0.25,
            promote_agreement: 0.6,
            guard_requests: 128,
            guard_band: 1.5,
            history: 4,
            retrain_budget_s: 1.0,
        }
    }
}

impl AdaptConfig {
    /// Reject configurations the lifecycle cannot run deterministically.
    pub fn validate(&self) -> Result<(), StcaError> {
        if !self.enabled {
            return Ok(());
        }
        if !self.epoch_s.is_finite() || self.epoch_s <= 0.0 {
            return Err(StcaError::invalid_input(format!(
                "adapt: epoch_s = {} must be finite and positive",
                self.epoch_s
            )));
        }
        if self.window < 2 {
            return Err(StcaError::invalid_input("adapt: window must be >= 2"));
        }
        if self.min_samples < 2 || self.min_samples > self.window {
            return Err(StcaError::invalid_input(
                "adapt: min_samples must be in [2, window]",
            ));
        }
        if !self.drift_threshold.is_finite() || self.drift_threshold <= 0.0 {
            return Err(StcaError::invalid_input(
                "adapt: drift_threshold must be finite and positive",
            ));
        }
        if self.shadow_requests == 0 {
            return Err(StcaError::invalid_input(
                "adapt: shadow_requests must be >= 1",
            ));
        }
        if !self.agree_tol.is_finite() || self.agree_tol < 0.0 {
            return Err(StcaError::invalid_input(
                "adapt: agree_tol must be finite and >= 0",
            ));
        }
        if !(0.0..=1.0).contains(&self.promote_agreement) {
            return Err(StcaError::invalid_input(
                "adapt: promote_agreement must be in [0, 1]",
            ));
        }
        if self.guard_requests == 0 {
            return Err(StcaError::invalid_input(
                "adapt: guard_requests must be >= 1",
            ));
        }
        if !self.guard_band.is_finite() || self.guard_band < 1.0 {
            return Err(StcaError::invalid_input(
                "adapt: guard_band must be finite and >= 1",
            ));
        }
        if self.history == 0 {
            return Err(StcaError::invalid_input("adapt: history must be >= 1"));
        }
        if !self.retrain_budget_s.is_finite() || self.retrain_budget_s <= 0.0 {
            return Err(StcaError::invalid_input(
                "adapt: retrain_budget_s must be finite and positive",
            ));
        }
        Ok(())
    }
}

/// Lifecycle counters for one shard's run (reported, JSON'd, metric'd).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptStats {
    /// Drift detections.
    pub drifts: u64,
    /// Successful candidate retrains.
    pub retrains: u64,
    /// Retrains aborted by an injected `retrain_fail`.
    pub retrain_failures: u64,
    /// Retrains abandoned because an injected stall blew the virtual
    /// budget.
    pub retrain_slows: u64,
    /// Requests shadow-scored against a candidate.
    pub shadow_scored: u64,
    /// Shadow-scored requests where the candidate agreed.
    pub shadow_agree: u64,
    /// Candidates promoted to serving.
    pub promotions: u64,
    /// Promotions refused (low agreement, breaker open, or draining).
    pub promote_refused: u64,
    /// Automatic rollbacks to the previous version.
    pub rollbacks: u64,
    /// Promotions whose guard window completed without regression.
    pub guard_passes: u64,
    /// Model version serving when the run ended (0 = base model).
    pub active_version: u64,
    /// Last computed drift score.
    pub last_drift_score: f64,
    /// Agreement fraction of the last completed shadow window.
    pub last_shadow_agreement: f64,
}

/// One lifecycle event, returned to the shard core for decision-log
/// entries and trace spans. All payloads are deterministic.
#[derive(Debug, Clone)]
pub(crate) enum AdaptEvent {
    /// Drift fired at `score`.
    Drift { score: f64 },
    /// Candidate `version` retrained on `rows` window rows.
    Retrain { version: u64, rows: usize },
    /// Retrain for `version` errored (injected).
    RetrainFail { version: u64 },
    /// Retrain for `version` stalled past its budget (injected).
    RetrainSlow { version: u64 },
    /// This request was shadow-scored against the candidate.
    Shadow { version: u64, agree: bool },
    /// Shadow window complete.
    ShadowDone {
        version: u64,
        agree: u64,
        scored: u64,
    },
    /// Candidate `version` promoted to serving.
    Promote { version: u64 },
    /// Promotion refused.
    PromoteRefused { version: u64, reason: &'static str },
    /// Guard window passed; `version` is confirmed.
    GuardPass { version: u64 },
    /// Guard regressed: rolled back from `from` to `to` (0 = base).
    Rollback { from: u64, to: u64 },
}

/// One completed request as the lifecycle observes it. `served_ea` is
/// the EA actually served, `degraded_ea` the drift-free target before
/// the per-epoch offset, `breaker_open`/`draining` gate promotion.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Completion<'a> {
    pub features: &'a [f64],
    pub degraded_ea: f64,
    pub served_ea: f64,
    pub now: f64,
    pub deadline_missed: bool,
    pub breaker_open: bool,
    pub draining: bool,
}

/// A promoted (or previously promoted) model version.
#[derive(Debug, Clone)]
struct ModelVersion {
    version: u64,
    model: Arc<Cascade>,
    /// Injected `promote_corrupt`: predictions are offset by +1.0, which
    /// the guard band must catch.
    corrupt: bool,
}

/// A retrained candidate awaiting shadow scoring. Never served.
#[derive(Debug, Clone)]
struct CandidateModel {
    version: u64,
    model: Arc<Cascade>,
}

#[derive(Debug)]
enum Phase {
    Stable,
    Shadow {
        remaining: u64,
        scored: u64,
        agree: u64,
        /// Candidate residual sum over the shadow window: the guard
        /// baseline is "keep performing as you did in shadow", which is
        /// what lets the guard catch a corruption injected at promotion.
        cand_resid_sum: f64,
        /// Deadline misses (late completions + deadline sheds) during the
        /// shadow window.
        base_deadline: u64,
    },
    Guard {
        remaining: u64,
        scored: u64,
        resid_sum: f64,
        deadline_events: u64,
        base_resid_mean: f64,
        base_deadline_rate: f64,
    },
}

/// Per-shard model lifecycle state machine. Lives inside the shard core
/// and advances only from the serial replay phase.
#[derive(Debug)]
pub(crate) struct Lifecycle {
    cfg: AdaptConfig,
    plan: FaultPlan,
    shard_id: u32,
    seed: u64,
    /// Sliding retrain window: `(feature row, observed target)`.
    window: VecDeque<(Vec<f64>, f64)>,
    // Page-Hinkley state over residuals.
    ph_n: u64,
    ph_mean: f64,
    ph_m: f64,
    ph_min: f64,
    // Frozen allocation-ratio baseline (Welford until min_samples).
    base_n: u64,
    base_mean: f64,
    base_m2: f64,
    // Running window mean of the allocation ratio for the shift score.
    ratio_sum: f64,
    ratios: VecDeque<f64>,
    /// Current lifecycle epoch and its rolled drift offset.
    cur_epoch: Option<u64>,
    cur_offset: f64,
    phase: Phase,
    active: Option<ModelVersion>,
    /// Previously active versions, oldest first (`None` = base model).
    history: VecDeque<Option<ModelVersion>>,
    candidate: Option<CandidateModel>,
    next_version: u64,
    pub(crate) stats: AdaptStats,
    retrain_hist: Arc<stca_obs::Histogram>,
}

impl Lifecycle {
    pub(crate) fn new(cfg: AdaptConfig, plan: FaultPlan, seed: u64, shard: Option<u32>) -> Self {
        let retrain_hist = match shard {
            Some(id) => stca_obs::histogram(&format!("serve.shard{id}.adapt.retrain_seconds")),
            None => stca_obs::histogram("serve.adapt.retrain_seconds"),
        };
        Lifecycle {
            cfg,
            plan,
            shard_id: shard.unwrap_or(0),
            seed,
            window: VecDeque::with_capacity(cfg.window),
            ph_n: 0,
            ph_mean: 0.0,
            ph_m: 0.0,
            ph_min: 0.0,
            base_n: 0,
            base_mean: 0.0,
            base_m2: 0.0,
            ratio_sum: 0.0,
            ratios: VecDeque::with_capacity(cfg.window),
            cur_epoch: None,
            cur_offset: 0.0,
            phase: Phase::Stable,
            active: None,
            history: VecDeque::new(),
            candidate: None,
            next_version: 1,
            stats: AdaptStats::default(),
            retrain_hist,
        }
    }

    /// The prediction the active (promoted) model serves for `features`,
    /// or `None` while the base model is serving. Candidates are
    /// deliberately unreachable from here: shadow predictions are computed
    /// in [`Lifecycle::on_complete`] and never returned to the caller.
    pub(crate) fn serve_ea(&self, features: &[f64]) -> Option<(u64, f64)> {
        let v = self.active.as_ref()?;
        let mut pred = v.model.predict(features);
        if v.corrupt {
            pred += 1.0;
        }
        pred.is_finite().then_some((v.version, pred))
    }

    /// Version currently serving (0 = base model).
    pub(crate) fn active_version(&self) -> u64 {
        self.active.as_ref().map_or(0, |v| v.version)
    }

    /// Count a deadline miss (late completion or deadline shed) against
    /// the current shadow/guard window.
    pub(crate) fn note_deadline_event(&mut self) {
        match &mut self.phase {
            Phase::Shadow { base_deadline, .. } => *base_deadline += 1,
            Phase::Guard {
                deadline_events, ..
            } => *deadline_events += 1,
            Phase::Stable => {}
        }
    }

    /// Reset drift statistics (after any lifecycle transition, so the
    /// detector re-accumulates evidence against the new serving model).
    fn reset_detector(&mut self) {
        self.ph_n = 0;
        self.ph_mean = 0.0;
        self.ph_m = 0.0;
        self.ph_min = 0.0;
    }

    /// Roll the per-epoch drift offset lazily as virtual time crosses
    /// epoch boundaries.
    fn refresh_epoch(&mut self, now: f64) -> u64 {
        let epoch = (now.max(0.0) / self.cfg.epoch_s).floor() as u64;
        if self.cur_epoch != Some(epoch) {
            self.cur_epoch = Some(epoch);
            self.cur_offset = self.plan.drift_burst_offset(self.shard_id, epoch);
        }
        epoch
    }

    /// Push one observation into the sliding window and update the
    /// drift statistics. Returns the combined drift score.
    fn observe_stats(&mut self, features: &[f64], observed: f64, residual: f64) -> f64 {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back((features.to_vec(), observed));

        let ratio = features.first().copied().unwrap_or(1.0);
        if self.ratios.len() == self.cfg.window {
            if let Some(old) = self.ratios.pop_front() {
                self.ratio_sum -= old;
            }
        }
        self.ratios.push_back(ratio);
        self.ratio_sum += ratio;
        if self.base_n < self.cfg.min_samples as u64 {
            // freeze the baseline after min_samples: later drift is
            // measured against where the stream started
            self.base_n += 1;
            let d = ratio - self.base_mean;
            self.base_mean += d / self.base_n as f64;
            self.base_m2 += d * (ratio - self.base_mean);
        }

        // Page-Hinkley over residuals
        self.ph_n += 1;
        self.ph_mean += (residual - self.ph_mean) / self.ph_n as f64;
        self.ph_m += residual - self.ph_mean - PH_DELTA;
        if self.ph_m < self.ph_min {
            self.ph_min = self.ph_m;
        }
        let ph = self.ph_m - self.ph_min;

        // distribution shift: window mean vs frozen baseline, in
        // baseline standard deviations
        let shift = if self.base_n >= 2 {
            let std = (self.base_m2 / (self.base_n - 1) as f64)
                .sqrt()
                .max(SHIFT_STD_FLOOR);
            let win_mean = self.ratio_sum / self.ratios.len() as f64;
            (win_mean - self.base_mean).abs() / std
        } else {
            0.0
        };
        let score = ph.max(shift);
        self.stats.last_drift_score = score;
        score
    }

    /// Retrain a candidate on the current window. Warm-starts from the
    /// active version when one exists so an unchanged window reuses it
    /// wholesale.
    fn retrain(&mut self, version: u64) -> Option<CandidateModel> {
        let rows: Vec<Vec<f64>> = self.window.iter().map(|(f, _)| f.clone()).collect();
        let y: Vec<f64> = self.window.iter().map(|(_, t)| *t).collect();
        if rows.len() < 2 {
            return None;
        }
        let x = Matrix::from_rows(&rows);
        let stream = SeedStream::new(self.seed ^ TAG_RETRAIN).derive(version);
        let timer = stca_obs::StageTimer::with_histogram(self.retrain_hist.clone());
        let model = match self.active.as_ref() {
            Some(v) => Cascade::fit_warm_start(&x, &y, RETRAIN_CASCADE, &stream, &v.model),
            None => Cascade::fit(&x, &y, RETRAIN_CASCADE, &stream),
        };
        timer.stop();
        Some(CandidateModel {
            version,
            model: Arc::new(model),
        })
    }

    /// Advance the lifecycle with one completed request. Returns the
    /// lifecycle events for the core to log and trace.
    pub(crate) fn on_complete(&mut self, c: Completion<'_>) -> Vec<AdaptEvent> {
        let Completion {
            features,
            degraded_ea,
            served_ea,
            now,
            deadline_missed,
            breaker_open,
            draining,
        } = c;
        let mut events = Vec::new();
        let epoch = self.refresh_epoch(now);
        let observed = degraded_ea + self.cur_offset;
        let residual = (served_ea - observed).abs();
        if deadline_missed {
            self.note_deadline_event();
        }
        let score = self.observe_stats(features, observed, residual);

        // take the phase out so the arms can call &mut self freely
        let phase = std::mem::replace(&mut self.phase, Phase::Stable);
        self.phase = match phase {
            Phase::Stable => {
                if self.ph_n >= self.cfg.min_samples as u64 && score > self.cfg.drift_threshold {
                    self.stats.drifts += 1;
                    events.push(AdaptEvent::Drift { score });
                    self.reset_detector();
                    let version = self.next_version;
                    self.next_version += 1;
                    if self.plan.retrain_fail(self.shard_id, epoch) {
                        self.stats.retrain_failures += 1;
                        events.push(AdaptEvent::RetrainFail { version });
                        Phase::Stable
                    } else if self.plan.retrain_slow_s(
                        self.shard_id,
                        epoch,
                        self.cfg.retrain_budget_s,
                    ) > self.cfg.retrain_budget_s
                    {
                        self.stats.retrain_slows += 1;
                        events.push(AdaptEvent::RetrainSlow { version });
                        Phase::Stable
                    } else if let Some(cand) = self.retrain(version) {
                        self.stats.retrains += 1;
                        events.push(AdaptEvent::Retrain {
                            version: cand.version,
                            rows: self.window.len(),
                        });
                        self.candidate = Some(cand);
                        Phase::Shadow {
                            remaining: self.cfg.shadow_requests,
                            scored: 0,
                            agree: 0,
                            cand_resid_sum: 0.0,
                            base_deadline: 0,
                        }
                    } else {
                        Phase::Stable
                    }
                } else {
                    Phase::Stable
                }
            }
            Phase::Shadow {
                mut remaining,
                mut scored,
                mut agree,
                mut cand_resid_sum,
                base_deadline,
            } => match self.candidate.as_ref() {
                None => Phase::Stable,
                Some(cand) => {
                    let cand_pred = cand.model.predict(features);
                    let cand_err = (cand_pred - observed).abs();
                    let agrees = cand_err.is_finite() && cand_err <= residual + self.cfg.agree_tol;
                    scored += 1;
                    remaining -= 1;
                    if agrees {
                        agree += 1;
                        self.stats.shadow_agree += 1;
                    }
                    cand_resid_sum += if cand_err.is_finite() {
                        cand_err
                    } else {
                        residual
                    };
                    self.stats.shadow_scored += 1;
                    let version = cand.version;
                    events.push(AdaptEvent::Shadow {
                        version,
                        agree: agrees,
                    });
                    if remaining > 0 {
                        Phase::Shadow {
                            remaining,
                            scored,
                            agree,
                            cand_resid_sum,
                            base_deadline,
                        }
                    } else {
                        let agreement = agree as f64 / scored as f64;
                        self.stats.last_shadow_agreement = agreement;
                        events.push(AdaptEvent::ShadowDone {
                            version,
                            agree,
                            scored,
                        });
                        let refusal = if draining {
                            Some("draining")
                        } else if breaker_open {
                            Some("breaker_open")
                        } else if agreement < self.cfg.promote_agreement {
                            Some("agreement")
                        } else {
                            None
                        };
                        match refusal {
                            Some(reason) => {
                                self.stats.promote_refused += 1;
                                self.candidate = None;
                                self.reset_detector();
                                events.push(AdaptEvent::PromoteRefused { version, reason });
                                Phase::Stable
                            }
                            None => {
                                let cand = self
                                    .candidate
                                    .take()
                                    .expect("candidate checked at phase entry");
                                let corrupt = self.plan.promote_corrupt(self.shard_id, epoch);
                                // atomic promotion: the previous version
                                // goes to the bounded history and the
                                // candidate becomes the serving model in
                                // one step
                                if self.history.len() == self.cfg.history {
                                    self.history.pop_front();
                                }
                                self.history.push_back(self.active.take());
                                self.active = Some(ModelVersion {
                                    version: cand.version,
                                    model: cand.model,
                                    corrupt,
                                });
                                self.stats.promotions += 1;
                                self.reset_detector();
                                events.push(AdaptEvent::Promote { version });
                                Phase::Guard {
                                    remaining: self.cfg.guard_requests,
                                    scored: 0,
                                    resid_sum: 0.0,
                                    deadline_events: 0,
                                    base_resid_mean: cand_resid_sum / scored as f64,
                                    base_deadline_rate: base_deadline as f64 / scored as f64,
                                }
                            }
                        }
                    }
                }
            },
            Phase::Guard {
                mut remaining,
                mut scored,
                mut resid_sum,
                deadline_events,
                base_resid_mean,
                base_deadline_rate,
            } => {
                scored += 1;
                resid_sum += residual;
                remaining -= 1;
                if remaining > 0 {
                    Phase::Guard {
                        remaining,
                        scored,
                        resid_sum,
                        deadline_events,
                        base_resid_mean,
                        base_deadline_rate,
                    }
                } else {
                    let resid_mean = resid_sum / scored as f64;
                    let deadline_rate = deadline_events as f64 / scored as f64;
                    let resid_ok =
                        resid_mean <= base_resid_mean * self.cfg.guard_band + GUARD_SLACK;
                    let deadline_ok =
                        deadline_rate <= base_deadline_rate * self.cfg.guard_band + GUARD_SLACK;
                    let version = self.active_version();
                    self.reset_detector();
                    if resid_ok && deadline_ok {
                        self.stats.guard_passes += 1;
                        events.push(AdaptEvent::GuardPass { version });
                    } else {
                        // automatic rollback: re-install the previous
                        // version from the bounded history
                        let prev = self.history.pop_back().flatten();
                        let to = prev.as_ref().map_or(0, |v| v.version);
                        self.active = prev;
                        self.stats.rollbacks += 1;
                        events.push(AdaptEvent::Rollback { from: version, to });
                    }
                    Phase::Stable
                }
            }
        };
        self.stats.active_version = self.active_version();
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).expect("plan parses")
    }

    fn feed(lc: &mut Lifecycle, n: u64, t0: f64, ea: f64) -> Vec<AdaptEvent> {
        let mut all = Vec::new();
        for i in 0..n {
            let now = t0 + i as f64 * 0.01;
            let feats = vec![0.5 + 0.001 * (i % 7) as f64, 0.2];
            all.extend(lc.on_complete(Completion {
                features: &feats,
                degraded_ea: ea,
                served_ea: ea,
                now,
                deadline_missed: false,
                breaker_open: false,
                draining: false,
            }));
        }
        all
    }

    fn cfg() -> AdaptConfig {
        AdaptConfig {
            enabled: true,
            epoch_s: 1.0,
            window: 64,
            min_samples: 8,
            drift_threshold: 2.0,
            shadow_requests: 8,
            agree_tol: 0.25,
            promote_agreement: 0.5,
            guard_requests: 8,
            guard_band: 1.5,
            history: 2,
            retrain_budget_s: 1.0,
        }
    }

    #[test]
    fn clean_traffic_never_drifts() {
        let mut lc = Lifecycle::new(cfg(), FaultPlan::none(), 7, None);
        let events = feed(&mut lc, 500, 0.0, 1.0);
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(lc.stats.drifts, 0);
        assert_eq!(lc.active_version(), 0);
        assert!(lc.serve_ea(&[0.5]).is_none(), "base model keeps serving");
    }

    #[test]
    fn drift_burst_triggers_retrain_shadow_and_promotion() {
        // force a drift burst in every epoch; no other lifecycle faults
        let mut lc = Lifecycle::new(cfg(), plan("drift_burst=1.0,seed=3"), 7, None);
        let events = feed(&mut lc, 400, 0.0, 1.0);
        assert!(lc.stats.drifts >= 1, "{:?}", lc.stats);
        assert!(lc.stats.retrains >= 1, "{:?}", lc.stats);
        assert!(lc.stats.shadow_scored >= 8, "{:?}", lc.stats);
        assert!(lc.stats.promotions >= 1, "{:?}", lc.stats);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, AdaptEvent::Promote { .. })),
            "promotion event emitted"
        );
        // every promotion is confirmed, rolled back, or still in guard
        assert!(
            lc.stats.guard_passes + lc.stats.rollbacks <= lc.stats.promotions,
            "{:?}",
            lc.stats
        );
        // when a version is active at the end, it serves
        if lc.active_version() > 0 {
            assert!(lc.serve_ea(&[0.5, 0.2]).is_some());
        }
    }

    #[test]
    fn corrupt_promotion_rolls_back_to_the_previous_version() {
        let mut lc = Lifecycle::new(
            cfg(),
            plan("drift_burst=1.0,promote_corrupt=1.0,seed=3"),
            7,
            None,
        );
        feed(&mut lc, 600, 0.0, 1.0);
        assert!(lc.stats.promotions >= 1, "{:?}", lc.stats);
        assert!(
            lc.stats.rollbacks >= 1,
            "every corrupt promotion must roll back: {:?}",
            lc.stats
        );
    }

    #[test]
    fn injected_retrain_failures_abandon_the_candidate() {
        let mut lc = Lifecycle::new(
            cfg(),
            plan("drift_burst=1.0,retrain_fail=1.0,seed=3"),
            7,
            None,
        );
        let events = feed(&mut lc, 300, 0.0, 1.0);
        assert!(lc.stats.retrain_failures >= 1, "{:?}", lc.stats);
        assert_eq!(lc.stats.retrains, 0);
        assert_eq!(lc.stats.promotions, 0);
        assert!(events
            .iter()
            .any(|e| matches!(e, AdaptEvent::RetrainFail { .. })));
    }

    #[test]
    fn injected_slow_retrains_blow_the_budget_and_abort() {
        let mut lc = Lifecycle::new(
            cfg(),
            plan("drift_burst=1.0,retrain_slow=1.0,seed=3"),
            7,
            None,
        );
        feed(&mut lc, 300, 0.0, 1.0);
        assert!(lc.stats.retrain_slows >= 1, "{:?}", lc.stats);
        assert_eq!(lc.stats.retrains, 0);
    }

    #[test]
    fn lifecycle_is_bit_identical_across_reruns() {
        let run = || {
            let mut lc = Lifecycle::new(
                cfg(),
                plan("drift_burst=0.7,retrain_fail=0.2,promote_corrupt=0.4,seed=9"),
                11,
                Some(2),
            );
            feed(&mut lc, 800, 0.0, 1.0);
            (
                lc.stats,
                lc.active_version(),
                lc.serve_ea(&[0.4, 0.1]).map(|(v, ea)| (v, ea.to_bits())),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let ok = AdaptConfig {
            enabled: true,
            ..AdaptConfig::default()
        };
        assert!(ok.validate().is_ok());
        assert!(AdaptConfig::default().validate().is_ok(), "disabled skips");
        for bad in [
            AdaptConfig { epoch_s: 0.0, ..ok },
            AdaptConfig { window: 1, ..ok },
            AdaptConfig {
                min_samples: 1,
                ..ok
            },
            AdaptConfig {
                min_samples: 10_000,
                ..ok
            },
            AdaptConfig {
                drift_threshold: f64::NAN,
                ..ok
            },
            AdaptConfig {
                shadow_requests: 0,
                ..ok
            },
            AdaptConfig {
                agree_tol: -1.0,
                ..ok
            },
            AdaptConfig {
                promote_agreement: 1.5,
                ..ok
            },
            AdaptConfig {
                guard_requests: 0,
                ..ok
            },
            AdaptConfig {
                guard_band: 0.5,
                ..ok
            },
            AdaptConfig { history: 0, ..ok },
            AdaptConfig {
                retrain_budget_s: 0.0,
                ..ok
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }
}
