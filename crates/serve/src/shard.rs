//! One serving shard: the serial-replay core shared by the single-loop
//! server and the fleet.
//!
//! [`ShardCore`] is the phase-2 state machine of the serving loop —
//! bounded admission queue, virtual servers, circuit breaker, hysteresis
//! controller, watchdog retry path, deadline budgets, and graceful drain —
//! factored out of `server.rs` so `fleet.rs` can run N independent fault
//! domains over the same stages. The single-loop server drives exactly one
//! core with an empty log suffix, which keeps its decision log
//! byte-identical to the pre-fleet implementation.
//!
//! Decision-log entries flow through a caller-owned [`DecisionSink`]: one
//! sink per run, shared by every shard in a fleet, so the fleet decision
//! hash covers shard entries and router entries in one deterministic
//! serial order.

use crate::adapt::{AdaptEvent, Completion, Lifecycle};
use crate::breaker::CircuitBreaker;
use crate::hysteresis::Hysteresis;
use crate::model::{decide, EaModel, TIMEOUT_GRID};
use crate::request::Request;
use crate::server::{Accounting, OverloadPolicy, ServeConfig};
use crate::watchdog::{StageRun, Watchdog};
use crate::Verdict;
use stca_fault::{FaultInjector, FaultPlan};
use stca_queuesim::{QueueSim, RunBudget, StationConfig};
use stca_trace::{AttrValue, Disposition, FlightRecorder, Stage, TraceCtx};
use stca_util::Distribution;
use std::collections::VecDeque;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Rolling FNV-1a decision-log hash plus the (optional) retained log.
/// Entries are hashed as `entry + "\n"` so the hash equals the FNV-1a of
/// the decision-log file bytes.
#[derive(Debug)]
pub(crate) struct DecisionSink {
    hash: u64,
    log: Vec<String>,
    keep: bool,
}

impl DecisionSink {
    pub(crate) fn new(keep: bool) -> Self {
        DecisionSink {
            hash: FNV_OFFSET,
            log: Vec::new(),
            keep,
        }
    }

    pub(crate) fn push(&mut self, entry: String) {
        for b in entry.as_bytes() {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.hash ^= u64::from(b'\n');
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        if self.keep {
            self.log.push(entry);
        }
    }

    pub(crate) fn hash(&self) -> u64 {
        self.hash
    }

    pub(crate) fn into_log(self) -> Vec<String> {
        self.log
    }
}

/// Pure per-request compute: everything the parallel phase produces.
#[derive(Debug, Clone)]
pub(crate) struct Computed {
    /// Injected primary-predictor fault for this request.
    pub(crate) fault: bool,
    /// Primary EA, if the model returned one.
    pub(crate) primary: Option<f64>,
    /// Degraded EA and its tier.
    pub(crate) degraded_ea: f64,
    pub(crate) degraded_tier: u8,
    /// Injected stall per stage (0 = predict, 1 = decide) and attempt.
    pub(crate) stall: [[f64; 2]; 2],
}

/// A request waiting in (or entering) the admission queue.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub(crate) seq: u64,
    pub(crate) arrival_s: f64,
    /// Earliest virtual time service may start. Equals `arrival_s` for a
    /// directly-routed request; a rerouted request cannot start before the
    /// crash that moved it. Deadline budgets always count from
    /// `arrival_s`.
    pub(crate) ready_s: f64,
    pub(crate) deadline_s: f64,
    /// Reroute hops this request has taken (fleet only).
    pub(crate) hops: u32,
    /// Feature row (kept past phase 1 so the adapt lifecycle can window,
    /// shadow-score, and serve retrained models on it).
    pub(crate) features: Vec<f64>,
    pub(crate) comp: Computed,
    /// In-flight trace (`Some` when tracing is enabled).
    pub(crate) ctx: Option<TraceCtx>,
}

/// Serial replay state for one shard (phase 2 of each chunk).
pub(crate) struct ShardCore<'a> {
    pub(crate) cfg: &'a ServeConfig,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) hyst: Hysteresis,
    watchdog: Watchdog,
    pub(crate) acct: Accounting,
    /// Per-server virtual free-at times.
    servers: Vec<f64>,
    pub(crate) waiting: VecDeque<Pending>,
    pub(crate) responses: Vec<f64>,
    pub(crate) degraded: u64,
    pub(crate) watchdog_trips: u64,
    pub(crate) retries: u64,
    pub(crate) policy_validations: u64,
    pub(crate) sim_budget_exhausted: u64,
    last_ea: f64,
    seed: u64,
    /// Once graceful drain begins, a half-open breaker must not spend
    /// drain traffic on probe recovery: probe verdicts are gated to
    /// rejects.
    draining: bool,
    /// Appended to every decision-log entry (`" shard=N"` in a fleet,
    /// empty for the single loop so its log stays byte-identical).
    suffix: String,
    /// Shard id this core was created as (`None` for the single loop).
    shard: Option<u32>,
    /// Drift-aware model lifecycle (`Some` once [`ShardCore::install_adapt`]
    /// ran with adaptation enabled).
    pub(crate) lifecycle: Option<Lifecycle>,
    resp_hist: std::sync::Arc<stca_obs::Histogram>,
    /// Flight recorder (`Some` when tracing is enabled). Written only by
    /// the serial replay phase, so retention is thread-count-proof; the
    /// mutex exists so the recorder can be published as the process-wide
    /// active recorder for out-of-band dumps (error hooks), and is
    /// uncontended otherwise.
    pub(crate) recorder: Option<std::sync::Arc<std::sync::Mutex<FlightRecorder>>>,
}

impl<'a> ShardCore<'a> {
    /// A fresh core. `shard` selects fleet mode: per-shard metric names
    /// (`serve.shardN.*`) and a `" shard=N"` decision-log suffix; `None`
    /// keeps the single-loop names and byte format.
    pub(crate) fn new(cfg: &'a ServeConfig, seed: u64, shard: Option<u32>) -> Self {
        let initial = decide(&cfg.station, 1.0);
        let resp_hist = match shard {
            Some(id) => stca_obs::histogram(&format!("serve.shard{id}.response_seconds")),
            None => stca_obs::histogram("serve.response_seconds"),
        };
        ShardCore {
            cfg,
            breaker: CircuitBreaker::new(cfg.breaker),
            hyst: Hysteresis::new(cfg.hysteresis_k, initial),
            watchdog: Watchdog {
                budget_s: cfg.watchdog_budget_s,
            },
            acct: Accounting::default(),
            servers: vec![0.0; cfg.servers],
            waiting: VecDeque::new(),
            responses: Vec::new(),
            degraded: 0,
            watchdog_trips: 0,
            retries: 0,
            policy_validations: 0,
            sim_budget_exhausted: 0,
            last_ea: 1.0,
            seed,
            draining: false,
            suffix: shard.map(|id| format!(" shard={id}")).unwrap_or_default(),
            shard,
            lifecycle: None,
            resp_hist,
            recorder: cfg
                .trace
                .map(|tc| std::sync::Arc::new(std::sync::Mutex::new(FlightRecorder::new(tc)))),
        }
    }

    /// Install the drift-aware model lifecycle, if the config enables it.
    /// Called once per core, right after construction, by the single-loop
    /// server and by every fleet slot.
    pub(crate) fn install_adapt(&mut self, plan: &FaultPlan) {
        if self.cfg.adapt.enabled {
            self.lifecycle = Some(Lifecycle::new(
                self.cfg.adapt,
                plan.clone(),
                self.seed,
                self.shard,
            ));
        }
    }

    /// File a finished trace (no-op when tracing is off).
    pub(crate) fn record_trace(
        &mut self,
        ctx: Option<TraceCtx>,
        disposition: Disposition,
        end_s: f64,
    ) {
        if let (Some(rec), Some(ctx)) = (self.recorder.as_ref(), ctx) {
            if let Ok(mut rec) = rec.lock() {
                rec.record(ctx.finish(disposition, end_s));
            }
        }
    }

    /// Push one decision-log entry, stamped with this shard's suffix.
    fn log_entry(&self, sink: &mut DecisionSink, entry: String) {
        if self.suffix.is_empty() {
            sink.push(entry);
        } else {
            sink.push(entry + &self.suffix);
        }
    }

    /// Earliest-free server (lowest index breaks ties).
    fn next_server(&self) -> (usize, f64) {
        let mut best = 0;
        let mut best_free = self.servers[0];
        for (i, &f) in self.servers.iter().enumerate().skip(1) {
            if f < best_free {
                best = i;
                best_free = f;
            }
        }
        (best, best_free)
    }

    /// Current queue depth (the router's load snapshot).
    pub(crate) fn queue_depth(&self) -> usize {
        self.waiting.len()
    }

    /// Flip the drain gate: from here on, half-open breaker probes are
    /// rejected instead of admitted.
    pub(crate) fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether the drain gate is closed (drain has begun).
    #[cfg(test)]
    pub(crate) fn is_draining(&self) -> bool {
        self.draining
    }

    /// Take the whole admission queue (shard crash: the fleet reroutes or
    /// sheds every waiting request).
    pub(crate) fn flush_waiting(&mut self) -> Vec<Pending> {
        self.waiting.drain(..).collect()
    }

    /// Push every server's free-at time to at least `t` (crash outage or
    /// injected shard stall: the shard does no useful work until `t`).
    pub(crate) fn freeze_until(&mut self, t: f64) {
        for f in &mut self.servers {
            if *f < t {
                *f = t;
            }
        }
    }

    /// Try to move the queue head into service, if it can start by
    /// `now_limit`. Returns false when the head must keep waiting (or the
    /// queue is empty).
    pub(crate) fn dispatch_one(&mut self, now_limit: f64, sink: &mut DecisionSink) -> bool {
        let Some(head) = self.waiting.front() else {
            return false;
        };
        let (si, free) = self.next_server();
        let start = free.max(head.ready_s);
        if start > now_limit {
            return false;
        }
        let mut p = self.waiting.pop_front().expect("front checked above");
        if let Some(ctx) = p.ctx.as_mut() {
            let depth = self.waiting.len() as f64;
            ctx.push_span(Stage::QueueWait, p.arrival_s, start)
                .args
                .push(("queue_depth", AttrValue::Num(depth)));
        }
        // deadline check at dispatch: queueing alone may have eaten the
        // whole budget
        if start - p.arrival_s >= p.deadline_s {
            self.acct.shed_deadline += 1;
            if let Some(lc) = self.lifecycle.as_mut() {
                lc.note_deadline_event();
            }
            self.log_entry(
                sink,
                format!("seq={} disp=shed_deadline stage=queue", p.seq),
            );
            self.record_trace(p.ctx.take(), Disposition::ShedDeadline, start);
            return true;
        }
        self.service(p, start, si, sink);
        true
    }

    pub(crate) fn dispatch_ready(&mut self, now: f64, sink: &mut DecisionSink) {
        while self.dispatch_one(now, sink) {}
    }

    /// Run one stage under the watchdog with its retry path. Returns the
    /// virtual cost charged, whether the stage ultimately succeeded, and
    /// whether the watchdog had to retry it.
    fn run_stage(&mut self, base_cost_s: f64, stalls: [f64; 2]) -> (f64, bool, bool) {
        match self.watchdog.supervise(base_cost_s, stalls[0]) {
            StageRun::Ok { cost_s } => (cost_s, true, false),
            StageRun::Stuck { wasted_s } => {
                self.watchdog_trips += 1;
                self.retries += 1;
                match self.watchdog.supervise(base_cost_s, stalls[1]) {
                    StageRun::Ok { cost_s } => (wasted_s + cost_s, true, true),
                    StageRun::Stuck { wasted_s: w2 } => {
                        self.watchdog_trips += 1;
                        (wasted_s + w2, false, true)
                    }
                }
            }
        }
    }

    /// Execute predict → decide for one dispatched request.
    fn service(&mut self, mut p: Pending, start: f64, si: usize, sink: &mut DecisionSink) {
        if let Some(ctx) = p.ctx.as_mut() {
            ctx.set_server(si);
        }
        stca_obs::set_virtual_now(start);
        // ---- predict stage (primary behind the breaker) ----
        let (predict_cost, predict_ok, predict_retried) =
            self.run_stage(self.cfg.predict_cost_s, p.comp.stall[0]);
        if predict_retried {
            if let Some(ctx) = p.ctx.as_mut() {
                ctx.flag_watchdog_retry();
            }
        }
        if !predict_ok {
            self.servers[si] = start + predict_cost;
            self.acct.shed_failed += 1;
            self.log_entry(sink, format!("seq={} disp=failed stage=predict", p.seq));
            if let Some(ctx) = p.ctx.as_mut() {
                ctx.push_span(Stage::Predict, start, start + predict_cost)
                    .args
                    .push(("retries", AttrValue::Num(2.0)));
            }
            self.record_trace(p.ctx.take(), Disposition::ShedFailed, start + predict_cost);
            return;
        }
        let breaker_counters = (self.breaker.opens, self.breaker.closes);
        let verdict = self.breaker.decide_gated(start, p.seq, !self.draining);
        let (mut ea, tier) = match verdict {
            Verdict::Admit | Verdict::Probe => match (p.comp.fault, p.comp.primary) {
                (false, Some(ea)) => {
                    self.breaker.record_success(start);
                    (ea, 0u8)
                }
                _ => {
                    self.breaker.record_failure(start);
                    self.degraded += 1;
                    (p.comp.degraded_ea, p.comp.degraded_tier)
                }
            },
            Verdict::Reject => {
                self.degraded += 1;
                (p.comp.degraded_ea, p.comp.degraded_tier)
            }
        };
        // a promoted model version serves the primary path; candidates in
        // shadow are unreachable from serve_ea by construction
        let mut served_version = 0u64;
        if tier == 0 {
            if let Some((v, pred)) = self
                .lifecycle
                .as_ref()
                .and_then(|lc| lc.serve_ea(&p.features))
            {
                ea = pred;
                served_version = v;
            }
        }
        self.last_ea = ea;
        if let Some(ctx) = p.ctx.as_mut() {
            if (self.breaker.opens, self.breaker.closes) != breaker_counters {
                ctx.flag_breaker_transition();
            }
            let span = ctx.push_span(Stage::Predict, start, start + predict_cost);
            span.args.push((
                "mode",
                AttrValue::Text(if tier == 0 { "strict" } else { "degraded" }.to_string()),
            ));
            span.args.push(("tier", AttrValue::Num(f64::from(tier))));
            span.args.push((
                "verdict",
                AttrValue::Text(
                    match verdict {
                        Verdict::Admit => "admit",
                        Verdict::Probe => "probe",
                        Verdict::Reject => "reject",
                    }
                    .to_string(),
                ),
            ));
            span.args.push(("ea", AttrValue::Num(ea)));
        }
        // deadline propagation: no point deciding for a request whose
        // budget died in the predict stage
        if (start + predict_cost) - p.arrival_s >= p.deadline_s {
            self.servers[si] = start + predict_cost;
            self.acct.shed_deadline += 1;
            if let Some(lc) = self.lifecycle.as_mut() {
                lc.note_deadline_event();
            }
            self.log_entry(
                sink,
                format!("seq={} disp=shed_deadline stage=predict", p.seq),
            );
            self.record_trace(
                p.ctx.take(),
                Disposition::ShedDeadline,
                start + predict_cost,
            );
            return;
        }
        // ---- decide stage ----
        let (decide_cost, decide_ok, decide_retried) =
            self.run_stage(self.cfg.decide_cost_s, p.comp.stall[1]);
        if decide_retried {
            if let Some(ctx) = p.ctx.as_mut() {
                ctx.flag_watchdog_retry();
            }
        }
        let total = predict_cost + decide_cost;
        if !decide_ok {
            self.servers[si] = start + total;
            self.acct.shed_failed += 1;
            self.log_entry(sink, format!("seq={} disp=failed stage=decide", p.seq));
            if let Some(ctx) = p.ctx.as_mut() {
                ctx.push_span(Stage::Decide, start + predict_cost, start + total)
                    .args
                    .push(("retries", AttrValue::Num(2.0)));
            }
            self.record_trace(p.ctx.take(), Disposition::ShedFailed, start + total);
            return;
        }
        let idx = decide(&self.cfg.station, ea);
        let completion = start + total;
        if let Some(ctx) = p.ctx.as_mut() {
            let span = ctx.push_span(Stage::Decide, start + predict_cost, completion);
            span.args.push(("timeout_idx", AttrValue::Num(idx as f64)));
            span.args
                .push(("timeout_s", AttrValue::Num(TIMEOUT_GRID[idx])));
        }
        if let Some(new_idx) = self.hyst.observe(idx) {
            self.validate_policy(new_idx);
            if let Some(ctx) = p.ctx.as_mut() {
                ctx.push_span(Stage::ValidatePolicy, completion, completion)
                    .args
                    .push(("applied", AttrValue::Num(new_idx as f64)));
            }
        }
        self.servers[si] = completion;
        stca_obs::set_virtual_now(completion);
        let resp = completion - p.arrival_s;
        self.acct.completed += 1;
        let exceeded = resp > p.deadline_s;
        if exceeded {
            self.acct.deadline_exceeded += 1;
        }
        self.responses.push(resp);
        if let Some(ctx) = p.ctx.as_ref() {
            // stamp the response sample with this request's trace id so
            // the `serve.response_seconds` bucket gains an exemplar
            stca_obs::set_current_trace_id(ctx.trace_id());
        }
        self.resp_hist.record(resp);
        if p.ctx.is_some() {
            stca_obs::set_current_trace_id(0);
        }
        let mut entry = format!(
            "seq={} disp=ok tier={} ea={:016x} t={} applied={} resp={:016x}",
            p.seq,
            tier,
            ea.to_bits(),
            idx,
            self.hyst.applied(),
            resp.to_bits(),
        );
        if served_version > 0 {
            entry.push_str(&format!(" v={served_version}"));
        }
        self.log_entry(sink, entry);
        // advance the model lifecycle with this completion; any drift,
        // retrain, shadow, promotion, or rollback it produces is logged
        // (and traced) at this request's completion time
        let breaker_open = self.breaker.is_open_at(completion);
        let draining = self.draining;
        let events = match self.lifecycle.as_mut() {
            Some(lc) => lc.on_complete(Completion {
                features: &p.features,
                degraded_ea: p.comp.degraded_ea,
                served_ea: ea,
                now: completion,
                deadline_missed: exceeded,
                breaker_open,
                draining,
            }),
            None => Vec::new(),
        };
        self.apply_adapt_events(&events, p.ctx.as_mut(), completion, sink);
        let disposition = if exceeded {
            Disposition::DeadlineExceeded
        } else {
            Disposition::Completed
        };
        self.record_trace(p.ctx.take(), disposition, completion);
    }

    /// Turn lifecycle events into decision-log entries and trace spans.
    /// Entry order is fixed by the event order, so the decision hash
    /// covers the whole lifecycle deterministically.
    fn apply_adapt_events(
        &self,
        events: &[AdaptEvent],
        mut ctx: Option<&mut TraceCtx>,
        now: f64,
        sink: &mut DecisionSink,
    ) {
        for ev in events {
            match ev {
                AdaptEvent::Drift { score } => {
                    self.log_entry(sink, format!("event=drift score={:016x}", score.to_bits()));
                }
                AdaptEvent::Retrain { version, rows } => {
                    self.log_entry(
                        sink,
                        format!("event=retrain version={version} rows={rows} outcome=ok"),
                    );
                    if let Some(ctx) = ctx.as_deref_mut() {
                        let span = ctx.push_span(Stage::Retrain, now, now);
                        span.args.push(("version", AttrValue::Num(*version as f64)));
                        span.args
                            .push(("outcome", AttrValue::Text("ok".to_string())));
                    }
                }
                AdaptEvent::RetrainFail { version } => {
                    self.log_entry(
                        sink,
                        format!("event=retrain version={version} outcome=fail"),
                    );
                    if let Some(ctx) = ctx.as_deref_mut() {
                        let span = ctx.push_span(Stage::Retrain, now, now);
                        span.args.push(("version", AttrValue::Num(*version as f64)));
                        span.args
                            .push(("outcome", AttrValue::Text("fail".to_string())));
                    }
                }
                AdaptEvent::RetrainSlow { version } => {
                    self.log_entry(
                        sink,
                        format!("event=retrain version={version} outcome=slow"),
                    );
                    if let Some(ctx) = ctx.as_deref_mut() {
                        let span = ctx.push_span(Stage::Retrain, now, now);
                        span.args.push(("version", AttrValue::Num(*version as f64)));
                        span.args
                            .push(("outcome", AttrValue::Text("slow".to_string())));
                    }
                }
                AdaptEvent::Shadow { version, agree } => {
                    // per-request shadow scores are traced, not logged:
                    // the window verdict lands in `shadow_done`
                    if let Some(ctx) = ctx.as_deref_mut() {
                        let span = ctx.push_span(Stage::Shadow, now, now);
                        span.args.push(("version", AttrValue::Num(*version as f64)));
                        span.args
                            .push(("agree", AttrValue::Num(f64::from(u8::from(*agree)))));
                    }
                }
                AdaptEvent::ShadowDone {
                    version,
                    agree,
                    scored,
                } => {
                    self.log_entry(
                        sink,
                        format!(
                            "event=shadow_done version={version} agree={agree} scored={scored}"
                        ),
                    );
                }
                AdaptEvent::Promote { version } => {
                    self.log_entry(sink, format!("event=promote version={version}"));
                    if let Some(ctx) = ctx.as_deref_mut() {
                        let span = ctx.push_span(Stage::Promote, now, now);
                        span.args.push(("version", AttrValue::Num(*version as f64)));
                    }
                }
                AdaptEvent::PromoteRefused { version, reason } => {
                    self.log_entry(
                        sink,
                        format!("event=promote_refused version={version} reason={reason}"),
                    );
                }
                AdaptEvent::GuardPass { version } => {
                    self.log_entry(sink, format!("event=guard_pass version={version}"));
                }
                AdaptEvent::Rollback { from, to } => {
                    self.log_entry(sink, format!("event=rollback from={from} to={to}"));
                    if let Some(ctx) = ctx.as_deref_mut() {
                        let span = ctx.push_span(Stage::Rollback, now, now);
                        span.args.push(("from", AttrValue::Num(*from as f64)));
                        span.args.push(("to", AttrValue::Num(*to as f64)));
                    }
                }
            }
        }
    }

    /// Budgeted validation sim for a freshly applied timeout: replays the
    /// station under the new policy with a hard event budget, so a policy
    /// flip can never stall the control loop.
    fn validate_policy(&mut self, new_idx: usize) {
        if self.cfg.sim_budget_events == 0 {
            return;
        }
        let st = &self.cfg.station;
        let gain = (self.last_ea * (st.alloc_boost - 1.0)).max(0.0);
        let sim_cfg = StationConfig {
            inter_arrival: Distribution::Exponential {
                mean: 1.0 / st.lambda(),
            },
            service: Distribution::Exponential { mean: st.service_s },
            expected_service: st.service_s,
            timeout_ratio: TIMEOUT_GRID[new_idx],
            boost_rate: (1.0 + gain).max(1.0),
            servers: st.servers,
            shared_boost: true,
            measured_queries: 2000,
            warmup_queries: 200,
        };
        let seed = self.seed ^ self.hyst.applies.wrapping_mul(0x9E37_79B9);
        if let Ok(mut sim) = QueueSim::try_new(sim_cfg, seed) {
            let run = sim.run_budgeted(RunBudget::events(self.cfg.sim_budget_events));
            self.policy_validations += 1;
            if run.exhausted {
                self.sim_budget_exhausted += 1;
            }
            if run.result.completed() > 0 {
                stca_obs::gauge("serve.policy_validation_mean_response_s")
                    .set(run.result.mean_response());
            }
        }
    }

    /// Admit one arrival (phase-2 entry point, in arrival order).
    pub(crate) fn arrive(&mut self, mut p: Pending, sink: &mut DecisionSink) {
        self.acct.admitted += 1;
        let now = p.ready_s;
        stca_obs::set_virtual_now(now);
        self.dispatch_ready(now, sink);
        if self.waiting.len() >= self.cfg.queue_capacity {
            match self.cfg.overload {
                OverloadPolicy::ShedNewest => {
                    self.acct.shed_overload += 1;
                    self.log_entry(sink, format!("seq={} disp=shed_overload", p.seq));
                    self.record_trace(p.ctx.take(), Disposition::ShedOverload, now);
                    return;
                }
                OverloadPolicy::ShedOldest => {
                    if let Some(mut old) = self.waiting.pop_front() {
                        self.acct.shed_overload += 1;
                        self.log_entry(sink, format!("seq={} disp=shed_overload", old.seq));
                        if let Some(ctx) = old.ctx.as_mut() {
                            ctx.push_span(Stage::QueueWait, old.arrival_s, now);
                        }
                        self.record_trace(old.ctx.take(), Disposition::ShedOverload, now);
                    }
                }
                OverloadPolicy::Block => {
                    self.acct.blocked += 1;
                }
            }
        }
        self.waiting.push_back(p);
    }

    /// Graceful drain: finish work that can start within the grace
    /// window, count the rest as drained. Closes the probe gate first —
    /// drain traffic never feeds breaker recovery.
    pub(crate) fn drain(&mut self, last_arrival_s: f64, sink: &mut DecisionSink) -> f64 {
        self.begin_drain();
        let deadline = last_arrival_s + self.cfg.drain_grace_s;
        stca_obs::set_virtual_now(deadline);
        loop {
            if self.dispatch_one(deadline, sink) {
                continue;
            }
            match self.waiting.pop_front() {
                Some(mut p) => {
                    self.acct.drained += 1;
                    self.log_entry(sink, format!("seq={} disp=drained", p.seq));
                    if let Some(ctx) = p.ctx.as_mut() {
                        ctx.push_span(Stage::QueueWait, p.arrival_s, deadline);
                        ctx.push_span(Stage::Drain, deadline, deadline);
                    }
                    self.record_trace(p.ctx.take(), Disposition::Drained, deadline);
                }
                None => break,
            }
        }
        self.servers
            .iter()
            .fold(last_arrival_s, |m, &f| if f > m { f } else { m })
    }
}

/// Pure per-request compute (phase 1): the primary model call under panic
/// isolation, the degraded fallback, and the injected faults — all a pure
/// function of the request, bit-identical at any thread count.
pub(crate) fn compute_request(
    model: &dyn EaModel,
    inj: &[FaultInjector; 2],
    r: &Request,
) -> Computed {
    let fault = inj[0].predict_fault(r.seq);
    // run the primary under panic isolation: a wedged model must become a
    // breaker failure, not tear down the loop
    let primary = match stca_exec::run_caught(|| model.predict_primary(&r.features)) {
        Ok(Ok(ea)) if ea.is_finite() => Some(ea),
        _ => None,
    };
    let (degraded_ea, degraded_tier) = model.predict_degraded(&r.features);
    let degraded_ea = if degraded_ea.is_finite() {
        degraded_ea
    } else {
        1.0
    };
    let stall = [
        [
            inj[0].stage_stall_s(r.seq * 2),
            inj[1].stage_stall_s(r.seq * 2),
        ],
        [
            inj[0].stage_stall_s(r.seq * 2 + 1),
            inj[1].stage_stall_s(r.seq * 2 + 1),
        ],
    ];
    Computed {
        fault,
        primary,
        degraded_ea,
        degraded_tier,
        stall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use stca_util::Rng64;

    fn pending(seq: u64, arrival_s: f64, comp: Computed) -> Pending {
        Pending {
            seq,
            arrival_s,
            ready_s: arrival_s,
            deadline_s: 10.0,
            hops: 0,
            features: vec![1.0],
            comp,
            ctx: None,
        }
    }

    fn failing_comp() -> Computed {
        Computed {
            fault: true,
            primary: None,
            degraded_ea: 1.0,
            degraded_tier: 2,
            stall: [[0.0; 2]; 2],
        }
    }

    /// Satellite: a half-open breaker during graceful drain must not admit
    /// probe traffic after drain begins — property-tested over arbitrary
    /// breaker configs.
    #[test]
    fn drain_never_admits_breaker_probes_for_arbitrary_configs() {
        let mut rng = Rng64::new(0x0DAB_5EED);
        for case in 0..200u64 {
            let bcfg = BreakerConfig {
                failure_threshold: 1 + (rng.next_u64() % 8) as u32,
                cooldown_s: 0.01 + rng.next_f64() * 2.0,
                probe_fraction: rng.next_f64(),
                success_to_close: 1 + (rng.next_u64() % 5) as u32,
                seed: rng.next_u64(),
            };
            let cfg = ServeConfig {
                breaker: bcfg,
                drain_grace_s: 5.0,
                ..ServeConfig::default()
            };
            let mut core = ShardCore::new(&cfg, case, None);
            let mut sink = DecisionSink::new(false);
            // Fail enough requests to trip the breaker open, then stop
            // arrivals just past the cooldown so the drain window overlaps
            // the half-open period.
            let n = bcfg.failure_threshold as u64 + 4;
            for seq in 0..n {
                core.arrive(pending(seq, 0.001 * seq as f64, failing_comp()), &mut sink);
            }
            let last = 0.001 * n as f64 + bcfg.cooldown_s;
            // Queue a burst that can only dispatch during drain.
            for seq in n..n + 64 {
                core.arrive(pending(seq, last, failing_comp()), &mut sink);
            }
            let probes_before = core.breaker.probes;
            core.drain(last, &mut sink);
            assert!(core.is_draining());
            assert_eq!(
                core.breaker.probes, probes_before,
                "case {case}: drain admitted probe traffic ({bcfg:?})"
            );
            assert!(core.acct.balanced(), "case {case}: {:?}", core.acct);
        }
    }

    #[test]
    fn rerouted_ready_time_floors_dispatch_start() {
        let cfg = ServeConfig::default();
        let mut core = ShardCore::new(&cfg, 0, Some(3));
        let mut sink = DecisionSink::new(true);
        let mut p = pending(
            9,
            1.0,
            Computed {
                fault: false,
                primary: Some(1.0),
                degraded_ea: 1.0,
                degraded_tier: 1,
                stall: [[0.0; 2]; 2],
            },
        );
        p.ready_s = 4.0; // rerouted at t=4: cannot start earlier
        core.arrive(p, &mut sink);
        core.dispatch_ready(10.0, &mut sink);
        assert_eq!(core.acct.completed, 1);
        let resp = core.responses[0];
        assert!(
            resp >= 3.0,
            "service started before the reroute time: resp {resp}"
        );
        let log = sink.into_log();
        assert!(
            log.iter().all(|l| l.ends_with(" shard=3")),
            "fleet entries carry the shard suffix: {log:?}"
        );
    }
}
