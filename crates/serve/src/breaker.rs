//! A generic circuit breaker over the primary predictor.
//!
//! Classic closed / open / half-open semantics, adapted to the virtual
//! clock and the determinism contract:
//!
//! * **Closed** — calls are admitted; `failure_threshold` *consecutive*
//!   failures trip the breaker open.
//! * **Open** — calls are rejected outright until `cooldown_s` of virtual
//!   time has passed; the serving loop routes rejected calls straight to
//!   the degraded predictor chain without touching the primary.
//! * **Half-open** — once the cooldown expires, a seeded fraction of calls
//!   is admitted as probes. Probe selection is a pure function of
//!   `(breaker seed, open epoch, call tag)`, so the same calls probe no
//!   matter how many worker threads ran the prediction batch.
//!   `success_to_close` probe successes close the breaker; one probe
//!   failure restarts the cooldown under a fresh epoch (fresh probe
//!   lottery).
//!
//! [`CircuitBreaker::allow`] is a pure read — state only changes in
//! [`CircuitBreaker::record_success`] / [`CircuitBreaker::record_failure`].
//! The serving loop freezes verdicts serially in request order, which keeps
//! faulted runs bit-identical at any thread count.

use stca_util::rng::splitmix64;

/// Tunables for one breaker instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual seconds the breaker stays fully open after tripping.
    pub cooldown_s: f64,
    /// Fraction of calls admitted as probes once the cooldown expires.
    pub probe_fraction: f64,
    /// Probe successes needed to close the breaker again.
    pub success_to_close: u32,
    /// Seed for the probe lottery.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_s: 1.0,
            probe_fraction: 0.2,
            success_to_close: 3,
            seed: 0x0B4E_A4E4,
        }
    }
}

/// Breaker state. "Half-open" is the open state past its cooldown — probe
/// bookkeeping lives in the `Open` variant rather than a third state so a
/// clock read can never be stale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Admitting all calls; counts consecutive failures.
    Closed {
        /// Consecutive failures observed so far.
        consec_failures: u32,
    },
    /// Rejecting (or probing, once `now >= until`).
    Open {
        /// Virtual time when the cooldown expires and probing starts.
        until: f64,
        /// Monotonic epoch; bumped on every trip so each open period
        /// draws a fresh probe lottery.
        epoch: u64,
        /// Probe successes accumulated in the current half-open period.
        probe_successes: u32,
    },
}

/// What the breaker says about one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Closed: call the primary.
    Admit,
    /// Half-open probe: call the primary, outcome decides recovery.
    Probe,
    /// Open: skip the primary, go straight to the degraded chain.
    Reject,
}

/// The breaker itself plus its transition counters.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Times the breaker tripped open (including failed-probe re-opens).
    pub opens: u64,
    /// Times the breaker recovered to closed.
    pub closes: u64,
    /// Probe calls admitted while half-open.
    pub probes: u64,
    /// Calls rejected while open.
    pub rejects: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed { consec_failures: 0 },
            opens: 0,
            closes: 0,
            probes: 0,
            rejects: 0,
        }
    }

    /// Current state (for health snapshots and tests).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the primary is currently bypassed (open, cooldown running).
    pub fn is_open_at(&self, now: f64) -> bool {
        matches!(self.state, BreakerState::Open { until, .. } if now < until)
    }

    /// Pure verdict for the call identified by `tag` at virtual `now`.
    /// Does not change state or counters.
    pub fn allow(&self, now: f64, tag: u64) -> Verdict {
        match self.state {
            BreakerState::Closed { .. } => Verdict::Admit,
            BreakerState::Open { until, epoch, .. } => {
                if now < until {
                    Verdict::Reject
                } else if probe_roll(self.cfg.seed, epoch, tag) < self.cfg.probe_fraction {
                    Verdict::Probe
                } else {
                    Verdict::Reject
                }
            }
        }
    }

    /// [`allow`](Self::allow) plus probe/reject accounting. The serving
    /// loop calls this once per request, in request order.
    pub fn decide(&mut self, now: f64, tag: u64) -> Verdict {
        self.decide_gated(now, tag, true)
    }

    /// [`decide`](Self::decide) with an explicit probe gate. With
    /// `allow_probes = false` a half-open breaker never emits
    /// [`Verdict::Probe`]: the call is rejected (and counted as a reject)
    /// instead. The serving loop closes the gate once graceful drain
    /// begins, so drain traffic can never be spent on probe recovery.
    pub fn decide_gated(&mut self, now: f64, tag: u64, allow_probes: bool) -> Verdict {
        let mut v = self.allow(now, tag);
        if v == Verdict::Probe && !allow_probes {
            v = Verdict::Reject;
        }
        match v {
            Verdict::Probe => self.probes += 1,
            Verdict::Reject => self.rejects += 1,
            Verdict::Admit => {}
        }
        v
    }

    /// Record a successful primary call (admitted or probe).
    pub fn record_success(&mut self, _now: f64) {
        match &mut self.state {
            BreakerState::Closed { consec_failures } => *consec_failures = 0,
            BreakerState::Open {
                probe_successes, ..
            } => {
                *probe_successes += 1;
                if *probe_successes >= self.cfg.success_to_close {
                    self.state = BreakerState::Closed { consec_failures: 0 };
                    self.closes += 1;
                }
            }
        }
    }

    /// Record a failed primary call (admitted or probe).
    pub fn record_failure(&mut self, now: f64) {
        let cooldown = self.cfg.cooldown_s;
        match &mut self.state {
            BreakerState::Closed { consec_failures } => {
                *consec_failures += 1;
                if *consec_failures >= self.cfg.failure_threshold {
                    self.opens += 1;
                    self.state = BreakerState::Open {
                        until: now + cooldown,
                        epoch: self.opens,
                        probe_successes: 0,
                    };
                }
            }
            BreakerState::Open {
                until,
                epoch,
                probe_successes,
            } => {
                // failed probe: restart the cooldown under a fresh epoch
                self.opens += 1;
                *until = now + cooldown;
                *epoch += 1;
                *probe_successes = 0;
            }
        }
    }
}

/// Uniform `[0, 1)` draw that is a pure function of its inputs.
fn probe_roll(seed: u64, epoch: u64, tag: u64) -> f64 {
    let mut s =
        seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag.wrapping_mul(0xD1B5_4A32_D192_ED03);
    (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_s: 1.0,
            probe_fraction: 0.5,
            success_to_close: 2,
            seed: 7,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure(0.0);
        b.record_failure(0.1);
        b.record_success(0.2); // resets the streak
        b.record_failure(0.3);
        b.record_failure(0.4);
        assert_eq!(b.opens, 0);
        b.record_failure(0.5);
        assert_eq!(b.opens, 1);
        assert!(b.is_open_at(1.0));
        assert_eq!(b.allow(1.0, 0), Verdict::Reject);
    }

    #[test]
    fn probes_start_after_cooldown_and_close_on_success() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(0.0);
        }
        // past the cooldown, roughly half of tags probe
        let probing: Vec<u64> = (0..100)
            .filter(|&t| b.allow(2.0, t) == Verdict::Probe)
            .collect();
        assert!(
            probing.len() > 20 && probing.len() < 80,
            "{}",
            probing.len()
        );
        b.record_success(2.0);
        assert_eq!(b.closes, 0);
        b.record_success(2.1);
        assert_eq!(b.closes, 1);
        assert_eq!(b.allow(2.2, 0), Verdict::Admit);
    }

    #[test]
    fn failed_probe_restarts_cooldown_with_fresh_lottery() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(0.0);
        }
        let before: Vec<Verdict> = (0..64).map(|t| b.allow(5.0, t)).collect();
        b.record_failure(5.0);
        assert_eq!(b.opens, 2);
        assert_eq!(b.allow(5.5, 0), Verdict::Reject, "cooldown restarted");
        let after: Vec<Verdict> = (0..64).map(|t| b.allow(6.5, t)).collect();
        assert_ne!(before, after, "new epoch draws a different probe set");
    }

    #[test]
    fn gated_decide_downgrades_probes_to_rejects() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(0.0);
        }
        // Past the cooldown: find a tag that would probe, then gate it.
        let tag = (0..256)
            .find(|&t| b.allow(2.0, t) == Verdict::Probe)
            .expect("some tag probes at 50%");
        assert_eq!(b.decide_gated(2.0, tag, false), Verdict::Reject);
        assert_eq!(b.probes, 0, "gated probe must not count as a probe");
        assert_eq!(b.rejects, 1, "gated probe counts as a reject");
        // The gate leaves admit verdicts alone.
        let mut closed = CircuitBreaker::new(cfg());
        assert_eq!(closed.decide_gated(0.0, 0, false), Verdict::Admit);
    }

    #[test]
    fn allow_is_pure_and_deterministic() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(0.0);
        }
        for tag in 0..32 {
            let v1 = b.allow(2.0, tag);
            let v2 = b.allow(2.0, tag);
            assert_eq!(v1, v2);
        }
        assert_eq!(b.probes, 0, "allow never counts");
        assert_eq!(b.rejects, 0);
    }
}
