//! Requests and the deterministic replay stream that feeds the loop.
//!
//! A serving request asks the control loop for one EA prediction plus a
//! STAP timeout decision for the workload the features describe. Requests
//! carry a virtual arrival time and a deadline budget; the loop propagates
//! the budget through admission, the predict stage, and the decide stage.
//!
//! [`SyntheticStream`] replays a seeded arrival process: exponential
//! inter-arrivals at a configured rate, and per-request feature rows drawn
//! from tagged streams keyed by the request sequence number — so any chunk
//! of the stream can be regenerated independently and the whole replay is
//! bit-identical at any thread count.

use stca_util::SeedStream;

const TAG_ARRIVAL: u64 = 0xA1;
const TAG_FEATURES: u64 = 0xF2;

/// One EA-prediction + STAP-decision request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Sequence number: unique, dense, assigned at generation.
    pub seq: u64,
    /// Virtual arrival time in seconds.
    pub arrival_s: f64,
    /// End-to-end deadline budget (arrival → decision), virtual seconds.
    pub deadline_s: f64,
    /// Feature row handed to the EA model. By convention `features[0]`
    /// is the allocation ratio `l_a / l_a'` in `(0, 1]`, which is what the
    /// analytic fallback tier keys on.
    pub features: Vec<f64>,
}

/// Seeded replay stream of serving requests.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    /// Root seed: arrivals and features derive from it.
    pub seed: u64,
    /// Mean arrival rate, requests per virtual second.
    pub rate: f64,
    /// Deadline budget stamped on every request.
    pub deadline_s: f64,
    /// Feature-row width (>= 1; `features[0]` is the allocation ratio).
    pub n_features: usize,
}

impl SyntheticStream {
    /// Generate requests `start_seq .. start_seq + count`, with the first
    /// inter-arrival added to `start_time_s`. Returns the chunk and the
    /// arrival time of its last request (feed it back as the next chunk's
    /// `start_time_s`).
    pub fn chunk(&self, start_seq: u64, count: usize, start_time_s: f64) -> (Vec<Request>, f64) {
        let stream = SeedStream::new(self.seed);
        let arrivals = stream.derive(TAG_ARRIVAL);
        let features = stream.derive(TAG_FEATURES);
        let mut t = start_time_s;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let seq = start_seq + i as u64;
            t += arrivals.rng(seq).next_exp(self.rate);
            let mut rng = features.rng(seq);
            let mut row = Vec::with_capacity(self.n_features.max(1));
            // allocation ratio in (0.3, 1.0]: EA-relevant and always valid
            row.push(0.3 + 0.7 * rng.next_f64());
            for _ in 1..self.n_features.max(1) {
                row.push(rng.next_f64());
            }
            out.push(Request {
                seq,
                arrival_s: t,
                deadline_s: self.deadline_s,
                features: row,
            });
        }
        (out, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> SyntheticStream {
        SyntheticStream {
            seed: 42,
            rate: 100.0,
            deadline_s: 0.5,
            n_features: 6,
        }
    }

    #[test]
    fn chunks_compose_into_the_same_stream() {
        let s = stream();
        let (all, _) = s.chunk(0, 100, 0.0);
        let (a, t) = s.chunk(0, 60, 0.0);
        let (b, _) = s.chunk(60, 40, t);
        let recomposed: Vec<Request> = a.into_iter().chain(b).collect();
        assert_eq!(all.len(), recomposed.len());
        for (x, y) in all.iter().zip(&recomposed) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn arrivals_increase_and_rate_roughly_matches() {
        let s = stream();
        let (reqs, end) = s.chunk(0, 20_000, 0.0);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s > w[0].arrival_s);
        }
        let rate = reqs.len() as f64 / end;
        assert!((rate - 100.0).abs() / 100.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn features_are_valid_ratios() {
        let (reqs, _) = stream().chunk(0, 1000, 0.0);
        for r in &reqs {
            assert_eq!(r.features.len(), 6);
            assert!(r.features[0] > 0.3 && r.features[0] <= 1.0);
        }
    }
}
