//! Stage watchdog: bounded patience for stuck pipeline stages.
//!
//! Every pipeline stage (predict, decide) runs under a virtual-time
//! budget. A stage that would exceed the budget — in this model, because
//! the fault plan injected a stall — is cut off at the budget and failed
//! into the retry path: the loop charges the wasted budget, re-rolls the
//! stage under attempt 1, and sheds the request as failed if the retry
//! stalls too. This mirrors a wall-clock watchdog killing a wedged worker,
//! but stays deterministic because "time spent" is computed, not measured.

/// One stage execution as the watchdog saw it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageRun {
    /// Stage finished inside the budget; charge `cost_s`.
    Ok {
        /// Virtual seconds the stage took.
        cost_s: f64,
    },
    /// Stage overran the budget; the watchdog killed it after `wasted_s`.
    Stuck {
        /// Virtual seconds burned before the watchdog fired (the budget).
        wasted_s: f64,
    },
}

/// The watchdog itself: just the per-stage budget.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Per-stage virtual-time budget, seconds.
    pub budget_s: f64,
}

impl Watchdog {
    /// Supervise one stage whose base cost is `base_cost_s` with
    /// `stall_s` of injected stall on top.
    pub fn supervise(&self, base_cost_s: f64, stall_s: f64) -> StageRun {
        let cost = base_cost_s + stall_s.max(0.0);
        if cost > self.budget_s {
            StageRun::Stuck {
                wasted_s: self.budget_s,
            }
        } else {
            StageRun::Ok { cost_s: cost }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_passes_through() {
        let w = Watchdog { budget_s: 0.5 };
        assert_eq!(w.supervise(0.1, 0.0), StageRun::Ok { cost_s: 0.1 });
        assert_eq!(w.supervise(0.1, 0.3), StageRun::Ok { cost_s: 0.4 });
    }

    #[test]
    fn overrun_is_cut_at_the_budget() {
        let w = Watchdog { budget_s: 0.5 };
        assert_eq!(w.supervise(0.1, 2.0), StageRun::Stuck { wasted_s: 0.5 });
        // negative stall cannot rescue an oversized base cost
        assert_eq!(w.supervise(0.7, -1.0), StageRun::Stuck { wasted_s: 0.5 });
    }
}
