//! Sharded serving fleet: N independent fault domains behind a
//! deterministic router.
//!
//! Each shard owns a full [`ShardCore`] — bounded admission queue,
//! circuit breaker, hysteresis controller, watchdog, seeded predictor
//! state — so one shard's failure never corrupts another's state. A
//! deterministic router (rendezvous hashing or least-loaded over
//! virtual-clock queue-depth snapshots) places every arrival; shard-scoped
//! faults (`shard_crash`, `shard_stall`, `shard_flap`) are rolled per
//! `(plan seed, shard id, epoch)` so a faulted fleet is bit-identical at
//! any `--threads`.
//!
//! ## Failover semantics
//!
//! Virtual time is cut into epochs of `epoch_s`. At each epoch boundary,
//! in shard-id order:
//!
//! * **crash** — the shard's queue is flushed and every waiting request is
//!   rerouted (or shed, once `reroute_max` hops are spent); its servers are
//!   frozen to the epoch end and the router stops offering it traffic. The
//!   first non-crash epoch afterwards logs a recovery.
//! * **flap** — the router treats the shard as unhealthy for the epoch but
//!   the shard keeps draining its queue.
//! * **stall** — the shard's servers are pushed forward by a seeded
//!   duration inside the epoch.
//!
//! The router health-gates in tiers: healthy shards (not crashed, not
//! flapped, breaker not open) first, then breaker-open shards, then
//! flapped shards; only when every shard is crashed does a request get the
//! typed `router_shed` disposition.
//!
//! ## Fleet accounting invariant
//!
//! Per shard, reroutes extend the single-loop identity:
//!
//! ```text
//! admitted = completed + shed + drained + rerouted_out
//! ```
//!
//! and summing over shards (every rerouted request is re-admitted
//! elsewhere or shed by the router) gives the fleet-wide invariant
//! enforced by [`FleetReport::balanced`] through coordinated graceful
//! drain:
//!
//! ```text
//! offered = Σ_shards (completed + shed + drained) + router_shed
//! ```

use crate::adapt::AdaptStats;
use crate::model::EaModel;
use crate::request::SyntheticStream;
use crate::router::{route, Candidate, RouterKind};
use crate::server::{Accounting, ServeConfig};
use crate::shard::{compute_request, DecisionSink, Pending, ShardCore};
use stca_fault::{FaultInjector, FaultPlan, StcaError};
use stca_obs::json::Value;
use stca_trace::{AttrValue, Disposition, FlightRecorder, Stage, TraceDump};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Fleet configuration: the per-shard loop template plus topology.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-shard serving-loop template. Each shard derives its own breaker
    /// seed (`base.breaker.seed ^ (shard_id << 24)`) so probe lotteries are
    /// independent across fault domains.
    pub base: ServeConfig,
    /// Number of shards (independent fault domains).
    pub shards: u32,
    /// Routing discipline.
    pub router: RouterKind,
    /// Maximum reroute hops before a flushed request is shed by the
    /// router.
    pub reroute_max: u32,
    /// Epoch length, virtual seconds: shard faults are rolled once per
    /// `(shard, epoch)`.
    pub epoch_s: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            base: ServeConfig::default(),
            shards: 4,
            router: RouterKind::Rendezvous,
            reroute_max: 2,
            epoch_s: 5.0,
        }
    }
}

impl FleetConfig {
    fn validate(&self) -> Result<(), StcaError> {
        self.base.validate()?;
        if self.shards == 0 {
            return Err(StcaError::invalid_input("fleet: shards must be >= 1"));
        }
        if self.shards > 1024 {
            return Err(StcaError::invalid_input("fleet: shards must be <= 1024"));
        }
        if !self.epoch_s.is_finite() || self.epoch_s <= 0.0 {
            return Err(StcaError::invalid_input(format!(
                "fleet: epoch_s = {} must be finite and positive",
                self.epoch_s
            )));
        }
        Ok(())
    }
}

/// Per-shard outcome summary.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id.
    pub id: u32,
    /// Exact request accounting for this shard. Reroutes make
    /// [`Accounting::balanced`] intentionally fail here; the shard
    /// identity including `rerouted_out` is checked by
    /// [`FleetReport::balanced`].
    pub accounting: Accounting,
    /// Requests flushed out of this shard's queue by a crash.
    pub rerouted_out: u64,
    /// Crash events (distinct down transitions).
    pub crashes: u64,
    /// Recovery events (down → up transitions).
    pub recoveries: u64,
    /// Injected shard stalls.
    pub stalls: u64,
    /// Epochs the router treated this shard as flapping.
    pub flaps: u64,
    /// Breaker trips on this shard.
    pub breaker_opens: u64,
    /// Breaker recoveries on this shard.
    pub breaker_closes: u64,
    /// Probe calls admitted while half-open.
    pub breaker_probes: u64,
    /// Calls short-circuited to the degraded chain.
    pub breaker_rejects: u64,
    /// Requests answered by the degraded predictor chain.
    pub degraded: u64,
    /// Watchdog interventions.
    pub watchdog_trips: u64,
    /// Stage retries after a watchdog trip.
    pub retries: u64,
    /// Policy changes applied by this shard's hysteresis controller.
    pub policy_applies: u64,
    /// Timeout-grid index applied when the run ended.
    pub final_timeout_idx: usize,
    /// Mean response of this shard's completed requests, seconds.
    pub mean_response_s: f64,
    /// Median response, seconds.
    pub p50_response_s: f64,
    /// 99th-percentile response, seconds.
    pub p99_response_s: f64,
    /// Model-lifecycle counters for this shard (`Some` when adaptation
    /// was enabled).
    pub adapt: Option<AdaptStats>,
}

/// Everything one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard summaries, in shard-id order.
    pub shards: Vec<ShardStats>,
    /// Requests offered to the fleet (every generated arrival).
    pub offered: u64,
    /// Successful reroutes (flushed request re-admitted elsewhere).
    pub rerouted: u64,
    /// Requests shed by the router: no routable shard at admission, or
    /// reroute hops exhausted.
    pub router_shed: u64,
    /// Fleet-wide mean response, seconds.
    pub mean_response_s: f64,
    /// Fleet-wide median response, seconds.
    pub p50_response_s: f64,
    /// Fleet-wide 99th-percentile response, seconds.
    pub p99_response_s: f64,
    /// Rolling FNV-1a hash over the shared fleet decision log (shard
    /// entries, router entries, and fault events in one serial order).
    pub decision_hash: u64,
    /// Full decision log (empty unless `base.keep_decision_log`).
    pub decision_log: Vec<String>,
    /// Virtual time when the last shard finished draining.
    pub virtual_end_s: f64,
    /// Per-shard flight recorders merged deterministically (shard-id
    /// order, router sheds last), `Some` when tracing was enabled.
    pub trace_dump: Option<TraceDump>,
}

impl FleetReport {
    /// Sum of completed requests across shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.accounting.completed).sum()
    }

    /// Shards that crashed at least once.
    pub fn crashed_shards(&self) -> Vec<u32> {
        self.shards
            .iter()
            .filter(|s| s.crashes > 0)
            .map(|s| s.id)
            .collect()
    }

    /// The fleet-wide invariant: every shard balances once `rerouted_out`
    /// is a disposition, and every offered request ends in exactly one
    /// fleet-level disposition.
    pub fn balanced(&self) -> bool {
        let shards_ok = self.shards.iter().all(|s| {
            let a = &s.accounting;
            a.admitted == a.completed + a.shed() + a.drained + s.rerouted_out
        });
        let settled: u64 = self
            .shards
            .iter()
            .map(|s| s.accounting.completed + s.accounting.shed() + s.accounting.drained)
            .sum();
        shards_ok && self.offered == settled + self.router_shed
    }

    /// The report as a JSON tree (health snapshots, CLI output).
    pub fn to_json_value(&self) -> Value {
        let num = Value::Number;
        let int = |v: u64| Value::Number(v as f64);
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let a = &s.accounting;
            let mut m = BTreeMap::new();
            m.insert("id".into(), int(u64::from(s.id)));
            m.insert("admitted".into(), int(a.admitted));
            m.insert("completed".into(), int(a.completed));
            m.insert("shed".into(), int(a.shed()));
            m.insert("drained".into(), int(a.drained));
            m.insert("rerouted_out".into(), int(s.rerouted_out));
            m.insert("crashes".into(), int(s.crashes));
            m.insert("recoveries".into(), int(s.recoveries));
            m.insert("stalls".into(), int(s.stalls));
            m.insert("flaps".into(), int(s.flaps));
            m.insert("breaker_opens".into(), int(s.breaker_opens));
            m.insert("degraded".into(), int(s.degraded));
            m.insert("watchdog_trips".into(), int(s.watchdog_trips));
            m.insert("mean_response_s".into(), num(s.mean_response_s));
            m.insert("p50_response_s".into(), num(s.p50_response_s));
            m.insert("p99_response_s".into(), num(s.p99_response_s));
            if let Some(a) = &s.adapt {
                let mut adapt = BTreeMap::new();
                adapt.insert("drifts".into(), int(a.drifts));
                adapt.insert("retrains".into(), int(a.retrains));
                adapt.insert("retrain_failures".into(), int(a.retrain_failures));
                adapt.insert("retrain_slows".into(), int(a.retrain_slows));
                adapt.insert("shadow_scored".into(), int(a.shadow_scored));
                adapt.insert("promotions".into(), int(a.promotions));
                adapt.insert("promote_refused".into(), int(a.promote_refused));
                adapt.insert("rollbacks".into(), int(a.rollbacks));
                adapt.insert("guard_passes".into(), int(a.guard_passes));
                adapt.insert("active_version".into(), int(a.active_version));
                m.insert("adapt".into(), Value::Object(adapt));
            }
            shards.push(Value::Object(m));
        }
        let mut resp = BTreeMap::new();
        resp.insert("mean_s".into(), num(self.mean_response_s));
        resp.insert("p50_s".into(), num(self.p50_response_s));
        resp.insert("p99_s".into(), num(self.p99_response_s));
        let mut root = BTreeMap::new();
        root.insert("shards".into(), Value::Array(shards));
        root.insert("offered".into(), int(self.offered));
        root.insert("completed".into(), int(self.completed()));
        root.insert("rerouted".into(), int(self.rerouted));
        root.insert("router_shed".into(), int(self.router_shed));
        root.insert("balanced".into(), Value::Bool(self.balanced()));
        root.insert("response".into(), Value::Object(resp));
        root.insert(
            "decision_hash".into(),
            Value::String(format!("{:016x}", self.decision_hash)),
        );
        root.insert("virtual_end_s".into(), num(self.virtual_end_s));
        Value::Object(root)
    }
}

/// Write a JSON health snapshot: the fleet report plus every `serve.*`
/// metric (per-shard `serve.shardN.*` prefixes and the `serve.fleet.*`
/// rollup included) currently in the global registry.
pub fn write_fleet_health(path: &Path, report: &FleetReport) -> Result<(), StcaError> {
    let mut root = match report.to_json_value() {
        Value::Object(m) => m,
        _ => unreachable!("report serialises to an object"),
    };
    let mut metrics = BTreeMap::new();
    for (name, metric) in stca_obs::registry().snapshot_prefixed("serve.") {
        match metric {
            stca_obs::metrics::Metric::Counter(c) => {
                metrics.insert(name, Value::Number(c.get() as f64));
            }
            stca_obs::metrics::Metric::Gauge(g) => {
                metrics.insert(name, Value::Number(g.get()));
            }
            stca_obs::metrics::Metric::Histogram(h) => {
                metrics.insert(name, Value::Number(h.mean()));
            }
        }
    }
    root.insert("metrics".into(), Value::Object(metrics));
    let json = Value::Object(root).to_string();
    std::fs::write(path, json).map_err(|e| StcaError::io(path.display().to_string(), e))
}

/// `(mean, p50, p99)` of a response set; all zero for an empty set (a
/// shard that crashed before completing anything still gets a summary).
fn response_summary(responses: &mut [f64]) -> (f64, f64, f64) {
    if responses.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mean = responses.iter().sum::<f64>() / responses.len() as f64;
    let p50 = stca_util::stats::quantile_in_place(responses, 0.50);
    let p99 = stca_util::stats::quantile_in_place(responses, 0.99);
    (mean, p50, p99)
}

/// One shard plus its fleet-level fault/routing state.
struct Slot<'a> {
    core: ShardCore<'a>,
    crashed: bool,
    flapped: bool,
    rerouted_out: u64,
    crashes: u64,
    recoveries: u64,
    stalls: u64,
    flaps: u64,
}

/// Routing salt: keeps rendezvous scores decoupled from the stream's own
/// per-request randomness.
const ROUTE_SALT: u64 = 0x000F_1EE7;

/// Health-gated shard selection for request `seq` at virtual `now`.
/// Tiered fallback: fully healthy shards first, then breaker-open, then
/// flapped; crashed shards are never candidates. `None` means every shard
/// is crashed (router shed).
fn pick_target(
    slots: &[Slot<'_>],
    kind: RouterKind,
    seed: u64,
    seq: u64,
    now: f64,
    exclude: Option<u32>,
) -> Option<u32> {
    let gather = |pred: &dyn Fn(&Slot<'_>) -> bool| -> Vec<Candidate> {
        slots
            .iter()
            .enumerate()
            .filter(|(id, s)| exclude != Some(*id as u32) && pred(s))
            .map(|(id, s)| Candidate {
                id: id as u32,
                queue_depth: s.core.queue_depth(),
            })
            .collect()
    };
    for pred in [
        &(|s: &Slot<'_>| !s.crashed && !s.flapped && !s.core.breaker.is_open_at(now))
            as &dyn Fn(&Slot<'_>) -> bool,
        &|s: &Slot<'_>| !s.crashed && !s.flapped,
        &|s: &Slot<'_>| !s.crashed,
    ] {
        let candidates = gather(pred);
        if !candidates.is_empty() {
            return route(kind, seed, seq, &candidates);
        }
    }
    None
}

/// Apply one epoch's shard faults, in shard-id order. Returns the
/// requests flushed out of crashing shards (to be rerouted by the
/// caller), tagged with their source shard.
fn apply_epoch(
    slots: &mut [Slot<'_>],
    plan: &FaultPlan,
    epoch: u64,
    epoch_s: f64,
    sink: &mut DecisionSink,
) -> Vec<(u32, Pending)> {
    let boundary = epoch as f64 * epoch_s;
    let outage_end = (epoch + 1) as f64 * epoch_s;
    let mut flushed = Vec::new();
    for (id, slot) in slots.iter_mut().enumerate() {
        let id = id as u32;
        let was_crashed = slot.crashed;
        let crashed = plan.shard_crash(id, epoch);
        slot.flapped = !crashed && plan.shard_flap(id, epoch);
        slot.crashed = crashed;
        if crashed {
            if !was_crashed {
                slot.crashes += 1;
                sink.push(format!("event=shard_crash shard={id} epoch={epoch}"));
                for p in slot.core.flush_waiting() {
                    slot.rerouted_out += 1;
                    flushed.push((id, p));
                }
            }
            // outage: the shard does no work until the epoch ends
            slot.core.freeze_until(outage_end);
            continue;
        }
        if was_crashed {
            slot.recoveries += 1;
            sink.push(format!("event=shard_recover shard={id} epoch={epoch}"));
        }
        if slot.flapped {
            slot.flaps += 1;
            sink.push(format!("event=shard_flap shard={id} epoch={epoch}"));
        }
        let stall = plan.shard_stall_s(id, epoch, epoch_s);
        if stall > 0.0 {
            slot.stalls += 1;
            sink.push(format!(
                "event=shard_stall shard={id} epoch={epoch} dur={:016x}",
                stall.to_bits()
            ));
            slot.core.freeze_until(boundary + stall);
        }
    }
    // let work that became startable by the boundary proceed, shard order
    for slot in slots.iter_mut() {
        slot.core.dispatch_ready(boundary, sink);
    }
    flushed
}

/// Run the sharded serving fleet over `n_requests` replayed arrivals.
///
/// Deterministic: with the same config, stream, plan, and model, the
/// fleet decision hash, report, and merged trace dump are bit-identical
/// at any thread count.
pub fn serve_fleet(
    cfg: &FleetConfig,
    model: &dyn EaModel,
    plan: &FaultPlan,
    stream: &SyntheticStream,
    n_requests: u64,
) -> Result<FleetReport, StcaError> {
    cfg.validate()?;
    if !(stream.rate.is_finite() && stream.rate > 0.0) {
        return Err(StcaError::invalid_input(format!(
            "fleet: arrival rate {} must be finite and positive",
            stream.rate
        )));
    }
    if !(stream.deadline_s.is_finite() && stream.deadline_s > 0.0) {
        return Err(StcaError::invalid_input(format!(
            "fleet: deadline {} must be finite and positive",
            stream.deadline_s
        )));
    }
    let run_key = stream.seed ^ 0x5E4E;
    let injectors: [FaultInjector; 2] = [plan.injector(run_key, 0), plan.injector(run_key, 1)];
    // per-shard configs first (the cores borrow them), seeds derived as
    // seed ^ (shard_id << 24)
    let shard_cfgs: Vec<ServeConfig> = (0..cfg.shards)
        .map(|id| {
            let mut c = cfg.base.clone();
            c.breaker.seed ^= u64::from(id) << 24;
            c
        })
        .collect();
    let mut slots: Vec<Slot<'_>> = shard_cfgs
        .iter()
        .enumerate()
        .map(|(id, c)| {
            let mut core = ShardCore::new(c, stream.seed ^ ((id as u64) << 24), Some(id as u32));
            core.install_adapt(plan);
            Slot {
                core,
                crashed: false,
                flapped: false,
                rerouted_out: 0,
                crashes: 0,
                recoveries: 0,
                stalls: 0,
                flaps: 0,
            }
        })
        .collect();
    // router sheds get their own recorder so admission-time sheds are
    // traced even though they never touch a shard
    let router_rec = cfg
        .base
        .trace
        .map(|tc| Arc::new(Mutex::new(FlightRecorder::new(tc))));
    let route_seed = stream.seed ^ ROUTE_SALT;
    let mut sink = DecisionSink::new(cfg.base.keep_decision_log);
    let timer =
        stca_obs::StageTimer::with_histogram(stca_obs::histogram("serve.fleet.run_seconds"));
    let mut rerouted = 0u64;
    let mut router_shed = 0u64;
    let mut cur_epoch: i64 = -1;
    let mut seq = 0u64;
    let mut t_cursor = 0.0f64;
    let mut last_arrival = 0.0f64;
    while seq < n_requests {
        let count = ((n_requests - seq).min(cfg.base.chunk as u64)) as usize;
        let (reqs, new_t) = stream.chunk(seq, count, t_cursor);
        t_cursor = new_t;
        last_arrival = new_t;
        // phase 1: pure per-request compute, identical to the single loop
        let trace_cfg = cfg.base.trace;
        let computed = stca_exec::par_map_indexed(&reqs, |_, r| {
            if let Some(tc) = &trace_cfg {
                stca_obs::set_current_trace_id(tc.trace_id(r.seq));
            }
            let comp = compute_request(model, &injectors, r);
            if trace_cfg.is_some() {
                stca_obs::set_current_trace_id(0);
            }
            comp
        });
        // phase 2: serial replay — epochs advance lazily, one at a time,
        // with crash-flushed requests rerouted at each boundary before the
        // arrival that crossed it is admitted
        for (r, comp) in reqs.into_iter().zip(computed) {
            let arrival_epoch = (r.arrival_s / cfg.epoch_s).floor() as i64;
            while cur_epoch < arrival_epoch {
                cur_epoch += 1;
                let boundary = cur_epoch as f64 * cfg.epoch_s;
                let flushed =
                    apply_epoch(&mut slots, plan, cur_epoch as u64, cfg.epoch_s, &mut sink);
                for (from, mut p) in flushed {
                    p.hops += 1;
                    let target = if p.hops > cfg.reroute_max {
                        None
                    } else {
                        pick_target(&slots, cfg.router, route_seed, p.seq, boundary, Some(from))
                    };
                    match target {
                        Some(to) => {
                            rerouted += 1;
                            sink.push(format!(
                                "seq={} disp=reroute from={} to={} hops={}",
                                p.seq, from, to, p.hops
                            ));
                            if let Some(ctx) = p.ctx.as_mut() {
                                let span = ctx.push_span(Stage::Route, boundary, boundary);
                                span.args
                                    .push(("from_shard", AttrValue::Num(f64::from(from))));
                                span.args.push(("to_shard", AttrValue::Num(f64::from(to))));
                                span.args.push(("hops", AttrValue::Num(f64::from(p.hops))));
                            }
                            p.ready_s = boundary;
                            slots[to as usize].core.arrive(p, &mut sink);
                        }
                        None => {
                            router_shed += 1;
                            sink.push(format!("seq={} disp=router_shed hops={}", p.seq, p.hops));
                            if let Some(ctx) = p.ctx.as_mut() {
                                let span = ctx.push_span(Stage::Route, boundary, boundary);
                                span.args
                                    .push(("from_shard", AttrValue::Num(f64::from(from))));
                                span.args.push(("hops", AttrValue::Num(f64::from(p.hops))));
                            }
                            if let (Some(rec), Some(ctx)) = (router_rec.as_ref(), p.ctx.take()) {
                                if let Ok(mut rec) = rec.lock() {
                                    rec.record(ctx.finish(Disposition::RouterShed, boundary));
                                }
                            }
                        }
                    }
                }
            }
            match pick_target(&slots, cfg.router, route_seed, r.seq, r.arrival_s, None) {
                Some(id) => {
                    let slot = &mut slots[id as usize];
                    let mut ctx = slot
                        .core
                        .recorder
                        .as_ref()
                        .and_then(|rec| rec.lock().ok())
                        .map(|mut rec| rec.begin(r.seq, r.arrival_s));
                    if let Some(c) = ctx.as_mut() {
                        c.annotate_admission("shard", AttrValue::Num(f64::from(id)));
                    }
                    slot.core.arrive(
                        Pending {
                            seq: r.seq,
                            arrival_s: r.arrival_s,
                            ready_s: r.arrival_s,
                            deadline_s: r.deadline_s,
                            hops: 0,
                            features: r.features,
                            comp,
                            ctx,
                        },
                        &mut sink,
                    );
                }
                None => {
                    router_shed += 1;
                    sink.push(format!("seq={} disp=router_shed hops=0", r.seq));
                    if let Some(rec) = router_rec.as_ref() {
                        if let Ok(mut rec) = rec.lock() {
                            let mut ctx = rec.begin(r.seq, r.arrival_s);
                            ctx.push_span(Stage::Route, r.arrival_s, r.arrival_s)
                                .args
                                .push(("hops", AttrValue::Num(0.0)));
                            rec.record(ctx.finish(Disposition::RouterShed, r.arrival_s));
                        }
                    }
                }
            }
        }
        seq += count as u64;
        let depth: usize = slots.iter().map(|s| s.core.queue_depth()).sum();
        stca_obs::gauge("serve.fleet.queue_depth").set(depth as f64);
    }
    // coordinated graceful drain: close every probe gate fleet-wide
    // first, then drain shard by shard in id order
    for slot in slots.iter_mut() {
        slot.core.begin_drain();
    }
    let mut virtual_end = last_arrival;
    for slot in slots.iter_mut() {
        let end = slot.core.drain(last_arrival, &mut sink);
        if end > virtual_end {
            virtual_end = end;
        }
    }
    stca_obs::clear_virtual_now();
    timer.stop();

    // per-shard and fleet-wide percentiles
    let mut all_responses: Vec<f64> = Vec::new();
    let mut shard_stats = Vec::with_capacity(slots.len());
    for (id, slot) in slots.iter_mut().enumerate() {
        let mut responses = std::mem::take(&mut slot.core.responses);
        all_responses.extend_from_slice(&responses);
        let (mean, p50, p99) = response_summary(&mut responses);
        shard_stats.push(ShardStats {
            id: id as u32,
            accounting: slot.core.acct,
            rerouted_out: slot.rerouted_out,
            crashes: slot.crashes,
            recoveries: slot.recoveries,
            stalls: slot.stalls,
            flaps: slot.flaps,
            breaker_opens: slot.core.breaker.opens,
            breaker_closes: slot.core.breaker.closes,
            breaker_probes: slot.core.breaker.probes,
            breaker_rejects: slot.core.breaker.rejects,
            degraded: slot.core.degraded,
            watchdog_trips: slot.core.watchdog_trips,
            retries: slot.core.retries,
            policy_applies: slot.core.hyst.applies,
            final_timeout_idx: slot.core.hyst.applied(),
            mean_response_s: mean,
            p50_response_s: p50,
            p99_response_s: p99,
            adapt: slot.core.lifecycle.as_ref().map(|lc| lc.stats),
        });
    }
    let (fleet_mean, fleet_p50, fleet_p99) = response_summary(&mut all_responses);

    // merge flight recorders deterministically: shard-id order, router last
    let trace_dump = {
        let mut dumps: Vec<TraceDump> = Vec::new();
        for slot in &slots {
            if let Some(rec) = slot.core.recorder.as_ref() {
                if let Ok(rec) = rec.lock() {
                    dumps.push(rec.dump());
                }
            }
        }
        if let Some(rec) = router_rec.as_ref() {
            if let Ok(rec) = rec.lock() {
                dumps.push(rec.dump());
            }
        }
        TraceDump::merge(dumps)
    };

    let report = FleetReport {
        shards: shard_stats,
        offered: n_requests,
        rerouted,
        router_shed,
        mean_response_s: fleet_mean,
        p50_response_s: fleet_p50,
        p99_response_s: fleet_p99,
        decision_hash: sink.hash(),
        decision_log: sink.into_log(),
        virtual_end_s: virtual_end,
        trace_dump,
    };
    flush_fleet_metrics(&report);
    Ok(report)
}

/// Flush run totals into the global metrics: `serve.shardN.*` per shard
/// (nested `serve.shardN.breaker.*` for breaker counters) and the
/// `serve.fleet.*` rollup.
fn flush_fleet_metrics(r: &FleetReport) {
    for s in &r.shards {
        let a = &s.accounting;
        let pre = format!("serve.shard{}", s.id);
        for (name, v) in [
            ("admitted_total", a.admitted),
            ("completed_total", a.completed),
            ("shed_total", a.shed()),
            ("drained_total", a.drained),
            ("rerouted_out_total", s.rerouted_out),
            ("crashes_total", s.crashes),
            ("recoveries_total", s.recoveries),
            ("stalls_total", s.stalls),
            ("flaps_total", s.flaps),
            ("degraded_total", s.degraded),
            ("watchdog_trips_total", s.watchdog_trips),
            ("breaker.opens_total", s.breaker_opens),
            ("breaker.closes_total", s.breaker_closes),
            ("breaker.probes_total", s.breaker_probes),
            ("breaker.rejects_total", s.breaker_rejects),
        ] {
            if v > 0 {
                stca_obs::counter(&format!("{pre}.{name}")).add(v);
            }
        }
        if let Some(a) = &s.adapt {
            for (name, v) in [
                ("adapt.drifts_total", a.drifts),
                ("adapt.retrains_total", a.retrains),
                ("adapt.retrain_failures_total", a.retrain_failures),
                ("adapt.retrain_slows_total", a.retrain_slows),
                ("adapt.shadow_scored_total", a.shadow_scored),
                ("adapt.promotions_total", a.promotions),
                ("adapt.promote_refused_total", a.promote_refused),
                ("adapt.rollbacks_total", a.rollbacks),
                ("adapt.guard_passes_total", a.guard_passes),
            ] {
                if v > 0 {
                    stca_obs::counter(&format!("{pre}.{name}")).add(v);
                }
            }
        }
    }
    let settled: u64 = r
        .shards
        .iter()
        .map(|s| s.accounting.completed + s.accounting.shed() + s.accounting.drained)
        .sum();
    for (name, v) in [
        ("serve.fleet.offered_total", r.offered),
        ("serve.fleet.completed_total", r.completed()),
        ("serve.fleet.settled_total", settled),
        ("serve.fleet.rerouted_total", r.rerouted),
        ("serve.fleet.router_shed_total", r.router_shed),
        (
            "serve.fleet.shard_crashes_total",
            r.shards.iter().map(|s| s.crashes).sum(),
        ),
        (
            "serve.fleet.shard_recoveries_total",
            r.shards.iter().map(|s| s.recoveries).sum(),
        ),
        (
            "serve.fleet.adapt.promotions_total",
            r.shards
                .iter()
                .filter_map(|s| s.adapt.map(|a| a.promotions))
                .sum(),
        ),
        (
            "serve.fleet.adapt.rollbacks_total",
            r.shards
                .iter()
                .filter_map(|s| s.adapt.map(|a| a.rollbacks))
                .sum(),
        ),
    ] {
        if v > 0 {
            stca_obs::counter(name).add(v);
        }
    }
    stca_obs::gauge("serve.fleet.p99_response_s").set(r.p99_response_s);
    stca_obs::gauge("serve.fleet.mean_response_s").set(r.mean_response_s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticEa;

    fn small_fleet(shards: u32) -> FleetConfig {
        FleetConfig {
            base: ServeConfig {
                queue_capacity: 16,
                sim_budget_events: 0,
                keep_decision_log: true,
                ..ServeConfig::default()
            },
            shards,
            epoch_s: 1.0,
            ..FleetConfig::default()
        }
    }

    fn stream() -> SyntheticStream {
        SyntheticStream {
            seed: 7,
            rate: 200.0,
            deadline_s: 1.0,
            n_features: 4,
        }
    }

    fn run(cfg: &FleetConfig, plan: &FaultPlan, n: u64) -> FleetReport {
        serve_fleet(cfg, &AnalyticEa::default(), plan, &stream(), n).expect("fleet runs")
    }

    #[test]
    fn healthy_fleet_balances_and_spreads_load() {
        let r = run(&small_fleet(4), &FaultPlan::none(), 4_000);
        assert!(r.balanced(), "{r:?}");
        assert_eq!(r.offered, 4_000);
        assert_eq!(r.router_shed, 0);
        assert_eq!(r.rerouted, 0);
        for s in &r.shards {
            assert!(
                s.accounting.admitted > 400,
                "shard {} starved: {:?}",
                s.id,
                s.accounting
            );
            assert_eq!(s.crashes, 0);
        }
    }

    #[test]
    fn shard_crashes_reroute_and_preserve_the_fleet_invariant() {
        let plan = FaultPlan::parse("shard_crash=0.35,seed=9").expect("plan");
        let r = run(&small_fleet(4), &plan, 6_000);
        assert!(r.balanced(), "{r:?}");
        let crashes: u64 = r.shards.iter().map(|s| s.crashes).sum();
        let recoveries: u64 = r.shards.iter().map(|s| s.recoveries).sum();
        assert!(crashes > 0, "35% per shard-epoch must crash something");
        assert!(recoveries > 0, "crashed shards must come back");
        assert!(
            r.decision_log
                .iter()
                .any(|l| l.starts_with("event=shard_crash")),
            "crash events are logged"
        );
        // bit-identical across runs, including the fault schedule
        let r2 = run(&small_fleet(4), &plan, 6_000);
        assert_eq!(r.decision_hash, r2.decision_hash);
        assert_eq!(r.rerouted, r2.rerouted);
    }

    #[test]
    fn total_outage_sheds_at_the_router_with_typed_disposition() {
        let plan = FaultPlan::parse("shard_crash=1.0,seed=1").expect("plan");
        let r = run(&small_fleet(3), &plan, 500);
        assert!(r.balanced(), "{r:?}");
        assert_eq!(
            r.router_shed, r.offered,
            "all-crashed fleet sheds everything"
        );
        assert_eq!(r.completed(), 0);
        assert!(r
            .decision_log
            .iter()
            .any(|l| l.contains("disp=router_shed")));
    }

    #[test]
    fn least_loaded_router_also_balances_under_faults() {
        let cfg = FleetConfig {
            router: RouterKind::LeastLoaded,
            ..small_fleet(4)
        };
        let r = run(&cfg, &FaultPlan::heavy(), 4_000);
        assert!(r.balanced(), "{r:?}");
        assert!(r.completed() > 0);
    }

    #[test]
    fn fleet_trace_dump_merges_shards_in_seq_order() {
        let mut cfg = small_fleet(3);
        cfg.base.trace = Some(stca_trace::TraceConfig {
            sample_every: 1,
            ring_capacity: 1 << 20, // retain everything: eviction is not under test
            ..stca_trace::TraceConfig::default()
        });
        let plan = FaultPlan::parse("shard_crash=0.3,seed=4").expect("plan");
        let r = run(&cfg, &plan, 1_500);
        let dump = r.trace_dump.expect("tracing on");
        assert!(
            dump.traces.windows(2).all(|w| w[0].seq <= w[1].seq),
            "merged dump is seq-sorted"
        );
        assert!(dump.stats.retained_normal + dump.stats.retained_error > 0);
        // rerouted requests carry Route spans
        if r.rerouted > 0 {
            assert!(dump
                .traces
                .iter()
                .any(|t| t.spans.iter().any(|s| s.stage == Stage::Route)));
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let model = AnalyticEa::default();
        let plan = FaultPlan::none();
        let bad = FleetConfig {
            shards: 0,
            ..FleetConfig::default()
        };
        assert!(serve_fleet(&bad, &model, &plan, &stream(), 10).is_err());
        let bad = FleetConfig {
            epoch_s: 0.0,
            ..FleetConfig::default()
        };
        assert!(serve_fleet(&bad, &model, &plan, &stream(), 10).is_err());
    }
}
