//! # stca-serve — resilient online serving/control loop
//!
//! The offline pipeline (profiler → deep forest → policy explorer) answers
//! "what timeout should this station run?" once, from a batch. This crate
//! answers it *continuously*: a deterministic, virtual-clock serving loop
//! that admits EA-prediction + STAP-decision requests from a replayed
//! arrival stream and keeps making sane decisions while the predictor
//! fails, stages stall, and the queue overflows.
//!
//! Robustness pieces, each its own module:
//!
//! - [`server`] — the loop: bounded admission queue with a configurable
//!   overload policy ([`OverloadPolicy`]), per-request deadline budgets
//!   propagated through predict → decide, graceful drain, and the exact
//!   accounting invariant `admitted = completed + shed + drained`
//!   ([`Accounting::balanced`]).
//! - [`breaker`] — a generic circuit breaker (closed / open / half-open
//!   with seeded probe lotteries) wrapping the primary predictor; trips to
//!   the degraded fallback chain and recovers deterministically.
//! - [`hysteresis`] — the policy controller: a new timeout is applied only
//!   after `k` consecutive agreeing decisions.
//! - [`watchdog`] — virtual-time stage watchdog failing stuck stages into
//!   the retry path.
//! - [`model`] — the [`EaModel`] boundary (implemented by `stca-core`'s
//!   `Predictor`) and the closed-form decide stage.
//! - [`adapt`] — the drift-aware model lifecycle: Page-Hinkley drift
//!   detection over EA residuals, warm-start candidate retrains, shadow
//!   scoring, guarded promotion behind the breaker, and automatic
//!   rollback through a bounded version history.
//! - [`request`] — the seeded, chunkable arrival stream.
//!
//! Everything is deterministic at any thread count: parallel work is pure
//! per-request compute via `stca_exec::par_map_indexed`, all stateful
//! decisions replay serially in arrival order, and fault injection is
//! keyed by request sequence number. The soak bench asserts bit-identical
//! decision logs at `--threads 1` vs `8` under the heavy fault plan.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod adapt;
pub mod breaker;
pub mod fleet;
pub mod hysteresis;
pub mod model;
pub mod request;
pub mod router;
pub mod server;
mod shard;
pub mod watchdog;

pub use adapt::{AdaptConfig, AdaptStats};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Verdict};
pub use fleet::{serve_fleet, write_fleet_health, FleetConfig, FleetReport, ShardStats};
pub use hysteresis::Hysteresis;
pub use model::{decide, AnalyticEa, EaModel, StationModel, TIMEOUT_GRID};
pub use request::{Request, SyntheticStream};
pub use router::{rendezvous_score, route, Candidate, RouterKind};
pub use server::{serve, write_health, Accounting, OverloadPolicy, ServeConfig, ServeReport};
pub use watchdog::{StageRun, Watchdog};
