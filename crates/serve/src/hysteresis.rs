//! Hysteresis on the STAP timeout decision.
//!
//! Per-request EA predictions are noisy (feature noise, degraded tiers,
//! injected faults), so raw per-request decide output flaps between
//! adjacent grid points. The controller only re-programs the station's
//! timeout after `k` *consecutive* decisions agree on the same new value —
//! the serving-loop analogue of requiring a persistent regime change
//! before paying the re-allocation cost.

/// Debounces decide output into applied policy changes.
#[derive(Debug, Clone)]
pub struct Hysteresis {
    k: u32,
    applied: usize,
    candidate: usize,
    streak: u32,
    /// Policy changes actually applied.
    pub applies: u64,
    /// Decisions that differed from the applied policy but were held back.
    pub suppressed: u64,
}

impl Hysteresis {
    /// Controller starting at `initial` with agreement threshold `k`
    /// (clamped to >= 1; `k = 1` applies every change immediately).
    pub fn new(k: u32, initial: usize) -> Self {
        Hysteresis {
            k: k.max(1),
            applied: initial,
            candidate: initial,
            streak: 0,
            applies: 0,
            suppressed: 0,
        }
    }

    /// Currently applied decision.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Feed one decision; returns `Some(new)` when the policy flips.
    pub fn observe(&mut self, decision: usize) -> Option<usize> {
        if decision == self.applied {
            self.candidate = decision;
            self.streak = 0;
            return None;
        }
        if decision == self.candidate {
            self.streak += 1;
        } else {
            self.candidate = decision;
            self.streak = 1;
        }
        if self.streak >= self.k {
            self.applied = decision;
            self.streak = 0;
            self.applies += 1;
            Some(decision)
        } else {
            self.suppressed += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_only_after_k_consecutive_agreements() {
        let mut h = Hysteresis::new(3, 0);
        assert_eq!(h.observe(1), None);
        assert_eq!(h.observe(1), None);
        assert_eq!(h.observe(1), Some(1));
        assert_eq!(h.applied(), 1);
        assert_eq!(h.applies, 1);
        assert_eq!(h.suppressed, 2);
    }

    #[test]
    fn flapping_never_applies() {
        let mut h = Hysteresis::new(3, 0);
        for _ in 0..50 {
            assert_eq!(h.observe(1), None);
            assert_eq!(h.observe(2), None);
        }
        assert_eq!(h.applied(), 0);
        assert_eq!(h.applies, 0);
        assert_eq!(h.suppressed, 100);
    }

    #[test]
    fn agreeing_with_applied_resets_the_streak() {
        let mut h = Hysteresis::new(2, 0);
        assert_eq!(h.observe(1), None);
        assert_eq!(h.observe(0), None); // back to applied: streak resets
        assert_eq!(h.observe(1), None);
        assert_eq!(h.observe(1), Some(1));
    }

    #[test]
    fn k_one_applies_immediately() {
        let mut h = Hysteresis::new(1, 0);
        assert_eq!(h.observe(4), Some(4));
        assert_eq!(h.observe(2), Some(2));
        assert_eq!(h.suppressed, 0);
    }
}
