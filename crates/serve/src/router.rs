//! Deterministic fleet routing: rendezvous hashing with a least-loaded
//! variant, over virtual-clock queue-depth snapshots.
//!
//! Routing is a pure function of `(route seed, request seq, candidate
//! shard set, queue-depth snapshot)` — no wall clock, no iteration-order
//! dependence — so the fleet's routing decisions are bit-identical at any
//! `--threads`. Health gating (crash / flap / breaker state) happens in
//! the fleet layer, which passes only routable shards as candidates.

use stca_fault::StcaError;
use stca_util::rng::splitmix64;

/// Which routing discipline the fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Highest-rendezvous-score shard wins; queue depth breaks score ties.
    Rendezvous,
    /// Shallowest queue wins; rendezvous score breaks depth ties.
    LeastLoaded,
}

impl RouterKind {
    /// Parse a CLI/spec token: `rendezvous` or `least-loaded`.
    pub fn parse(s: &str) -> Result<Self, StcaError> {
        match s {
            "rendezvous" => Ok(RouterKind::Rendezvous),
            "least-loaded" => Ok(RouterKind::LeastLoaded),
            _ => Err(StcaError::usage(format!(
                "router {s:?}: want rendezvous or least-loaded"
            ))),
        }
    }

    /// The CLI/spec token for this router.
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::Rendezvous => "rendezvous",
            RouterKind::LeastLoaded => "least-loaded",
        }
    }
}

/// One routable shard as the router sees it: id plus the virtual-clock
/// queue-depth snapshot taken when the routing decision is made.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Shard id.
    pub id: u32,
    /// Waiting-queue depth at decision time.
    pub queue_depth: usize,
}

/// Rendezvous (highest-random-weight) score: a pure function of
/// `(seed, seq, shard)`.
pub fn rendezvous_score(seed: u64, seq: u64, shard: u32) -> u64 {
    let mut s = seed
        ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(shard).wrapping_mul(0xD1B5_4A32_D192_ED03);
    splitmix64(&mut s)
}

/// Pick the shard for request `seq` among `candidates`. Returns `None`
/// only for an empty candidate set. Deterministic: ties fall through to
/// the rendezvous score and finally the lower shard id, so the choice
/// never depends on input order.
pub fn route(kind: RouterKind, seed: u64, seq: u64, candidates: &[Candidate]) -> Option<u32> {
    let key = |c: &Candidate| {
        let score = rendezvous_score(seed, seq, c.id);
        let shallow = u64::MAX - c.queue_depth as u64;
        let low_id = u64::from(u32::MAX - c.id);
        match kind {
            // max score, then min depth, then min id
            RouterKind::Rendezvous => (score, shallow, low_id),
            // min depth, then max score, then min id
            RouterKind::LeastLoaded => (shallow, score, low_id),
        }
    };
    candidates.iter().max_by_key(|c| key(c)).map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: u32) -> Vec<Candidate> {
        (0..n).map(|id| Candidate { id, queue_depth: 0 }).collect()
    }

    #[test]
    fn parse_and_name_round_trip() {
        for kind in [RouterKind::Rendezvous, RouterKind::LeastLoaded] {
            assert_eq!(RouterKind::parse(kind.name()).expect("round trip"), kind);
        }
        assert!(RouterKind::parse("random").is_err());
    }

    #[test]
    fn rendezvous_spreads_and_is_stable_under_membership_change() {
        let shards = flat(8);
        let mut counts = [0usize; 8];
        for seq in 0..8_000u64 {
            let id = route(RouterKind::Rendezvous, 42, seq, &shards).expect("non-empty");
            counts[id as usize] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert!((500..1600).contains(&c), "shard {id} got {c}/8000");
        }
        // HRW property: removing one shard only moves the keys that were
        // on it — every other key keeps its target.
        let survivors: Vec<Candidate> = shards.iter().copied().filter(|c| c.id != 3).collect();
        for seq in 0..2_000u64 {
            let full = route(RouterKind::Rendezvous, 42, seq, &shards).expect("full");
            let part = route(RouterKind::Rendezvous, 42, seq, &survivors).expect("part");
            if full != 3 {
                assert_eq!(full, part, "seq {seq} moved without its shard failing");
            }
        }
    }

    #[test]
    fn least_loaded_prefers_shallow_queues_with_deterministic_ties() {
        let cands = vec![
            Candidate {
                id: 0,
                queue_depth: 5,
            },
            Candidate {
                id: 1,
                queue_depth: 2,
            },
            Candidate {
                id: 2,
                queue_depth: 7,
            },
        ];
        assert_eq!(route(RouterKind::LeastLoaded, 7, 0, &cands), Some(1));
        // equal depths: the rendezvous score decides, identically for any
        // candidate order
        let tied = flat(4);
        let mut rev = tied.clone();
        rev.reverse();
        for seq in 0..256u64 {
            assert_eq!(
                route(RouterKind::LeastLoaded, 7, seq, &tied),
                route(RouterKind::LeastLoaded, 7, seq, &rev),
            );
        }
    }

    #[test]
    fn empty_candidate_set_routes_nowhere() {
        assert_eq!(route(RouterKind::Rendezvous, 1, 1, &[]), None);
    }
}
