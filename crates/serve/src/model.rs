//! The EA-model boundary and the STAP decide stage.
//!
//! The serving loop is generic over [`EaModel`] so the crate stays below
//! `stca-core` in the dependency graph: core implements the trait for its
//! `Predictor` (deep forest primary, scalar-forest → analytic degraded
//! chain) and hands it to the loop; tests and the standalone CLI path use
//! [`AnalyticEa`], the same closed-form tier the PR 3 fallback bottoms out
//! in.
//!
//! The decide stage is the paper's policy search shrunk to serving cost:
//! score every timeout in [`TIMEOUT_GRID`] with the closed-form M/M/k
//! response model plus a contention penalty that grows as the timeout
//! shortens (earlier boosts steal more neighbour cache), and pick the
//! cheapest. It is a pure function of `(station, EA)`, which is what lets
//! the loop parallelise prediction and keep decisions bit-identical.

use stca_fault::StcaError;

/// Candidate STAP timeout ratios — the same grid the offline policy
/// explorer sweeps (`stca_core::explorer`).
pub const TIMEOUT_GRID: [f64; 5] = [0.25, 0.75, 1.5, 3.0, 6.0];

/// A predictor the serving loop can call.
///
/// Implementations must be pure per feature row: the loop calls
/// `predict_primary` from parallel workers and replays decisions serially,
/// so any internal randomness must be keyed off the row, not shared state.
pub trait EaModel: Sync {
    /// The primary (expensive, most accurate) prediction. May fail — the
    /// breaker counts failures and the loop falls back to the degraded
    /// chain.
    fn predict_primary(&self, features: &[f64]) -> Result<f64, StcaError>;

    /// Degraded prediction that must always return a finite EA, plus the
    /// fallback tier used (1 = scalar model, 2 = analytic).
    fn predict_degraded(&self, features: &[f64]) -> (f64, u8);
}

/// The analytic EA tier as its own model: `EA = (1 / ratio).clamp(0.01, 2)`
/// with `ratio = features[ratio_index]`. Never fails, so it only trips the
/// breaker under injected predictor faults — which is exactly what the
/// fault-plan soak wants to exercise.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticEa {
    /// Index of the allocation ratio in the feature row.
    pub ratio_index: usize,
}

impl AnalyticEa {
    fn ea(&self, features: &[f64]) -> f64 {
        let ratio = features.get(self.ratio_index).copied().unwrap_or(1.0);
        let ratio = if ratio.is_finite() && ratio > 0.0 {
            ratio
        } else {
            1.0
        };
        (1.0 / ratio).clamp(0.01, 2.0)
    }
}

impl EaModel for AnalyticEa {
    fn predict_primary(&self, features: &[f64]) -> Result<f64, StcaError> {
        Ok(self.ea(features))
    }

    fn predict_degraded(&self, features: &[f64]) -> (f64, u8) {
        (self.ea(features), 2)
    }
}

/// The backend station the STAP decision is being made for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationModel {
    /// Servers at the station.
    pub servers: usize,
    /// Offered utilization (`rho`, strictly below 1).
    pub utilization: f64,
    /// Mean service time at the default allocation, seconds.
    pub service_s: f64,
    /// Allocation increase available to boosts (`l_a' / l_a`, >= 1).
    pub alloc_boost: f64,
    /// Weight of the contention penalty for early boosting.
    pub contention: f64,
}

impl Default for StationModel {
    fn default() -> Self {
        StationModel {
            servers: 2,
            utilization: 0.7,
            service_s: 1.0,
            alloc_boost: 2.0,
            contention: 0.6,
        }
    }
}

impl StationModel {
    /// Arrival rate implied by the utilization.
    pub fn lambda(&self) -> f64 {
        self.utilization * self.servers as f64 / self.service_s
    }
}

/// Pick the [`TIMEOUT_GRID`] index minimising modeled response plus
/// contention cost for a workload with effective allocation `ea`.
pub fn decide(station: &StationModel, ea: f64) -> usize {
    let ea = if ea.is_finite() { ea.max(0.0) } else { 0.0 };
    let lambda = station.lambda();
    let gain = (ea * (station.alloc_boost - 1.0)).max(0.0);
    let mut best = 0;
    let mut best_cost = f64::INFINITY;
    for (i, &t) in TIMEOUT_GRID.iter().enumerate() {
        // earlier boosts (small t) convert more of the gain into speedup…
        let early = (-t / 2.0).exp();
        let speedup = 1.0 + gain * early;
        let svc = station.service_s / speedup;
        let resp = stca_queuesim::analytic::mmk_mean_response(station.servers, lambda, svc);
        // …but also cost the neighbour more shared cache
        let cost = resp + station.contention * station.service_s * gain * early;
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_ea_matches_fallback_formula() {
        let m = AnalyticEa::default();
        assert_eq!(m.predict_degraded(&[0.5]).0, 2.0);
        assert_eq!(m.predict_degraded(&[1.0]).0, 1.0);
        assert_eq!(m.predict_degraded(&[f64::NAN]).0, 1.0, "NaN ratio → 1.0");
        assert_eq!(m.predict_degraded(&[]).0, 1.0, "missing ratio → 1.0");
        assert_eq!(m.predict_degraded(&[0.5]).1, 2, "analytic tier");
    }

    #[test]
    fn decide_is_deterministic_and_in_range() {
        let st = StationModel::default();
        for ea10 in 0..=20 {
            let ea = ea10 as f64 / 10.0;
            let a = decide(&st, ea);
            assert_eq!(a, decide(&st, ea));
            assert!(a < TIMEOUT_GRID.len());
        }
        assert!(decide(&st, f64::NAN) < TIMEOUT_GRID.len());
    }

    #[test]
    fn high_ea_prefers_earlier_boost_than_zero_ea() {
        // with no contention, gain is free: high EA wants the earliest boost
        let st = StationModel {
            contention: 0.0,
            ..StationModel::default()
        };
        assert_eq!(decide(&st, 2.0), 0);
        // zero EA gains nothing; all timeouts tie at the base response and
        // the argmin stays at the first index — but heavy contention with
        // some EA must push the choice later than the no-contention case
        let heavy = StationModel {
            contention: 5.0,
            ..StationModel::default()
        };
        assert!(decide(&heavy, 2.0) > decide(&st, 2.0));
    }
}
