//! Section → engine-config conversions.
//!
//! These preserve the historical CLI derivations exactly: the circuit
//! breaker seeds from `serve.seed ^ 0xB4EA`, the flight recorder from
//! `serve.seed ^ 0x7ACE`, the synthetic stream carries 6 features, and
//! unset fields keep the engine defaults — so a spec built purely from
//! flags produces the same `ServeConfig` bytes the old flag parser did.

use crate::spec::ScenarioSpec;
use stca_serve::{AdaptConfig, BreakerConfig, FleetConfig, ServeConfig, SyntheticStream};
use stca_trace::TraceConfig;

/// The flight-recorder config of the spec's `[trace]` section, or `None`
/// when tracing is off.
pub fn trace_config(spec: &ScenarioSpec) -> Option<TraceConfig> {
    if !spec.trace.enabled {
        return None;
    }
    Some(TraceConfig {
        seed: spec.serve.seed ^ 0x7ACE,
        sample_every: spec.trace.sample_every,
        ring_capacity: spec.trace.ring_capacity as usize,
        ..TraceConfig::default()
    })
}

/// The model-lifecycle config of the spec's `[serve.adapt]` section.
/// With `enabled = false` (the default) the lifecycle never installs and
/// serving output is byte-identical to pre-adapt builds.
pub fn adapt_config(spec: &ScenarioSpec) -> AdaptConfig {
    AdaptConfig {
        enabled: spec.adapt.enabled,
        epoch_s: spec.adapt.epoch_s,
        window: spec.adapt.window as usize,
        min_samples: spec.adapt.min_samples as usize,
        drift_threshold: spec.adapt.drift_threshold,
        shadow_requests: spec.adapt.shadow_requests,
        agree_tol: spec.adapt.agree_tol,
        promote_agreement: spec.adapt.promote_agreement,
        guard_requests: spec.adapt.guard_requests,
        guard_band: spec.adapt.guard_band,
        history: spec.adapt.history as usize,
        retrain_budget_s: spec.adapt.retrain_budget_s,
    }
}

/// The serving-loop config of the spec's `[serve]` (+ `[serve.adapt]`,
/// `[trace]`, `[artifacts]`) sections.
pub fn serve_config(spec: &ScenarioSpec) -> ServeConfig {
    ServeConfig {
        servers: spec.serve.servers as usize,
        queue_capacity: spec.serve.queue_capacity as usize,
        overload: spec.serve.overload,
        hysteresis_k: spec.serve.hysteresis_k as u32,
        breaker: BreakerConfig {
            failure_threshold: spec.serve.breaker_threshold as u32,
            cooldown_s: spec.serve.breaker_cooldown_s,
            seed: spec.serve.seed ^ 0xB4EA,
            ..BreakerConfig::default()
        },
        drain_grace_s: spec.serve.drain_grace_s,
        keep_decision_log: !spec.artifacts.decision_log.is_empty(),
        adapt: adapt_config(spec),
        trace: trace_config(spec),
        ..ServeConfig::default()
    }
}

/// The fleet config of the spec's `[serve.fleet]` section, or `None`
/// when `shards <= 1` (the single serving loop). Per-shard seeds derive
/// inside the engine from the base seeds as `seed ^ (shard_id << 24)`.
pub fn fleet_config(spec: &ScenarioSpec) -> Option<FleetConfig> {
    if spec.fleet.shards <= 1 {
        return None;
    }
    Some(FleetConfig {
        base: serve_config(spec),
        shards: spec.fleet.shards as u32,
        router: spec.fleet.router,
        reroute_max: spec.fleet.reroute_max as u32,
        ..FleetConfig::default()
    })
}

/// The seeded arrival stream of the spec's `[serve]` section.
pub fn synthetic_stream(spec: &ScenarioSpec) -> SyntheticStream {
    SyntheticStream {
        seed: spec.serve.seed,
        rate: spec.serve.rate,
        deadline_s: spec.serve.deadline_s,
        n_features: 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_matches_engine_defaults_when_spec_is_default() {
        let spec = ScenarioSpec::default();
        let cfg = serve_config(&spec);
        let engine = ServeConfig::default();
        assert_eq!(cfg.servers, engine.servers);
        assert_eq!(cfg.queue_capacity, engine.queue_capacity);
        assert_eq!(cfg.hysteresis_k, engine.hysteresis_k);
        assert_eq!(cfg.drain_grace_s, engine.drain_grace_s);
        assert_eq!(cfg.breaker.failure_threshold, 5);
        assert_eq!(cfg.breaker.cooldown_s, 1.0);
        // the historical CLI seed derivation
        assert_eq!(cfg.breaker.seed, 2022 ^ 0xB4EA);
        assert!(cfg.trace.is_none());
        assert!(!cfg.keep_decision_log);
    }

    #[test]
    fn adapt_config_defaults_to_disabled_engine_defaults() {
        let spec = ScenarioSpec::default();
        let a = adapt_config(&spec);
        assert_eq!(a, AdaptConfig::default());
        assert!(!a.enabled);
        assert_eq!(serve_config(&spec).adapt, AdaptConfig::default());
    }

    #[test]
    fn adapt_config_carries_spec_values() {
        let mut spec = ScenarioSpec::default();
        spec.adapt.enabled = true;
        spec.adapt.epoch_s = 2.5;
        spec.adapt.window = 128;
        spec.adapt.drift_threshold = 3.0;
        spec.adapt.history = 2;
        let a = adapt_config(&spec);
        assert!(a.enabled);
        assert_eq!(a.epoch_s, 2.5);
        assert_eq!(a.window, 128);
        assert_eq!(a.drift_threshold, 3.0);
        assert_eq!(a.history, 2);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn trace_config_derives_seed_from_serve_seed() {
        let mut spec = ScenarioSpec::default();
        spec.trace.enabled = true;
        spec.serve.seed = 99;
        let t = trace_config(&spec).expect("enabled");
        assert_eq!(t.seed, 99 ^ 0x7ACE);
        assert_eq!(t.sample_every, 64);
        assert_eq!(t.ring_capacity, 256);
    }
}
