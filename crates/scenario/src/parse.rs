//! The hand-rolled TOML-subset parser for scenario files.
//!
//! Grammar (line-oriented, no external dependencies):
//!
//! ```text
//! file     := line*
//! line     := blank | comment | section | keyvalue
//! comment  := '#' .*
//! section  := '[' ident ']'
//! keyvalue := ident '=' value comment?
//! value    := string | list | bare
//! string   := '"' (escape | char)* '"'        escape: \" \\ \n \t \r
//! list     := '[' value (',' value)* ']'      elements are strings or bares
//! bare     := one token, no spaces: numbers, booleans, idents
//! ```
//!
//! Strictness rules: every key must live under a known `[section]`;
//! unknown sections/keys are errors listing the valid set; a key may
//! appear at most once per file; values must parse for the key's type.
//! All errors carry the 1-based line number via
//! [`stca_util::SpecLocation::Line`].

use crate::spec::{at_line, keys_of, ScenarioSpec, SpecValue, SECTIONS};
use stca_util::{SpecError, SpecErrorKind};

/// Parse scenario text into a spec, starting from defaults. `context`
/// names the source (typically the file path) for error messages.
pub fn parse_str(text: &str, context: &str) -> Result<ScenarioSpec, SpecError> {
    let mut spec = ScenarioSpec::default();
    apply_str(&mut spec, text, context)?;
    Ok(spec)
}

/// Apply scenario text on top of an existing spec (later writes win).
/// This is the layer that makes precedence composable: defaults, then
/// file, then flag overrides, all through [`ScenarioSpec::set`].
pub fn apply_str(spec: &mut ScenarioSpec, text: &str, context: &str) -> Result<(), SpecError> {
    let mut section: Option<String> = None;
    let mut seen: Vec<(String, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |kind: SpecErrorKind| SpecError::new(context, kind).at(at_line(lineno));
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or_else(|| {
                err(SpecErrorKind::Malformed {
                    token: line.to_string(),
                    expected: "a section header like [serve]".to_string(),
                })
            })?;
            let name = name.trim();
            if keys_of(name).is_none() {
                return Err(err(SpecErrorKind::UnknownKey {
                    key: name.to_string(),
                    valid: &SECTIONS,
                }));
            }
            section = Some(name.to_string());
            continue;
        }
        let (key, value_text) = line.split_once('=').ok_or_else(|| {
            err(SpecErrorKind::Malformed {
                token: line.to_string(),
                expected: "a `key = value` line or a [section] header".to_string(),
            })
        })?;
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(err(SpecErrorKind::Malformed {
                token: key.to_string(),
                expected: "a lowercase key name (letters, digits, underscores)".to_string(),
            }));
        }
        let section = section.clone().ok_or_else(|| {
            err(SpecErrorKind::Malformed {
                token: line.to_string(),
                expected: "a [section] header before the first key".to_string(),
            })
        })?;
        if seen.iter().any(|(s, k)| s == &section && k == key) {
            return Err(err(SpecErrorKind::Malformed {
                token: format!("{section}.{key}"),
                expected: "each key at most once per file".to_string(),
            }));
        }
        seen.push((section.clone(), key.to_string()));
        let value = parse_value(value_text.trim(), key).map_err(&err)?;
        spec.set(&section, key, &value).map_err(err)?;
    }
    Ok(())
}

/// Parse one value: quoted string, bracketed list, or bare scalar. Any
/// trailing `#` comment (outside quotes) is stripped.
fn parse_value(text: &str, key: &str) -> Result<SpecValue, SpecErrorKind> {
    let malformed = |expected: &str| SpecErrorKind::Malformed {
        token: text.to_string(),
        expected: expected.to_string(),
    };
    if text.starts_with('"') {
        let (s, rest) = parse_string(text)
            .ok_or_else(|| malformed("a closed quoted string (escapes: \\\" \\\\ \\n \\t \\r)"))?;
        ensure_only_comment(rest).map_err(|_| malformed("nothing after the closing quote"))?;
        return Ok(SpecValue::Scalar(s));
    }
    if let Some(body) = text.strip_prefix('[') {
        // find the matching close bracket outside quotes
        let close = find_close(body).ok_or_else(|| malformed("a closed [ ... ] list"))?;
        ensure_only_comment(&body[close + 1..])
            .map_err(|_| malformed("nothing after the closing bracket"))?;
        let inner = &body[..close];
        let mut items = Vec::new();
        for part in split_commas(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part.starts_with('"') {
                let (s, rest) = parse_string(part)
                    .ok_or_else(|| malformed("a closed quoted string inside the list"))?;
                if !rest.trim().is_empty() {
                    return Err(malformed("one value per list element"));
                }
                items.push(s);
            } else {
                if part.contains(|c: char| c.is_whitespace()) {
                    return Err(malformed("one bare token per list element"));
                }
                items.push(part.to_string());
            }
        }
        return Ok(SpecValue::List(items));
    }
    // bare scalar: strip a trailing comment, then require one token
    let bare = match text.find('#') {
        Some(i) => text[..i].trim(),
        None => text,
    };
    if bare.is_empty() {
        return Err(SpecErrorKind::Malformed {
            token: format!("{key} ="),
            expected: "a value after `=`".to_string(),
        });
    }
    if bare.contains(|c: char| c.is_whitespace()) {
        return Err(malformed("one value (quote strings containing spaces)"));
    }
    Ok(SpecValue::Scalar(bare.to_string()))
}

/// Parse a leading quoted string; returns (content, rest-after-quote).
fn parse_string(text: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &text[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// After a value, only whitespace and an optional `#` comment may follow.
fn ensure_only_comment(rest: &str) -> Result<(), ()> {
    let rest = rest.trim();
    if rest.is_empty() || rest.starts_with('#') {
        Ok(())
    } else {
        Err(())
    }
}

/// Index of the first `]` outside quotes in `body`, if any.
fn find_close(body: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in body.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ']' {
            return Some(i);
        }
    }
    None
}

/// Split on commas outside quotes.
fn split_commas(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in inner.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ',' {
            parts.push(&inner[start..i]);
            start = i + 1;
        }
    }
    parts.push(&inner[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Stage;

    #[test]
    fn parses_sections_comments_and_values() {
        let text = r#"
# a scenario
[scenario]
name = "smoke"           # trailing comment
pipeline = ["profile", "serve"]

[serve]
requests = 5000
rate = 120.5
overload = shed-oldest
"#;
        let s = parse_str(text, "test").unwrap();
        assert_eq!(s.scenario.name, "smoke");
        assert_eq!(s.scenario.pipeline, vec![Stage::Profile, Stage::Serve]);
        assert_eq!(s.serve.requests, 5000);
        assert_eq!(s.serve.rate, 120.5);
        assert_eq!(s.serve.overload.name(), "shed-oldest");
        // untouched keys keep defaults
        assert_eq!(s.serve.deadline_s, 0.5);
    }

    #[test]
    fn rejects_unknown_section_key_and_value_with_line_numbers() {
        let e = parse_str("[nope]\n", "t").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("\"nope\""), "{msg}");
        assert!(msg.contains("scenario"), "{msg}");

        let e = parse_str("[serve]\nspeed = 3\n", "t").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("\"speed\""), "{msg}");
        assert!(msg.contains("requests"), "{msg}");

        let e = parse_str("[serve]\nrate = fast\n", "t").unwrap_err();
        assert!(e.to_string().contains("\"fast\""), "{e}");
    }

    #[test]
    fn rejects_orphan_keys_duplicates_and_malformed_lines() {
        assert!(parse_str("requests = 1\n", "t").is_err());
        assert!(parse_str("[serve]\nrequests = 1\nrequests = 2\n", "t").is_err());
        assert!(parse_str("[serve\n", "t").is_err());
        assert!(parse_str("[serve]\nrequests\n", "t").is_err());
        assert!(parse_str("[serve]\nrequests = \n", "t").is_err());
        assert!(parse_str("[serve]\nrequests = 1 2\n", "t").is_err());
        assert!(parse_str("[scenario]\nname = \"open\n", "t").is_err());
    }

    #[test]
    fn canonical_round_trips_byte_stably() {
        let text = r#"
[scenario]
name = "round \"trip\""
pipeline = ["profile", "dataset", "train", "explore", "serve"]
[fault]
plan = "ci-default,crash=0.037"
[explore]
grid = [0.5, 1.5]
[serve]
rate = 333.25
"#;
        let s = parse_str(text, "t").unwrap();
        let c1 = s.canonical();
        let s2 = parse_str(&c1, "t").unwrap();
        assert_eq!(s, s2);
        assert_eq!(c1, s2.canonical());
    }
}
