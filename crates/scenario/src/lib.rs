//! # stca-scenario
//!
//! Declarative scenario specs: one reviewable file that drives the whole
//! profile → dataset → train → explore → serve pipeline, plus the config
//! spine behind every `stca` subcommand.
//!
//! A scenario file is a strict TOML subset (see [`parse`]) over the typed
//! [`ScenarioSpec`] schema (see [`spec`]). The same [`ScenarioSpec::set`]
//! setter backs file keys and CLI flag overrides, giving one precedence
//! rule everywhere: **flag beats spec beats default**. [`convert`] turns
//! sections into the concrete configs the engine crates consume
//! (`ServeConfig`, `TraceConfig`, arrival streams), preserving the
//! historical seed derivations (`breaker = seed ^ 0xB4EA`,
//! `trace = seed ^ 0x7ACE`) so flag-built specs behave byte-identically
//! to the pre-spec CLI.

#![warn(clippy::unwrap_used)]

pub mod convert;
pub mod parse;
pub mod spec;

pub use parse::{apply_str, parse_str};
pub use spec::{
    fnv1a, AdaptSection, ArtifactsSection, CatSection, FaultSection, FleetSection, ModelKind,
    PredictorKind, ProfileSection, ScenarioSection, ScenarioSpec, ServeSection, SpecValue, Stage,
    TraceSection, TrainSection, WorkloadsSection, SECTIONS,
};

use stca_fault::StcaError;
use std::path::Path;

/// Load a scenario file: read, parse strictly, and validate. Parse errors
/// carry the file path and 1-based line number and exit 2 through
/// `StcaError::Usage`.
pub fn load_file(path: &Path) -> Result<ScenarioSpec, StcaError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| StcaError::io(path.display().to_string(), e))?;
    let context = format!("scenario {}", path.display());
    let spec = parse_str(&text, &context)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_file_reports_path_and_line() {
        let dir = std::env::temp_dir().join("stca-scenario-libtest");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("bad.stca");
        std::fs::write(&path, "[serve]\nwarp = 9\n").expect("write");
        let err = load_file(&path).expect_err("unknown key must fail");
        let msg = err.to_string();
        assert!(msg.contains("bad.stca"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("\"warp\""), "{msg}");
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(&path).ok();
    }
}
