//! The typed scenario spec: sections, defaults, the central typed setter,
//! and the canonical serializer.
//!
//! A [`ScenarioSpec`] owns every knob the `stca` subcommands used to parse
//! ad hoc: workloads, CAT layout, fault plan, profiling, training, policy
//! search, serving, tracing, and artifact outputs. Three invariants shape
//! the API:
//!
//! * **One setter.** [`ScenarioSpec::set`] is the only way a key gets a
//!   value — the file parser and the CLI flag-override layer both go
//!   through it, so a flag and a spec line cannot disagree about types,
//!   ranges, or spelling.
//! * **Strict keys.** Unknown sections and keys are errors
//!   ([`SpecErrorKind::UnknownKey`] naming the valid set), not warnings.
//! * **Canonical form.** [`ScenarioSpec::canonical`] emits every section
//!   fully resolved, in schema order, with round-trip-exact float
//!   formatting — `parse(canonical(s)) == s` and
//!   `canonical(parse(canonical(s))) == canonical(s)` byte-for-byte.
//!
//! Override precedence is *flag beats spec beats default*: a spec starts
//! from [`ScenarioSpec::default`], the file applies its keys, then the CLI
//! applies flag overrides — later writes win.

use stca_fault::FaultPlan;
use stca_serve::{OverloadPolicy, RouterKind};
use stca_util::{SpecErrorKind, SpecLocation};
use stca_workloads::BenchmarkId;

/// The pipeline stages a scenario can run, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Profile random conditions of the pair into Eq.-2 rows.
    Profile,
    /// Validate/summarize the profiled rows into the training dataset.
    Dataset,
    /// Train the EA + base-service models.
    Train,
    /// Grid policy search over timeout vectors.
    Explore,
    /// Replay the serving loop.
    Serve,
}

impl Stage {
    /// All stages in canonical pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Profile,
        Stage::Dataset,
        Stage::Train,
        Stage::Explore,
        Stage::Serve,
    ];

    /// The spec token for this stage.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Profile => "profile",
            Stage::Dataset => "dataset",
            Stage::Train => "train",
            Stage::Explore => "explore",
            Stage::Serve => "serve",
        }
    }

    /// Parse a spec token.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|st| st.name() == s)
    }

    /// The valid stage tokens, for error messages.
    pub const NAMES: [&'static str; 5] = ["profile", "dataset", "train", "explore", "serve"];
}

/// Which model configuration the train stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// `standard` when the dataset has >= 30 rows, else `quick` — the
    /// historical CLI behavior.
    Auto,
    /// The fast test-scale configuration.
    Quick,
    /// The paper-shaped mid-size configuration.
    Standard,
    /// Single-level cascade, no MGS (Figure 8e's "simple ML").
    SimpleMl,
}

impl ModelKind {
    /// The spec token for this kind.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Auto => "auto",
            ModelKind::Quick => "quick",
            ModelKind::Standard => "standard",
            ModelKind::SimpleMl => "simple-ml",
        }
    }

    /// The valid tokens, for error messages.
    pub const NAMES: [&'static str; 4] = ["auto", "quick", "standard", "simple-ml"];
}

/// Which predictor tier the serve stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// The analytic EA tier; no training required.
    Analytic,
    /// The deep-forest predictor trained by the train stage.
    Trained,
}

impl PredictorKind {
    /// The spec token for this kind.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorKind::Analytic => "analytic",
            PredictorKind::Trained => "trained",
        }
    }
}

/// `[scenario]` — identity and pipeline shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSection {
    /// Scenario name; also the default artifact directory stem.
    pub name: String,
    /// Stages to run, in canonical order.
    pub pipeline: Vec<Stage>,
}

/// `[workloads]` — what is collocated.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadsSection {
    /// The collocated benchmark pair.
    pub pair: (BenchmarkId, BenchmarkId),
    /// Synthetic accesses per measurement in `stca characterize`.
    pub accesses: u64,
}

/// `[cat]` — the CAT way layout of the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CatSection {
    /// LLC ways of the experiment geometry; 0 keeps the scaled-down
    /// experiment default.
    pub ways: u64,
    /// Ways in each workload's default (private) span.
    pub default_span: u64,
    /// Ways in the short-term boosted span.
    pub boosted_span: u64,
}

/// `[fault]` — the injected fault plan and retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSection {
    /// The resolved fault plan.
    pub plan: FaultPlan,
    /// Retry budget per experiment.
    pub max_retries: u32,
}

/// `[profile]` — stage-1 profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSection {
    /// Random Table-2 conditions to profile.
    pub conditions: u64,
    /// Condition-draw and experiment seed.
    pub seed: u64,
    /// Output profile store, relative to the artifact dir in pipeline
    /// runs.
    pub out: String,
    /// Measured queries per workload per condition.
    pub measured_queries: u64,
    /// Warm-up queries per workload per condition.
    pub warmup_queries: u64,
    /// Mean accesses per query override; 0 keeps each benchmark's default.
    pub accesses_per_query: u64,
}

/// `[train]` — stage-2 model training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSection {
    /// Which model configuration to train.
    pub model: ModelKind,
    /// Training seed.
    pub seed: u64,
}

/// `[explore]` — stage-3 policy search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSection {
    /// Arrival intensity the search evaluates at.
    pub utilization: f64,
    /// Timeout grid (multiples of service time), ascending.
    pub grid: Vec<f64>,
}

/// `[predict]` — a single point query of the trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictSection {
    /// Arrival intensity of the queried condition.
    pub utilization: f64,
    /// Timeout for workload A.
    pub timeout_a: f64,
    /// Timeout for workload B.
    pub timeout_b: f64,
}

/// `[serve]` — the online serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSection {
    /// Requests to replay.
    pub requests: u64,
    /// Mean arrival rate, requests per virtual second.
    pub rate: f64,
    /// Per-request deadline budget, virtual seconds.
    pub deadline_s: f64,
    /// Control-loop workers.
    pub servers: u64,
    /// Admission queue capacity.
    pub queue_capacity: u64,
    /// Full-queue policy.
    pub overload: OverloadPolicy,
    /// Consecutive agreeing decisions before a policy change applies.
    pub hysteresis_k: u64,
    /// Consecutive primary failures that open the circuit breaker.
    pub breaker_threshold: u64,
    /// Open-state cooldown before half-open probes, virtual seconds.
    pub breaker_cooldown_s: f64,
    /// Drain window after the last arrival, virtual seconds.
    pub drain_grace_s: f64,
    /// Replay seed (breaker and trace seeds derive from it).
    pub seed: u64,
    /// Which predictor tier serves.
    pub predictor: PredictorKind,
}

/// `[serve.fleet]` — the sharded serving fleet. `shards = 1` (the
/// default) keeps the single serving loop; `shards >= 2` runs the fleet
/// with per-shard fault domains and failover routing. Per-shard seeds
/// derive from `serve.seed` as `seed ^ (shard_id << 24)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSection {
    /// Number of shards (independent fault domains); 1 = single loop.
    pub shards: u64,
    /// Routing discipline: `rendezvous` or `least-loaded`.
    pub router: RouterKind,
    /// Maximum reroute hops before the router sheds a crash-flushed
    /// request.
    pub reroute_max: u64,
}

/// `[serve.adapt]` — the drift-aware model lifecycle. Disabled by
/// default; when enabled, each shard watches EA residuals and the
/// feature distribution, retrains a warm-start candidate on drift,
/// shadow-scores it, and promotes it behind a guard band with automatic
/// rollback. Keys mirror `stca_serve::AdaptConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptSection {
    /// Whether the lifecycle runs at all.
    pub enabled: bool,
    /// Virtual seconds per lifecycle epoch (fault rolls are per-epoch).
    pub epoch_s: f64,
    /// Sliding residual/feature window size (retraining rows).
    pub window: u64,
    /// Observations before the drift detector may fire.
    pub min_samples: u64,
    /// Combined Page-Hinkley / distribution-shift score that triggers a
    /// retrain.
    pub drift_threshold: f64,
    /// Completed requests a candidate is shadow-scored on.
    pub shadow_requests: u64,
    /// Absolute EA tolerance for a shadow prediction to "agree".
    pub agree_tol: f64,
    /// Minimum shadow agreement fraction required to promote.
    pub promote_agreement: f64,
    /// Completed requests the post-promotion guard window watches.
    pub guard_requests: u64,
    /// Allowed residual/deadline regression factor before rollback.
    pub guard_band: f64,
    /// Bounded model-version history depth (rollback targets).
    pub history: u64,
    /// Virtual-seconds retrain budget; slower injected retrains abort.
    pub retrain_budget_s: f64,
}

/// `[trace]` — the per-request flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSection {
    /// Whether tracing is on.
    pub enabled: bool,
    /// Head-sample 1 in N completed requests.
    pub sample_every: u64,
    /// Sampled-completion ring capacity.
    pub ring_capacity: u64,
}

/// `[artifacts]` — what gets written where.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactsSection {
    /// Artifact directory for pipeline runs; empty means `runs/<name>`.
    pub dir: String,
    /// Decision-log file; empty means off for `stca serve`, the default
    /// name for pipeline runs.
    pub decision_log: String,
    /// JSON health snapshot file; empty means off / default.
    pub health: String,
    /// JSON metrics report file; empty means off / default.
    pub metrics: String,
    /// Chrome trace JSON file; empty means off / default.
    pub trace_json: String,
    /// SVG trace waterfall file; empty means off / default.
    pub trace_svg: String,
}

/// A fully resolved scenario: every section, every key.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// `[scenario]`
    pub scenario: ScenarioSection,
    /// `[workloads]`
    pub workloads: WorkloadsSection,
    /// `[cat]`
    pub cat: CatSection,
    /// `[fault]`
    pub fault: FaultSection,
    /// `[profile]`
    pub profile: ProfileSection,
    /// `[train]`
    pub train: TrainSection,
    /// `[explore]`
    pub explore: ExploreSection,
    /// `[predict]`
    pub predict: PredictSection,
    /// `[serve]`
    pub serve: ServeSection,
    /// `[serve.fleet]`
    pub fleet: FleetSection,
    /// `[serve.adapt]`
    pub adapt: AdaptSection,
    /// `[trace]`
    pub trace: TraceSection,
    /// `[artifacts]`
    pub artifacts: ArtifactsSection,
}

impl Default for ScenarioSpec {
    /// Defaults match the historical `stca` flag defaults exactly, so a
    /// flag-built spec with no flags behaves byte-identically to the
    /// pre-spec CLI.
    fn default() -> Self {
        ScenarioSpec {
            scenario: ScenarioSection {
                name: "unnamed".to_string(),
                pipeline: Stage::ALL.to_vec(),
            },
            workloads: WorkloadsSection {
                pair: (BenchmarkId::Kmeans, BenchmarkId::Bfs),
                accesses: 100_000,
            },
            cat: CatSection {
                ways: 0,
                default_span: 2,
                boosted_span: 2,
            },
            fault: FaultSection {
                plan: FaultPlan::none(),
                max_retries: 3,
            },
            profile: ProfileSection {
                conditions: 10,
                seed: 2022,
                out: "profiles.stca".to_string(),
                measured_queries: 200,
                warmup_queries: 30,
                accesses_per_query: 1500,
            },
            train: TrainSection {
                model: ModelKind::Auto,
                seed: 7,
            },
            explore: ExploreSection {
                utilization: 0.9,
                grid: vec![0.25, 0.75, 1.5, 3.0, 6.0],
            },
            predict: PredictSection {
                utilization: 0.9,
                timeout_a: 1.5,
                timeout_b: 1.5,
            },
            serve: ServeSection {
                requests: 100_000,
                rate: 200.0,
                deadline_s: 0.5,
                servers: 2,
                queue_capacity: 64,
                overload: OverloadPolicy::ShedNewest,
                hysteresis_k: 4,
                breaker_threshold: 5,
                breaker_cooldown_s: 1.0,
                drain_grace_s: 5.0,
                seed: 2022,
                predictor: PredictorKind::Analytic,
            },
            fleet: FleetSection {
                shards: 1,
                router: RouterKind::Rendezvous,
                reroute_max: 2,
            },
            adapt: AdaptSection {
                enabled: false,
                epoch_s: 5.0,
                window: 256,
                min_samples: 64,
                drift_threshold: 4.0,
                shadow_requests: 64,
                agree_tol: 0.25,
                promote_agreement: 0.6,
                guard_requests: 128,
                guard_band: 1.5,
                history: 4,
                retrain_budget_s: 1.0,
            },
            trace: TraceSection {
                enabled: false,
                sample_every: 64,
                ring_capacity: 256,
            },
            artifacts: ArtifactsSection {
                dir: String::new(),
                decision_log: String::new(),
                health: String::new(),
                metrics: String::new(),
                trace_json: String::new(),
                trace_svg: String::new(),
            },
        }
    }
}

/// The section names, in canonical order.
pub const SECTIONS: [&str; 13] = [
    "scenario",
    "workloads",
    "cat",
    "fault",
    "profile",
    "train",
    "explore",
    "predict",
    "serve",
    "serve.fleet",
    "serve.adapt",
    "trace",
    "artifacts",
];

const SCENARIO_KEYS: [&str; 2] = ["name", "pipeline"];
const WORKLOADS_KEYS: [&str; 2] = ["pair", "accesses"];
const CAT_KEYS: [&str; 3] = ["ways", "default_span", "boosted_span"];
const FAULT_KEYS: [&str; 19] = [
    "plan",
    "max_retries",
    "seed",
    "crash",
    "timeout",
    "dropout",
    "corrupt",
    "stuck",
    "noise",
    "latency",
    "predict_fail",
    "stall",
    "shard_crash",
    "shard_stall",
    "shard_flap",
    "drift_burst",
    "retrain_fail",
    "retrain_slow",
    "promote_corrupt",
];
const PROFILE_KEYS: [&str; 6] = [
    "conditions",
    "seed",
    "out",
    "measured_queries",
    "warmup_queries",
    "accesses_per_query",
];
const TRAIN_KEYS: [&str; 2] = ["model", "seed"];
const EXPLORE_KEYS: [&str; 2] = ["utilization", "grid"];
const PREDICT_KEYS: [&str; 3] = ["utilization", "timeout_a", "timeout_b"];
const SERVE_KEYS: [&str; 12] = [
    "requests",
    "rate",
    "deadline_s",
    "servers",
    "queue_capacity",
    "overload",
    "hysteresis_k",
    "breaker_threshold",
    "breaker_cooldown_s",
    "drain_grace_s",
    "seed",
    "predictor",
];
const FLEET_KEYS: [&str; 3] = ["shards", "router", "reroute_max"];
const ADAPT_KEYS: [&str; 12] = [
    "enabled",
    "epoch_s",
    "window",
    "min_samples",
    "drift_threshold",
    "shadow_requests",
    "agree_tol",
    "promote_agreement",
    "guard_requests",
    "guard_band",
    "history",
    "retrain_budget_s",
];
const TRACE_KEYS: [&str; 3] = ["enabled", "sample_every", "ring_capacity"];
const ARTIFACTS_KEYS: [&str; 6] = [
    "dir",
    "decision_log",
    "health",
    "metrics",
    "trace_json",
    "trace_svg",
];

/// The valid keys of a section, or `None` for an unknown section.
pub fn keys_of(section: &str) -> Option<&'static [&'static str]> {
    Some(match section {
        "scenario" => &SCENARIO_KEYS,
        "workloads" => &WORKLOADS_KEYS,
        "cat" => &CAT_KEYS,
        "fault" => &FAULT_KEYS,
        "profile" => &PROFILE_KEYS,
        "train" => &TRAIN_KEYS,
        "explore" => &EXPLORE_KEYS,
        "predict" => &PREDICT_KEYS,
        "serve" => &SERVE_KEYS,
        "serve.fleet" => &FLEET_KEYS,
        "serve.adapt" => &ADAPT_KEYS,
        "trace" => &TRACE_KEYS,
        "artifacts" => &ARTIFACTS_KEYS,
        _ => return None,
    })
}

/// A value handed to [`ScenarioSpec::set`]: one scalar token or a list of
/// scalar tokens. The file parser produces these from TOML-subset values;
/// the flag layer produces them from flag strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecValue {
    /// One scalar: number, bool, or string content (already unquoted).
    Scalar(String),
    /// A list of scalar tokens.
    List(Vec<String>),
}

impl SpecValue {
    /// A scalar from anything stringy.
    pub fn scalar(s: impl Into<String>) -> Self {
        SpecValue::Scalar(s.into())
    }

    fn expect_scalar<'a>(&'a self, key: &str) -> Result<&'a str, SpecErrorKind> {
        match self {
            SpecValue::Scalar(s) => Ok(s),
            SpecValue::List(_) => Err(SpecErrorKind::BadValue {
                key: key.to_string(),
                value: "[...]".to_string(),
                want: "a scalar, not a list".to_string(),
            }),
        }
    }

    /// The value as list items: a list as-is, a scalar split on commas
    /// (so `--grid 0.25,0.75` works as a flag override).
    fn items(&self) -> Vec<String> {
        match self {
            SpecValue::List(xs) => xs.clone(),
            SpecValue::Scalar(s) => s
                .split(',')
                .map(|t| t.trim().to_string())
                .filter(|t| !t.is_empty())
                .collect(),
        }
    }
}

fn bad(key: &str, value: &str, want: &str) -> SpecErrorKind {
    SpecErrorKind::BadValue {
        key: key.to_string(),
        value: value.to_string(),
        want: want.to_string(),
    }
}

fn parse_u64(key: &str, v: &str) -> Result<u64, SpecErrorKind> {
    v.parse().map_err(|_| bad(key, v, "a u64"))
}

fn parse_f64(key: &str, v: &str) -> Result<f64, SpecErrorKind> {
    let x: f64 = v.parse().map_err(|_| bad(key, v, "a number"))?;
    if !x.is_finite() {
        return Err(bad(key, v, "a finite number"));
    }
    Ok(x)
}

fn parse_pos_f64(key: &str, v: &str) -> Result<f64, SpecErrorKind> {
    let x = parse_f64(key, v)?;
    if x <= 0.0 {
        return Err(SpecErrorKind::OutOfRange {
            key: key.to_string(),
            value: v.to_string(),
            range: "> 0".to_string(),
        });
    }
    Ok(x)
}

fn parse_nonneg_f64(key: &str, v: &str) -> Result<f64, SpecErrorKind> {
    let x = parse_f64(key, v)?;
    if x < 0.0 {
        return Err(SpecErrorKind::OutOfRange {
            key: key.to_string(),
            value: v.to_string(),
            range: ">= 0".to_string(),
        });
    }
    Ok(x)
}

fn parse_bool(key: &str, v: &str) -> Result<bool, SpecErrorKind> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(bad(key, v, "true or false")),
    }
}

impl ScenarioSpec {
    /// Set one key. `section` and `key` are spec-file names; flag
    /// overrides map their flag names onto the same pairs. Unknown
    /// sections/keys and ill-typed values are rejected with errors naming
    /// the valid alternatives. The caller supplies file/line context.
    pub fn set(
        &mut self,
        section: &str,
        key: &str,
        value: &SpecValue,
    ) -> Result<(), SpecErrorKind> {
        let valid = keys_of(section).ok_or_else(|| SpecErrorKind::UnknownKey {
            key: section.to_string(),
            valid: &SECTIONS,
        })?;
        if !valid.contains(&key) {
            return Err(SpecErrorKind::UnknownKey {
                key: key.to_string(),
                valid,
            });
        }
        match (section, key) {
            ("scenario", "name") => {
                self.scenario.name = value.expect_scalar(key)?.to_string();
            }
            ("scenario", "pipeline") => {
                let mut stages = Vec::new();
                for item in value.items() {
                    let stage = Stage::parse(&item).ok_or_else(|| SpecErrorKind::UnknownKey {
                        key: item.clone(),
                        valid: &Stage::NAMES,
                    })?;
                    stages.push(stage);
                }
                if stages.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(bad(
                        key,
                        &stages
                            .iter()
                            .map(|s| s.name())
                            .collect::<Vec<_>>()
                            .join(","),
                        "stages in pipeline order (profile, dataset, train, explore, serve) \
                         without duplicates",
                    ));
                }
                self.scenario.pipeline = stages;
            }
            ("workloads", "pair") => {
                let v = value.expect_scalar(key)?;
                self.workloads.pair =
                    BenchmarkId::parse_pair(v).map_err(|e| bad(key, v, &e.to_string()))?;
            }
            ("workloads", "accesses") => {
                self.workloads.accesses = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("cat", "ways") => self.cat.ways = parse_u64(key, value.expect_scalar(key)?)?,
            ("cat", "default_span") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: "0".to_string(),
                        range: ">= 1 way".to_string(),
                    });
                }
                self.cat.default_span = n;
            }
            ("cat", "boosted_span") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: "0".to_string(),
                        range: ">= 1 way".to_string(),
                    });
                }
                self.cat.boosted_span = n;
            }
            ("fault", "plan") => {
                let v = value.expect_scalar(key)?;
                self.fault.plan = FaultPlan::parse_spec(v, "fault plan")
                    .map_err(|e| bad(key, v, &e.to_string()))?;
            }
            ("fault", "max_retries") => {
                let v = value.expect_scalar(key)?;
                let n = parse_u64(key, v)?;
                self.fault.max_retries =
                    u32::try_from(n).map_err(|_| bad(key, v, "a u32 retry budget"))?;
            }
            ("fault", _) => {
                // the remaining fault keys are FaultPlan's own
                self.fault.plan.set(key, value.expect_scalar(key)?)?;
            }
            ("profile", "conditions") => {
                self.profile.conditions = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("profile", "seed") => self.profile.seed = parse_u64(key, value.expect_scalar(key)?)?,
            ("profile", "out") => self.profile.out = value.expect_scalar(key)?.to_string(),
            ("profile", "measured_queries") => {
                self.profile.measured_queries = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("profile", "warmup_queries") => {
                self.profile.warmup_queries = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("profile", "accesses_per_query") => {
                self.profile.accesses_per_query = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("train", "model") => {
                let v = value.expect_scalar(key)?;
                self.train.model = match v {
                    "auto" => ModelKind::Auto,
                    "quick" => ModelKind::Quick,
                    "standard" => ModelKind::Standard,
                    "simple-ml" => ModelKind::SimpleMl,
                    _ => {
                        return Err(SpecErrorKind::UnknownKey {
                            key: v.to_string(),
                            valid: &ModelKind::NAMES,
                        })
                    }
                };
            }
            ("train", "seed") => self.train.seed = parse_u64(key, value.expect_scalar(key)?)?,
            ("explore", "utilization") => {
                self.explore.utilization = parse_pos_f64(key, value.expect_scalar(key)?)?;
            }
            ("explore", "grid") => {
                let items = value.items();
                if items.is_empty() {
                    return Err(bad(key, "[]", "at least one grid point"));
                }
                let mut grid = Vec::with_capacity(items.len());
                for item in &items {
                    let x = parse_f64(key, item)?;
                    if x < 0.0 {
                        return Err(SpecErrorKind::OutOfRange {
                            key: key.to_string(),
                            value: item.clone(),
                            range: "timeout ratios >= 0".to_string(),
                        });
                    }
                    grid.push(x);
                }
                self.explore.grid = grid;
            }
            ("predict", "utilization") => {
                self.predict.utilization = parse_pos_f64(key, value.expect_scalar(key)?)?;
            }
            ("predict", "timeout_a") => {
                self.predict.timeout_a = parse_nonneg_f64(key, value.expect_scalar(key)?)?;
            }
            ("predict", "timeout_b") => {
                self.predict.timeout_b = parse_nonneg_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "requests") => {
                self.serve.requests = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "rate") => self.serve.rate = parse_pos_f64(key, value.expect_scalar(key)?)?,
            ("serve", "deadline_s") => {
                self.serve.deadline_s = parse_pos_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "servers") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: "0".to_string(),
                        range: ">= 1 server".to_string(),
                    });
                }
                self.serve.servers = n;
            }
            ("serve", "queue_capacity") => {
                self.serve.queue_capacity = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "overload") => {
                let v = value.expect_scalar(key)?;
                self.serve.overload =
                    OverloadPolicy::parse(v).map_err(|_| SpecErrorKind::UnknownKey {
                        key: v.to_string(),
                        valid: &["shed-newest", "shed-oldest", "block"],
                    })?;
            }
            ("serve", "hysteresis_k") => {
                self.serve.hysteresis_k = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "breaker_threshold") => {
                self.serve.breaker_threshold = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "breaker_cooldown_s") => {
                self.serve.breaker_cooldown_s = parse_nonneg_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "drain_grace_s") => {
                self.serve.drain_grace_s = parse_nonneg_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve", "seed") => self.serve.seed = parse_u64(key, value.expect_scalar(key)?)?,
            ("serve", "predictor") => {
                let v = value.expect_scalar(key)?;
                self.serve.predictor = match v {
                    "analytic" => PredictorKind::Analytic,
                    "trained" => PredictorKind::Trained,
                    _ => {
                        return Err(SpecErrorKind::UnknownKey {
                            key: v.to_string(),
                            valid: &["analytic", "trained"],
                        })
                    }
                };
            }
            ("serve.fleet", "shards") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 || n > 1024 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: n.to_string(),
                        range: "1..=1024 shards".to_string(),
                    });
                }
                self.fleet.shards = n;
            }
            ("serve.fleet", "router") => {
                let v = value.expect_scalar(key)?;
                self.fleet.router =
                    RouterKind::parse(v).map_err(|_| SpecErrorKind::UnknownKey {
                        key: v.to_string(),
                        valid: &["rendezvous", "least-loaded"],
                    })?;
            }
            ("serve.fleet", "reroute_max") => {
                self.fleet.reroute_max = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("serve.adapt", "enabled") => {
                self.adapt.enabled = parse_bool(key, value.expect_scalar(key)?)?;
            }
            ("serve.adapt", "epoch_s") => {
                self.adapt.epoch_s = parse_pos_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve.adapt", "window") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n < 2 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: n.to_string(),
                        range: ">= 2 rows".to_string(),
                    });
                }
                self.adapt.window = n;
            }
            ("serve.adapt", "min_samples") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n < 2 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: n.to_string(),
                        range: ">= 2 observations".to_string(),
                    });
                }
                self.adapt.min_samples = n;
            }
            ("serve.adapt", "drift_threshold") => {
                self.adapt.drift_threshold = parse_pos_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve.adapt", "shadow_requests") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: "0".to_string(),
                        range: ">= 1 request".to_string(),
                    });
                }
                self.adapt.shadow_requests = n;
            }
            ("serve.adapt", "agree_tol") => {
                self.adapt.agree_tol = parse_nonneg_f64(key, value.expect_scalar(key)?)?;
            }
            ("serve.adapt", "promote_agreement") => {
                let v = value.expect_scalar(key)?;
                let x = parse_nonneg_f64(key, v)?;
                if x > 1.0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: v.to_string(),
                        range: "a fraction in 0..=1".to_string(),
                    });
                }
                self.adapt.promote_agreement = x;
            }
            ("serve.adapt", "guard_requests") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: "0".to_string(),
                        range: ">= 1 request".to_string(),
                    });
                }
                self.adapt.guard_requests = n;
            }
            ("serve.adapt", "guard_band") => {
                let v = value.expect_scalar(key)?;
                let x = parse_f64(key, v)?;
                if x < 1.0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: v.to_string(),
                        range: "a regression factor >= 1".to_string(),
                    });
                }
                self.adapt.guard_band = x;
            }
            ("serve.adapt", "history") => {
                let n = parse_u64(key, value.expect_scalar(key)?)?;
                if n == 0 {
                    return Err(SpecErrorKind::OutOfRange {
                        key: key.to_string(),
                        value: "0".to_string(),
                        range: ">= 1 version".to_string(),
                    });
                }
                self.adapt.history = n;
            }
            ("serve.adapt", "retrain_budget_s") => {
                self.adapt.retrain_budget_s = parse_pos_f64(key, value.expect_scalar(key)?)?;
            }
            ("trace", "enabled") => {
                self.trace.enabled = parse_bool(key, value.expect_scalar(key)?)?;
            }
            ("trace", "sample_every") => {
                self.trace.sample_every = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("trace", "ring_capacity") => {
                self.trace.ring_capacity = parse_u64(key, value.expect_scalar(key)?)?;
            }
            ("artifacts", "dir") => self.artifacts.dir = value.expect_scalar(key)?.to_string(),
            ("artifacts", "decision_log") => {
                self.artifacts.decision_log = value.expect_scalar(key)?.to_string();
            }
            ("artifacts", "health") => {
                self.artifacts.health = value.expect_scalar(key)?.to_string();
            }
            ("artifacts", "metrics") => {
                self.artifacts.metrics = value.expect_scalar(key)?.to_string();
            }
            ("artifacts", "trace_json") => {
                self.artifacts.trace_json = value.expect_scalar(key)?.to_string();
            }
            ("artifacts", "trace_svg") => {
                self.artifacts.trace_svg = value.expect_scalar(key)?.to_string();
            }
            _ => unreachable!("key {key:?} listed for section {section:?} but not handled"),
        }
        Ok(())
    }

    /// The canonical serialized form: every section, every key, schema
    /// order, fully resolved (presets and sugar keys like `fault.plan` do
    /// not survive — their effects do). Parsing the canonical form yields
    /// an equal spec, and canonicalizing is idempotent byte-for-byte.
    pub fn canonical(&self) -> String {
        let mut out = String::with_capacity(1024);
        let p = &mut out;
        sec(p, "scenario");
        kv_str(p, "name", &self.scenario.name);
        kv_list(
            p,
            "pipeline",
            &self
                .scenario
                .pipeline
                .iter()
                .map(|s| quote(s.name()))
                .collect::<Vec<_>>(),
        );
        sec(p, "workloads");
        kv_str(
            p,
            "pair",
            &format!("{},{}", self.workloads.pair.0, self.workloads.pair.1),
        );
        kv_raw(p, "accesses", &self.workloads.accesses.to_string());
        sec(p, "cat");
        kv_raw(p, "ways", &self.cat.ways.to_string());
        kv_raw(p, "default_span", &self.cat.default_span.to_string());
        kv_raw(p, "boosted_span", &self.cat.boosted_span.to_string());
        sec(p, "fault");
        kv_raw(p, "max_retries", &self.fault.max_retries.to_string());
        kv_raw(p, "seed", &self.fault.plan.seed.to_string());
        kv_raw(p, "crash", &fmt_f64(self.fault.plan.crash_prob));
        kv_raw(p, "timeout", &fmt_f64(self.fault.plan.timeout_prob));
        kv_raw(p, "dropout", &fmt_f64(self.fault.plan.dropout_prob));
        kv_raw(p, "corrupt", &fmt_f64(self.fault.plan.corrupt_prob));
        kv_raw(p, "stuck", &fmt_f64(self.fault.plan.stuck_prob));
        kv_raw(p, "noise", &fmt_f64(self.fault.plan.noise_rel));
        kv_raw(p, "latency", &fmt_f64(self.fault.plan.latency_mean_s));
        kv_raw(
            p,
            "predict_fail",
            &fmt_f64(self.fault.plan.predict_fail_prob),
        );
        kv_raw(p, "stall", &fmt_f64(self.fault.plan.stall_prob));
        kv_raw(p, "shard_crash", &fmt_f64(self.fault.plan.shard_crash_prob));
        kv_raw(p, "shard_stall", &fmt_f64(self.fault.plan.shard_stall_prob));
        kv_raw(p, "shard_flap", &fmt_f64(self.fault.plan.shard_flap_prob));
        kv_raw(p, "drift_burst", &fmt_f64(self.fault.plan.drift_burst_prob));
        kv_raw(
            p,
            "retrain_fail",
            &fmt_f64(self.fault.plan.retrain_fail_prob),
        );
        kv_raw(
            p,
            "retrain_slow",
            &fmt_f64(self.fault.plan.retrain_slow_prob),
        );
        kv_raw(
            p,
            "promote_corrupt",
            &fmt_f64(self.fault.plan.promote_corrupt_prob),
        );
        sec(p, "profile");
        kv_raw(p, "conditions", &self.profile.conditions.to_string());
        kv_raw(p, "seed", &self.profile.seed.to_string());
        kv_str(p, "out", &self.profile.out);
        kv_raw(
            p,
            "measured_queries",
            &self.profile.measured_queries.to_string(),
        );
        kv_raw(
            p,
            "warmup_queries",
            &self.profile.warmup_queries.to_string(),
        );
        kv_raw(
            p,
            "accesses_per_query",
            &self.profile.accesses_per_query.to_string(),
        );
        sec(p, "train");
        kv_str(p, "model", self.train.model.name());
        kv_raw(p, "seed", &self.train.seed.to_string());
        sec(p, "explore");
        kv_raw(p, "utilization", &fmt_f64(self.explore.utilization));
        kv_list(
            p,
            "grid",
            &self
                .explore
                .grid
                .iter()
                .map(|&x| fmt_f64(x))
                .collect::<Vec<_>>(),
        );
        sec(p, "predict");
        kv_raw(p, "utilization", &fmt_f64(self.predict.utilization));
        kv_raw(p, "timeout_a", &fmt_f64(self.predict.timeout_a));
        kv_raw(p, "timeout_b", &fmt_f64(self.predict.timeout_b));
        sec(p, "serve");
        kv_raw(p, "requests", &self.serve.requests.to_string());
        kv_raw(p, "rate", &fmt_f64(self.serve.rate));
        kv_raw(p, "deadline_s", &fmt_f64(self.serve.deadline_s));
        kv_raw(p, "servers", &self.serve.servers.to_string());
        kv_raw(p, "queue_capacity", &self.serve.queue_capacity.to_string());
        kv_str(p, "overload", self.serve.overload.name());
        kv_raw(p, "hysteresis_k", &self.serve.hysteresis_k.to_string());
        kv_raw(
            p,
            "breaker_threshold",
            &self.serve.breaker_threshold.to_string(),
        );
        kv_raw(
            p,
            "breaker_cooldown_s",
            &fmt_f64(self.serve.breaker_cooldown_s),
        );
        kv_raw(p, "drain_grace_s", &fmt_f64(self.serve.drain_grace_s));
        kv_raw(p, "seed", &self.serve.seed.to_string());
        kv_str(p, "predictor", self.serve.predictor.name());
        sec(p, "serve.fleet");
        kv_raw(p, "shards", &self.fleet.shards.to_string());
        kv_str(p, "router", self.fleet.router.name());
        kv_raw(p, "reroute_max", &self.fleet.reroute_max.to_string());
        sec(p, "serve.adapt");
        kv_raw(
            p,
            "enabled",
            if self.adapt.enabled { "true" } else { "false" },
        );
        kv_raw(p, "epoch_s", &fmt_f64(self.adapt.epoch_s));
        kv_raw(p, "window", &self.adapt.window.to_string());
        kv_raw(p, "min_samples", &self.adapt.min_samples.to_string());
        kv_raw(p, "drift_threshold", &fmt_f64(self.adapt.drift_threshold));
        kv_raw(
            p,
            "shadow_requests",
            &self.adapt.shadow_requests.to_string(),
        );
        kv_raw(p, "agree_tol", &fmt_f64(self.adapt.agree_tol));
        kv_raw(
            p,
            "promote_agreement",
            &fmt_f64(self.adapt.promote_agreement),
        );
        kv_raw(p, "guard_requests", &self.adapt.guard_requests.to_string());
        kv_raw(p, "guard_band", &fmt_f64(self.adapt.guard_band));
        kv_raw(p, "history", &self.adapt.history.to_string());
        kv_raw(p, "retrain_budget_s", &fmt_f64(self.adapt.retrain_budget_s));
        sec(p, "trace");
        kv_raw(
            p,
            "enabled",
            if self.trace.enabled { "true" } else { "false" },
        );
        kv_raw(p, "sample_every", &self.trace.sample_every.to_string());
        kv_raw(p, "ring_capacity", &self.trace.ring_capacity.to_string());
        sec(p, "artifacts");
        kv_str(p, "dir", &self.artifacts.dir);
        kv_str(p, "decision_log", &self.artifacts.decision_log);
        kv_str(p, "health", &self.artifacts.health);
        kv_str(p, "metrics", &self.artifacts.metrics);
        kv_str(p, "trace_json", &self.artifacts.trace_json);
        kv_str(p, "trace_svg", &self.artifacts.trace_svg);
        out
    }

    /// FNV-1a fingerprint of the canonical form — the checkpoint meta
    /// component that ties resumable pipeline state to the exact spec.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// FNV-1a over bytes; used for spec fingerprints and artifact hashes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn sec(out: &mut String, name: &str) {
    if !out.is_empty() {
        out.push('\n');
    }
    out.push('[');
    out.push_str(name);
    out.push_str("]\n");
}

fn kv_raw(out: &mut String, key: &str, value: &str) {
    out.push_str(key);
    out.push_str(" = ");
    out.push_str(value);
    out.push('\n');
}

fn kv_str(out: &mut String, key: &str, value: &str) {
    let quoted = quote(value);
    kv_raw(out, key, &quoted);
}

fn kv_list(out: &mut String, key: &str, items: &[String]) {
    let joined = items.join(", ");
    kv_raw(out, key, &format!("[{joined}]"));
}

/// Quote and escape a string value.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` so that parsing the text recovers the value exactly
/// (Rust's shortest round-trip `Display`).
pub fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

/// Location helper re-exported for the parser.
pub(crate) fn at_line(line: usize) -> SpecLocation {
    SpecLocation::Line(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historical_cli_defaults() {
        let s = ScenarioSpec::default();
        assert_eq!(s.serve.requests, 100_000);
        assert_eq!(s.serve.rate, 200.0);
        assert_eq!(s.serve.deadline_s, 0.5);
        assert_eq!(s.serve.queue_capacity, 64);
        assert_eq!(s.serve.hysteresis_k, 4);
        assert_eq!(s.profile.conditions, 10);
        assert_eq!(s.profile.seed, 2022);
        assert_eq!(s.train.seed, 7);
        assert_eq!(s.explore.utilization, 0.9);
        assert_eq!(s.explore.grid, vec![0.25, 0.75, 1.5, 3.0, 6.0]);
        assert_eq!(s.fault.plan, FaultPlan::none());
        assert_eq!(s.fault.max_retries, 3);
    }

    #[test]
    fn set_rejects_unknown_section_and_key() {
        let mut s = ScenarioSpec::default();
        let v = SpecValue::scalar("1");
        let e = s.set("wat", "x", &v).unwrap_err();
        assert!(matches!(e, SpecErrorKind::UnknownKey { .. }));
        let e = s.set("serve", "wat", &v).unwrap_err();
        match e {
            SpecErrorKind::UnknownKey { key, valid } => {
                assert_eq!(key, "wat");
                assert!(valid.contains(&"requests"));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn set_types_and_ranges() {
        let mut s = ScenarioSpec::default();
        s.set("serve", "rate", &SpecValue::scalar("300.5")).unwrap();
        assert_eq!(s.serve.rate, 300.5);
        assert!(s.set("serve", "rate", &SpecValue::scalar("fast")).is_err());
        assert!(s.set("serve", "rate", &SpecValue::scalar("inf")).is_err());
        assert!(s.set("serve", "servers", &SpecValue::scalar("0")).is_err());
        s.set("fault", "crash", &SpecValue::scalar("0.25")).unwrap();
        assert_eq!(s.fault.plan.crash_prob, 0.25);
        assert!(s.set("fault", "crash", &SpecValue::scalar("1.5")).is_err());
        s.set("fault", "plan", &SpecValue::scalar("heavy,seed=9"))
            .unwrap();
        assert_eq!(s.fault.plan.seed, 9);
        assert_eq!(s.fault.plan.crash_prob, FaultPlan::heavy().crash_prob);
    }

    #[test]
    fn pipeline_must_be_ordered_and_unique() {
        let mut s = ScenarioSpec::default();
        let ok = SpecValue::List(vec!["profile".into(), "train".into(), "serve".into()]);
        s.set("scenario", "pipeline", &ok).unwrap();
        assert_eq!(
            s.scenario.pipeline,
            vec![Stage::Profile, Stage::Train, Stage::Serve]
        );
        let bad = SpecValue::List(vec!["train".into(), "profile".into()]);
        assert!(s.set("scenario", "pipeline", &bad).is_err());
        let dup = SpecValue::List(vec!["serve".into(), "serve".into()]);
        assert!(s.set("scenario", "pipeline", &dup).is_err());
        let unknown = SpecValue::List(vec!["deploy".into()]);
        assert!(s.set("scenario", "pipeline", &unknown).is_err());
    }

    #[test]
    fn canonical_is_idempotent_on_default() {
        let s = ScenarioSpec::default();
        let c = s.canonical();
        assert!(c.contains("[serve]\n"));
        assert!(c.contains("overload = \"shed-newest\"\n"));
        // canonical text is stable
        assert_eq!(c, s.canonical());
    }
}
