//! Round-trip and strictness properties of the scenario format.
//!
//! The contract under test: `parse(canonical(s)) == s` for any valid spec
//! `s`, canonicalization is idempotent byte-for-byte, fingerprints follow
//! canonical bytes, and anything outside the schema — unknown sections,
//! unknown keys, malformed values, duplicates — is a hard usage error
//! (exit 2) that names the offender.

use stca_scenario::{fnv1a, parse_str, ScenarioSpec, SpecValue};

fn roundtrip(spec: &ScenarioSpec, what: &str) {
    let canon = spec.canonical();
    let reparsed = parse_str(&canon, what).unwrap_or_else(|e| {
        panic!("{what}: canonical form must re-parse, got {e}\n--- canonical ---\n{canon}")
    });
    assert_eq!(&reparsed, spec, "{what}: parse(canonical(s)) != s");
    assert_eq!(
        reparsed.canonical(),
        canon,
        "{what}: canonicalization is not idempotent"
    );
    assert_eq!(
        reparsed.fingerprint(),
        spec.fingerprint(),
        "{what}: fingerprint must follow canonical bytes"
    );
    assert_eq!(spec.fingerprint(), fnv1a(canon.as_bytes()), "{what}");
}

#[test]
fn default_spec_roundtrips() {
    roundtrip(&ScenarioSpec::default(), "default spec");
}

#[test]
fn committed_examples_roundtrip() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios must exist") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("stca") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("read example");
        let name = path.display().to_string();
        let spec = parse_str(&text, &name).unwrap_or_else(|e| panic!("{name}: {e}"));
        roundtrip(&spec, &name);
    }
    assert!(
        seen >= 3,
        "expected the committed scenario catalog, saw {seen}"
    );
}

/// A tiny deterministic generator (splitmix64) — no clock, no rand crate.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        // 2^-53 grid keeps the value exactly representable; Display
        // round-trips any finite f64, so this just keeps ranges sane.
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// Drive `set` with randomized valid values across every section, then
/// demand a byte-stable round trip. This covers the same path the file
/// parser and the CLI flag layer share.
#[test]
fn randomized_specs_roundtrip() {
    let names = [
        "a",
        "table-1",
        "spaces and tabs\tok",
        "quotes \"inside\" and a \\ backslash",
        "newline\nin name",
    ];
    let pairs = ["kmeans,bfs", "redis,social", "spkmeans,spstream", "knn,jac"];
    let models = ["auto", "quick", "standard", "simple-ml"];
    let predictors = ["analytic", "trained"];
    let overloads = ["shed-newest", "shed-oldest", "block"];
    let plans = ["none", "ci-default", "heavy"];
    let bools = ["true", "false"];
    let pipelines: [&[&str]; 5] = [
        &["profile"],
        &["profile", "dataset", "train"],
        &["profile", "dataset", "train", "explore", "serve"],
        &["serve"],
        &["explore", "serve"],
    ];
    let grids: [&[&str]; 3] = [
        &["0.25", "0.75", "1.5", "3", "6"],
        &["0.5", "1", "2"],
        &["1.25"],
    ];

    let mut g = Gen(0x5ca1ab1e);
    for round in 0..200 {
        let mut spec = ScenarioSpec::default();
        let set = |spec: &mut ScenarioSpec, sec: &str, key: &str, v: String| {
            spec.set(sec, key, &SpecValue::scalar(v))
                .unwrap_or_else(|e| panic!("round {round}: set {sec}.{key}: {e:?}"));
        };
        set(&mut spec, "scenario", "name", g.pick(&names).to_string());
        let stages: Vec<String> = g.pick(&pipelines).iter().map(|s| s.to_string()).collect();
        spec.set("scenario", "pipeline", &SpecValue::List(stages))
            .expect("pipeline");
        set(&mut spec, "workloads", "pair", g.pick(&pairs).to_string());
        set(
            &mut spec,
            "workloads",
            "accesses",
            (1 + g.next() % 1_000_000).to_string(),
        );
        set(&mut spec, "cat", "ways", (g.next() % 12).to_string());
        set(
            &mut spec,
            "cat",
            "default_span",
            (1 + g.next() % 4).to_string(),
        );
        set(
            &mut spec,
            "cat",
            "boosted_span",
            (1 + g.next() % 4).to_string(),
        );
        set(&mut spec, "fault", "plan", g.pick(&plans).to_string());
        set(
            &mut spec,
            "fault",
            "max_retries",
            (g.next() % 10).to_string(),
        );
        set(
            &mut spec,
            "fault",
            "crash",
            format!("{}", g.f64_in(0.0, 0.2)),
        );
        set(
            &mut spec,
            "fault",
            "noise",
            format!("{}", g.f64_in(0.0, 0.5)),
        );
        set(
            &mut spec,
            "fault",
            "drift_burst",
            format!("{}", g.f64_in(0.0, 1.0)),
        );
        set(
            &mut spec,
            "fault",
            "promote_corrupt",
            format!("{}", g.f64_in(0.0, 1.0)),
        );
        set(
            &mut spec,
            "profile",
            "conditions",
            (1 + g.next() % 64).to_string(),
        );
        set(&mut spec, "profile", "seed", g.next().to_string());
        set(
            &mut spec,
            "profile",
            "out",
            format!("p{}.stca", g.next() % 100),
        );
        set(&mut spec, "train", "model", g.pick(&models).to_string());
        set(&mut spec, "train", "seed", g.next().to_string());
        set(
            &mut spec,
            "explore",
            "utilization",
            format!("{}", g.f64_in(0.1, 0.99)),
        );
        let grid: Vec<String> = g.pick(&grids).iter().map(|s| s.to_string()).collect();
        spec.set("explore", "grid", &SpecValue::List(grid))
            .expect("grid");
        set(
            &mut spec,
            "predict",
            "timeout_a",
            format!("{}", g.f64_in(0.25, 8.0)),
        );
        set(
            &mut spec,
            "serve",
            "requests",
            (1 + g.next() % 1_000_000).to_string(),
        );
        set(
            &mut spec,
            "serve",
            "rate",
            format!("{}", g.f64_in(1.0, 2000.0)),
        );
        set(
            &mut spec,
            "serve",
            "deadline_s",
            format!("{}", g.f64_in(0.01, 5.0)),
        );
        set(
            &mut spec,
            "serve",
            "servers",
            (1 + g.next() % 8).to_string(),
        );
        set(
            &mut spec,
            "serve",
            "overload",
            g.pick(&overloads).to_string(),
        );
        set(
            &mut spec,
            "serve",
            "predictor",
            g.pick(&predictors).to_string(),
        );
        set(&mut spec, "serve", "seed", g.next().to_string());
        set(
            &mut spec,
            "serve.adapt",
            "enabled",
            g.pick(&bools).to_string(),
        );
        set(
            &mut spec,
            "serve.adapt",
            "epoch_s",
            format!("{}", g.f64_in(0.5, 20.0)),
        );
        set(
            &mut spec,
            "serve.adapt",
            "window",
            (2 + g.next() % 512).to_string(),
        );
        set(
            &mut spec,
            "serve.adapt",
            "drift_threshold",
            format!("{}", g.f64_in(0.5, 8.0)),
        );
        set(
            &mut spec,
            "serve.adapt",
            "promote_agreement",
            format!("{}", g.f64_in(0.0, 1.0)),
        );
        set(
            &mut spec,
            "serve.adapt",
            "guard_band",
            format!("{}", g.f64_in(1.0, 3.0)),
        );
        set(
            &mut spec,
            "serve.adapt",
            "history",
            (1 + g.next() % 8).to_string(),
        );
        set(&mut spec, "trace", "enabled", g.pick(&bools).to_string());
        set(
            &mut spec,
            "trace",
            "sample_every",
            (1 + g.next() % 512).to_string(),
        );
        set(
            &mut spec,
            "artifacts",
            "dir",
            format!("runs/r{}", g.next() % 100),
        );
        roundtrip(&spec, &format!("random spec #{round}"));
    }
}

fn expect_usage(text: &str, needles: &[&str]) {
    let err = parse_str(text, "test.stca").expect_err("must be rejected");
    let err = stca_fault::StcaError::from(err);
    assert_eq!(err.exit_code(), 2, "strictness errors are usage errors");
    let msg = err.to_string();
    for needle in needles {
        assert!(
            msg.contains(needle),
            "error {msg:?} must mention {needle:?}"
        );
    }
}

#[test]
fn unknown_section_is_rejected() {
    expect_usage(
        "[serving]\nrequests = 5\n",
        &["serving", "scenario", "workloads"],
    );
}

#[test]
fn unknown_key_names_offender_and_valid_set() {
    expect_usage(
        "[serve]\nwarp_factor = 9\n",
        &["\"warp_factor\"", "requests", "line 2"],
    );
    expect_usage(
        "[train]\nmodel = \"auto\"\nepochs = 3\n",
        &["\"epochs\"", "model", "seed"],
    );
}

#[test]
fn malformed_values_are_rejected() {
    expect_usage("[serve]\nrequests = cheese\n", &["requests", "cheese"]);
    expect_usage("[serve]\nrate = -4\n", &["rate"]);
    expect_usage("[explore]\ngrid = []\n", &["grid"]);
    expect_usage(
        "[scenario]\npipeline = [\"serve\", \"profile\"]\n",
        &["pipeline"],
    );
    expect_usage("[fault]\ncrash = 1.5\n", &["crash"]);
    expect_usage("[fault]\nplan = \"mayhem\"\n", &["mayhem", "heavy"]);
    expect_usage("[fault]\ndrift_burst = 2\n", &["drift_burst"]);
    expect_usage("[serve.adapt]\nwindow = 1\n", &["window"]);
    expect_usage("[serve.adapt]\nguard_band = 0.5\n", &["guard_band"]);
    expect_usage(
        "[serve.adapt]\npromote_agreement = 1.5\n",
        &["promote_agreement"],
    );
    expect_usage("[serve.adapt]\nepoch_s = 0\n", &["epoch_s"]);
}

#[test]
fn duplicate_and_orphan_keys_are_rejected() {
    expect_usage(
        "[serve]\nrequests = 5\nrequests = 6\n",
        &["requests", "line 3"],
    );
    expect_usage("requests = 5\n", &["line 1"]);
}
