//! Closed-form M/M/k results (Erlang C) — the first-principles anchor the
//! discrete-event simulator is validated against.
//!
//! Short-term allocation breaks the Markov assumptions these formulas need
//! (§3.3), which is *why* the paper simulates. But with boosting disabled
//! and exponential service, the simulator must reduce to M/M/k exactly;
//! the tests here pin that reduction down so simulator regressions surface
//! as analytic mismatches rather than silent bias in every experiment.

use stca_util::Seconds;

/// Erlang C: probability an arriving job waits in an M/M/k queue with
/// offered load `a = lambda/mu` and `k` servers. Requires `a < k`
/// (stability).
pub fn erlang_c(servers: usize, offered_load: f64) -> f64 {
    assert!(servers >= 1);
    assert!(
        offered_load >= 0.0 && offered_load < servers as f64,
        "offered load {offered_load} must be below server count {servers}"
    );
    if offered_load == 0.0 {
        return 0.0;
    }
    let k = servers as f64;
    let a = offered_load;
    // sum_{n=0}^{k-1} a^n / n!  computed iteratively to avoid factorials
    let mut term = 1.0; // a^0 / 0!
    let mut sum = 0.0;
    for n in 0..servers {
        sum += term;
        term *= a / (n as f64 + 1.0);
    }
    // term now holds a^k / k!
    let last = term * k / (k - a);
    last / (sum + last)
}

/// Mean waiting time in queue for M/M/k with arrival rate `lambda` and
/// mean service time `s`.
pub fn mmk_mean_wait(servers: usize, lambda: f64, mean_service: Seconds) -> Seconds {
    let a = lambda * mean_service;
    let k = servers as f64;
    erlang_c(servers, a) * mean_service / (k - a)
}

/// Mean response time (wait + service) for M/M/k.
pub fn mmk_mean_response(servers: usize, lambda: f64, mean_service: Seconds) -> Seconds {
    mmk_mean_wait(servers, lambda, mean_service) + mean_service
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{QueueSim, StationConfig};
    use stca_util::Distribution;

    #[test]
    fn erlang_c_known_values() {
        // M/M/1: C = rho
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
        assert!((erlang_c(1, 0.9) - 0.9).abs() < 1e-12);
        // M/M/2 at a=1 (rho=0.5): C = 1/3
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        // zero load never waits
        assert_eq!(erlang_c(4, 0.0), 0.0);
    }

    #[test]
    fn erlang_c_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..9 {
            let c = erlang_c(2, i as f64 * 0.2);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn erlang_c_rejects_unstable_load() {
        erlang_c(2, 2.0);
    }

    fn sim_mean_response(servers: usize, lambda: f64, mean_service: f64, seed: u64) -> f64 {
        let cfg = StationConfig {
            inter_arrival: Distribution::Exponential { mean: 1.0 / lambda },
            service: Distribution::Exponential { mean: mean_service },
            expected_service: mean_service,
            timeout_ratio: 6.0,
            boost_rate: 1.0,
            servers,
            shared_boost: true,
            measured_queries: 30_000,
            warmup_queries: 3_000,
        };
        QueueSim::new(cfg, seed).run().mean_response()
    }

    #[test]
    fn simulator_reduces_to_mm1() {
        let analytic = mmk_mean_response(1, 1.0, 0.6); // rho = 0.6
        let simulated = sim_mean_response(1, 1.0, 0.6, 42);
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "M/M/1: sim {simulated} vs Erlang {analytic}"
        );
    }

    #[test]
    fn simulator_reduces_to_mm2() {
        // the paper's configuration: 2 servers per workload
        let lambda = 2.0 * 0.8; // rho = 0.8
        let analytic = mmk_mean_response(2, lambda, 1.0);
        let simulated = sim_mean_response(2, lambda, 1.0, 43);
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "M/M/2: sim {simulated} vs Erlang {analytic}"
        );
    }

    #[test]
    fn simulator_reduces_to_mm4_high_load() {
        let lambda = 4.0 * 0.9;
        let analytic = mmk_mean_response(4, lambda, 0.5);
        let simulated = sim_mean_response(4, lambda, 0.5, 44);
        assert!(
            (simulated - analytic).abs() / analytic < 0.08,
            "M/M/4: sim {simulated} vs Erlang {analytic}"
        );
    }
}
