//! # stca-queuesim
//!
//! The paper's Stage-3 first-principles model (§3.3): a discrete-event
//! G/G/k queueing simulator whose service rate switches when a query's time
//! in system crosses the short-term allocation timeout.
//!
//! Short-term allocation breaks the Markov assumption closed-form queueing
//! models rely on — the boost couples queueing delay to service rate (a
//! query delayed in the queue is boosted earlier in its service, or even
//! starts boosted). The simulator models that coupling directly:
//!
//! * queries arrive per a general inter-arrival distribution,
//! * each carries a service *demand* (seconds of work at the default rate),
//! * `k` servers process FIFO,
//! * when `now - arrival >= timeout` the remaining work is processed at
//!   `boost_rate`x speed (Eq. 4's trigger), and the boost is revoked at
//!   departure,
//! * per-query response time, queueing delay, and boost bookkeeping are
//!   recorded; instantaneous queueing delay is exposed as the dynamic
//!   condition feedback §3.3 describes.
//!
//! The boost rate is where effective cache allocation (Eq. 3) enters:
//! `boost_rate = EA x (l_a' / l_a)` — an EA of 1 means the workload converts
//! the whole allocation increase into speedup; contention drives EA (and the
//! realized boost) down.

#![warn(clippy::unwrap_used)]

pub mod analytic;
pub mod metrics;
pub mod simulator;
pub mod slo;

pub use metrics::SimResult;
pub use simulator::{run_replications, BudgetedRun, QueueSim, RunBudget, StationConfig};
pub use slo::SloSpec;
