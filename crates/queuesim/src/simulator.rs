//! The discrete-event G/G/k simulator with timeout-triggered rate switches.
//!
//! Implementation notes: the event heap holds arrivals, boost timers and
//! departures. A rate change invalidates a query's scheduled departure; each
//! query carries a generation counter so stale departure events are ignored
//! (the standard "lazy deletion" technique). The simulator jumps from event
//! to event — there is no fixed time step — matching §3.3's "jumps multiple
//! steps at a time to the next execution event".
//!
//! **Boost scope.** The paper's implementation switches the *service's*
//! class of service: while any outstanding query has crossed the timeout,
//! every in-flight query of that service runs boosted, and the class reverts
//! when the last triggering query completes ("if multiple queries were
//! outstanding for the same online service, all had access to short-term
//! cache"). That service-wide semantics is the default
//! ([`StationConfig::shared_boost`] = true); per-query boosting is kept as
//! an ablation.

use crate::metrics::SimResult;
use stca_fault::StcaError;
use stca_util::{Distribution, Rng64, Seconds};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

/// Global simulator metrics, resolved once (hot-loop counts are
/// accumulated locally and flushed at the end of each run).
struct SimMetrics {
    events: Arc<stca_obs::Counter>,
    timeout_switches: Arc<stca_obs::Counter>,
    runs: Arc<stca_obs::Counter>,
    queue_depth: Arc<stca_obs::Histogram>,
    server_utilization: Arc<stca_obs::Gauge>,
    run_seconds: Arc<stca_obs::Histogram>,
    quarantined: Arc<stca_obs::Counter>,
    budget_exhausted: Arc<stca_obs::Counter>,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: OnceLock<SimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SimMetrics {
        events: stca_obs::counter("queuesim.events_total"),
        timeout_switches: stca_obs::counter("queuesim.timeout_switches_total"),
        runs: stca_obs::counter("queuesim.runs_total"),
        queue_depth: stca_obs::histogram("queuesim.queue_depth"),
        server_utilization: stca_obs::gauge("queuesim.server_utilization"),
        run_seconds: stca_obs::histogram("queuesim.run_seconds"),
        quarantined: stca_obs::counter("queuesim.nonfinite_events_quarantined_total"),
        budget_exhausted: stca_obs::counter("queuesim.budget_exhausted_total"),
    })
}

/// Configuration of one simulated station (one collocated workload).
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// Inter-arrival distribution.
    pub inter_arrival: Distribution,
    /// Service-demand distribution (seconds of work at the default rate).
    pub service: Distribution,
    /// Expected service time used to normalize the timeout (Eq. 4).
    pub expected_service: Seconds,
    /// STAP timeout as a multiple of `expected_service`. Ratios at or above
    /// `stca_cat::stap::NEVER_BOOST_RATIO` never trigger.
    pub timeout_ratio: f64,
    /// Speed multiplier applied to work processed while boosted
    /// (`EA x l_a'/l_a`; 1.0 = boost has no effect).
    pub boost_rate: f64,
    /// Number of servers (`k`; the paper provisions 2 cores per workload).
    pub servers: usize,
    /// Service-wide boost (paper semantics) vs per-query boost.
    pub shared_boost: bool,
    /// Queries to simulate after warm-up.
    pub measured_queries: usize,
    /// Warm-up queries discarded from statistics.
    pub warmup_queries: usize,
}

impl StationConfig {
    /// Sensible defaults around a given mean service time: Poisson arrivals
    /// at `util`, exponential service, 2 servers, shared boost.
    pub fn mm2(mean_service: Seconds, util: f64, timeout_ratio: f64, boost_rate: f64) -> Self {
        let servers = 2;
        StationConfig {
            inter_arrival: Distribution::Exponential {
                mean: mean_service / (util * servers as f64),
            },
            service: Distribution::Exponential { mean: mean_service },
            expected_service: mean_service,
            timeout_ratio,
            boost_rate,
            servers,
            shared_boost: true,
            measured_queries: 2000,
            warmup_queries: 200,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival,
    BoostTimer { query: usize },
    Departure { query: usize, generation: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: Seconds,
    seq: u64, // tiebreaker for determinism
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap via reversed comparison; total_cmp gives NaN a defined
        // order, so a damaged event time can never panic the serving path
        // (non-finite times are additionally quarantined at push)
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum QueryState {
    Queued,
    InService,
    Done,
}

#[derive(Debug, Clone)]
struct Query {
    arrival: Seconds,
    remaining: Seconds,
    state: QueryState,
    /// This query crossed its own timeout (Eq. 4).
    triggered: bool,
    /// This query ever executed at the boosted rate.
    saw_boost: bool,
    generation: u32,
    service_start: Seconds,
    last_update: Seconds,
    current_rate: f64,
    service_accum: Seconds,
    boosted_accum: Seconds,
}

/// The G/G/k + STAP simulator.
///
/// ```
/// use stca_queuesim::{QueueSim, StationConfig};
/// // M/M/2 at 80% utilization, boost 1.8x after 1x the expected service time
/// let mut sim = QueueSim::new(StationConfig::mm2(1.0, 0.8, 1.0, 1.8), 42);
/// let result = sim.run();
/// assert_eq!(result.completed(), 2000);
/// assert!(result.p95_response() >= result.median_response());
/// assert!(result.boost_fraction() > 0.0);
/// ```
pub struct QueueSim {
    config: StationConfig,
    rng: Rng64,
}

struct Engine {
    cfg: StationConfig,
    boost_enabled: bool,
    queries: Vec<Query>,
    heap: BinaryHeap<Event>,
    seq: u64,
    fifo: VecDeque<usize>,
    in_service: Vec<usize>,
    free_servers: usize,
    /// Outstanding triggered queries (shared-boost scope).
    triggered: HashSet<usize>,
    /// Events whose time was non-finite, quarantined instead of scheduled.
    quarantined: u64,
}

impl Engine {
    fn push_event(&mut self, time: Seconds, kind: EventKind) {
        // quarantine rather than schedule: a NaN/inf event time (damaged
        // distribution parameters, poisoned arithmetic) would otherwise
        // propagate through every later comparison
        if !time.is_finite() {
            self.quarantined += 1;
            stca_obs::warn!("quarantined non-finite event time for {kind:?}");
            return;
        }
        self.heap.push(Event {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    fn boost_active(&self) -> bool {
        self.boost_enabled && !self.triggered.is_empty()
    }

    /// The processing rate a query should run at right now.
    fn rate_for(&self, q: &Query) -> f64 {
        if !self.boost_enabled {
            return 1.0;
        }
        let boosted = if self.cfg.shared_boost {
            self.boost_active()
        } else {
            q.triggered
        };
        if boosted {
            self.cfg.boost_rate
        } else {
            1.0
        }
    }

    /// Account progress up to `now` at the query's current rate.
    fn progress(&mut self, id: usize, now: Seconds) {
        let q = &mut self.queries[id];
        let elapsed = now - q.last_update;
        if elapsed <= 0.0 {
            return;
        }
        q.remaining = (q.remaining - elapsed * q.current_rate).max(0.0);
        q.service_accum += elapsed;
        if q.current_rate > 1.0 {
            q.boosted_accum += elapsed;
        }
        q.last_update = now;
    }

    /// Re-evaluate a serving query's rate, rescheduling its departure when
    /// the rate changed (or when forced, for fresh dispatches).
    fn reschedule(&mut self, id: usize, now: Seconds, force: bool) {
        let new_rate = self.rate_for(&self.queries[id]);
        let q = &self.queries[id];
        if !force && (q.current_rate - new_rate).abs() < 1e-15 {
            return;
        }
        self.progress(id, now);
        let q = &mut self.queries[id];
        q.current_rate = new_rate;
        if new_rate > 1.0 {
            q.saw_boost = true;
        }
        q.generation += 1;
        let dep = now + q.remaining / new_rate;
        let generation = q.generation;
        self.push_event(
            dep,
            EventKind::Departure {
                query: id,
                generation,
            },
        );
    }

    /// Rate switch for every in-service query (shared-boost flips).
    fn reschedule_all(&mut self, now: Seconds) {
        let serving = self.in_service.clone();
        for id in serving {
            self.reschedule(id, now, false);
        }
    }

    /// Record a trigger; returns whether the shared boost state flipped on.
    fn trigger(&mut self, id: usize) -> bool {
        let was_active = self.boost_active();
        self.queries[id].triggered = true;
        self.triggered.insert(id);
        self.boost_active() && !was_active
    }

    fn dispatch(&mut self, now: Seconds) {
        while self.free_servers > 0 {
            let Some(id) = self.fifo.pop_front() else {
                break;
            };
            self.free_servers -= 1;
            {
                let q = &mut self.queries[id];
                q.state = QueryState::InService;
                q.service_start = now;
                q.last_update = now;
                q.current_rate = 1.0;
            }
            // a query that waited past the timeout is already triggered via
            // its timer event; nothing special to do here
            self.in_service.push(id);
            self.reschedule(id, now, true);
        }
    }
}

/// An event/time budget for a bounded simulation run (the serving path's
/// deadline propagation: a Stage-3 simulation embedded in a request with a
/// deadline must not run unboundedly).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunBudget {
    /// Stop after this many processed events (`None` = unlimited).
    pub max_events: Option<u64>,
    /// Stop once virtual time passes this point (`None` = unlimited).
    pub max_virtual_s: Option<Seconds>,
}

impl RunBudget {
    /// The unlimited budget: [`QueueSim::run_budgeted`] behaves exactly
    /// like [`QueueSim::run`].
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// An event-count budget.
    pub fn events(max_events: u64) -> Self {
        RunBudget {
            max_events: Some(max_events),
            max_virtual_s: None,
        }
    }
}

/// The outcome of a budgeted run: the (possibly partial) statistics plus
/// how the run ended.
#[derive(Debug)]
pub struct BudgetedRun {
    /// Measured statistics up to the stopping point.
    pub result: SimResult,
    /// Whether the budget ran out before all queries completed.
    pub exhausted: bool,
    /// Events processed.
    pub events: u64,
    /// Non-finite events quarantined instead of scheduled.
    pub quarantined: u64,
}

impl QueueSim {
    /// Create a simulator with a deterministic seed.
    pub fn new(config: StationConfig, seed: u64) -> Self {
        assert!(config.servers >= 1);
        assert!(config.boost_rate > 0.0, "boost rate must be positive");
        QueueSim {
            config,
            rng: Rng64::new(seed),
        }
    }

    /// Validating constructor for the serving path: returns a typed error
    /// instead of panicking on a malformed station.
    pub fn try_new(config: StationConfig, seed: u64) -> Result<Self, StcaError> {
        if config.servers < 1 {
            return Err(StcaError::invalid_input("station needs at least 1 server"));
        }
        if !(config.boost_rate.is_finite() && config.boost_rate > 0.0) {
            return Err(StcaError::invalid_input(format!(
                "boost rate must be positive and finite, got {}",
                config.boost_rate
            )));
        }
        if !(config.expected_service.is_finite() && config.expected_service > 0.0) {
            return Err(StcaError::invalid_input(format!(
                "expected service must be positive and finite, got {}",
                config.expected_service
            )));
        }
        if !(config.timeout_ratio.is_finite() && config.timeout_ratio >= 0.0) {
            return Err(StcaError::invalid_input(format!(
                "timeout ratio must be non-negative and finite, got {}",
                config.timeout_ratio
            )));
        }
        for (what, mean) in [
            ("inter-arrival", config.inter_arrival.mean()),
            ("service", config.service.mean()),
        ] {
            if !(mean.is_finite() && mean > 0.0) {
                return Err(StcaError::invalid_input(format!(
                    "{what} distribution mean must be positive and finite, got {mean}"
                )));
            }
        }
        Ok(QueueSim::new(config, seed))
    }

    /// Run to completion and return measured statistics.
    pub fn run(&mut self) -> SimResult {
        self.run_budgeted(RunBudget::unlimited()).result
    }

    /// Run under an event/time budget. With [`RunBudget::unlimited`] this
    /// is exactly [`QueueSim::run`]; otherwise the run stops as soon as the
    /// budget is exceeded and reports `exhausted = true` with the partial
    /// statistics gathered so far — the deadline-aware entry point used by
    /// the serving loop, where a prediction request carries a deadline that
    /// bounds how much simulation it may buy.
    pub fn run_budgeted(&mut self, budget: RunBudget) -> BudgetedRun {
        let metrics = sim_metrics();
        let timer = stca_obs::StageTimer::with_histogram(metrics.run_seconds.clone());
        let cfg = self.config.clone();
        let total_queries = cfg.warmup_queries + cfg.measured_queries;
        let timeout_abs = cfg.timeout_ratio * cfg.expected_service;
        let boost_enabled =
            cfg.timeout_ratio < stca_cat::stap::NEVER_BOOST_RATIO && cfg.boost_rate != 1.0;

        let mut eng = Engine {
            boost_enabled,
            queries: Vec::with_capacity(total_queries),
            heap: BinaryHeap::new(),
            seq: 0,
            fifo: VecDeque::new(),
            in_service: Vec::new(),
            free_servers: cfg.servers,
            triggered: HashSet::new(),
            quarantined: 0,
            cfg,
        };
        let cfg = &self.config;

        let mut result = SimResult {
            response_times: Vec::with_capacity(cfg.measured_queries),
            queue_delays: Vec::with_capacity(cfg.measured_queries),
            service_times: Vec::with_capacity(cfg.measured_queries),
            boosted: Vec::with_capacity(cfg.measured_queries),
            makespan: 0.0,
            boosted_busy_time: 0.0,
            busy_time: 0.0,
        };

        let mut arrivals_generated = 0usize;
        let mut completed = 0usize;
        // hot-loop accumulators, flushed to the global registry once per run
        let mut events_processed = 0u64;
        let mut timeout_switches = 0u64;

        let t0 = cfg.inter_arrival.sample(&mut self.rng);
        eng.push_event(t0, EventKind::Arrival);

        let mut exhausted = false;
        while let Some(ev) = eng.heap.pop() {
            if budget.max_events.is_some_and(|m| events_processed >= m)
                || budget.max_virtual_s.is_some_and(|m| ev.time > m)
            {
                exhausted = true;
                break;
            }
            let now = ev.time;
            events_processed += 1;
            stca_obs::trace!("t={now:.6} event {:?}", ev.kind);
            match ev.kind {
                EventKind::Arrival => {
                    let id = eng.queries.len();
                    let demand = cfg.service.sample(&mut self.rng).max(1e-9);
                    eng.queries.push(Query {
                        arrival: now,
                        remaining: demand,
                        state: QueryState::Queued,
                        triggered: false,
                        saw_boost: false,
                        generation: 0,
                        service_start: 0.0,
                        last_update: now,
                        current_rate: 1.0,
                        service_accum: 0.0,
                        boosted_accum: 0.0,
                    });
                    arrivals_generated += 1;
                    if arrivals_generated < total_queries {
                        let gap = cfg.inter_arrival.sample(&mut self.rng).max(1e-12);
                        eng.push_event(now + gap, EventKind::Arrival);
                    }
                    if eng.boost_enabled {
                        eng.push_event(now + timeout_abs, EventKind::BoostTimer { query: id });
                    }
                    eng.fifo.push_back(id);
                    // sampled (not per-arrival) so the histogram update cost
                    // stays invisible next to the event loop itself
                    if arrivals_generated.is_multiple_of(16) {
                        metrics.queue_depth.record(eng.fifo.len() as f64);
                    }
                    eng.dispatch(now);
                }
                EventKind::BoostTimer { query } => {
                    if !eng.boost_enabled || eng.queries[query].state == QueryState::Done {
                        continue;
                    }
                    let flipped_on = eng.trigger(query);
                    if flipped_on {
                        timeout_switches += 1;
                    }
                    if cfg.shared_boost {
                        if flipped_on {
                            eng.reschedule_all(now);
                        }
                    } else if eng.queries[query].state == QueryState::InService {
                        eng.reschedule(query, now, false);
                    }
                }
                EventKind::Departure { query, generation } => {
                    {
                        let q = &eng.queries[query];
                        if q.generation != generation || q.state == QueryState::Done {
                            continue; // stale event
                        }
                        debug_assert_eq!(q.state, QueryState::InService);
                    }
                    eng.progress(query, now);
                    let was_triggered = eng.queries[query].triggered;
                    {
                        let q = &mut eng.queries[query];
                        q.state = QueryState::Done;
                        q.remaining = 0.0;
                    }
                    eng.in_service.retain(|&i| i != query);
                    eng.free_servers += 1;
                    if was_triggered {
                        let was_active = eng.boost_active();
                        eng.triggered.remove(&query);
                        if cfg.shared_boost && was_active && !eng.boost_active() {
                            // class of service reverts: remaining queries
                            // drop back to the default rate
                            eng.reschedule_all(now);
                        }
                    }
                    completed += 1;
                    let q = &eng.queries[query];
                    result.busy_time += q.service_accum;
                    result.boosted_busy_time += q.boosted_accum;
                    if query >= cfg.warmup_queries {
                        result.response_times.push(now - q.arrival);
                        result.queue_delays.push(q.service_start - q.arrival);
                        result.service_times.push(q.service_accum);
                        result.boosted.push(q.saw_boost || q.triggered);
                    }
                    result.makespan = now;
                    if completed >= total_queries {
                        break;
                    }
                    eng.dispatch(now);
                }
            }
        }
        metrics.events.add(events_processed);
        metrics.timeout_switches.add(timeout_switches);
        metrics.runs.inc();
        if eng.quarantined > 0 {
            metrics.quarantined.add(eng.quarantined);
        }
        if exhausted {
            metrics.budget_exhausted.inc();
        }
        if result.makespan > 0.0 {
            metrics
                .server_utilization
                .set(result.busy_time / (cfg.servers as f64 * result.makespan));
        }
        let elapsed = timer.stop();
        stca_obs::debug!(
            "run complete: {completed} queries, {events_processed} events, \
             {timeout_switches} timeout switches, {elapsed:.3}s wall"
        );
        BudgetedRun {
            result,
            exhausted,
            events: events_processed,
            quarantined: eng.quarantined,
        }
    }
}

/// Run `reps` independent replications of the same station in parallel.
///
/// Replication `i` seeds its simulator from the tagged stream derived from
/// `base_seed`, so results are statistically independent of each other,
/// identical at any thread count, and returned in replication order.
pub fn run_replications(config: &StationConfig, base_seed: u64, reps: usize) -> Vec<SimResult> {
    let stream = stca_util::SeedStream::new(base_seed);
    stca_exec::par_map_range(reps, |i| {
        QueueSim::new(config.clone(), stream.rng(i as u64).next_u64()).run()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> StationConfig {
        StationConfig {
            inter_arrival: Distribution::Exponential { mean: 1.0 },
            service: Distribution::Exponential { mean: 0.5 },
            expected_service: 0.5,
            timeout_ratio: 6.0,
            boost_rate: 1.0,
            servers: 1,
            shared_boost: true,
            measured_queries: 5000,
            warmup_queries: 500,
        }
    }

    #[test]
    fn replications_are_independent_and_deterministic() {
        let cfg = {
            let mut c = base_config();
            c.measured_queries = 500;
            c.warmup_queries = 50;
            c
        };
        let a = run_replications(&cfg, 0xBEEF, 4);
        let b = run_replications(&cfg, 0xBEEF, 4);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.response_times, y.response_times,
                "same seed, same results"
            );
        }
        // different replications see different arrival sequences
        assert_ne!(a[0].response_times, a[1].response_times);
    }

    #[test]
    fn mm1_mean_response_matches_theory() {
        // M/M/1 with rho = 0.5: E[T] = 1/(mu - lambda) = 1/(2 - 1) = 1.0
        let mut sim = QueueSim::new(base_config(), 42);
        let r = sim.run();
        assert_eq!(r.completed(), 5000);
        let mean = r.mean_response();
        assert!(
            (mean - 1.0).abs() < 0.12,
            "M/M/1 mean response {mean}, expected ~1.0"
        );
    }

    #[test]
    fn md1_queue_delay_matches_pollaczek_khinchine() {
        // M/D/1, rho=0.5, S=0.5: Wq = rho*S / (2(1-rho)) = 0.25
        let mut cfg = base_config();
        cfg.service = Distribution::Deterministic(0.5);
        let mut sim = QueueSim::new(cfg, 7);
        let r = sim.run();
        let wq = r.mean_queue_delay();
        assert!((wq - 0.25).abs() < 0.05, "M/D/1 Wq {wq}, expected ~0.25");
    }

    #[test]
    fn higher_utilization_means_longer_queues() {
        let run_at = |util: f64| {
            let mut cfg = base_config();
            cfg.inter_arrival = Distribution::Exponential { mean: 0.5 / util };
            QueueSim::new(cfg, 1).run().mean_queue_delay()
        };
        let low = run_at(0.3);
        let high = run_at(0.9);
        assert!(
            high > 3.0 * low,
            "queueing blows up near saturation: {low} vs {high}"
        );
    }

    #[test]
    fn zero_timeout_boosts_everyone() {
        let mut cfg = base_config();
        cfg.timeout_ratio = 0.0;
        cfg.boost_rate = 2.0;
        let mut sim = QueueSim::new(cfg, 3);
        let r = sim.run();
        assert!(r.boost_fraction() > 0.999, "all queries boosted at T=0");
        // with everything boosted 2x, mean service halves
        assert!(
            (r.mean_service() - 0.25).abs() < 0.03,
            "mean service {}",
            r.mean_service()
        );
    }

    #[test]
    fn never_timeout_boosts_nobody() {
        let mut cfg = base_config();
        cfg.timeout_ratio = 6.0;
        cfg.boost_rate = 3.0;
        let mut sim = QueueSim::new(cfg, 4);
        let r = sim.run();
        assert_eq!(r.boost_fraction(), 0.0);
        assert_eq!(r.boosted_busy_fraction(), 0.0);
    }

    #[test]
    fn boost_reduces_tail_latency() {
        let tail = |timeout_ratio: f64, boost_rate: f64| {
            let mut cfg = base_config();
            cfg.inter_arrival = Distribution::Exponential { mean: 0.5 / 0.9 }; // rho=0.9
            cfg.timeout_ratio = timeout_ratio;
            cfg.boost_rate = boost_rate;
            cfg.measured_queries = 8000;
            QueueSim::new(cfg, 5).run().p95_response()
        };
        let without = tail(6.0, 1.0);
        let with = tail(1.0, 2.0);
        assert!(
            with < without * 0.75,
            "boosting slow queries must cut the tail: {with} vs {without}"
        );
    }

    #[test]
    fn per_query_boost_only_affects_queries_past_timeout() {
        let mut cfg = base_config();
        cfg.inter_arrival = Distribution::Exponential { mean: 50.0 }; // nearly idle
        cfg.service = Distribution::Deterministic(1.0);
        cfg.expected_service = 1.0;
        cfg.timeout_ratio = 0.5;
        cfg.boost_rate = 2.0;
        cfg.shared_boost = false;
        cfg.measured_queries = 500;
        cfg.warmup_queries = 10;
        let mut sim = QueueSim::new(cfg, 6);
        let r = sim.run();
        // idle system: every query runs 0.5s at rate 1, then 0.5 work at
        // rate 2 -> service 0.75s total
        assert!(r.boost_fraction() > 0.99);
        assert!(
            (r.mean_service() - 0.75).abs() < 0.02,
            "mean {}",
            r.mean_service()
        );
    }

    #[test]
    fn shared_boost_accelerates_bystanders() {
        // two servers, one long query (will trigger) and short queries that
        // ride along: under shared boost the shorts speed up too
        let mk = |shared: bool| {
            let mut cfg = base_config();
            cfg.servers = 2;
            cfg.inter_arrival = Distribution::Exponential { mean: 0.26 }; // busy
            cfg.service = Distribution::HyperExp {
                p: 0.1,
                mean_a: 4.0,
                mean_b: 0.5,
            };
            cfg.expected_service = 0.85;
            cfg.timeout_ratio = 2.0;
            cfg.boost_rate = 2.0;
            cfg.shared_boost = shared;
            cfg.measured_queries = 6000;
            QueueSim::new(cfg, 7).run()
        };
        let shared = mk(true);
        let solo = mk(false);
        assert!(
            shared.boost_fraction() > solo.boost_fraction(),
            "shared boost reaches more queries: {} vs {}",
            shared.boost_fraction(),
            solo.boost_fraction()
        );
    }

    #[test]
    fn queued_past_timeout_starts_boosted() {
        // single server, deterministic 1s service, burst arrivals
        let mut cfg = base_config();
        cfg.inter_arrival = Distribution::Deterministic(0.1);
        cfg.service = Distribution::Deterministic(1.0);
        cfg.expected_service = 1.0;
        cfg.timeout_ratio = 1.0;
        cfg.boost_rate = 4.0;
        cfg.measured_queries = 200;
        cfg.warmup_queries = 50;
        let mut sim = QueueSim::new(cfg, 8);
        let r = sim.run();
        // queue builds fast; almost every measured query waits > 1s and is
        // boosted for its entire service: service -> 0.25s
        assert!(r.boost_fraction() > 0.95);
        let boosted_services: Vec<f64> = r
            .service_times
            .iter()
            .zip(&r.boosted)
            .filter(|&(_, &b)| b)
            .map(|(&s, _)| s)
            .collect();
        let mean: f64 = boosted_services.iter().sum::<f64>() / boosted_services.len() as f64;
        assert!(
            mean < 0.6,
            "fully-boosted service should approach 0.25, got {mean}"
        );
    }

    #[test]
    fn multi_server_increases_throughput() {
        let mut cfg = base_config();
        cfg.inter_arrival = Distribution::Exponential { mean: 0.3 }; // rho ~ 1.67 for 1 server
        cfg.servers = 2; // rho ~ 0.83
        cfg.measured_queries = 4000;
        let mut sim = QueueSim::new(cfg, 9);
        let r = sim.run();
        // stable: response time finite and not absurd
        assert!(r.mean_response() < 5.0, "2 servers keep the station stable");
    }

    #[test]
    fn nonfinite_event_times_are_quarantined_not_panicked() {
        // a NaN inter-arrival mean poisons the first arrival time; the old
        // Ord impl panicked inside BinaryHeap — now the event is quarantined
        let mut cfg = base_config();
        cfg.inter_arrival = Distribution::Deterministic(f64::NAN);
        cfg.measured_queries = 100;
        cfg.warmup_queries = 0;
        let run = QueueSim::new(cfg, 1).run_budgeted(RunBudget::unlimited());
        assert_eq!(run.result.completed(), 0, "no arrivals were scheduled");
        assert!(run.quarantined >= 1, "the NaN arrival was quarantined");
        assert!(!run.exhausted);
    }

    #[test]
    fn try_new_rejects_malformed_stations() {
        let ok = base_config();
        assert!(QueueSim::try_new(ok.clone(), 1).is_ok());
        let mut bad = ok.clone();
        bad.servers = 0;
        assert!(QueueSim::try_new(bad, 1).is_err());
        let mut bad = ok.clone();
        bad.boost_rate = f64::NAN;
        assert!(QueueSim::try_new(bad, 1).is_err());
        let mut bad = ok.clone();
        bad.timeout_ratio = -1.0;
        assert!(QueueSim::try_new(bad, 1).is_err());
        let mut bad = ok;
        bad.inter_arrival = Distribution::Deterministic(f64::INFINITY);
        assert!(QueueSim::try_new(bad, 1).is_err());
    }

    #[test]
    fn budgeted_run_stops_at_the_event_budget() {
        let mut cfg = base_config();
        cfg.measured_queries = 5000;
        let full = QueueSim::new(cfg.clone(), 11).run_budgeted(RunBudget::unlimited());
        assert!(!full.exhausted);
        assert!(full.events > 200);
        let bounded = QueueSim::new(cfg, 11).run_budgeted(RunBudget::events(200));
        assert!(bounded.exhausted, "budget must be reported as exhausted");
        assert_eq!(bounded.events, 200);
        assert!(bounded.result.completed() < 5000);
        // the partial prefix is the same simulation: identical first stats
        assert_eq!(
            full.result.response_times[..bounded.result.response_times.len()],
            bounded.result.response_times[..]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = QueueSim::new(base_config(), 11).run();
        let b = QueueSim::new(base_config(), 11).run();
        assert_eq!(a.response_times, b.response_times);
    }

    #[test]
    fn conservation_of_work() {
        // realized busy time equals summed service times
        let mut cfg = base_config();
        cfg.measured_queries = 1000;
        cfg.warmup_queries = 0;
        let r = QueueSim::new(cfg, 12).run();
        let total: f64 = r.service_times.iter().sum();
        assert!((total - r.busy_time).abs() / r.busy_time < 1e-6);
    }

    #[test]
    fn boosted_busy_time_bounded_by_busy_time() {
        let mut cfg = base_config();
        cfg.timeout_ratio = 0.5;
        cfg.boost_rate = 2.0;
        cfg.inter_arrival = Distribution::Exponential { mean: 0.6 };
        let r = QueueSim::new(cfg, 13).run();
        assert!(r.boosted_busy_time <= r.busy_time + 1e-9);
        assert!(r.boosted_busy_fraction() > 0.0);
    }
}
