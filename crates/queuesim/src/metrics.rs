//! Simulation outputs.

use stca_util::{Percentiles, Seconds};

/// Results of one queueing simulation run (per station).
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Response time (queueing + service) per completed query, in
    /// completion order.
    pub response_times: Vec<Seconds>,
    /// Queueing delay per completed query.
    pub queue_delays: Vec<Seconds>,
    /// Realized service time per completed query.
    pub service_times: Vec<Seconds>,
    /// Whether each completed query was boosted at some point.
    pub boosted: Vec<bool>,
    /// Total simulated time.
    pub makespan: Seconds,
    /// Total server-seconds spent processing at the boosted rate.
    pub boosted_busy_time: Seconds,
    /// Total server-seconds spent processing (any rate).
    pub busy_time: Seconds,
}

impl SimResult {
    /// Number of completed queries.
    pub fn completed(&self) -> usize {
        self.response_times.len()
    }

    /// Mean response time.
    pub fn mean_response(&self) -> Seconds {
        assert!(!self.response_times.is_empty());
        self.response_times.iter().sum::<f64>() / self.response_times.len() as f64
    }

    /// Response-time quantile.
    pub fn response_quantile(&self, q: f64) -> Seconds {
        let mut p = Percentiles::with_capacity(self.response_times.len());
        p.extend_from(&self.response_times);
        p.quantile(q)
    }

    /// Median response time.
    pub fn median_response(&self) -> Seconds {
        self.response_quantile(0.5)
    }

    /// 95th-percentile response time (the paper's tail metric).
    pub fn p95_response(&self) -> Seconds {
        self.response_quantile(0.95)
    }

    /// Mean queueing delay — the dynamic-condition feedback of §3.3.
    pub fn mean_queue_delay(&self) -> Seconds {
        if self.queue_delays.is_empty() {
            0.0
        } else {
            self.queue_delays.iter().sum::<f64>() / self.queue_delays.len() as f64
        }
    }

    /// Mean realized service time.
    pub fn mean_service(&self) -> Seconds {
        assert!(!self.service_times.is_empty());
        self.service_times.iter().sum::<f64>() / self.service_times.len() as f64
    }

    /// Completed queries per second of simulated time.
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.response_times.len() as f64 / self.makespan
        }
    }

    /// Fraction of queries that received a boost.
    pub fn boost_fraction(&self) -> f64 {
        if self.boosted.is_empty() {
            0.0
        } else {
            self.boosted.iter().filter(|&&b| b).count() as f64 / self.boosted.len() as f64
        }
    }

    /// Fraction of busy time spent at the boosted rate — the "gross
    /// increase in resource allocation" exposure used when computing
    /// effective allocation from measurements.
    pub fn boosted_busy_fraction(&self) -> f64 {
        if self.busy_time <= 0.0 {
            0.0
        } else {
            self.boosted_busy_time / self.busy_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            response_times: vec![1.0, 2.0, 3.0, 4.0],
            queue_delays: vec![0.0, 0.5, 1.0, 1.5],
            service_times: vec![1.0, 1.5, 2.0, 2.5],
            boosted: vec![false, false, true, true],
            makespan: 10.0,
            boosted_busy_time: 2.0,
            busy_time: 7.0,
        }
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.completed(), 4);
        assert!((r.mean_response() - 2.5).abs() < 1e-12);
        assert!((r.median_response() - 2.5).abs() < 1e-12);
        assert!((r.mean_queue_delay() - 0.75).abs() < 1e-12);
        assert!((r.boost_fraction() - 0.5).abs() < 1e-12);
        assert!((r.boosted_busy_fraction() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_counts_completions_per_second() {
        let r = sample();
        assert!((r.throughput() - 0.4).abs() < 1e-12);
        let empty = SimResult {
            response_times: vec![],
            queue_delays: vec![],
            service_times: vec![],
            boosted: vec![],
            makespan: 0.0,
            boosted_busy_time: 0.0,
            busy_time: 0.0,
        };
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn p95_with_many_samples() {
        let r = SimResult {
            response_times: (1..=100).map(|i| i as f64).collect(),
            queue_delays: vec![],
            service_times: vec![1.0],
            boosted: vec![],
            makespan: 1.0,
            boosted_busy_time: 0.0,
            busy_time: 1.0,
        };
        assert!((r.p95_response() - 95.05).abs() < 0.01);
    }
}
