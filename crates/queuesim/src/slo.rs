//! Service-level objectives.
//!
//! The paper's motivation is SLO-driven: online services stipulate response
//! time goals, flag executions in danger of violating them (the intro's
//! social network triggers short-term allocation when a query is still in
//! flight at 800 ms), and the policy search balances per-workload SLOs
//! ("SLO-driven matching", §5.2). This module gives that vocabulary a type:
//! a percentile target, violation accounting over measured responses, and
//! the early-warning threshold that drives timeout selection.

use crate::metrics::SimResult;
use stca_util::{Percentiles, Seconds};

/// A response-time objective: `percentile` of responses must finish within
/// `target` seconds (e.g. p95 <= 20 ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Response-time bound, seconds.
    pub target: Seconds,
    /// Percentile the bound applies to, in `(0, 1]` (0.95 = p95).
    pub percentile: f64,
}

impl SloSpec {
    /// Construct, validating ranges.
    pub fn new(target: Seconds, percentile: f64) -> Self {
        assert!(target > 0.0, "SLO target must be positive");
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0, 1]"
        );
        SloSpec { target, percentile }
    }

    /// The common p95 objective.
    pub fn p95(target: Seconds) -> Self {
        SloSpec::new(target, 0.95)
    }

    /// Fraction of responses exceeding the target.
    pub fn violation_rate(&self, responses: &[Seconds]) -> f64 {
        if responses.is_empty() {
            return 0.0;
        }
        responses.iter().filter(|&&r| r > self.target).count() as f64 / responses.len() as f64
    }

    /// Whether a response set meets the objective: the configured
    /// percentile of responses is within the target.
    pub fn satisfied(&self, responses: &[Seconds]) -> bool {
        if responses.is_empty() {
            return true;
        }
        let mut p = Percentiles::with_capacity(responses.len());
        p.extend_from(responses);
        p.quantile(self.percentile) <= self.target
    }

    /// Whether a simulation result meets the objective.
    pub fn satisfied_by(&self, result: &SimResult) -> bool {
        self.satisfied(&result.response_times)
    }

    /// The early-warning threshold: a query still in flight past this point
    /// is in danger of violating the SLO (the intro's 800 ms example uses
    /// `fraction = 0.8` of a 1 s goal). This is the natural absolute
    /// timeout for a short-term allocation policy targeting this SLO.
    pub fn warning_threshold(&self, fraction: f64) -> Seconds {
        assert!((0.0..=1.0).contains(&fraction));
        self.target * fraction
    }

    /// Convert the warning threshold into an Eq.-4 timeout ratio for a
    /// workload with the given expected service time.
    pub fn timeout_ratio(&self, fraction: f64, expected_service: Seconds) -> f64 {
        assert!(expected_service > 0.0);
        self.warning_threshold(fraction) / expected_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_rate_counts_exceedances() {
        let slo = SloSpec::p95(1.0);
        let responses = [0.5, 0.9, 1.1, 2.0, 0.7];
        assert!((slo.violation_rate(&responses) - 0.4).abs() < 1e-12);
        assert_eq!(slo.violation_rate(&[]), 0.0);
    }

    #[test]
    fn satisfaction_uses_the_configured_percentile() {
        // 100 responses, 4 slow ones: p95 is still within a 1s target
        let mut responses = vec![0.5; 96];
        responses.extend([5.0, 5.0, 5.0, 5.0]);
        assert!(SloSpec::p95(1.0).satisfied(&responses));
        // a p99 objective is violated by the same data
        assert!(!SloSpec::new(1.0, 0.99).satisfied(&responses));
    }

    #[test]
    fn warning_threshold_matches_intro_example() {
        // "if the query is still being processed after 800 milliseconds" —
        // an 80% warning on a 1-second goal
        let slo = SloSpec::p95(1.0);
        assert!((slo.warning_threshold(0.8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn timeout_ratio_normalizes_by_service_time() {
        // 800ms warning for a service with 100ms mean service = T of 8...
        // which Table 2 would clamp; a 200ms service gives T = 4
        let slo = SloSpec::p95(1.0);
        assert!((slo.timeout_ratio(0.8, 0.2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn satisfied_by_simulation_result() {
        use crate::simulator::{QueueSim, StationConfig};
        let mut sim = QueueSim::new(StationConfig::mm2(0.1, 0.5, 6.0, 1.0), 3);
        let r = sim.run();
        // generous target: must pass; impossible target: must fail
        assert!(SloSpec::p95(100.0).satisfied_by(&r));
        assert!(!SloSpec::p95(1e-6).satisfied_by(&r));
    }

    #[test]
    #[should_panic]
    fn zero_target_rejected() {
        SloSpec::p95(0.0);
    }
}
