//! Open-loop arrival processes.
//!
//! Table 2 expresses arrival intensity *relative to service time*: a 90%
//! setting means the mean inter-arrival time is `service_time / 0.9`, i.e.
//! the offered utilization of a single server is 0.9 (the evaluation's
//! Figure-8 experiments run at 90%). Inter-arrival times are exponential in
//! the paper's policy experiments; other shapes are supported for the G/G/k
//! simulator's generality.

use stca_util::{Distribution, Rng64, Seconds};

/// An open-loop arrival process.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    inter_arrival: Distribution,
}

impl ArrivalProcess {
    /// Build from an explicit inter-arrival distribution.
    pub fn new(inter_arrival: Distribution) -> Self {
        assert!(
            inter_arrival.mean() > 0.0,
            "inter-arrival mean must be positive"
        );
        ArrivalProcess { inter_arrival }
    }

    /// Poisson arrivals at utilization `util` of a `servers`-wide station
    /// whose mean service time is `mean_service`: the arrival *rate* is
    /// `util * servers / mean_service`.
    pub fn poisson_at_utilization(util: f64, mean_service: Seconds, servers: usize) -> Self {
        assert!(
            util > 0.0 && util < 1.5,
            "utilization out of sane range: {util}"
        );
        assert!(servers >= 1);
        let rate = util * servers as f64 / mean_service;
        ArrivalProcess::new(Distribution::Exponential { mean: 1.0 / rate })
    }

    /// Mean inter-arrival time.
    pub fn mean_inter_arrival(&self) -> Seconds {
        self.inter_arrival.mean()
    }

    /// Arrival rate (1 / mean inter-arrival).
    pub fn rate(&self) -> f64 {
        1.0 / self.inter_arrival.mean()
    }

    /// Draw the next inter-arrival gap.
    pub fn next_gap(&self, rng: &mut Rng64) -> Seconds {
        self.inter_arrival.sample(rng)
    }

    /// Generate the first `n` absolute arrival times starting at `t0`.
    pub fn arrival_times(&self, n: usize, t0: Seconds, rng: &mut Rng64) -> Vec<Seconds> {
        let mut t = t0;
        (0..n)
            .map(|_| {
                t += self.next_gap(rng);
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_sets_rate() {
        let a = ArrivalProcess::poisson_at_utilization(0.9, 2.0, 1);
        assert!((a.rate() - 0.45).abs() < 1e-12);
        let a2 = ArrivalProcess::poisson_at_utilization(0.5, 1.0, 4);
        assert!((a2.rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_times_are_increasing() {
        let a = ArrivalProcess::poisson_at_utilization(0.8, 1.0, 1);
        let mut rng = Rng64::new(1);
        let times = a.arrival_times(1000, 0.0, &mut rng);
        assert_eq!(times.len(), 1000);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let a = ArrivalProcess::poisson_at_utilization(0.9, 1.0, 1);
        let mut rng = Rng64::new(2);
        let times = a.arrival_times(50_000, 0.0, &mut rng);
        let rate = times.len() as f64 / times.last().expect("nonempty");
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic]
    fn absurd_utilization_rejected() {
        ArrivalProcess::poisson_at_utilization(5.0, 1.0, 1);
    }
}
