//! Memory access patterns.
//!
//! An [`AccessGenerator`] turns a pattern description into a deterministic
//! stream of `(address, kind)` pairs. Footprints are expressed in cache
//! lines; the spec layer converts from "fractions of a 2 MB LLC way" so the
//! same benchmark definition works at any simulator scale.

use stca_cachesim::{AccessKind, Address};
use stca_util::dist::Zipf;
use stca_util::Rng64;

/// Line size assumed by generators (matches every geometry in the repo).
pub const LINE_BYTES: u64 = 64;

/// Description of a benchmark's memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Repeated sequential sweeps over `footprint_lines`, touching each line
    /// `reuse` times before advancing (stencil-like neighbourhood reuse).
    /// Jacobi: large grid, misses on every new line but L1/L2 reuse inside
    /// the stencil.
    Stencil {
        /// Grid size in cache lines.
        footprint_lines: u64,
        /// Touches per line before moving on.
        reuse: u32,
    },
    /// Zipf-skewed references over `footprint_lines` with skew `theta`.
    /// High `theta` + small footprint = KNN/Kmeans-style high reuse; low
    /// `theta` + large footprint = Redis-style low reuse.
    ZipfReuse {
        /// Working-set size in cache lines.
        footprint_lines: u64,
        /// Zipf skew (higher = hotter head).
        theta: f64,
    },
    /// Uniformly random line references (pointer chasing). BFS frontier
    /// expansion: limited reuse, moderate misses.
    PointerChase {
        /// Graph size in cache lines.
        footprint_lines: u64,
    },
    /// One-directional streaming: every reference is a new line, wrapping
    /// only after the whole footprint passes. Spstream windowed word count.
    Stream {
        /// Stream buffer size in cache lines.
        footprint_lines: u64,
    },
    /// Zipf-popularity choice among `regions` microservice regions, each of
    /// `region_lines` lines, with high locality inside the active region.
    /// Models Social's 36 microservices sharing one allocation policy.
    Microservices {
        /// Number of microservice working sets.
        regions: u32,
        /// Lines per region.
        region_lines: u64,
        /// Popularity skew across regions.
        theta: f64,
    },
    /// Kmeans-style: hot centroid block (always cache-resident) mixed with a
    /// cold scan of the point set. `hot_fraction` of references go to the
    /// centroids.
    HotCold {
        /// Centroid block size in lines.
        hot_lines: u64,
        /// Point-set size in lines.
        cold_lines: u64,
        /// Fraction of references hitting the hot block.
        hot_fraction: f64,
    },
    /// Task-phase behaviour (Spark executors): the stream alternates
    /// between sub-patterns every `phase_len` accesses, each phase working
    /// in its own address region. Phase boundaries are the "task execution"
    /// effect Table 1 attributes Spkmeans' extra misses to, and the fixed
    /// phases dCat's throughput profiling assumes.
    Phased {
        /// The sub-patterns cycled through.
        phases: Vec<AccessPattern>,
        /// Accesses spent in each phase before switching.
        phase_len: u64,
    },
}

impl AccessPattern {
    /// Total footprint in lines (hot + cold for mixed patterns).
    pub fn footprint_lines(&self) -> u64 {
        match *self {
            AccessPattern::Stencil {
                footprint_lines, ..
            }
            | AccessPattern::ZipfReuse {
                footprint_lines, ..
            }
            | AccessPattern::PointerChase { footprint_lines }
            | AccessPattern::Stream { footprint_lines } => footprint_lines,
            AccessPattern::Microservices {
                regions,
                region_lines,
                ..
            } => regions as u64 * region_lines,
            AccessPattern::HotCold {
                hot_lines,
                cold_lines,
                ..
            } => hot_lines + cold_lines,
            AccessPattern::Phased { ref phases, .. } => {
                phases.iter().map(|p| p.footprint_lines()).sum()
            }
        }
    }

    /// Same pattern with every footprint scaled by `k` (clamped to >= 1
    /// line). Used to match scaled-down cache geometries.
    pub fn scaled(&self, k: f64) -> AccessPattern {
        let s = |l: u64| ((l as f64 * k).round() as u64).max(1);
        match *self {
            AccessPattern::Stencil {
                footprint_lines,
                reuse,
            } => AccessPattern::Stencil {
                footprint_lines: s(footprint_lines),
                reuse,
            },
            AccessPattern::ZipfReuse {
                footprint_lines,
                theta,
            } => AccessPattern::ZipfReuse {
                footprint_lines: s(footprint_lines),
                theta,
            },
            AccessPattern::PointerChase { footprint_lines } => AccessPattern::PointerChase {
                footprint_lines: s(footprint_lines),
            },
            AccessPattern::Stream { footprint_lines } => AccessPattern::Stream {
                footprint_lines: s(footprint_lines),
            },
            AccessPattern::Microservices {
                regions,
                region_lines,
                theta,
            } => AccessPattern::Microservices {
                regions,
                region_lines: s(region_lines),
                theta,
            },
            AccessPattern::HotCold {
                hot_lines,
                cold_lines,
                hot_fraction,
            } => AccessPattern::HotCold {
                hot_lines: s(hot_lines),
                cold_lines: s(cold_lines),
                hot_fraction,
            },
            AccessPattern::Phased {
                ref phases,
                phase_len,
            } => AccessPattern::Phased {
                phases: phases.iter().map(|p| p.scaled(k)).collect(),
                phase_len,
            },
        }
    }
}

/// Stateful generator of one workload's address stream.
#[derive(Debug, Clone)]
pub struct AccessGenerator {
    pattern: AccessPattern,
    base: Address,
    rng: Rng64,
    /// Sequential position for scan/stream/stencil patterns.
    cursor: u64,
    /// Remaining touches of the current line (stencil).
    remaining_reuse: u32,
    /// Active microservice region.
    active_region: u32,
    /// References left before switching region.
    region_budget: u32,
    zipf: Option<Zipf>,
    region_zipf: Option<Zipf>,
    /// Sub-generators and rotation state for phased patterns.
    phased: Option<PhasedState>,
    /// Fraction of data references that are stores.
    store_fraction: f64,
}

#[derive(Debug, Clone)]
struct PhasedState {
    gens: Vec<AccessGenerator>,
    phase_len: u64,
    active: usize,
    remaining: u64,
}

impl AccessGenerator {
    /// Create a generator. `base` offsets the workload into its own address
    /// region so collocated workloads never alias.
    pub fn new(pattern: AccessPattern, base: Address, store_fraction: f64, seed: u64) -> Self {
        let zipf = match &pattern {
            AccessPattern::ZipfReuse {
                footprint_lines,
                theta,
            } => Some(Zipf::new((*footprint_lines).max(1), *theta)),
            _ => None,
        };
        let region_zipf = match &pattern {
            AccessPattern::Microservices { regions, theta, .. } => {
                Some(Zipf::new(*regions as u64, *theta))
            }
            _ => None,
        };
        let phased = match &pattern {
            AccessPattern::Phased { phases, phase_len } => {
                assert!(!phases.is_empty(), "phased pattern needs phases");
                assert!(*phase_len > 0, "phase length must be positive");
                let mut offset = 0u64;
                let gens = phases
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let g = AccessGenerator::new(
                            p.clone(),
                            base + offset * LINE_BYTES,
                            store_fraction,
                            seed ^ ((i as u64 + 1) << 48),
                        );
                        offset += p.footprint_lines();
                        g
                    })
                    .collect();
                Some(PhasedState {
                    gens,
                    phase_len: *phase_len,
                    active: 0,
                    remaining: *phase_len,
                })
            }
            _ => None,
        };
        AccessGenerator {
            pattern,
            base,
            rng: Rng64::new(seed),
            cursor: 0,
            remaining_reuse: 0,
            active_region: 0,
            region_budget: 0,
            zipf,
            region_zipf,
            phased,
            store_fraction,
        }
    }

    /// Pattern in use.
    pub fn pattern(&self) -> &AccessPattern {
        &self.pattern
    }

    #[inline]
    fn addr_of_line(&self, line: u64) -> Address {
        self.base + line * LINE_BYTES
    }

    /// Produce the next data access.
    pub fn next_access(&mut self) -> (Address, AccessKind) {
        if let Some(ph) = &mut self.phased {
            if ph.remaining == 0 {
                ph.active = (ph.active + 1) % ph.gens.len();
                ph.remaining = ph.phase_len;
            }
            ph.remaining -= 1;
            return ph.gens[ph.active].next_access();
        }
        let line = match &self.pattern {
            AccessPattern::Stencil {
                footprint_lines,
                reuse,
            } => {
                if self.remaining_reuse == 0 {
                    self.cursor = (self.cursor + 1) % (*footprint_lines).max(1);
                    self.remaining_reuse = *reuse;
                }
                self.remaining_reuse -= 1;
                // stencil touches the line and a near neighbour
                if self.rng.next_bool(0.3) {
                    (self.cursor + 1) % (*footprint_lines).max(1)
                } else {
                    self.cursor
                }
            }
            AccessPattern::ZipfReuse {
                footprint_lines, ..
            } => match self.zipf.as_ref() {
                Some(z) => z.sample(&mut self.rng),
                // zipf is built in `new`; fall back to uniform if absent
                None => self.rng.next_below((*footprint_lines).max(1)),
            },
            AccessPattern::PointerChase { footprint_lines } => {
                self.rng.next_below((*footprint_lines).max(1))
            }
            AccessPattern::Stream { footprint_lines } => {
                self.cursor = (self.cursor + 1) % (*footprint_lines).max(1);
                self.cursor
            }
            AccessPattern::Microservices {
                regions,
                region_lines,
                ..
            } => {
                if self.region_budget == 0 {
                    // region_zipf is built in `new`; default to region 0 if absent
                    self.active_region = match self.region_zipf.as_ref() {
                        Some(z) => z.sample(&mut self.rng) as u32,
                        None => 0,
                    };
                    self.region_budget = 16 + self.rng.next_below(48) as u32;
                }
                self.region_budget -= 1;
                let within = if self.rng.next_bool(0.8) {
                    // hot quarter of the region
                    self.rng.next_below((region_lines / 4).max(1))
                } else {
                    self.rng.next_below((*region_lines).max(1))
                };
                let _ = regions;
                self.active_region as u64 * region_lines + within
            }
            AccessPattern::HotCold {
                hot_lines,
                cold_lines,
                hot_fraction,
            } => {
                if self.rng.next_bool(*hot_fraction) {
                    self.rng.next_below((*hot_lines).max(1))
                } else {
                    self.cursor = (self.cursor + 1) % (*cold_lines).max(1);
                    hot_lines + self.cursor
                }
            }
            AccessPattern::Phased { .. } => unreachable!("handled above"),
        };
        let kind = if self.rng.next_bool(self.store_fraction) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        (self.addr_of_line(line), kind)
    }

    /// Produce an instruction fetch from the workload's (small, hot) code
    /// region. Code footprints fit L1i except for occasional cold paths.
    pub fn next_ifetch(&mut self) -> (Address, AccessKind) {
        // 64-line (4 KB) hot code region, 1% cold excursions to 1024 lines
        let line = if self.rng.next_bool(0.99) {
            self.rng.next_below(64)
        } else {
            self.rng.next_below(1024)
        };
        (
            self.base + (1 << 36) + line * LINE_BYTES,
            AccessKind::IFetch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct_lines(pattern: AccessPattern, n: usize) -> usize {
        let mut g = AccessGenerator::new(pattern, 0, 0.0, 42);
        let mut seen = HashSet::new();
        for _ in 0..n {
            let (addr, _) = g.next_access();
            seen.insert(addr / LINE_BYTES);
        }
        seen.len()
    }

    #[test]
    fn stream_touches_every_line_once_per_pass() {
        let n = distinct_lines(
            AccessPattern::Stream {
                footprint_lines: 100,
            },
            100,
        );
        assert_eq!(n, 100);
    }

    #[test]
    fn zipf_high_theta_concentrates() {
        let hot = distinct_lines(
            AccessPattern::ZipfReuse {
                footprint_lines: 10_000,
                theta: 1.2,
            },
            5_000,
        );
        let cold = distinct_lines(
            AccessPattern::ZipfReuse {
                footprint_lines: 10_000,
                theta: 0.4,
            },
            5_000,
        );
        assert!(
            hot < cold,
            "skewed stream should touch fewer distinct lines ({hot} vs {cold})"
        );
    }

    #[test]
    fn pointer_chase_spreads_wide() {
        let n = distinct_lines(
            AccessPattern::PointerChase {
                footprint_lines: 1_000,
            },
            3_000,
        );
        assert!(n > 900, "uniform chase covers most lines, got {n}");
    }

    #[test]
    fn stencil_reuses_lines() {
        let mut g = AccessGenerator::new(
            AccessPattern::Stencil {
                footprint_lines: 1000,
                reuse: 8,
            },
            0,
            0.0,
            1,
        );
        let mut seen = HashSet::new();
        for _ in 0..800 {
            let (addr, _) = g.next_access();
            seen.insert(addr / LINE_BYTES);
        }
        // ~800/8 = 100 distinct lines plus neighbours
        assert!(seen.len() < 300, "stencil should reuse, saw {}", seen.len());
    }

    #[test]
    fn hotcold_respects_fractions() {
        let mut g = AccessGenerator::new(
            AccessPattern::HotCold {
                hot_lines: 10,
                cold_lines: 10_000,
                hot_fraction: 0.9,
            },
            0,
            0.0,
            2,
        );
        let mut hot_hits = 0;
        for _ in 0..10_000 {
            let (addr, _) = g.next_access();
            if addr / LINE_BYTES < 10 {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn microservices_visit_many_regions() {
        let mut g = AccessGenerator::new(
            AccessPattern::Microservices {
                regions: 36,
                region_lines: 256,
                theta: 0.8,
            },
            0,
            0.0,
            3,
        );
        let mut regions = HashSet::new();
        for _ in 0..50_000 {
            let (addr, _) = g.next_access();
            regions.insert(addr / LINE_BYTES / 256);
        }
        assert!(
            regions.len() > 20,
            "should visit most regions, got {}",
            regions.len()
        );
    }

    #[test]
    fn store_fraction_honoured() {
        let mut g = AccessGenerator::new(
            AccessPattern::Stream {
                footprint_lines: 100,
            },
            0,
            0.3,
            4,
        );
        let stores = (0..10_000)
            .filter(|_| matches!(g.next_access().1, AccessKind::Store))
            .count();
        let frac = stores as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "store fraction {frac}");
    }

    #[test]
    fn base_offsets_namespace_workloads() {
        let mut a = AccessGenerator::new(
            AccessPattern::Stream {
                footprint_lines: 10,
            },
            0,
            0.0,
            5,
        );
        let mut b = AccessGenerator::new(
            AccessPattern::Stream {
                footprint_lines: 10,
            },
            1 << 40,
            0.0,
            5,
        );
        let (addr_a, _) = a.next_access();
        let (addr_b, _) = b.next_access();
        assert_ne!(addr_a, addr_b);
        assert_eq!(addr_b - addr_a, 1 << 40);
    }

    #[test]
    fn ifetch_is_mostly_hot() {
        let mut g = AccessGenerator::new(
            AccessPattern::Stream {
                footprint_lines: 10,
            },
            0,
            0.0,
            6,
        );
        let mut lines = HashSet::new();
        for _ in 0..5_000 {
            let (addr, kind) = g.next_ifetch();
            assert_eq!(kind, AccessKind::IFetch);
            lines.insert(addr / LINE_BYTES);
        }
        assert!(
            lines.len() < 200,
            "code region should be small, got {}",
            lines.len()
        );
    }

    #[test]
    fn scaled_pattern_shrinks_footprint() {
        let p = AccessPattern::ZipfReuse {
            footprint_lines: 1024,
            theta: 0.9,
        };
        let s = p.scaled(1.0 / 64.0);
        assert_eq!(s.footprint_lines(), 16);
        // never collapses to zero
        let tiny = p.scaled(1e-9);
        assert_eq!(tiny.footprint_lines(), 1);
    }

    #[test]
    fn phased_pattern_alternates_regions() {
        let phases = vec![
            AccessPattern::ZipfReuse {
                footprint_lines: 100,
                theta: 1.0,
            },
            AccessPattern::Stream {
                footprint_lines: 1000,
            },
        ];
        let total = phases.iter().map(|p| p.footprint_lines()).sum::<u64>();
        let p = AccessPattern::Phased {
            phases,
            phase_len: 50,
        };
        assert_eq!(p.footprint_lines(), total);
        let mut g = AccessGenerator::new(p, 0, 0.0, 9);
        // first 50 accesses live in the first phase's region
        for _ in 0..50 {
            let (addr, _) = g.next_access();
            assert!(addr / LINE_BYTES < 100);
        }
        // next 50 in the stream's region (offset by 100 lines)
        for _ in 0..50 {
            let (addr, _) = g.next_access();
            let line = addr / LINE_BYTES;
            assert!((100..1100).contains(&line), "line {line}");
        }
        // and back again
        let (addr, _) = g.next_access();
        assert!(addr / LINE_BYTES < 100);
    }

    #[test]
    fn phased_scaling_scales_all_phases() {
        let p = AccessPattern::Phased {
            phases: vec![
                AccessPattern::Stream {
                    footprint_lines: 640,
                },
                AccessPattern::PointerChase {
                    footprint_lines: 320,
                },
            ],
            phase_len: 10,
        };
        let s = p.scaled(0.5);
        assert_eq!(s.footprint_lines(), 480);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            AccessGenerator::new(
                AccessPattern::ZipfReuse {
                    footprint_lines: 500,
                    theta: 0.9,
                },
                0,
                0.2,
                77,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
