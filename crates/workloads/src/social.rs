//! The Social macro-benchmark's microservice topology.
//!
//! Social (§5, after DeathStarBench) composes **36 microservices in 30
//! Docker containers**: a user query fans out from a frontend through
//! compose/read paths into storage and cache tiers. All services share one
//! allocation policy in the paper, so the cache model treats Social as a
//! single workload whose *internal* structure drives its high service-time
//! variance (queries touch different service subsets) and its many-region
//! access pattern.
//!
//! This module builds the topology explicitly so examples can inspect it and
//! so the per-query demand model (how many services a query touches, and the
//! resulting demand multiplier) derives from the graph rather than from a
//! hand-picked constant.

use stca_util::Rng64;

/// Tier a microservice belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Edge/API gateway services.
    Frontend,
    /// Business-logic services (compose, timeline, social graph...).
    Logic,
    /// Caches (memcached-style).
    Cache,
    /// Persistent stores (MongoDB-style).
    Storage,
}

/// One microservice.
#[derive(Debug, Clone)]
pub struct Microservice {
    /// Service index (0..36).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Tier.
    pub tier: Tier,
    /// Container the service runs in (0..30; some containers host two).
    pub container: usize,
    /// Downstream services invoked (by id).
    pub calls: Vec<usize>,
    /// Relative service demand of this hop (unit mean across the graph).
    pub demand_weight: f64,
}

/// The Social service graph.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    services: Vec<Microservice>,
}

/// Services in the canonical Social deployment.
pub const SERVICE_COUNT: usize = 36;
/// Containers in the canonical Social deployment.
pub const CONTAINER_COUNT: usize = 30;

impl SocialGraph {
    /// Build the canonical 36-service / 30-container topology: 4 frontend
    /// services, 12 logic services, 10 caches, 10 stores. Each logic service
    /// calls one cache and one store; the last 6 service pairs double up in
    /// shared containers to land on 30 containers.
    pub fn standard() -> Self {
        let mut services = Vec::with_capacity(SERVICE_COUNT);
        let mut container = 0;
        let mut next_container = |shared_with: Option<usize>| -> usize {
            match shared_with {
                Some(c) => c,
                None => {
                    let c = container;
                    container += 1;
                    c
                }
            }
        };

        // 4 frontends (ids 0..4)
        for i in 0..4 {
            services.push(Microservice {
                id: i,
                name: format!("frontend-{i}"),
                tier: Tier::Frontend,
                container: next_container(None),
                calls: Vec::new(), // filled below
                demand_weight: 0.5,
            });
        }
        // 12 logic services (ids 4..16)
        let logic_names = [
            "compose-post",
            "home-timeline",
            "user-timeline",
            "social-graph",
            "user",
            "url-shorten",
            "media",
            "text",
            "unique-id",
            "post-storage-logic",
            "write-home-timeline",
            "notification",
        ];
        for (i, name) in logic_names.iter().enumerate() {
            services.push(Microservice {
                id: 4 + i,
                name: (*name).into(),
                tier: Tier::Logic,
                container: next_container(None),
                calls: Vec::new(),
                demand_weight: 1.0,
            });
        }
        // 10 caches (ids 16..26) and 10 stores (ids 26..36); the last 6 of
        // each pair share a container with its sibling.
        for i in 0..10 {
            services.push(Microservice {
                id: 16 + i,
                name: format!("cache-{i}"),
                tier: Tier::Cache,
                container: next_container(None),
                calls: Vec::new(),
                demand_weight: 0.4,
            });
        }
        for i in 0..10 {
            let shared = if i >= 4 {
                // share with cache-i's container
                Some(services[16 + i].container)
            } else {
                None
            };
            services.push(Microservice {
                id: 26 + i,
                name: format!("store-{i}"),
                tier: Tier::Storage,
                container: next_container(shared),
                calls: Vec::new(),
                demand_weight: 1.2,
            });
        }

        // wire calls: frontends fan out to 3 logic services each;
        // logic service j calls cache (16 + j % 10) and store (26 + j % 10)
        for (f, svc) in services.iter_mut().take(4).enumerate() {
            svc.calls = (0..3).map(|k| 4 + (f * 3 + k) % 12).collect();
        }
        for j in 0..12 {
            services[4 + j].calls = vec![16 + j % 10, 26 + j % 10];
        }

        let g = SocialGraph { services };
        debug_assert_eq!(g.container_count(), CONTAINER_COUNT);
        g
    }

    /// All services.
    pub fn services(&self) -> &[Microservice] {
        &self.services
    }

    /// Number of distinct containers.
    pub fn container_count(&self) -> usize {
        let mut cs: Vec<usize> = self.services.iter().map(|s| s.container).collect();
        cs.sort_unstable();
        cs.dedup();
        cs.len()
    }

    /// Sample one query's path: the frontend chosen uniformly, its logic
    /// fan-out, and each logic hop's cache/store calls (store skipped on a
    /// simulated cache hit with probability `cache_hit`). Returns visited
    /// service ids in invocation order.
    pub fn sample_path(&self, cache_hit: f64, rng: &mut Rng64) -> Vec<usize> {
        let mut path = Vec::with_capacity(12);
        let frontend = rng.next_index(4);
        path.push(frontend);
        for &logic in &self.services[frontend].calls {
            path.push(logic);
            let calls = &self.services[logic].calls;
            // calls[0] = cache, calls[1] = store
            path.push(calls[0]);
            if !rng.next_bool(cache_hit) {
                path.push(calls[1]);
            }
        }
        path
    }

    /// Demand multiplier of a sampled path: total demand weight of visited
    /// services normalized by the mean path weight, so the multiplier is 1.0
    /// on average. Heavier paths (cache misses to stores) produce the
    /// long-tail queries Social is known for.
    pub fn path_demand(&self, path: &[usize], cache_hit: f64) -> f64 {
        let weight: f64 = path.iter().map(|&s| self.services[s].demand_weight).sum();
        // mean path: frontend(0.5) + 3 x (logic 1.0 + cache 0.4 + (1-hit) x store 1.2)
        let mean = 0.5 + 3.0 * (1.0 + 0.4 + (1.0 - cache_hit) * 1.2);
        weight / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_counts() {
        let g = SocialGraph::standard();
        assert_eq!(g.services().len(), SERVICE_COUNT);
        assert_eq!(g.container_count(), CONTAINER_COUNT);
    }

    #[test]
    fn tiers_are_correctly_sized() {
        let g = SocialGraph::standard();
        let count = |t: Tier| g.services().iter().filter(|s| s.tier == t).count();
        assert_eq!(count(Tier::Frontend), 4);
        assert_eq!(count(Tier::Logic), 12);
        assert_eq!(count(Tier::Cache), 10);
        assert_eq!(count(Tier::Storage), 10);
    }

    #[test]
    fn every_logic_service_calls_cache_and_store() {
        let g = SocialGraph::standard();
        for s in g.services().iter().filter(|s| s.tier == Tier::Logic) {
            assert_eq!(s.calls.len(), 2, "{}", s.name);
            assert_eq!(g.services()[s.calls[0]].tier, Tier::Cache);
            assert_eq!(g.services()[s.calls[1]].tier, Tier::Storage);
        }
    }

    #[test]
    fn paths_start_at_frontend_and_are_valid() {
        let g = SocialGraph::standard();
        let mut rng = Rng64::new(1);
        for _ in 0..100 {
            let path = g.sample_path(0.8, &mut rng);
            assert_eq!(g.services()[path[0]].tier, Tier::Frontend);
            assert!(path.len() >= 7, "frontend + 3x(logic+cache) minimum");
            assert!(path.iter().all(|&s| s < SERVICE_COUNT));
        }
    }

    #[test]
    fn cache_misses_lengthen_paths() {
        let g = SocialGraph::standard();
        let mut rng = Rng64::new(2);
        let avg_len = |hit: f64, rng: &mut Rng64| -> f64 {
            (0..2000)
                .map(|_| g.sample_path(hit, rng).len())
                .sum::<usize>() as f64
                / 2000.0
        };
        let hot = avg_len(0.95, &mut rng);
        let cold = avg_len(0.2, &mut rng);
        assert!(cold > hot + 1.0, "misses add store hops: {cold} vs {hot}");
    }

    #[test]
    fn path_demand_has_unit_mean() {
        let g = SocialGraph::standard();
        let mut rng = Rng64::new(3);
        let hit = 0.8;
        let mean: f64 = (0..20_000)
            .map(|_| {
                let p = g.sample_path(hit, &mut rng);
                g.path_demand(&p, hit)
            })
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean demand multiplier {mean}");
    }

    #[test]
    fn shared_containers_host_pairs() {
        let g = SocialGraph::standard();
        let mut by_container = std::collections::HashMap::new();
        for s in g.services() {
            by_container
                .entry(s.container)
                .or_insert_with(Vec::new)
                .push(s.id);
        }
        let doubled = by_container.values().filter(|v| v.len() == 2).count();
        assert_eq!(doubled, 6, "six containers host a cache+store pair");
        assert!(by_container.values().all(|v| v.len() <= 2));
    }
}
