//! Runtime conditions — the Table-2 experiment space.
//!
//! A runtime condition fixes the *static* knobs of one profiling or
//! evaluation run: which benchmarks are collocated, each one's arrival
//! intensity (25–95% of its service rate), each one's short-term allocation
//! timeout (0–600% of service time), and the counter sampling period
//! (1 Hz – every 5 s). Dynamic conditions (queue lengths) emerge at runtime
//! and cannot be set directly, as §3.1 notes.

use crate::spec::BenchmarkId;
use stca_util::Rng64;

/// Bounds of the Table-2 condition space.
pub mod bounds {
    /// Minimum arrival intensity relative to service rate.
    pub const MIN_UTIL: f64 = 0.25;
    /// Maximum arrival intensity relative to service rate.
    pub const MAX_UTIL: f64 = 0.95;
    /// Minimum timeout (always use shared cache).
    pub const MIN_TIMEOUT: f64 = 0.0;
    /// Maximum timeout (never use short-term allocation).
    pub const MAX_TIMEOUT: f64 = 6.0;
    /// Fastest counter sampling period (1 Hz).
    pub const MIN_SAMPLE_PERIOD: f64 = 1.0;
    /// Slowest counter sampling period (every 5 seconds).
    pub const MAX_SAMPLE_PERIOD: f64 = 5.0;
}

/// Per-workload settings within a condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadCondition {
    /// Which benchmark runs.
    pub benchmark: BenchmarkId,
    /// Arrival intensity relative to service rate (Table 2: 0.25–0.95).
    pub utilization: f64,
    /// STAP timeout as a multiple of service time (Table 2: 0–6).
    pub timeout_ratio: f64,
}

/// A complete static runtime condition for a collocated experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeCondition {
    /// The collocated workloads (pairwise in most experiments).
    pub workloads: Vec<WorkloadCondition>,
    /// Counter sampling period in seconds (Table 2: 1–5 s).
    pub sample_period: f64,
}

impl RuntimeCondition {
    /// Pairwise condition with a shared sampling period.
    pub fn pair(
        a: BenchmarkId,
        util_a: f64,
        timeout_a: f64,
        b: BenchmarkId,
        util_b: f64,
        timeout_b: f64,
    ) -> Self {
        RuntimeCondition {
            workloads: vec![
                WorkloadCondition {
                    benchmark: a,
                    utilization: util_a,
                    timeout_ratio: timeout_a,
                },
                WorkloadCondition {
                    benchmark: b,
                    utilization: util_b,
                    timeout_ratio: timeout_b,
                },
            ],
            sample_period: 1.0,
        }
    }

    /// Validate the condition against the Table-2 bounds.
    pub fn in_bounds(&self) -> bool {
        self.workloads.iter().all(|w| {
            (bounds::MIN_UTIL..=bounds::MAX_UTIL).contains(&w.utilization)
                && (bounds::MIN_TIMEOUT..=bounds::MAX_TIMEOUT).contains(&w.timeout_ratio)
        }) && (bounds::MIN_SAMPLE_PERIOD..=bounds::MAX_SAMPLE_PERIOD).contains(&self.sample_period)
    }

    /// Draw a uniformly random in-bounds condition for the given pair.
    pub fn random_pair(a: BenchmarkId, b: BenchmarkId, rng: &mut Rng64) -> Self {
        let mut draw = || WorkloadCondition {
            benchmark: a,
            utilization: rng.next_range(bounds::MIN_UTIL, bounds::MAX_UTIL),
            timeout_ratio: rng.next_range(bounds::MIN_TIMEOUT, bounds::MAX_TIMEOUT),
        };
        let mut wa = draw();
        wa.benchmark = a;
        let mut wb = draw();
        wb.benchmark = b;
        RuntimeCondition {
            workloads: vec![wa, wb],
            sample_period: 1.0,
        }
    }

    /// Draw a uniformly random in-bounds condition for a chain of
    /// workloads (Figure 7b collocates more services on bigger caches).
    pub fn random_chain(benchmarks: &[BenchmarkId], rng: &mut Rng64) -> Self {
        assert!(benchmarks.len() >= 2);
        RuntimeCondition {
            workloads: benchmarks
                .iter()
                .map(|&b| WorkloadCondition {
                    benchmark: b,
                    utilization: rng.next_range(bounds::MIN_UTIL, bounds::MAX_UTIL),
                    timeout_ratio: rng.next_range(bounds::MIN_TIMEOUT, bounds::MAX_TIMEOUT),
                })
                .collect(),
            sample_period: 1.0,
        }
    }

    /// Feature-vector encoding of the *static* condition (per-workload
    /// utilization and timeout, then the sampling period). Ordering is
    /// stable; this is the `static` sub-vector of the paper's Eq. 2 profile.
    pub fn static_features(&self) -> Vec<f64> {
        let mut f = Vec::with_capacity(self.workloads.len() * 2 + 1);
        for w in &self.workloads {
            f.push(w.utilization);
            f.push(w.timeout_ratio);
        }
        f.push(self.sample_period);
        f
    }

    /// All ordered pairwise collocations of the Table-1 benchmarks
    /// (`(target, collocated)` — Figure 7a's `jac(bfs)` vs `bfs(jac)`).
    pub fn all_pairs() -> Vec<(BenchmarkId, BenchmarkId)> {
        let mut out = Vec::new();
        for &a in &BenchmarkId::ALL {
            for &b in &BenchmarkId::ALL {
                if a != b {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_constructor_and_bounds() {
        let c = RuntimeCondition::pair(BenchmarkId::Jacobi, 0.9, 1.5, BenchmarkId::Bfs, 0.5, 2.0);
        assert!(c.in_bounds());
        assert_eq!(c.workloads.len(), 2);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut c =
            RuntimeCondition::pair(BenchmarkId::Jacobi, 0.9, 1.5, BenchmarkId::Bfs, 0.5, 2.0);
        c.workloads[0].utilization = 0.99;
        assert!(!c.in_bounds());
        c.workloads[0].utilization = 0.5;
        c.workloads[1].timeout_ratio = 7.0;
        assert!(!c.in_bounds());
        c.workloads[1].timeout_ratio = 1.0;
        c.sample_period = 0.1;
        assert!(!c.in_bounds());
    }

    #[test]
    fn random_conditions_are_in_bounds() {
        let mut rng = Rng64::new(3);
        for _ in 0..100 {
            let c =
                RuntimeCondition::random_pair(BenchmarkId::Redis, BenchmarkId::Social, &mut rng);
            assert!(c.in_bounds());
            assert_eq!(c.workloads[0].benchmark, BenchmarkId::Redis);
            assert_eq!(c.workloads[1].benchmark, BenchmarkId::Social);
        }
    }

    #[test]
    fn static_features_shape() {
        let c = RuntimeCondition::pair(BenchmarkId::Knn, 0.3, 0.5, BenchmarkId::Redis, 0.6, 3.0);
        let f = c.static_features();
        assert_eq!(f, vec![0.3, 0.5, 0.6, 3.0, 1.0]);
    }

    #[test]
    fn random_chain_in_bounds() {
        let mut rng = Rng64::new(5);
        let chain = [BenchmarkId::Knn, BenchmarkId::Bfs, BenchmarkId::Redis];
        for _ in 0..50 {
            let c = RuntimeCondition::random_chain(&chain, &mut rng);
            assert!(c.in_bounds());
            assert_eq!(c.workloads.len(), 3);
            assert_eq!(c.static_features().len(), 7);
        }
    }

    #[test]
    fn all_pairs_count() {
        // 8 benchmarks, ordered pairs without self-collocation
        assert_eq!(RuntimeCondition::all_pairs().len(), 8 * 7);
    }
}
