//! Benchmark specifications — the Table-1 catalogue.
//!
//! Footprints are stated at *full* platform scale, in cache lines of the
//! paper's 2 MB LLC way (32768 lines). [`WorkloadSpec::pattern_for`] rescales
//! them to whatever (possibly scaled-down) geometry an experiment uses, so
//! the footprint-to-way-capacity ratio — the quantity that shapes the
//! ways→miss-rate curve — is preserved.

use crate::pattern::AccessPattern;
use stca_cachesim::HierarchyConfig;
use stca_util::{Distribution, Seconds};

/// Lines in one full-scale (2 MB) LLC way.
pub const FULL_WAY_LINES: u64 = 2 * 1024 * 1024 / 64;

/// The eight benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// Rodinia: Helmholtz-equation solver (OpenMP).
    Jacobi,
    /// Rodinia: k-nearest neighbours.
    Knn,
    /// Rodinia: k-means clustering.
    Kmeans,
    /// Apache Spark k-means (parallel tasks).
    Spkmeans,
    /// Apache Spark streaming word count.
    Spstream,
    /// Rodinia: breadth-first search.
    Bfs,
    /// DeathStarBench-style social network (36 microservices / 30 containers).
    Social,
    /// Redis under a YCSB session-store trace.
    Redis,
}

impl BenchmarkId {
    /// All benchmarks in Table-1 order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::Jacobi,
        BenchmarkId::Knn,
        BenchmarkId::Kmeans,
        BenchmarkId::Spkmeans,
        BenchmarkId::Spstream,
        BenchmarkId::Bfs,
        BenchmarkId::Social,
        BenchmarkId::Redis,
    ];

    /// Short lowercase name (as used in Figure 7a labels, e.g. `jac(bfs)`).
    pub fn short_name(&self) -> &'static str {
        match self {
            BenchmarkId::Jacobi => "jac",
            BenchmarkId::Knn => "knn",
            BenchmarkId::Kmeans => "kmeans",
            BenchmarkId::Spkmeans => "spkmeans",
            BenchmarkId::Spstream => "spstream",
            BenchmarkId::Bfs => "bfs",
            BenchmarkId::Social => "social",
            BenchmarkId::Redis => "redis",
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Error from parsing a benchmark name or pair; names the bad token and
/// lists the valid benchmark names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchmarkParseError {
    /// The token matched no benchmark short name.
    UnknownBenchmark {
        /// The token that matched nothing.
        token: String,
    },
    /// A pair spec had no comma.
    NotAPair {
        /// The whole spec.
        token: String,
    },
}

impl std::fmt::Display for BenchmarkParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkParseError::UnknownBenchmark { token } => {
                let names: Vec<&str> = BenchmarkId::ALL.iter().map(|b| b.short_name()).collect();
                write!(
                    f,
                    "unknown benchmark {:?} (valid: {})",
                    token,
                    names.join(", ")
                )
            }
            BenchmarkParseError::NotAPair { token } => {
                write!(f, "expected A,B pair, got {token:?}")
            }
        }
    }
}

impl std::error::Error for BenchmarkParseError {}

impl std::str::FromStr for BenchmarkId {
    type Err = BenchmarkParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BenchmarkId::ALL
            .iter()
            .copied()
            .find(|b| b.short_name() == s)
            .ok_or_else(|| BenchmarkParseError::UnknownBenchmark {
                token: s.to_string(),
            })
    }
}

impl BenchmarkId {
    /// Parse an `A,B` collocation pair (e.g. `"redis,social"`).
    pub fn parse_pair(s: &str) -> Result<(BenchmarkId, BenchmarkId), BenchmarkParseError> {
        let (a, b) = s
            .split_once(',')
            .ok_or_else(|| BenchmarkParseError::NotAPair {
                token: s.to_string(),
            })?;
        Ok((a.trim().parse()?, b.trim().parse()?))
    }
}

/// Full description of one benchmark's behaviour.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which Table-1 benchmark this is.
    pub id: BenchmarkId,
    /// Access pattern with footprints at full platform scale.
    pub pattern: AccessPattern,
    /// Baseline mean service time (private allocation, no contention).
    pub mean_service_time: Seconds,
    /// Multiplicative per-query demand variation (mean 1.0).
    pub demand: Distribution,
    /// Mean simulated memory accesses per query (the simulator's work unit;
    /// scaled well below real instruction counts, uniformly across
    /// benchmarks, so relative cache behaviour is preserved).
    pub mean_accesses_per_query: u64,
    /// Fraction of data accesses that are stores.
    pub store_fraction: f64,
    /// Instruction fetches issued per data access.
    pub ifetch_per_access: f64,
    /// Retired instructions charged per data access.
    pub instructions_per_access: u64,
    /// Table-1 cache-access-pattern column.
    pub cache_character: &'static str,
}

impl WorkloadSpec {
    /// Look up the spec for a benchmark.
    pub fn for_benchmark(id: BenchmarkId) -> WorkloadSpec {
        let w = FULL_WAY_LINES;
        match id {
            BenchmarkId::Jacobi => WorkloadSpec {
                id,
                pattern: AccessPattern::Stencil {
                    footprint_lines: 8 * w,
                    reuse: 6,
                },
                mean_service_time: 2.0,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.25,
                },
                mean_accesses_per_query: 4000,
                store_fraction: 0.3,
                ifetch_per_access: 0.5,
                instructions_per_access: 6,
                cache_character: "Memory intensive, moderate cache misses",
            },
            BenchmarkId::Knn => WorkloadSpec {
                id,
                pattern: AccessPattern::ZipfReuse {
                    footprint_lines: (1.5 * w as f64) as u64,
                    theta: 1.1,
                },
                mean_service_time: 0.2,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.2,
                },
                mean_accesses_per_query: 4000,
                store_fraction: 0.1,
                ifetch_per_access: 0.5,
                instructions_per_access: 8,
                cache_character: "High data reuse, low cache misses",
            },
            BenchmarkId::Kmeans => WorkloadSpec {
                id,
                pattern: AccessPattern::HotCold {
                    hot_lines: w / 2,
                    cold_lines: 4 * w,
                    hot_fraction: 0.9,
                },
                mean_service_time: 0.5,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.2,
                },
                mean_accesses_per_query: 4000,
                store_fraction: 0.15,
                ifetch_per_access: 0.5,
                instructions_per_access: 8,
                cache_character: "High data reuse, low cache misses",
            },
            BenchmarkId::Spkmeans => WorkloadSpec {
                id,
                // Spark executors alternate between a kmeans-like map phase
                // (hot centroids + point scan) and a shuffle-like streaming
                // phase — the "task execution" misses Table 1 calls out
                pattern: AccessPattern::Phased {
                    phases: vec![
                        AccessPattern::HotCold {
                            hot_lines: w / 2,
                            cold_lines: 6 * w,
                            hot_fraction: 0.6,
                        },
                        AccessPattern::Stream {
                            footprint_lines: 4 * w,
                        },
                    ],
                    phase_len: 2000,
                },
                mean_service_time: 81.0,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.3,
                },
                mean_accesses_per_query: 5000,
                store_fraction: 0.25,
                ifetch_per_access: 0.6,
                instructions_per_access: 6,
                cache_character: "Higher cache misses b/c of task execution",
            },
            BenchmarkId::Spstream => WorkloadSpec {
                id,
                pattern: AccessPattern::Stream {
                    footprint_lines: 16 * w,
                },
                mean_service_time: 1.0,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.35,
                },
                mean_accesses_per_query: 5000,
                store_fraction: 0.35,
                ifetch_per_access: 0.4,
                instructions_per_access: 5,
                cache_character: "I/O intensive, high cache misses",
            },
            BenchmarkId::Bfs => WorkloadSpec {
                id,
                pattern: AccessPattern::PointerChase {
                    footprint_lines: 4 * w,
                },
                mean_service_time: 0.8,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.3,
                },
                mean_accesses_per_query: 4000,
                store_fraction: 0.2,
                ifetch_per_access: 0.4,
                instructions_per_access: 5,
                cache_character: "Limited data reuse, moderate cache misses",
            },
            BenchmarkId::Social => WorkloadSpec {
                id,
                pattern: AccessPattern::Microservices {
                    regions: 36,
                    region_lines: 3 * w / 36,
                    theta: 0.9,
                },
                mean_service_time: 0.0075,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.45,
                },
                mean_accesses_per_query: 4000,
                store_fraction: 0.25,
                ifetch_per_access: 0.8,
                instructions_per_access: 7,
                cache_character: "Moderate data reuse, moderate cache misses",
            },
            BenchmarkId::Redis => WorkloadSpec {
                id,
                pattern: AccessPattern::ZipfReuse {
                    footprint_lines: 12 * w,
                    theta: 0.5,
                },
                mean_service_time: 0.001,
                demand: Distribution::LogNormal {
                    mean: 1.0,
                    sigma: 0.25,
                },
                mean_accesses_per_query: 4000,
                store_fraction: 0.3,
                ifetch_per_access: 0.3,
                instructions_per_access: 5,
                cache_character: "Low data reuse, high cache misses",
            },
        }
    }

    /// All eight specs.
    pub fn all() -> Vec<WorkloadSpec> {
        BenchmarkId::ALL
            .iter()
            .map(|&id| WorkloadSpec::for_benchmark(id))
            .collect()
    }

    /// Access pattern rescaled for a concrete (possibly scaled-down)
    /// hierarchy: footprints shrink by the ratio of the config's way
    /// capacity to the full 2 MB way.
    pub fn pattern_for(&self, config: &HierarchyConfig) -> AccessPattern {
        let k = config.llc.way_bytes() as f64 / (2.0 * 1024.0 * 1024.0);
        self.pattern.scaled(k)
    }

    /// Footprint expressed in LLC ways of the given config.
    pub fn footprint_ways(&self, config: &HierarchyConfig) -> f64 {
        let way_lines = (config.llc.way_bytes() / config.llc.line_size) as f64;
        self.pattern_for(config).footprint_lines() as f64 / way_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_present() {
        let specs = WorkloadSpec::all();
        assert_eq!(specs.len(), 8);
        let mut names: Vec<&str> = specs.iter().map(|s| s.id.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn service_times_match_paper() {
        assert_eq!(
            WorkloadSpec::for_benchmark(BenchmarkId::Social).mean_service_time,
            0.0075
        );
        assert_eq!(
            WorkloadSpec::for_benchmark(BenchmarkId::Redis).mean_service_time,
            0.001
        );
        assert_eq!(
            WorkloadSpec::for_benchmark(BenchmarkId::Spkmeans).mean_service_time,
            81.0
        );
        assert_eq!(
            WorkloadSpec::for_benchmark(BenchmarkId::Spstream).mean_service_time,
            1.0
        );
    }

    #[test]
    fn footprints_scale_with_geometry() {
        let spec = WorkloadSpec::for_benchmark(BenchmarkId::Jacobi);
        let full = HierarchyConfig::xeon_e5_2683();
        let scaled = full.scaled_down(64);
        let fw_full = spec.footprint_ways(&full);
        let fw_scaled = spec.footprint_ways(&scaled);
        assert!(
            (fw_full - fw_scaled).abs() / fw_full < 0.01,
            "footprint-in-ways invariant under scaling: {fw_full} vs {fw_scaled}"
        );
        assert!((fw_full - 8.0).abs() < 0.1, "jacobi is an 8-way footprint");
    }

    #[test]
    fn reuse_ordering_matches_table1() {
        // footprint acts as a proxy for reuse at fixed access count: KNN's
        // working set is far smaller than Redis's or Spstream's
        let fp = |id| WorkloadSpec::for_benchmark(id).pattern.footprint_lines();
        assert!(fp(BenchmarkId::Knn) < fp(BenchmarkId::Bfs));
        assert!(fp(BenchmarkId::Bfs) < fp(BenchmarkId::Redis));
        assert!(fp(BenchmarkId::Redis) < fp(BenchmarkId::Spstream));
    }

    #[test]
    fn demand_distributions_have_unit_mean() {
        for s in WorkloadSpec::all() {
            assert!((s.demand.mean() - 1.0).abs() < 1e-9, "{}", s.id);
        }
    }

    #[test]
    fn social_has_36_regions() {
        match WorkloadSpec::for_benchmark(BenchmarkId::Social).pattern {
            AccessPattern::Microservices { regions, .. } => assert_eq!(regions, 36),
            ref p => panic!("expected microservices pattern, got {p:?}"),
        }
    }
}
