//! # stca-workloads
//!
//! Synthetic models of the paper's Table-1 benchmarks. Each benchmark is a
//! [`spec::WorkloadSpec`]: a memory [`pattern::AccessPattern`] whose cache
//! character matches the table (data reuse, footprint, miss profile), a
//! service-time scale, and per-query demand variation. Queries drive *real*
//! address streams through `stca-cachesim`, so cache sensitivity and
//! contention are emergent, not scripted.
//!
//! | Benchmark | Table-1 character | Model |
//! |---|---|---|
//! | Jacobi | memory-intensive, moderate misses | stencil sweeps over a large grid |
//! | KNN | high reuse, low misses | Zipf-skewed reuse of a cache-resident set |
//! | Kmeans | high reuse, low misses | hot centroids + point scan |
//! | Spkmeans | higher misses from task execution | Kmeans with task-switch jumps, larger footprint |
//! | Spstream | I/O intensive, high misses | one-pass streaming |
//! | BFS | limited reuse, moderate misses | uniform pointer chase |
//! | Social | moderate reuse, moderate misses | 36 microservice regions, Zipf across regions |
//! | Redis | low reuse, high misses | weak-Zipf lookups over a large keyspace |
//!
//! The crate also provides the arrival processes and the runtime-condition
//! grid of Table 2 (inter-arrival 25–95% of service rate, timeouts 0–600% of
//! service time, counter sampling 0.2–1 Hz).

#![warn(clippy::unwrap_used)]

pub mod arrival;
pub mod conditions;
pub mod pattern;
pub mod social;
pub mod spec;

pub use arrival::ArrivalProcess;
pub use conditions::RuntimeCondition;
pub use pattern::{AccessGenerator, AccessPattern};
pub use spec::{BenchmarkId, BenchmarkParseError, WorkloadSpec};
