//! Competing cache-allocation policies (the Figure-8 lineup).
//!
//! Each strategy produces a vector of [`ShortTermPolicy`]s for a collocated
//! pair. Strategies that need measurements (static-best, dCat, dynaSprint)
//! receive a [`PolicyEval`] callback that runs the pair under candidate
//! policies and reports per-workload normalized p95 response times — the
//! bench harness backs it with the real test environment, unit tests with
//! synthetic surfaces.

use stca_cat::{AllocationSetting, PairLayout, ShortTermPolicy};

/// Evaluation callback: run the pair under `policies`, optionally overriding
/// both workloads' utilization (dynaSprint calibrates at low rate), and
/// return each workload's p95 response time normalized by its expected
/// service time (lower is better).
pub type PolicyEval<'a> = dyn FnMut(&[ShortTermPolicy], Option<f64>) -> Vec<f64> + 'a;

/// The competing allocation strategies of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyStrategy {
    /// Each workload keeps only its private ways (the baseline all Figure-8
    /// results are normalized to).
    NoSharing,
    /// Fully share the whole region or fully isolate — whichever measures
    /// better (both workloads get the same choice).
    StaticBest,
    /// Workload-aware (dCat): the shared region is granted statically to
    /// the workload that gains the larger speedup from it.
    DCat,
    /// IPC/timeout-driven (dynaSprint): per-workload timeouts tuned for
    /// best performance at *low* arrival rate, reused regardless of the
    /// actual rate (ignores queueing delay).
    DynaSprint,
    /// Iterative dCat: instead of granting the whole shared region to one
    /// winner, reallocate it way-by-way toward whichever workload's
    /// measured performance improves more — a static-measurement rendition
    /// of dCat's runtime reallocation loop.
    DCatIterative,
}

/// Timeout grid used by dynaSprint's calibration (5 settings per workload,
/// mirroring the paper's 5-per-workload exploration).
pub const DYNASPRINT_TIMEOUTS: [f64; 5] = [0.25, 0.75, 1.5, 3.0, 6.0];

/// Utilization dynaSprint calibrates at.
pub const DYNASPRINT_CALIBRATION_UTIL: f64 = 0.3;

/// Build the policy vector for a strategy.
pub fn policies_for(
    strategy: PolicyStrategy,
    layout: &PairLayout,
    eval: &mut PolicyEval<'_>,
) -> Vec<ShortTermPolicy> {
    match strategy {
        PolicyStrategy::NoSharing => no_sharing(layout),
        PolicyStrategy::StaticBest => {
            let isolated = no_sharing(layout);
            let shared = fully_shared(layout);
            let score_iso = mean(&eval(&isolated, None));
            let score_shared = mean(&eval(&shared, None));
            if score_shared < score_iso {
                shared
            } else {
                isolated
            }
        }
        PolicyStrategy::DCat => {
            // grant the shared region statically to A, then to B; compare
            // each grantee's own speedup vs the isolated baseline
            let isolated = no_sharing(layout);
            let base = eval(&isolated, None);
            let grant_a = vec![
                ShortTermPolicy::static_only(layout.boosted_a()),
                ShortTermPolicy::static_only(layout.default_b()),
            ];
            let grant_b = vec![
                ShortTermPolicy::static_only(layout.default_a()),
                ShortTermPolicy::static_only(layout.boosted_b()),
            ];
            let with_a = eval(&grant_a, None);
            let with_b = eval(&grant_b, None);
            let speedup_a = base[0] / with_a[0].max(1e-12);
            let speedup_b = base[1] / with_b[1].max(1e-12);
            if speedup_a >= speedup_b {
                grant_a
            } else {
                grant_b
            }
        }
        PolicyStrategy::DCatIterative => {
            // hill-climb the split point, one way at a time, following the
            // mean of both workloads' normalized scores
            let mut k = layout.shared / 2;
            let score_at = |k: usize, eval: &mut PolicyEval<'_>| -> f64 {
                let (a, b) = split_shared(layout, k);
                mean(&eval(&static_pair(a, b), None))
            };
            let mut best_score = score_at(k, eval);
            loop {
                let mut improved = false;
                for cand in [k.saturating_sub(1), (k + 1).min(layout.shared)] {
                    if cand == k {
                        continue;
                    }
                    let s = score_at(cand, eval);
                    if s < best_score {
                        best_score = s;
                        k = cand;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
            let (a, b) = split_shared(layout, k);
            static_pair(a, b)
        }
        PolicyStrategy::DynaSprint => {
            // independent per-workload timeout sweeps at low utilization
            let mut best = no_sharing(layout);
            let (pa, pb) = layout.policies(6.0, 6.0);
            // sweep A's timeout with B disabled, then B's with A disabled
            let mut best_ta = 6.0;
            let mut best_score_a = f64::INFINITY;
            for &t in &DYNASPRINT_TIMEOUTS {
                let cand = vec![ShortTermPolicy::new(pa.default, layout.boosted_a(), t), pb];
                let score = eval(&cand, Some(DYNASPRINT_CALIBRATION_UTIL))[0];
                if score < best_score_a {
                    best_score_a = score;
                    best_ta = t;
                }
            }
            let mut best_tb = 6.0;
            let mut best_score_b = f64::INFINITY;
            for &t in &DYNASPRINT_TIMEOUTS {
                let cand = vec![pa, ShortTermPolicy::new(pb.default, layout.boosted_b(), t)];
                let score = eval(&cand, Some(DYNASPRINT_CALIBRATION_UTIL))[1];
                if score < best_score_b {
                    best_score_b = score;
                    best_tb = t;
                }
            }
            best[0] = ShortTermPolicy::new(layout.default_a(), layout.boosted_a(), best_ta);
            best[1] = ShortTermPolicy::new(layout.default_b(), layout.boosted_b(), best_tb);
            best
        }
    }
}

/// Split the shared region statically: `to_a` of its ways join A's
/// partition (adjacent to A's private span, keeping contiguity), the rest
/// join B's. Both resulting settings are contiguous and disjoint.
pub fn split_shared(layout: &PairLayout, to_a: usize) -> (AllocationSetting, AllocationSetting) {
    assert!(
        to_a <= layout.shared,
        "cannot grant more than the shared region"
    );
    let a = AllocationSetting::new(layout.base_way, layout.private_a + to_a);
    let b_start = layout.base_way + layout.private_a + to_a;
    let b = AllocationSetting::new(b_start, (layout.shared - to_a) + layout.private_b);
    (a, b)
}

fn static_pair(a: AllocationSetting, b: AllocationSetting) -> Vec<ShortTermPolicy> {
    vec![
        ShortTermPolicy::static_only(a),
        ShortTermPolicy::static_only(b),
    ]
}

/// Private-ways-only policies.
pub fn no_sharing(layout: &PairLayout) -> Vec<ShortTermPolicy> {
    vec![
        ShortTermPolicy::static_only(layout.default_a()),
        ShortTermPolicy::static_only(layout.default_b()),
    ]
}

/// Both workloads statically share the whole region.
pub fn fully_shared(layout: &PairLayout) -> Vec<ShortTermPolicy> {
    vec![
        ShortTermPolicy::static_only(layout.fully_shared()),
        ShortTermPolicy::static_only(layout.fully_shared()),
    ]
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> PairLayout {
        PairLayout::symmetric(2, 2)
    }

    #[test]
    fn no_sharing_uses_private_only() {
        let ps = no_sharing(&layout());
        assert!(!ps[0].boost_enabled());
        assert_eq!(ps[0].default, layout().default_a());
        assert_eq!(ps[1].default, layout().default_b());
    }

    #[test]
    fn static_best_picks_the_better_option() {
        // surface where sharing is great for both
        let mut eval = |ps: &[ShortTermPolicy], _u: Option<f64>| -> Vec<f64> {
            if ps[0].default.length == layout().total_ways() {
                vec![1.0, 1.0]
            } else {
                vec![3.0, 3.0]
            }
        };
        let ps = policies_for(PolicyStrategy::StaticBest, &layout(), &mut eval);
        assert_eq!(ps[0].default.length, 6, "sharing wins on this surface");

        // surface where isolation is better
        let mut eval2 = |ps: &[ShortTermPolicy], _u: Option<f64>| -> Vec<f64> {
            if ps[0].default.length == layout().total_ways() {
                vec![5.0, 5.0]
            } else {
                vec![2.0, 2.0]
            }
        };
        let ps2 = policies_for(PolicyStrategy::StaticBest, &layout(), &mut eval2);
        assert_eq!(ps2[0].default.length, 2);
    }

    #[test]
    fn dcat_grants_shared_region_to_bigger_winner() {
        // B benefits hugely from the extra ways, A barely
        let mut eval = |ps: &[ShortTermPolicy], _u: Option<f64>| -> Vec<f64> {
            let a_granted = ps[0].default.length > 2;
            let b_granted = ps[1].default.length > 2;
            vec![
                if a_granted { 1.9 } else { 2.0 },
                if b_granted { 0.5 } else { 2.0 },
            ]
        };
        let ps = policies_for(PolicyStrategy::DCat, &layout(), &mut eval);
        assert_eq!(ps[1].default.length, 4, "B gets the shared region");
        assert_eq!(ps[0].default.length, 2, "A keeps private only");
        assert!(
            !ps[0].boost_enabled() && !ps[1].boost_enabled(),
            "dCat is static"
        );
    }

    #[test]
    fn split_shared_is_contiguous_and_disjoint() {
        let l = layout(); // private 2, shared 2, private 2
        for k in 0..=2 {
            let (a, b) = split_shared(&l, k);
            assert_eq!(a.length + b.length, l.total_ways());
            assert_eq!(a.overlap(&b), 0);
            assert!(a.to_cbm(20).is_ok());
            assert!(b.to_cbm(20).is_ok());
        }
        let (a, b) = split_shared(&l, 2);
        assert_eq!(a.length, 4, "A absorbed the whole shared region");
        assert_eq!(b.length, 2);
    }

    #[test]
    #[should_panic(expected = "more than the shared region")]
    fn split_shared_rejects_overgrant() {
        split_shared(&layout(), 3);
    }

    #[test]
    fn dcat_iterative_converges_to_surface_minimum() {
        // surface where giving both shared ways to A is optimal
        let mut eval = |ps: &[ShortTermPolicy], _u: Option<f64>| -> Vec<f64> {
            let a_len = ps[0].default.length as f64;
            // mean score minimized at a_len = 4 (k = 2)
            vec![(4.0 - a_len).abs() + 1.0, 1.0]
        };
        let ps = policies_for(PolicyStrategy::DCatIterative, &layout(), &mut eval);
        assert_eq!(ps[0].default.length, 4);
        assert_eq!(ps[1].default.length, 2);
        assert!(!ps[0].boost_enabled(), "dCat-iterative is static");
    }

    #[test]
    fn dynasprint_calibrates_at_low_rate() {
        let mut utils_seen = Vec::new();
        let mut eval = |ps: &[ShortTermPolicy], u: Option<f64>| -> Vec<f64> {
            utils_seen.push(u);
            // pretend T=0.75 is best for A, T=3.0 for B at low rate
            let score = |t: f64, best: f64| (t - best).abs() + 1.0;
            vec![
                score(ps[0].timeout_ratio, 0.75),
                score(ps[1].timeout_ratio, 3.0),
            ]
        };
        let ps = policies_for(PolicyStrategy::DynaSprint, &layout(), &mut eval);
        assert_eq!(ps[0].timeout_ratio, 0.75);
        assert_eq!(ps[1].timeout_ratio, 3.0);
        assert!(
            utils_seen
                .iter()
                .all(|u| *u == Some(DYNASPRINT_CALIBRATION_UTIL)),
            "dynaSprint only ever measures at its calibration rate"
        );
        assert!(ps[0].boost_enabled());
    }
}
