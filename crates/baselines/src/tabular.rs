//! Simple tabular models over flattened profile features: a single decision
//! tree and a plain random forest (the "simple ML" competitors of §3.2 and
//! Figures 6/8e). Both reuse the tree machinery from `stca-deepforest` but
//! skip multi-grain scanning and cascading — exactly the ablation the paper
//! draws: same features, no deep or representational learning.

use stca_deepforest::forest::{Forest, ForestConfig};
use stca_deepforest::tree::{RegressionTree, SplitStrategy, TreeConfig};
use stca_util::{Matrix, Rng64, SeedStream};

/// Which simple model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TabularKind {
    /// One CART tree, all features considered at each split.
    DecisionTree,
    /// A plain random forest (no MGS, no cascade).
    RandomForest {
        /// Number of trees.
        trees: usize,
    },
}

/// A fitted simple model.
#[derive(Debug, Clone)]
pub enum TabularModel {
    /// Single decision tree.
    Tree(RegressionTree),
    /// Plain random forest.
    Forest(Forest),
}

impl TabularModel {
    /// Fit on a design matrix.
    pub fn fit(kind: TabularKind, x: &Matrix, y: &[f64], seed: u64) -> TabularModel {
        match kind {
            TabularKind::DecisionTree => {
                let mut rng = Rng64::new(seed);
                TabularModel::Tree(RegressionTree::fit(
                    x,
                    y,
                    TreeConfig {
                        strategy: SplitStrategy::BestOfAll,
                        min_samples_leaf: 3,
                        max_depth: 24,
                        ..TreeConfig::default()
                    },
                    &mut rng,
                ))
            }
            TabularKind::RandomForest { trees } => TabularModel::Forest(Forest::fit(
                x,
                y,
                ForestConfig::random(trees),
                &SeedStream::new(seed),
            )),
        }
    }

    /// Predict one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        match self {
            TabularModel::Tree(t) => t.predict(features),
            TabularModel::Forest(f) => f.predict(features),
        }
    }

    /// Predict every row.
    pub fn predict_matrix(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            x.push_row(&[a, rng.next_f64()]);
            y.push(if a > 0.6 { 2.0 } else { 1.0 });
        }
        (x, y)
    }

    #[test]
    fn tree_fits_step() {
        let (x, y) = step_data(300, 1);
        let m = TabularModel::fit(TabularKind::DecisionTree, &x, &y, 2);
        assert!((m.predict(&[0.9, 0.5]) - 2.0).abs() < 0.1);
        assert!((m.predict(&[0.1, 0.5]) - 1.0).abs() < 0.1);
    }

    #[test]
    fn forest_fits_step() {
        let (x, y) = step_data(300, 3);
        let m = TabularModel::fit(TabularKind::RandomForest { trees: 30 }, &x, &y, 4);
        assert!((m.predict(&[0.9, 0.5]) - 2.0).abs() < 0.2);
        assert!((m.predict(&[0.1, 0.5]) - 1.0).abs() < 0.2);
    }

    #[test]
    fn predict_matrix_matches_row_predictions() {
        let (x, y) = step_data(50, 5);
        let m = TabularModel::fit(TabularKind::DecisionTree, &x, &y, 6);
        let all = m.predict_matrix(&x);
        assert_eq!(all[7], m.predict(x.row(7)));
    }
}
