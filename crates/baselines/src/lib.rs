//! # stca-baselines
//!
//! The competing approaches the paper evaluates against, in two families:
//!
//! **Modeling baselines (Figure 6)** — [`linreg::Ridge`] (linear
//! regression), [`tabular::TabularModel`] (a single decision tree and a
//! plain random forest — the "simple ML models" of §3.2), all operating on
//! the same flattened Eq.-2 profile features as the deep forest.
//!
//! **Allocation-policy baselines (Figure 8)** — [`policies`]:
//! * *no cache sharing* — private ways only (the normalization baseline);
//! * *static allocation* — fully shared or fully private, whichever
//!   measures better;
//! * *dCat* — workload-aware: the shared region goes statically to the
//!   workload that speeds up most (Xu et al.);
//! * *dynaSprint* — timeout-driven like the paper's approach, but timeouts
//!   are calibrated at low arrival rate and reused at high rate, ignoring
//!   queueing delay (Huang et al.) — the flaw the paper's Figure 8
//!   discussion calls out.

pub mod linreg;
pub mod policies;
pub mod tabular;

pub use linreg::Ridge;
pub use policies::{PolicyEval, PolicyStrategy};
pub use tabular::{TabularKind, TabularModel};
