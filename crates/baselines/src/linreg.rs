//! Ridge-regularized linear regression (the Figure-6 "linear regression"
//! competitor), solved by normal equations with Gaussian elimination.
//!
//! The profile features outnumber profiling runs (29 x 20 trace features vs
//! a few hundred rows), so a small ridge penalty keeps the normal equations
//! well-posed — plain OLS would be singular. The paper's point stands
//! regardless: the relationship between counters and effective allocation is
//! non-linear, and this model's ~50% median error shows it.

use stca_util::Matrix;

/// A fitted ridge regression.
#[derive(Debug, Clone)]
pub struct Ridge {
    /// Learned weights (last entry is the intercept).
    weights: Vec<f64>,
}

/// Solve `a x = b` in place by Gaussian elimination with partial pivoting.
/// `a` is `n x n` row-major. Returns `None` for singular systems.
fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // pivot
        let mut pivot = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for c in 0..n {
                a.swap(col * n + c, pivot * n + c);
            }
            b.swap(col, pivot);
        }
        let inv = 1.0 / a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] * inv;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * x[c];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

impl Ridge {
    /// Fit with penalty `lambda` (an intercept column is appended and not
    /// penalized).
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Ridge {
        assert_eq!(x.rows(), y.len());
        assert!(x.rows() > 0);
        assert!(lambda >= 0.0);
        let n = x.rows();
        let d = x.cols() + 1; // + intercept
                              // normal matrix A = X'X + lambda I, rhs = X'y
        let mut a = vec![0.0; d * d];
        let mut rhs = vec![0.0; d];
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            let row = x.row(r);
            for i in 0..d {
                let xi = if i < x.cols() { row[i] } else { 1.0 };
                rhs[i] += xi * y[r];
                for j in i..d {
                    let xj = if j < x.cols() { row[j] } else { 1.0 };
                    a[i * d + j] += xi * xj;
                }
            }
        }
        // mirror + regularize (intercept unpenalized)
        for i in 0..d {
            for j in 0..i {
                a[i * d + j] = a[j * d + i];
            }
            if i < x.cols() {
                a[i * d + i] += lambda;
            }
        }
        let weights = solve(a, rhs, d).unwrap_or_else(|| {
            // fall back to predicting the mean
            let mut w = vec![0.0; d];
            w[d - 1] = y.iter().sum::<f64>() / n as f64;
            w
        });
        Ridge { weights }
    }

    /// Predict one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len() + 1,
            self.weights.len(),
            "feature width mismatch"
        );
        let mut acc = *self.weights.last().expect("intercept present");
        for (w, x) in self.weights.iter().zip(features) {
            acc += w * x;
        }
        acc
    }

    /// Predict all rows.
    pub fn predict_matrix(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_util::Rng64;

    #[test]
    fn recovers_linear_coefficients() {
        let mut rng = Rng64::new(1);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..200 {
            let a = rng.next_f64();
            let b = rng.next_f64();
            x.push_row(&[a, b]);
            y.push(3.0 * a - 2.0 * b + 0.5);
        }
        let model = Ridge::fit(&x, &y, 1e-6);
        assert!((model.predict(&[1.0, 0.0]) - 3.5).abs() < 1e-3);
        assert!((model.predict(&[0.0, 1.0]) - (-1.5)).abs() < 1e-3);
        assert!((model.predict(&[0.0, 0.0]) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        let mut rng = Rng64::new(2);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..50 {
            let a = rng.next_f64();
            x.push_row(&[a, 2.0 * a, 3.0 * a]); // rank 1
            y.push(a);
        }
        let model = Ridge::fit(&x, &y, 1e-3);
        // prediction still sane despite singular X'X
        let p = model.predict(&[0.5, 1.0, 1.5]);
        assert!((p - 0.5).abs() < 0.05, "prediction {p}");
    }

    #[test]
    fn underdetermined_more_features_than_rows() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 2.0], vec![0.0, 1.0, 0.0, 1.0]]);
        let y = vec![1.0, 2.0];
        let model = Ridge::fit(&x, &y, 0.1);
        assert!(model.predict(&[1.0, 0.0, 0.0, 2.0]).is_finite());
    }

    #[test]
    fn cannot_fit_nonlinear_step() {
        // the point of the Figure-6 comparison: linear models miss cliffs
        let mut rng = Rng64::new(3);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for _ in 0..200 {
            let a = rng.next_f64();
            x.push_row(&[a]);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        let model = Ridge::fit(&x, &y, 1e-6);
        // best linear fit is a slope through the middle: large error at 0.5
        let err = (model.predict(&[0.45]) - 0.0).abs();
        assert!(err > 0.2, "linear model should struggle, err {err}");
    }
}
