//! Criterion microbenchmarks for the performance-critical substrates:
//! cache-hierarchy access throughput (the hot loop of every experiment),
//! queueing simulation, tree/forest training, and multi-grain scanning.
//!
//! Run with `cargo bench -p stca-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use stca_cachesim::{AccessKind, Hierarchy, HierarchyConfig};
use stca_cat::AllocationSetting;
use stca_deepforest::forest::{Forest, ForestConfig};
use stca_deepforest::mgs::{MgsConfig, MultiGrainScanner};
use stca_queuesim::{QueueSim, StationConfig};
use stca_util::{Distribution, Matrix, Rng64};
use stca_workloads::{AccessGenerator, AccessPattern};

fn bench_hierarchy_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim");
    let n: u64 = 10_000;
    group.throughput(Throughput::Elements(n));
    group.bench_function("hierarchy_access_10k", |b| {
        let config = HierarchyConfig::experiment_default();
        let mut hier = Hierarchy::new(config, 1);
        hier.set_llc_mask(0, AllocationSetting::new(0, 4).to_cbm(20).expect("valid"));
        let mut gen = AccessGenerator::new(
            AccessPattern::ZipfReuse { footprint_lines: 4096, theta: 0.8 },
            0,
            0.2,
            2,
        );
        b.iter(|| {
            for _ in 0..n {
                let (a, k) = gen.next_access();
                black_box(hier.access(0, a, k));
            }
        });
    });
    group.bench_function("llc_mask_switch", |b| {
        let config = HierarchyConfig::experiment_default();
        let mut hier = Hierarchy::new(config, 3);
        let narrow = AllocationSetting::new(0, 2).to_cbm(20).expect("valid");
        let wide = AllocationSetting::new(0, 4).to_cbm(20).expect("valid");
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            hier.set_llc_mask(0, if flip { narrow } else { wide });
            black_box(hier.access(0, 0x1000, AccessKind::Load));
        });
    });
    group.finish();
}

fn bench_queuesim(c: &mut Criterion) {
    let mut group = c.benchmark_group("queuesim");
    group.bench_function("ggk_stap_2000_queries", |b| {
        b.iter_batched(
            || {
                QueueSim::new(
                    StationConfig {
                        inter_arrival: Distribution::Exponential { mean: 0.6 },
                        service: Distribution::LogNormal { mean: 1.0, sigma: 0.4 },
                        expected_service: 1.0,
                        timeout_ratio: 1.0,
                        boost_rate: 1.8,
                        servers: 2,
                        shared_boost: true,
                        measured_queries: 2000,
                        warmup_queries: 200,
                    },
                    7,
                )
            },
            |mut sim| black_box(sim.run()),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn training_data(n: usize, f: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::zeros(0, 0);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..f).map(|_| rng.next_f64()).collect();
        y.push(row[0] * 2.0 - row[1] + rng.next_gaussian() * 0.1);
        x.push_row(&row);
    }
    (x, y)
}

fn bench_deepforest(c: &mut Criterion) {
    let mut group = c.benchmark_group("deepforest");
    group.sample_size(10);
    group.bench_function("forest_fit_200x50", |b| {
        let (x, y) = training_data(200, 50, 1);
        b.iter(|| {
            let mut rng = Rng64::new(2);
            black_box(Forest::fit(&x, &y, ForestConfig::random(20), &mut rng))
        });
    });
    group.bench_function("mgs_fit_transform_29x20", |b| {
        let mut rng = Rng64::new(3);
        let traces: Vec<Matrix> = (0..40)
            .map(|_| {
                let mut m = Matrix::zeros(29, 20);
                for v in m.as_mut_slice() {
                    *v = rng.next_f64();
                }
                m
            })
            .collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 4) as f64 / 4.0).collect();
        b.iter(|| {
            let mut rng = Rng64::new(4);
            let mgs = MultiGrainScanner::fit(
                &traces,
                &y,
                &MgsConfig {
                    window_sizes: vec![5, 10],
                    stride: 3,
                    trees_per_window: 8,
                    max_positions_per_sample: 16,
                },
                &mut rng,
            );
            black_box(mgs.transform(&traces[0]))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchy_access, bench_queuesim, bench_deepforest);
criterion_main!(benches);
