//! Microbenchmarks for the performance-critical substrates: cache-hierarchy
//! access throughput (the hot loop of every experiment), queueing
//! simulation, tree/forest training, multi-grain scanning — and the
//! observability fast paths (disabled log call sites, counter increments,
//! histogram records), which must stay in the low-nanosecond range so
//! instrumented hot loops pay nothing when logging is off.
//!
//! The harness is hand-rolled on `std::time::Instant` because the build
//! environment is offline (no `criterion`): each benchmark runs a warm-up,
//! then `SAMPLES` timed batches, and reports the median, min, and max
//! per-iteration time. Run with `cargo bench -p stca-bench`.

use stca_cachesim::{AccessKind, Hierarchy, HierarchyConfig};
use stca_cat::AllocationSetting;
use stca_deepforest::forest::{Forest, ForestConfig};
use stca_deepforest::mgs::{MgsConfig, MultiGrainScanner};
use stca_queuesim::{QueueSim, StationConfig};
use stca_util::{Distribution, Matrix, Rng64, SeedStream};
use stca_workloads::{AccessGenerator, AccessPattern};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 15;

/// Run `f` (a batch of `iters` iterations) `SAMPLES` times and report
/// per-iteration timings.
fn bench(name: &str, iters: u64, mut f: impl FnMut(u64)) {
    // warm-up
    f(iters);
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f(iters);
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[SAMPLES / 2];
    let (unit, scale) = if median < 1e-6 {
        ("ns", 1e9)
    } else if median < 1e-3 {
        ("us", 1e6)
    } else {
        ("ms", 1e3)
    };
    println!(
        "{name:<40} {:>9.2} {unit}/iter  (min {:>9.2}, max {:>9.2}, {SAMPLES} samples x {iters} iters)",
        median * scale,
        per_iter[0] * scale,
        per_iter[SAMPLES - 1] * scale,
    );
}

fn bench_obs_fast_paths() {
    // logging fully disabled: the default LogConfig filters everything off
    stca_obs::init_with(stca_obs::LogConfig::default());
    bench("obs/disabled_trace_call_site", 10_000_000, |n| {
        for i in 0..n {
            // the macro must reduce to one relaxed atomic load; the
            // format arguments must never be evaluated
            stca_obs::trace!("event {} processed", black_box(i));
        }
    });
    bench("obs/disabled_debug_call_site", 10_000_000, |n| {
        for i in 0..n {
            stca_obs::debug!("queue depth {}", black_box(i));
        }
    });
    let counter = stca_obs::counter("bench.obs.counter_total");
    bench("obs/counter_inc", 10_000_000, |n| {
        for _ in 0..n {
            counter.inc();
        }
    });
    let hist = stca_obs::histogram("bench.obs.histogram_values");
    bench("obs/histogram_record", 1_000_000, |n| {
        for i in 0..n {
            hist.record(black_box(i as f64 * 1e-6));
        }
    });
}

fn queuesim_config() -> StationConfig {
    StationConfig {
        inter_arrival: Distribution::Exponential { mean: 0.6 },
        service: Distribution::LogNormal {
            mean: 1.0,
            sigma: 0.4,
        },
        expected_service: 1.0,
        timeout_ratio: 1.0,
        boost_rate: 1.8,
        servers: 2,
        shared_boost: true,
        measured_queries: 2000,
        warmup_queries: 200,
    }
}

fn bench_hierarchy_access() {
    let config = HierarchyConfig::experiment_default();
    let mut hier = Hierarchy::new(config, 1);
    hier.set_llc_mask(0, AllocationSetting::new(0, 4).to_cbm(20).expect("valid"));
    let mut gen = AccessGenerator::new(
        AccessPattern::ZipfReuse {
            footprint_lines: 4096,
            theta: 0.8,
        },
        0,
        0.2,
        2,
    );
    bench("cachesim/hierarchy_access", 100_000, |n| {
        for _ in 0..n {
            let (a, k) = gen.next_access();
            black_box(hier.access(0, a, k));
        }
    });

    let mut hier = Hierarchy::new(config, 3);
    let narrow = AllocationSetting::new(0, 2).to_cbm(20).expect("valid");
    let wide = AllocationSetting::new(0, 4).to_cbm(20).expect("valid");
    let mut flip = false;
    bench("cachesim/llc_mask_switch", 100_000, |n| {
        for _ in 0..n {
            flip = !flip;
            hier.set_llc_mask(0, if flip { narrow } else { wide });
            black_box(hier.access(0, 0x1000, AccessKind::Load));
        }
    });
}

fn bench_queuesim() {
    // whole-run granularity: one iteration = 2200 simulated queries. This
    // is the loop the obs instrumentation must not slow down — compare
    // against the seed before/after instrumenting.
    bench("queuesim/ggk_stap_2200_queries", 20, |n| {
        for i in 0..n {
            let mut sim = QueueSim::new(queuesim_config(), 7 + i);
            black_box(sim.run());
        }
    });
}

fn training_data(n: usize, f: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::zeros(0, 0);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..f).map(|_| rng.next_f64()).collect();
        y.push(row[0] * 2.0 - row[1] + rng.next_gaussian() * 0.1);
        x.push_row(&row);
    }
    (x, y)
}

fn bench_deepforest() {
    let (x, y) = training_data(200, 50, 1);
    bench("deepforest/forest_fit_200x50", 5, |n| {
        for _ in 0..n {
            black_box(Forest::fit(
                &x,
                &y,
                ForestConfig::random(20),
                &SeedStream::new(2),
            ));
        }
    });

    let mut rng = Rng64::new(3);
    let traces: Vec<Matrix> = (0..40)
        .map(|_| {
            let mut m = Matrix::zeros(29, 20);
            for v in m.as_mut_slice() {
                *v = rng.next_f64();
            }
            m
        })
        .collect();
    let y: Vec<f64> = (0..40).map(|i| (i % 4) as f64 / 4.0).collect();
    bench("deepforest/mgs_fit_transform_29x20", 3, |n| {
        for _ in 0..n {
            let mgs = MultiGrainScanner::fit(
                &traces,
                &y,
                &MgsConfig {
                    window_sizes: vec![5, 10],
                    stride: 3,
                    trees_per_window: 8,
                    max_positions_per_sample: 16,
                    ..MgsConfig::default()
                },
                &SeedStream::new(4),
            );
            black_box(mgs.transform(&traces[0]));
        }
    });
}

fn bench_exec() {
    // pool-dispatch overhead: the cost of fanning out n trivial tasks vs
    // computing them in a serial loop. Small workloads should stay close to
    // serial (the pool falls back to inline execution at 1 thread); larger
    // per-task work amortizes the spawn cost.
    let busy = |seed: u64, rounds: u64| -> u64 {
        let mut rng = Rng64::new(seed);
        let mut acc = 0u64;
        for _ in 0..rounds {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    };
    bench("exec/par_map_range_64_empty_tasks", 200, |n| {
        for _ in 0..n {
            black_box(stca_exec::par_map_range(64, |i| i));
        }
    });
    bench("exec/par_map_64_small_tasks", 50, |n| {
        for _ in 0..n {
            black_box(stca_exec::par_map_range(64, |i| busy(i as u64, 1_000)));
        }
    });
    bench("exec/serial_64_small_tasks", 50, |n| {
        for _ in 0..n {
            black_box((0..64).map(|i| busy(i as u64, 1_000)).collect::<Vec<_>>());
        }
    });
    bench("exec/par_map_64_large_tasks", 3, |n| {
        for _ in 0..n {
            black_box(stca_exec::par_map_range(64, |i| busy(i as u64, 400_000)));
        }
    });
    bench("exec/serial_64_large_tasks", 3, |n| {
        for _ in 0..n {
            black_box((0..64).map(|i| busy(i as u64, 400_000)).collect::<Vec<_>>());
        }
    });
}

fn main() {
    stca_exec::init_from_env_and_args();
    println!("stca microbenchmarks (hand-rolled harness; median of {SAMPLES} samples)\n");
    bench_obs_fast_paths();
    bench_hierarchy_access();
    bench_queuesim();
    bench_deepforest();
    bench_exec();
}
