//! Test-environment-backed policy evaluation for the Figure-8 experiments.
//!
//! Competing allocation strategies (`stca_baselines::policies`) need a way
//! to measure candidate policy vectors; this module provides it by running
//! the real collocated test environment, and also scores the final policy
//! of every strategy at the Figure-8 operating point (90% utilization).

use crate::dataset::Scale;
use stca_cat::ShortTermPolicy;
use stca_profiler::executor::TestEnvironment;
use stca_workloads::{BenchmarkId, RuntimeCondition, WorkloadSpec};

/// Run a pair under explicit policies at a utilization; returns normalized
/// p95 response per workload (p95 / expected service).
pub fn run_pair_with_policies(
    pair: (BenchmarkId, BenchmarkId),
    utilization: f64,
    policies: &[ShortTermPolicy],
    scale: Scale,
    seed: u64,
) -> Vec<f64> {
    // condition timeouts are placeholders — the explicit policies govern
    let cond = RuntimeCondition::pair(pair.0, utilization, 6.0, pair.1, utilization, 6.0);
    let spec = scale.experiment_spec(cond, seed);
    let out = TestEnvironment::new(spec).run_with_policies(Some(policies.to_vec()));
    out.workloads
        .iter()
        .map(|w| {
            let es = WorkloadSpec::for_benchmark(w.benchmark).mean_service_time;
            w.p95_response() / es
        })
        .collect()
}

/// Low-variance scoring for final Figure-8 comparisons: a longer run,
/// repeated over `repeats` *paired* seeds (every strategy must be scored
/// with the same seed list so arrival realizations cancel out). Returns the
/// per-workload mean of normalized p95 across repeats.
pub fn score_policies_paired(
    pair: (BenchmarkId, BenchmarkId),
    utilization: f64,
    policies: &[ShortTermPolicy],
    scale: Scale,
    seeds: &[u64],
) -> Vec<f64> {
    assert!(!seeds.is_empty());
    let cond = RuntimeCondition::pair(pair.0, utilization, 6.0, pair.1, utilization, 6.0);
    // each repeat is an independent experiment keyed by its own seed
    let per_seed = stca_exec::par_map_indexed(seeds, |_, &seed| {
        let mut spec = scale.experiment_spec(cond.clone(), seed);
        // p95 needs more samples than profiling runs collect
        spec.measured_queries = spec.measured_queries.max(500);
        let out = TestEnvironment::new(spec).run_with_policies(Some(policies.to_vec()));
        out.workloads
            .iter()
            .map(|w| {
                let es = WorkloadSpec::for_benchmark(w.benchmark).mean_service_time;
                w.p95_response() / es
            })
            .collect::<Vec<f64>>()
    });
    let mut acc = [0.0; 2];
    for scores in &per_seed {
        for (a, s) in acc.iter_mut().zip(scores) {
            *a += s;
        }
    }
    acc.iter().map(|a| a / seeds.len() as f64).collect()
}

/// Build a `PolicyEval` closure for the baseline strategies: candidates are
/// measured at `default_util` unless the strategy overrides it (dynaSprint
/// calibrates at low rate).
pub fn make_policy_eval(
    pair: (BenchmarkId, BenchmarkId),
    default_util: f64,
    scale: Scale,
    seed: u64,
) -> impl FnMut(&[ShortTermPolicy], Option<f64>) -> Vec<f64> {
    let mut call = 0u64;
    move |policies: &[ShortTermPolicy], util_override: Option<f64>| {
        call += 1;
        let util = util_override.unwrap_or(default_util);
        run_pair_with_policies(pair, util, policies, scale, seed ^ (call << 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_baselines::policies::{no_sharing, policies_for, PolicyStrategy};
    use stca_cat::PairLayout;

    #[test]
    fn no_sharing_policies_run_and_score() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
        let layout = PairLayout::symmetric(2, 2);
        let scores = run_pair_with_policies(pair, 0.7, &no_sharing(&layout), Scale::Quick, 1);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|&s| s > 0.0 && s.is_finite()));
    }

    #[test]
    fn static_best_strategy_runs_against_real_environment() {
        let pair = (BenchmarkId::Kmeans, BenchmarkId::Redis);
        let layout = PairLayout::symmetric(2, 2);
        let mut eval = make_policy_eval(pair, 0.7, Scale::Quick, 2);
        let ps = policies_for(PolicyStrategy::StaticBest, &layout, &mut eval);
        assert_eq!(ps.len(), 2);
        // chosen policies are static (no boost)
        assert!(!ps[0].boost_enabled());
    }
}
