//! Plain-text table output shared by the figure binaries.

/// A simple aligned table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for c in 0..cols {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["longer-name".into(), "2.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
