//! Ablation: CAT fill-only masking vs strict partitioning.
//!
//! Intel CAT only gates *fills* — a line resident in a foreign way still
//! hits. That grace period is load-bearing for short-term allocation: when
//! a boost is revoked, the workload keeps hitting the lines it installed in
//! the shared ways until the neighbour gradually evicts them. Under strict
//! partitioning (page-coloring-style), revocation is a cliff: every
//! shared-way line is instantly unreachable.
//!
//! This ablation runs identical conditions under both enforcement modes and
//! reports effective allocation, p95 response, and foreign-way hits.
//!
//! Usage: `cargo run --release -p stca-bench --bin ablation_maskmode [--scale ...]`

use stca_bench::table::{f2, Table};
use stca_cachesim::{Counter, MaskMode};
use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_workloads::{BenchmarkId, RuntimeCondition};

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Redis);
    println!("Ablation: CAT fill-only masks vs strict partitioning");
    println!(
        "(pair {}({}), both boosting at a moderate timeout)\n",
        pair.0, pair.1
    );
    let mut t = Table::new(&[
        "mode",
        "util",
        "workload",
        "EA",
        "p95/es",
        "foreign-way hits",
        "boost %",
    ]);
    let seeds: u64 = match scale {
        stca_bench::Scale::Quick => 1,
        _ => 3,
    };
    for &util in &[0.5, 0.9] {
        for mode in [MaskMode::FillOnly, MaskMode::Strict] {
            stca_obs::info!("running {mode:?} at utilization {util:.1}");
            // accumulate across paired seeds
            let mut ea = [0.0f64; 2];
            let mut p95 = [0.0f64; 2];
            let mut foreign = [0u64; 2];
            let mut boost = [0.0f64; 2];
            for s in 0..seeds {
                let cond = RuntimeCondition::pair(pair.0, util, 0.75, pair.1, util, 0.75);
                let spec = ExperimentSpec {
                    mask_mode: mode,
                    measured_queries: 250,
                    warmup_queries: 30,
                    accesses_per_query: Some(1500),
                    ..ExperimentSpec::standard(cond, 0xAB + s)
                };
                let out = TestEnvironment::new(spec).run();
                for (i, w) in out.workloads.iter().enumerate() {
                    ea[i] += w.effective_allocation / seeds as f64;
                    p95[i] += w.p95_response() / w.expected_service / seeds as f64;
                    boost[i] += w.boost_fraction() / seeds as f64;
                    let trace_foreign: u64 = w
                        .trace
                        .iter()
                        .map(|c| c.get(Counter::LlcForeignWayHits))
                        .sum();
                    foreign[i] += trace_foreign;
                }
            }
            for (i, b) in [pair.0, pair.1].iter().enumerate() {
                t.row(&[
                    format!("{mode:?}"),
                    f2(util),
                    b.short_name().into(),
                    f2(ea[i]),
                    f2(p95[i]),
                    (foreign[i] / seeds).to_string(),
                    format!("{:.0}%", boost[i] * 100.0),
                ]);
            }
        }
    }
    t.print();
    println!("\nStrict mode must show zero foreign-way hits: revoked boosts lose");
    println!("their installed lines immediately. The EA shift cuts both ways —");
    println!("losing the grace period hurts reuse-after-revocation, while instant");
    println!("invalidation also frees the partition from stale neighbour lines.");
    stca_obs::emit_run_report();
}
