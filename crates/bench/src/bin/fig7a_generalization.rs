//! Figure 7a — per-collocation prediction accuracy.
//!
//! For each ordered collocation `target(partner)`, profiles the pair,
//! trains the full model on low-utilization conditions and predicts the
//! held-out high-utilization ones, reporting the target workload's median
//! APE. The paper's result: below 15% for every collocation.
//!
//! Usage: `cargo run --release -p stca-bench --bin fig7a_generalization [--scale ...]`

use stca_bench::table::{pct, Table};
use stca_bench::{build_pair_dataset, Scale};
use stca_core::{ModelConfig, Predictor};
use stca_deepforest::metrics::ape_summary;
use stca_profiler::sampler::CounterOrdering;
use stca_workloads::{BenchmarkId, WorkloadSpec};

fn pairs_for(scale: Scale) -> Vec<(BenchmarkId, BenchmarkId)> {
    match scale {
        Scale::Quick => vec![(BenchmarkId::Jacobi, BenchmarkId::Bfs)],
        Scale::Standard => vec![
            (BenchmarkId::Jacobi, BenchmarkId::Bfs),
            (BenchmarkId::Kmeans, BenchmarkId::Knn),
            (BenchmarkId::Redis, BenchmarkId::Social),
            (BenchmarkId::Spkmeans, BenchmarkId::Spstream),
        ],
        Scale::Full => vec![
            (BenchmarkId::Jacobi, BenchmarkId::Bfs),
            (BenchmarkId::Kmeans, BenchmarkId::Knn),
            (BenchmarkId::Redis, BenchmarkId::Social),
            (BenchmarkId::Spkmeans, BenchmarkId::Spstream),
            (BenchmarkId::Jacobi, BenchmarkId::Redis),
            (BenchmarkId::Kmeans, BenchmarkId::Spstream),
            (BenchmarkId::Bfs, BenchmarkId::Social),
            (BenchmarkId::Knn, BenchmarkId::Spkmeans),
        ],
    }
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    println!("Figure 7a: per-collocation median APE of mean-response predictions");
    println!("(label x(y) = predicting x collocated with y; unseen high-util conditions)\n");
    let mut t = Table::new(&["collocation", "rows(train/test)", "median APE", "p95 APE"]);
    for (pi, &pair) in pairs_for(scale).iter().enumerate() {
        let ds = build_pair_dataset(
            pair,
            scale.conditions_per_pair(),
            scale,
            CounterOrdering::Grouped,
            0x7A + pi as u64 * 7777,
        );
        let (pool, test) = ds.split_by_utilization(0.75);
        if pool.is_empty() || test.is_empty() {
            stca_obs::warn!("skipping {}({}): degenerate split", pair.0, pair.1);
            continue;
        }
        let config = if pool.len() >= 30 {
            ModelConfig::standard(0x7A1 + pi as u64)
        } else {
            ModelConfig::quick(0x7A1 + pi as u64)
        };
        let predictor = Predictor::train(&pool.profile_set(), &config);
        // report each direction separately, as the paper's labels do
        for target in [pair.0, pair.1] {
            let partner = if target == pair.0 { pair.1 } else { pair.0 };
            let rows: Vec<_> = test.rows.iter().filter(|r| r.benchmark == target).collect();
            if rows.is_empty() {
                continue;
            }
            let es = WorkloadSpec::for_benchmark(target).mean_service_time;
            let pred: Vec<f64> = rows
                .iter()
                .map(|r| predictor.predict_response(&r.row, target).mean_response / es)
                .collect();
            let obs: Vec<f64> = rows.iter().map(|r| r.row.mean_response_norm).collect();
            let s = ape_summary(&pred, &obs);
            t.row(&[
                format!("{}({})", target.short_name(), partner.short_name()),
                format!("{}/{}", pool.len(), rows.len()),
                pct(s.median),
                pct(s.p95),
            ]);
            stca_obs::info!("{}({}): median {:.1}%", target, partner, s.median);
        }
    }
    t.print();
    println!("\nPaper: median error below 15% for every collocation.");
    stca_obs::emit_run_report();
}
