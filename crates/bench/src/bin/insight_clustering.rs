//! §5.2 insight — concept-space vs raw-counter clustering, quantified.
//!
//! The paper closes by clustering workload conditions two ways: by the
//! concepts the deep forest learned, and by the raw hardware counters.
//! Concept clusters exposed a joint arrival-rate/service-time/timeout
//! interaction behind effective allocation; counter clusters did not. Here
//! the separation quality is quantified as the size-weighted within-cluster
//! standard deviation of EA (lower = the clustering recovers EA regimes
//! better), averaged across collocation pairs.
//!
//! Usage: `cargo run --release -p stca-bench --bin insight_clustering [--scale ...]`

use stca_bench::table::{f2, Table};
use stca_bench::{build_pair_dataset, Scale};
use stca_core::insight::{cluster_by_concepts, cluster_by_counters};
use stca_core::{ModelConfig, Predictor};
use stca_profiler::sampler::CounterOrdering;
use stca_util::Rng64;
use stca_workloads::BenchmarkId;

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pairs: Vec<(BenchmarkId, BenchmarkId)> = match scale {
        Scale::Quick => vec![(BenchmarkId::Kmeans, BenchmarkId::Redis)],
        _ => vec![
            (BenchmarkId::Kmeans, BenchmarkId::Redis),
            (BenchmarkId::Jacobi, BenchmarkId::Bfs),
            (BenchmarkId::Redis, BenchmarkId::Social),
        ],
    };
    let k = 4;
    println!("Insight (5.2): clustering conditions by learned concepts vs raw counters");
    println!("(metric: weighted within-cluster EA std; lower = cleaner EA regimes)\n");
    let mut t = Table::new(&[
        "pair",
        "rows",
        "concept EA-dispersion",
        "counter EA-dispersion",
        "concept/counter",
    ]);
    let mut ratios = Vec::new();
    for (pi, &pair) in pairs.iter().enumerate() {
        let ds = build_pair_dataset(
            pair,
            scale.conditions_per_pair(),
            scale,
            CounterOrdering::Grouped,
            0x1C5 + pi as u64 * 997,
        );
        let profiles = ds.profile_set();
        let mcfg = if profiles.len() >= 30 {
            ModelConfig::standard(0x1C6 + pi as u64)
        } else {
            ModelConfig::quick(0x1C6 + pi as u64)
        };
        let predictor = Predictor::train(&profiles, &mcfg);
        let mut rng = Rng64::new(0x1C7 + pi as u64);
        let by_concepts = cluster_by_concepts(&predictor, &profiles, k, &mut rng);
        let by_counters = cluster_by_counters(&profiles, k, &mut rng);
        let dc = by_concepts.weighted_ea_dispersion();
        let dh = by_counters.weighted_ea_dispersion();
        ratios.push(dc / dh.max(1e-12));
        stca_obs::info!(
            "{}({}): concepts {:.4} vs counters {:.4}",
            pair.0,
            pair.1,
            dc,
            dh
        );
        t.row(&[
            format!("{}({})", pair.0.short_name(), pair.1.short_name()),
            profiles.len().to_string(),
            f2(dc),
            f2(dh),
            f2(dc / dh.max(1e-12)),
        ]);
        // show what the concept clusters look like for the first pair
        if pi == 0 {
            println!("concept clusters for {}({}):", pair.0, pair.1);
            for (ci, c) in by_concepts.clusters.iter().enumerate() {
                if c.size == 0 {
                    continue;
                }
                println!(
                    "  cluster {ci}: n={:<3} mean util {:.2}, mean timeout {:.2}, mean EA {:.2} (std {:.3})",
                    c.size, c.mean_utilization, c.mean_timeout, c.mean_ea, c.ea_std
                );
            }
            println!();
        }
    }
    t.print();
    let mean_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\nmean concept/counter dispersion ratio: {mean_ratio:.2} (< 1 reproduces the paper's"
    );
    println!("finding: learned concepts separate EA regimes that raw counters do not).");
    stca_obs::emit_run_report();
}
