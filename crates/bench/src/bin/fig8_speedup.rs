//! Figure 8 — p95 response-time speedup of competing allocation policies.
//!
//! Four collocation groups (cloud, Spark, Rodinia x2, as in panels a–d) are
//! run at 90% arrival intensity under six policies:
//!
//! 1. **no cache sharing** (normalization baseline),
//! 2. **static allocation** (fully shared or fully private, whichever
//!    measures better),
//! 3. **dCat** (shared region granted statically to the bigger winner),
//! 4. **dynaSprint** (timeouts tuned at low rate, reused at 90%),
//! 5. **simple ML** (model-driven with a plain random forest, Fig. 8e),
//! 6. **model-driven (ours)** (deep-forest EA + queueing + SLO matching).
//!
//! Reported per workload: speedup in p95 response time over no-sharing.
//! Paper shape: ours ~2x median over no-sharing, 1.2–1.3x over
//! dCat/dynaSprint; simple ML beats dCat on most workloads but loses to the
//! full model.
//!
//! Usage: `cargo run --release -p stca-bench --bin fig8_speedup [--scale ...]`

use stca_baselines::policies::{no_sharing, policies_for, PolicyStrategy};
use stca_bench::policyeval::{make_policy_eval, score_policies_paired};
use stca_bench::table::{f2, Table};
use stca_bench::{build_pair_dataset, Scale};
use stca_cat::PairLayout;
use stca_core::{ModelConfig, PolicyExplorer, Predictor};
use stca_profiler::sampler::CounterOrdering;
use stca_workloads::BenchmarkId;

const EVAL_UTIL: f64 = 0.9;

fn groups(scale: Scale) -> Vec<(&'static str, (BenchmarkId, BenchmarkId))> {
    let all = vec![
        ("cloud (a)", (BenchmarkId::Redis, BenchmarkId::Social)),
        ("spark (b)", (BenchmarkId::Spkmeans, BenchmarkId::Spstream)),
        ("rodinia (c)", (BenchmarkId::Jacobi, BenchmarkId::Bfs)),
        ("rodinia (d)", (BenchmarkId::Kmeans, BenchmarkId::Knn)),
    ];
    match scale {
        Scale::Quick => all.into_iter().take(1).collect(),
        _ => all,
    }
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let layout = PairLayout::symmetric(2, 2);
    println!("Figure 8: speedup in p95 response time vs no cache sharing (90% arrival)\n");
    let mut t = Table::new(&[
        "group",
        "workload",
        "static",
        "dCat",
        "dCat-iter",
        "dynaSprint",
        "simple ML",
        "ours",
    ]);
    let mut summary: Vec<(&str, Vec<f64>)> = vec![
        ("static", vec![]),
        ("dCat", vec![]),
        ("dCat-iter", vec![]),
        ("dynaSprint", vec![]),
        ("simple ML", vec![]),
        ("ours", vec![]),
    ];
    for (gi, (label, pair)) in groups(scale).into_iter().enumerate() {
        stca_obs::info!("fig8 group {label}: {}+{}", pair.0, pair.1);
        let seed = 0xF8 + gi as u64 * 10_007;
        // paired evaluation seeds shared by every strategy
        let eval_seeds: Vec<u64> = (0..3).map(|k| seed ^ (0xE0A1 + k * 7919)).collect();
        // baseline
        let base = score_policies_paired(pair, EVAL_UTIL, &no_sharing(&layout), scale, &eval_seeds);
        // measured-strategy baselines
        let mut strategy_scores: Vec<Vec<f64>> = Vec::new();
        for (si, strat) in [
            PolicyStrategy::StaticBest,
            PolicyStrategy::DCat,
            PolicyStrategy::DCatIterative,
            PolicyStrategy::DynaSprint,
        ]
        .into_iter()
        .enumerate()
        {
            let mut eval = make_policy_eval(pair, EVAL_UTIL, scale, seed ^ ((si as u64) << 12));
            let policies = policies_for(strat, &layout, &mut eval);
            let score = score_policies_paired(pair, EVAL_UTIL, &policies, scale, &eval_seeds);
            stca_obs::info!("{strat:?}: scores {score:?}");
            strategy_scores.push(score);
        }
        // model-driven strategies: profile, train, explore, evaluate
        let ds = build_pair_dataset(
            pair,
            scale.conditions_per_pair() * 2,
            scale,
            CounterOrdering::Grouped,
            seed ^ 0xDA7A,
        );
        for (mi, simple) in [true, false].into_iter().enumerate() {
            let mcfg = if simple {
                ModelConfig::simple_ml(seed ^ 0x51)
            } else if ds.len() >= 30 {
                ModelConfig::standard(seed ^ 0xF0)
            } else {
                ModelConfig::quick(seed ^ 0xF0)
            };
            let predictor = Predictor::train(&ds.profile_set(), &mcfg);
            let profiles = ds.profile_set();
            let explorer = PolicyExplorer::new(&predictor, &profiles, pair.0, pair.1, EVAL_UTIL);
            let choice = explorer.explore();
            let policies = choice.policies(&layout);
            let score = score_policies_paired(pair, EVAL_UTIL, &policies, scale, &eval_seeds);
            let _ = mi;
            stca_obs::info!(
                "{}: T=({:.2},{:.2}) scores {score:?}",
                if simple { "simple ML" } else { "ours" },
                choice.timeout_a,
                choice.timeout_b
            );
            strategy_scores.push(score);
        }
        // rows: speedups per workload
        for (wi, name) in [pair.0, pair.1].into_iter().enumerate() {
            let speedups: Vec<f64> = strategy_scores
                .iter()
                .map(|s| base[wi] / s[wi].max(1e-12))
                .collect();
            for (s, (_, acc)) in speedups.iter().zip(summary.iter_mut()) {
                acc.push(*s);
            }
            t.row(&[
                label.into(),
                name.short_name().into(),
                f2(speedups[0]),
                f2(speedups[1]),
                f2(speedups[2]),
                f2(speedups[3]),
                f2(speedups[4]),
                f2(speedups[5]),
            ]);
        }
    }
    t.print();
    println!("\nMedian speedup over no-sharing:");
    let mut m = Table::new(&["strategy", "median speedup"]);
    for (name, mut vals) in summary {
        let med = stca_util::stats::quantile_in_place(&mut vals, 0.5);
        m.row(&[name.into(), f2(med)]);
    }
    m.print();
    println!("\nPaper shape: ours ~2x median vs no-sharing; ~1.2-1.3x vs dCat/dynaSprint;");
    println!("simple ML exceeds dCat on most workloads but trails the full model.");
    stca_obs::emit_run_report();
}
