//! Figure 6 — response-time prediction accuracy across modeling approaches.
//!
//! For a set of collocation pairs, profiles random Table-2 conditions in the
//! test environment, then evaluates six approaches (linear regression,
//! decision tree, CNN, queue model alone, queue + concepts, full approach)
//! on held-out conditions. Our approaches train on 33% of rows; competitors
//! get 70% (the paper's handicap). Reported: median and p95 absolute
//! percent error of predicted mean response time.
//!
//! Paper's result: ~50% (linreg), ~20% (tree), 26% (CNN), 23% (queue),
//! 11% median / 12% p95 (ours). The reproduction should preserve the
//! ordering and rough magnitudes.
//!
//! Usage: `cargo run --release -p stca-bench --bin fig6_accuracy [--scale quick|standard|full]`

use stca_bench::evalfig::{evaluate_approach, Approach};
use stca_bench::table::{pct, Table};
use stca_bench::{build_pair_dataset, Dataset, Scale};
use stca_profiler::sampler::CounterOrdering;
use stca_util::Rng64;
use stca_workloads::BenchmarkId;

fn pairs_for(scale: Scale) -> Vec<(BenchmarkId, BenchmarkId)> {
    match scale {
        Scale::Quick => vec![(BenchmarkId::Kmeans, BenchmarkId::Bfs)],
        Scale::Standard => vec![
            (BenchmarkId::Kmeans, BenchmarkId::Bfs),
            (BenchmarkId::Redis, BenchmarkId::Social),
            (BenchmarkId::Knn, BenchmarkId::Spstream),
        ],
        Scale::Full => vec![
            (BenchmarkId::Kmeans, BenchmarkId::Bfs),
            (BenchmarkId::Redis, BenchmarkId::Social),
            (BenchmarkId::Knn, BenchmarkId::Spstream),
            (BenchmarkId::Jacobi, BenchmarkId::Spkmeans),
            (BenchmarkId::Spkmeans, BenchmarkId::Redis),
            (BenchmarkId::Bfs, BenchmarkId::Social),
        ],
    }
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pairs = pairs_for(scale);
    let n_cond = scale.conditions_per_pair();
    let sim_queries = match scale {
        Scale::Quick => 400,
        Scale::Standard => 1500,
        Scale::Full => 3000,
    };
    stca_obs::info!(
        "fig6: profiling {} pairs x {} conditions (scale {:?})",
        pairs.len(),
        n_cond,
        scale
    );
    let mut dataset = Dataset::default();
    for (i, &pair) in pairs.iter().enumerate() {
        let d = build_pair_dataset(
            pair,
            n_cond,
            scale,
            CounterOrdering::Grouped,
            0x56A6 + i as u64 * 1000,
        );
        stca_obs::info!("profiled {}({}) -> {} rows", pair.0, pair.1, d.len());
        dataset.extend(d);
    }

    // paper protocol: test conditions are unseen — models must extrapolate
    // into the high-arrival-rate regime
    let (pool, test) = dataset.split_by_utilization(0.75);
    stca_obs::info!(
        "extrapolation split: {} low-util training pool, {} high-util test rows",
        pool.len(),
        test.len()
    );

    println!("Figure 6: accuracy of response-time predictions");
    println!(
        "({} profile rows; test = unseen high-arrival-rate conditions;",
        dataset.len()
    );
    println!("ours trains on 33% of the pool, competitors on 70%)\n");
    let mut t = Table::new(&[
        "approach",
        "train rows",
        "median APE",
        "p95 APE",
        "mean APE",
    ]);
    for approach in Approach::ALL {
        let mut rng = Rng64::new(0xF16 + approach as u64);
        let (train, _) = pool.split(approach.train_fraction(), &mut rng);
        let timer = stca_obs::StageTimer::new("bench.fig6.approach_seconds");
        let s = evaluate_approach(approach, &train, &test, sim_queries, 7 + approach as u64);
        stca_obs::info!(
            "{} done in {:.1}s (median {:.1}%)",
            approach.name(),
            timer.stop(),
            s.median
        );
        t.row(&[
            approach.name().to_string(),
            train.len().to_string(),
            pct(s.median),
            pct(s.p95),
            pct(s.mean),
        ]);
    }
    t.print();
    println!("\nPaper (for shape comparison): linreg ~50% median / >300% p95; tree ~20% / >100%;");
    println!("CNN 26% median; queue model 23%; ours 11% median / 12% p95.");
    stca_obs::emit_run_report();
}
