//! Figure 7b — generalization across processor cache sizes.
//!
//! The paper validated its models on five Xeon platforms with LLCs from
//! 20 MB to 72 MB, fully utilizing cores by collocating more workloads on
//! the bigger caches and reserving 2–4 MB per workload; median error stayed
//! below 15% on every platform. Here each platform is the corresponding
//! `xeon_with_llc_mb` geometry (scaled like the default platform); the
//! reservation grows with the cache as in the paper, and the secondary
//! column reports how many workloads the platform hosts at that reservation
//! (the pair under test plus its neighbours).
//!
//! Usage: `cargo run --release -p stca-bench --bin fig7b_cache_sizes [--scale ...]`

use stca_bench::dataset::run_conditions_customized;
use stca_bench::table::{pct, Table};
use stca_cachesim::HierarchyConfig;
use stca_cat::layout::{ChainLayout, ExperimentLayout};
use stca_core::{ModelConfig, Predictor};
use stca_deepforest::metrics::ape_summary;
use stca_profiler::sampler::CounterOrdering;
use stca_util::Rng64;
use stca_workloads::{BenchmarkId, RuntimeCondition, WorkloadSpec};

/// (LLC MB, per-workload reservation in scaled ways) — the paper reserves
/// 2 MB on the small platforms, 3-4 MB on the big ones; one way = 2 MB.
const PLATFORMS: [(usize, usize); 5] = [(20, 1), (30, 1), (40, 2), (59, 2), (72, 2)];

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let n_cond = scale.conditions_per_pair();
    println!("Figure 7b: prediction accuracy across LLC sizes");
    println!(
        "(fully-utilized platforms: a chain of workloads fills each cache;\n\
         the pair under test is {}({}) at the head of the chain)\n",
        pair.0, pair.1
    );
    let mut t = Table::new(&[
        "LLC",
        "ways",
        "reserved/workload",
        "collocated workloads",
        "median APE",
        "p95 APE",
    ]);
    // neighbours fill the rest of the chain, cycling through diverse mixes
    let fillers = [
        BenchmarkId::Redis,
        BenchmarkId::Social,
        BenchmarkId::Spstream,
        BenchmarkId::Knn,
        BenchmarkId::Jacobi,
        BenchmarkId::Spkmeans,
    ];
    for (pi, &(mb, private_ways)) in PLATFORMS.iter().enumerate() {
        let config = {
            let base = HierarchyConfig::xeon_with_llc_mb(mb);
            HierarchyConfig {
                l1d: base.l1d.scaled_down(8),
                l1i: base.l1i.scaled_down(8),
                l2: base.l2.scaled_down(16),
                llc: base.llc.scaled_down(64),
                latencies: base.latencies,
            }
        };
        let shared = 2;
        // fully utilize the platform: as many chain slots as the ways allow
        let n_workloads = ((config.llc.ways + shared) / (private_ways + shared)).clamp(2, 8);
        let chain = ChainLayout::new(n_workloads, private_ways, shared);
        assert!(chain.total_ways() <= config.llc.ways);
        let benchmarks: Vec<BenchmarkId> = [pair.0, pair.1]
            .into_iter()
            .chain(fillers.iter().copied().cycle())
            .take(n_workloads)
            .collect();
        let mut rng = Rng64::new(0x7B + pi as u64);
        let conditions: Vec<RuntimeCondition> = (0..n_cond)
            .map(|_| RuntimeCondition::random_chain(&benchmarks, &mut rng))
            .collect();
        let layout = ExperimentLayout::Chain(chain);
        let ds = run_conditions_customized(
            pair,
            &conditions,
            scale,
            CounterOrdering::Grouped,
            0x7B00 + pi as u64 * 131,
            |mut spec| {
                spec.config = config;
                spec.layout = layout.clone();
                spec
            },
        );
        let (pool, test) = ds.split_by_utilization(0.75);
        if pool.is_empty() || test.is_empty() {
            stca_obs::warn!("{mb} MB: degenerate split, skipping");
            continue;
        }
        let mcfg = if pool.len() >= 30 {
            ModelConfig::standard(0x7B2 + pi as u64)
        } else {
            ModelConfig::quick(0x7B2 + pi as u64)
        };
        let predictor = Predictor::train(&pool.profile_set(), &mcfg);
        let pred: Vec<f64> = test
            .rows
            .iter()
            .map(|r| {
                let es = WorkloadSpec::for_benchmark(r.benchmark).mean_service_time;
                predictor
                    .predict_response(&r.row, r.benchmark)
                    .mean_response
                    / es
            })
            .collect();
        let obs: Vec<f64> = test.rows.iter().map(|r| r.row.mean_response_norm).collect();
        let s = ape_summary(&pred, &obs);
        stca_obs::info!("{} MB done: median {:.1}%", mb, s.median);
        t.row(&[
            format!("{mb} MB"),
            config.llc.ways.to_string(),
            format!("{} MB", private_ways * 2),
            n_workloads.to_string(),
            pct(s.median),
            pct(s.p95),
        ]);
        let _ = &layout;
    }
    t.print();
    println!("\nPaper: median response-time error below 15% on every platform.");
    stca_obs::emit_run_report();
}
