//! Figure 7c — multi-grain scanning ablation.
//!
//! Varies the four MGS implementation knobs the paper studies and reports
//! the resulting response-time prediction error:
//!
//! * **counter ordering** — grouped-by-type (spatial locality) vs randomly
//!   shuffled; the paper saw error triple (5% → 15%) without locality;
//! * **window size** — a 4x decrease in window area doubled error;
//! * **sampling rate** — 1 sample / 5 s cost ~2 points over 1 / 2 s;
//! * **estimators** — too few trees degrades to queue-model accuracy.
//!
//! Usage: `cargo run --release -p stca-bench --bin fig7c_mgs [--scale ...]`

use stca_bench::dataset::run_conditions_customized;
use stca_bench::table::{pct, Table};
use stca_bench::{Dataset, Scale};
use stca_core::{ModelConfig, Predictor};
use stca_deepforest::metrics::ape_summary;
use stca_deepforest::MgsConfig;
use stca_profiler::sampler::CounterOrdering;
use stca_util::Rng64;
use stca_workloads::{BenchmarkId, RuntimeCondition, WorkloadSpec};

fn build(
    pair: (BenchmarkId, BenchmarkId),
    scale: Scale,
    ordering: CounterOrdering,
    sample_period: f64,
    seed: u64,
) -> Dataset {
    let mut rng = Rng64::new(seed);
    let conditions: Vec<RuntimeCondition> = (0..scale.conditions_per_pair())
        .map(|_| {
            let mut c = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
            c.sample_period = sample_period;
            c
        })
        .collect();
    run_conditions_customized(pair, &conditions, scale, ordering, seed ^ 0xCCC, |s| s)
}

fn score(ds: &Dataset, mgs: Option<MgsConfig>, seed: u64) -> (f64, f64) {
    let (pool, test) = ds.split_by_utilization(0.75);
    let mut cfg = if pool.len() >= 30 {
        ModelConfig::standard(seed)
    } else {
        ModelConfig::quick(seed)
    };
    cfg.ea_forest.mgs = mgs.clone();
    let predictor = Predictor::train(&pool.profile_set(), &cfg);
    let pred: Vec<f64> = test
        .rows
        .iter()
        .map(|r| {
            let es = WorkloadSpec::for_benchmark(r.benchmark).mean_service_time;
            predictor
                .predict_response(&r.row, r.benchmark)
                .mean_response
                / es
        })
        .collect();
    let obs: Vec<f64> = test.rows.iter().map(|r| r.row.mean_response_norm).collect();
    let s = ape_summary(&pred, &obs);
    (s.median, s.p95)
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let full_mgs = MgsConfig {
        window_sizes: vec![5, 10, 15],
        stride: 2,
        trees_per_window: 25,
        max_positions_per_sample: 40,
        ..MgsConfig::default()
    };
    stca_obs::info!("fig7c: building datasets (grouped/shuffled x 2s/5s sampling)");
    let grouped_2s = build(pair, scale, CounterOrdering::Grouped, 2.0, 0xA1);
    let shuffled_2s = build(pair, scale, CounterOrdering::Shuffled(99), 2.0, 0xA1);
    let grouped_5s = build(pair, scale, CounterOrdering::Grouped, 5.0, 0xA1);

    println!(
        "Figure 7c: multi-grain scanning ablation (pair {}({}))\n",
        pair.0, pair.1
    );
    let mut t = Table::new(&["setting", "median APE", "p95 APE"]);
    let mut row = |name: &str, (m, p): (f64, f64)| {
        stca_obs::info!("{name}: median {m:.1}%");
        t.row(&[name.into(), pct(m), pct(p)]);
    };
    row(
        "full (grouped, 5/10/15 windows, 2s, 25 trees)",
        score(&grouped_2s, Some(full_mgs.clone()), 1),
    );
    row(
        "shuffled counter ordering",
        score(&shuffled_2s, Some(full_mgs.clone()), 2),
    );
    row(
        "small windows (2/4)",
        score(
            &grouped_2s,
            Some(MgsConfig {
                window_sizes: vec![2, 4],
                ..full_mgs.clone()
            }),
            3,
        ),
    );
    row(
        "sampling every 5s",
        score(&grouped_5s, Some(full_mgs.clone()), 4),
    );
    row(
        "few estimators (3 trees/window)",
        score(
            &grouped_2s,
            Some(MgsConfig {
                trees_per_window: 3,
                ..full_mgs.clone()
            }),
            5,
        ),
    );
    row("no MGS at all (cascade only)", score(&grouped_2s, None, 6));
    t.print();
    println!("\nPaper: spatial ordering matters most (5% -> 15% when shuffled);");
    println!("4x smaller windows doubled error; 5s sampling cost ~2 points.");
    stca_obs::emit_run_report();
}
