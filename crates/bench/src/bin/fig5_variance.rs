//! Figure 5 — run-to-run variation of deep forests vs CNNs.
//!
//! One profiling dataset, N retrains of each model family with different
//! random seeds. Deep forests train layer-by-layer with no backpropagation,
//! so their accuracy is nearly identical across runs; CNNs overwrite weights
//! through backprop from random initializations and spread widely — the
//! paper found the worst CNN runs twice as inaccurate as any deep forest
//! run, and chose deep forests for that stability.
//!
//! Reported per family: training APE, validation APE and training time
//! (mean, min, max over the retrains).
//!
//! Usage: `cargo run --release -p stca-bench --bin fig5_variance [--scale ...]`

use stca_bench::table::{pct, Table};
use stca_bench::{build_pair_dataset, Dataset, Scale};
use stca_core::{ModelConfig, Predictor};
use stca_deepforest::metrics::ape_summary;
use stca_neuralnet::net::{ConvNet, NetConfig, NnSample};
use stca_profiler::sampler::CounterOrdering;
use stca_util::{OnlineStats, Rng64};
use stca_workloads::{BenchmarkId, WorkloadSpec};
use std::time::Instant;

fn standardized_nn(ds: &Dataset, mean: &[f64], std: &[f64]) -> Vec<NnSample> {
    ds.rows
        .iter()
        .map(|r| {
            let mut flat = r.row.flat_features();
            for ((v, m), s) in flat.iter_mut().zip(mean).zip(std) {
                *v = (*v - *m) / s.max(1e-9);
            }
            NnSample {
                scalars: flat,
                trace: stca_util::Matrix::zeros(0, 0),
            }
        })
        .collect()
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let retrains = match scale {
        Scale::Quick => 5,
        Scale::Standard => 15,
        Scale::Full => 100,
    };
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    stca_obs::info!("fig5: profiling dataset for {}({})", pair.0, pair.1);
    let dataset = build_pair_dataset(
        pair,
        scale.conditions_per_pair(),
        scale,
        CounterOrdering::Grouped,
        0xF15,
    );
    let mut rng = Rng64::new(1);
    let (train, test) = dataset.split(0.7, &mut rng);
    stca_obs::info!("{} train rows, {} test rows", train.len(), test.len());

    // shared standardization for the CNN
    let flat_dim = train.rows[0].row.flat_features().len();
    let mut stats = vec![OnlineStats::new(); flat_dim];
    for r in &train.rows {
        for (s, v) in stats.iter_mut().zip(r.row.flat_features()) {
            s.push(v);
        }
    }
    let mean: Vec<f64> = stats.iter().map(|s| s.mean()).collect();
    let std: Vec<f64> = stats.iter().map(|s| s.std_dev()).collect();

    let observe = |pred_train: &[f64], pred_test: &[f64]| {
        let obs_train: Vec<f64> = train
            .rows
            .iter()
            .map(|r| r.row.mean_response_norm)
            .collect();
        let obs_test: Vec<f64> = test.rows.iter().map(|r| r.row.mean_response_norm).collect();
        (
            ape_summary(pred_train, &obs_train).median,
            ape_summary(pred_test, &obs_test).median,
        )
    };

    let mut df_train = OnlineStats::new();
    let mut df_val = OnlineStats::new();
    let mut df_time = OnlineStats::new();
    let mut nn_train = OnlineStats::new();
    let mut nn_val = OnlineStats::new();
    let mut nn_time = OnlineStats::new();

    for run in 0..retrains {
        // deep forest (full pipeline, EA + queue)
        let t0 = Instant::now();
        let mut cfg = ModelConfig::quick(0xD4 + run as u64);
        cfg.sim_queries = 800;
        let predictor = Predictor::train(&train.profile_set(), &cfg);
        let predict = |ds: &Dataset| -> Vec<f64> {
            ds.rows
                .iter()
                .map(|r| {
                    let es = WorkloadSpec::for_benchmark(r.benchmark).mean_service_time;
                    predictor
                        .predict_response(&r.row, r.benchmark)
                        .mean_response
                        / es
                })
                .collect()
        };
        let p_train = predict(&train);
        let p_test = predict(&test);
        df_time.push(t0.elapsed().as_secs_f64());
        let (tr, va) = observe(&p_train, &p_test);
        df_train.push(tr);
        df_val.push(va);

        // CNN on the same flattened features
        let t0 = Instant::now();
        let nn_tr = standardized_nn(&train, &mean, &std);
        let nn_te = standardized_nn(&test, &mean, &std);
        let y: Vec<f64> = train
            .rows
            .iter()
            .map(|r| r.row.mean_response_norm)
            .collect();
        let net = ConvNet::fit(
            &nn_tr,
            &y,
            NetConfig {
                epochs: 60,
                hidden: 32,
                dropout: 0.1,
                seed: 0xC4 + run as u64,
                ..Default::default()
            },
        );
        nn_time.push(t0.elapsed().as_secs_f64());
        let (tr, va) = observe(&net.predict_all(&nn_tr), &net.predict_all(&nn_te));
        nn_train.push(tr);
        nn_val.push(va);
        stca_obs::info!(
            "run {run}: df val {:.1}%, cnn val {:.1}%",
            df_val.max(),
            nn_val.max()
        );
    }

    println!("Figure 5: random variation over {retrains} retrains");
    println!("(median APE of normalized mean response; training time in seconds)\n");
    let mut t = Table::new(&["model", "metric", "mean", "min", "max"]);
    let fam = |t: &mut Table, name: &str, tr: &OnlineStats, va: &OnlineStats, ti: &OnlineStats| {
        t.row(&[
            name.into(),
            "train APE".into(),
            pct(tr.mean()),
            pct(tr.min()),
            pct(tr.max()),
        ]);
        t.row(&[
            name.into(),
            "valid APE".into(),
            pct(va.mean()),
            pct(va.min()),
            pct(va.max()),
        ]);
        t.row(&[
            name.into(),
            "train time".into(),
            format!("{:.2}s", ti.mean()),
            format!("{:.2}s", ti.min()),
            format!("{:.2}s", ti.max()),
        ]);
    };
    fam(&mut t, "deep forest", &df_train, &df_val, &df_time);
    fam(&mut t, "CNN", &nn_train, &nn_val, &nn_time);
    t.print();
    let df_spread = df_val.max() - df_val.min();
    let nn_spread = nn_val.max() - nn_val.min();
    println!(
        "\nvalidation-APE spread (max-min): deep forest {df_spread:.1}pp vs CNN {nn_spread:.1}pp"
    );
    println!("Paper's finding: deep forests reliably low error; best CNNs can win but worst are ~2x worse.");
    stca_obs::emit_run_report();
}
