//! Soak test for the sharded serving fleet: replay a large request stream
//! through N shards behind the deterministic router while the fault plan
//! crashes, stalls, and flaps individual shards, and assert the fleet
//! robustness contract holds.
//!
//! Five runs, same seed:
//!
//! 1. **baseline** — no faults, 1 thread: the healthy fleet p99 and an
//!    all-shards load spread;
//! 2. **faulted @ 1 thread** — the shard fault plan on;
//! 3. **faulted @ 8 threads** — must be *bit-identical* to run 2 (fleet
//!    decision hash, per-shard accounting, reroute/shed tallies,
//!    response percentiles);
//! 4. **traced @ 1 and 8 threads** — the flight recorder on: the merged
//!    per-shard dump must be bit-identical across thread counts and the
//!    fleet decision hash unchanged (tracing observes, never perturbs);
//! 5. **logged audit** — a capped logged replay proving every offered
//!    request reaches exactly one final disposition (a shard-suffixed
//!    decision line or a router shed), however many reroute hops it took.
//!
//! Asserted invariants:
//!
//! * the fleet accounting identity on every run: every shard balances
//!   once `rerouted_out` is counted, and fleet-wide
//!   `offered = Σ per-shard (completed + shed + drained) + router_shed`;
//! * determinism: runs 2 and 3 agree bit-for-bit, and so do the two
//!   traced runs' merged dumps;
//! * fault domains are real: under a shard-crash plan at least two
//!   distinct shards crash *and* recover, and flushed work is rerouted;
//! * bounded degradation: the faulted fleet p99 stays under the
//!   structural ceiling `deadline + 4 x watchdog budget`.
//!
//! Usage:
//!   cargo run --release -p stca-bench --bin fleet_soak --
//!       [--requests N] [--shards N] [--router KIND] [--rate R]
//!       [--deadline S] [--fault-plan SPEC] [--seed N] [--audit N]
//!       [--metrics-out FILE]
//!
//! Defaults replay 10M requests through 8 shards under the `heavy`
//! preset (which carries 10% per-(shard, epoch) crash/stall/flap rates).
//! CI runs a short smoke (`--requests 120000 --fault-plan ci-default`).

#![warn(clippy::unwrap_used)]

use stca_fault::{FaultPlan, StcaError};
use stca_serve::SyntheticStream;
use stca_serve::{serve_fleet, AnalyticEa, FleetConfig, FleetReport, RouterKind, ServeConfig};
use stca_util::Args;
use std::process::ExitCode;

fn check(ok: bool, what: &str) -> Result<(), StcaError> {
    if ok {
        println!("  ok: {what}");
        Ok(())
    } else {
        Err(StcaError::invalid_input(format!(
            "fleet soak FAILED: {what}"
        )))
    }
}

fn run_once(
    cfg: &FleetConfig,
    plan: &FaultPlan,
    stream: &SyntheticStream,
    n: u64,
    threads: usize,
    label: &str,
) -> Result<(FleetReport, f64), StcaError> {
    stca_exec::set_threads(threads);
    let t0 = std::time::Instant::now();
    let r = serve_fleet(cfg, &AnalyticEa::default(), plan, stream, n)?;
    let wall_s = t0.elapsed().as_secs_f64();
    println!(
        "{label}: {n} reqs x {} shards in {:.2}s wall / {:.0}s virtual | completed {} rerouted {} router-shed {} | p99 {:.4}s | hash {:016x}",
        r.shards.len(),
        wall_s,
        r.virtual_end_s,
        r.completed(),
        r.rerouted,
        r.router_shed,
        r.p99_response_s,
        r.decision_hash
    );
    check(r.balanced(), &format!("{label}: fleet accounting balances"))?;
    check(
        r.offered == n,
        &format!("{label}: all {n} offered requests were accounted"),
    )?;
    Ok((r, wall_s))
}

/// Per-shard state plus fleet tallies, compared bit-for-bit between two
/// runs of the same plan at different thread counts.
fn check_bit_identical(a: &FleetReport, b: &FleetReport, what: &str) -> Result<(), StcaError> {
    check(
        a.decision_hash == b.decision_hash,
        &format!("{what}: fleet decision hash"),
    )?;
    check(
        a.rerouted == b.rerouted && a.router_shed == b.router_shed,
        &format!("{what}: reroute and router-shed tallies"),
    )?;
    let shards_agree = a.shards.len() == b.shards.len()
        && a.shards.iter().zip(&b.shards).all(|(x, y)| {
            x.accounting == y.accounting
                && x.rerouted_out == y.rerouted_out
                && x.crashes == y.crashes
                && x.recoveries == y.recoveries
                && x.p99_response_s.to_bits() == y.p99_response_s.to_bits()
        });
    check(shards_agree, &format!("{what}: per-shard state"))?;
    check(
        a.p99_response_s.to_bits() == b.p99_response_s.to_bits()
            && a.mean_response_s.to_bits() == b.mean_response_s.to_bits(),
        &format!("{what}: fleet response percentiles"),
    )
}

fn real_main() -> Result<(), StcaError> {
    let flags = Args::from_env()?;
    let n: u64 = flags.get_parsed("requests", 10_000_000u64)?;
    let shards: u32 = flags.get_parsed("shards", 8u32)?;
    let rate: f64 = flags.get_parsed("rate", 2_000.0f64)?;
    let deadline: f64 = flags.get_parsed("deadline", 0.5f64)?;
    let seed: u64 = flags.get_parsed("seed", 2022u64)?;
    let audit: u64 = flags.get_parsed("audit", 200_000u64)?.min(n);
    let router = match flags.get("router") {
        Some(name) => RouterKind::parse(name)?,
        None => RouterKind::Rendezvous,
    };
    let plan = match flags.get("fault-plan") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::heavy(),
    };
    let cfg = FleetConfig {
        base: ServeConfig::default(),
        shards,
        router,
        ..FleetConfig::default()
    };
    let stream = SyntheticStream {
        seed,
        rate,
        deadline_s: deadline,
        n_features: 6,
    };

    // 1: healthy baseline — every shard takes a share of the load
    let (baseline, _) = run_once(&cfg, &FaultPlan::none(), &stream, n, 1, "baseline")?;
    check(
        baseline.shards.iter().all(|s| s.accounting.admitted > 0),
        "baseline: the router spreads load across every shard",
    )?;

    // 2 + 3: faulted, 1 vs 8 threads
    let (faulted_1, _) = run_once(&cfg, &plan, &stream, n, 1, "faulted@1t")?;
    let (faulted_8, _) = run_once(&cfg, &plan, &stream, n, 8, "faulted@8t")?;
    check_bit_identical(&faulted_1, &faulted_8, "1 vs 8 threads")?;

    // fault domains: crashes hit >= 2 distinct shards, all of them came
    // back, and flushed work was rerouted rather than silently dropped
    if plan.shard_crash_prob > 0.0 {
        let crashed = faulted_1.crashed_shards();
        check(
            crashed.len() >= 2,
            &format!("crashes hit >= 2 distinct shards ({crashed:?})"),
        )?;
        check(
            faulted_1
                .shards
                .iter()
                .filter(|s| s.crashes > 0 && s.recoveries > 0)
                .count()
                >= 2,
            "at least 2 crashed shards also recovered",
        )?;
        check(
            faulted_1.rerouted > 0,
            &format!(
                "crashes rerouted flushed work ({} reroutes)",
                faulted_1.rerouted
            ),
        )?;
    }

    // per-shard and fleet-wide percentiles are reported and bounded: a
    // completed request starts within its deadline and pays at most two
    // watchdog budgets per stage
    let ceiling = deadline + 4.0 * cfg.base.watchdog_budget_s;
    for s in &faulted_1.shards {
        check(
            s.p99_response_s.is_finite() && s.p99_response_s <= ceiling,
            &format!(
                "shard {} p99 {:.4}s within the structural ceiling {ceiling:.4}s",
                s.id, s.p99_response_s
            ),
        )?;
    }
    check(
        faulted_1.p99_response_s.is_finite() && faulted_1.p99_response_s <= ceiling,
        &format!(
            "faulted fleet p99 {:.4}s within the structural ceiling {ceiling:.4}s (baseline {:.4}s)",
            faulted_1.p99_response_s, baseline.p99_response_s
        ),
    )?;

    // 4: traced runs — the merged per-shard dump is bit-identical across
    // thread counts and tracing never shifts the decision hash
    let traced_cfg = FleetConfig {
        base: ServeConfig {
            trace: Some(stca_trace::TraceConfig {
                seed: seed ^ 0x7ACE,
                ..stca_trace::TraceConfig::default()
            }),
            ..cfg.base.clone()
        },
        ..cfg.clone()
    };
    let (traced_1, _) = run_once(&traced_cfg, &plan, &stream, n, 1, "traced@1t")?;
    let (traced_8, _) = run_once(&traced_cfg, &plan, &stream, n, 8, "traced@8t")?;
    check(
        traced_1.trace_dump == traced_8.trace_dump,
        "merged trace dump is bit-identical at 1 vs 8 threads",
    )?;
    check(
        traced_1.decision_hash == faulted_1.decision_hash,
        "fleet decision hash is unchanged by tracing",
    )?;

    // 5: logged audit — every offered request gets exactly one final
    // disposition: a shard-suffixed decision line or a router shed.
    // Reroute hops are intermediate lines; seq-less event= lines narrate
    // shard faults and carry no disposition.
    let audit_cfg = FleetConfig {
        base: ServeConfig {
            keep_decision_log: true,
            ..cfg.base.clone()
        },
        ..cfg.clone()
    };
    let (audited, _) = run_once(&audit_cfg, &plan, &stream, audit, 8, "audit")?;
    let mut finals = vec![0u32; audit as usize];
    let mut hops = 0u64;
    for line in &audited.decision_log {
        let Some(rest) = line.strip_prefix("seq=") else {
            if !line.starts_with("event=shard_") {
                return Err(StcaError::invalid_input(format!(
                    "non-seq log line is not a shard fault event: {line:?}"
                )));
            }
            continue;
        };
        let seq: u64 = rest
            .split_whitespace()
            .next()
            .and_then(|tok| tok.parse().ok())
            .ok_or_else(|| StcaError::invalid_input(format!("unparseable log line {line:?}")))?;
        let slot = finals
            .get_mut(seq as usize)
            .ok_or_else(|| StcaError::invalid_input(format!("log names unknown seq {seq}")))?;
        if line.contains("disp=reroute ") {
            hops += 1;
        } else {
            // final: a shard decision line or a router shed
            if !(line.contains(" shard=") || line.contains("disp=router_shed")) {
                return Err(StcaError::invalid_input(format!(
                    "final log line names neither its shard nor the router: {line:?}"
                )));
            }
            *slot += 1;
        }
    }
    check(
        finals.iter().all(|&c| c == 1),
        &format!(
            "every one of {audit} audited requests reached exactly one final \
             disposition ({} lines, {} reroute hops)",
            audited.decision_log.len(),
            hops
        ),
    )?;
    check(
        hops == audited.rerouted,
        &format!(
            "reroute hop lines ({hops}) match the {} successful reroutes",
            audited.rerouted
        ),
    )?;

    if let Some(path) = flags.get("metrics-out") {
        let path = std::path::PathBuf::from(path);
        stca_obs::write_metrics(stca_obs::registry(), &path)
            .map_err(|e| StcaError::io(path.display().to_string(), e))?;
        println!("wrote metrics to {}", path.display());
    }
    println!("fleet soak passed");
    Ok(())
}

fn main() -> ExitCode {
    stca_obs::init_from_env();
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
