//! Diagnostic: Stage-3 fidelity with oracle inputs.
//!
//! For sampled conditions, compares the executor's measured mean/p95
//! response against the queueing simulator fed with the *measured* EA and
//! base service time (oracle Stage 2). Small oracle error means remaining
//! Figure-6 error is a learning problem; large oracle error means the
//! Stage-3 abstraction itself deviates from the test environment.

use stca_bench::table::{f2, Table};
use stca_bench::Scale;
use stca_profiler::ea::boost_rate_from_ea;
use stca_queuesim::{QueueSim, StationConfig};
use stca_util::Rng64;
use stca_workloads::{BenchmarkId, RuntimeCondition, WorkloadSpec};

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let mut rng = Rng64::new(0xD1A6);
    let mut t = Table::new(&[
        "util",
        "timeout",
        "bench",
        "EA",
        "base/es",
        "measured mean",
        "oracle mean",
        "err%",
        "measured p95",
        "oracle p95",
        "p95 err%",
    ]);
    let n = match scale {
        Scale::Quick => 4,
        _ => 10,
    };
    for i in 0..n {
        let cond = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
        stca_obs::info!("diag_stage3 condition {}/{n}", i + 1);
        let spec = scale.experiment_spec(cond.clone(), 0xA0 + i);
        let out = stca_profiler::executor::TestEnvironment::new(spec).run();
        for (j, w) in out.workloads.iter().enumerate() {
            let bspec = WorkloadSpec::for_benchmark(w.benchmark);
            let es = bspec.mean_service_time;
            let wc = &cond.workloads[j];
            let boost_rate =
                boost_rate_from_ea(w.effective_allocation, w.policy.allocation_ratio().max(1.0));
            let sim = QueueSim::new(
                StationConfig {
                    inter_arrival: stca_util::Distribution::Exponential {
                        mean: es / (wc.utilization * 2.0),
                    },
                    service: bspec.demand.scaled(w.base_service_default),
                    expected_service: es,
                    timeout_ratio: wc.timeout_ratio,
                    boost_rate,
                    servers: 2,
                    shared_boost: true,
                    measured_queries: 4000,
                    warmup_queries: 400,
                },
                0xBEEF + i,
            )
            .run();
            let measured = w.mean_response() / es;
            let oracle = sim.mean_response() / es;
            let measured_p95 = w.p95_response() / es;
            let oracle_p95 = sim.p95_response() / es;
            t.row(&[
                f2(wc.utilization),
                f2(wc.timeout_ratio),
                w.benchmark.short_name().into(),
                f2(w.effective_allocation),
                f2(w.base_service_default / es),
                f2(measured),
                f2(oracle),
                f2((oracle - measured).abs() / measured * 100.0),
                f2(measured_p95),
                f2(oracle_p95),
                f2((oracle_p95 - measured_p95).abs() / measured_p95 * 100.0),
            ]);
        }
    }
    t.print();
    stca_obs::emit_run_report();
}
