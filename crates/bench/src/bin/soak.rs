//! Soak test for the serving loop: replay a large request stream under an
//! injected fault plan and assert the robustness contract holds.
//!
//! Six runs, same seed:
//!
//! 1. **baseline** — no faults, 1 thread: the healthy p99;
//! 2. **faulted @ 1 thread** — the fault plan on;
//! 3. **faulted @ 8 threads** — must be *bit-identical* to run 2
//!    (decision hash, accounting, response percentiles);
//! 4. **traced @ 1 and 8 threads** — the flight recorder on at 1/64
//!    sampling: retained traces must be bit-identical across thread
//!    counts, the decision hash and virtual percentiles must match the
//!    untraced run exactly (tracing observes, never perturbs), and the
//!    wall-clock overhead is recorded;
//! 5. **logged audit** — a capped logged+traced replay proving every
//!    admitted request appears in the decision log exactly once (nothing
//!    lost, nothing duplicated) and that the flight recorder retained an
//!    agreeing trace for every shed / deadline-exceeded / drained
//!    decision (the retention invariant).
//!
//! Asserted invariants:
//!
//! * exact accounting on every run: `admitted = completed + shed + drained`;
//! * determinism: run 2 and run 3 agree bit-for-bit, and so do the two
//!   traced runs' dumps;
//! * tracing is free on the virtual clock: decision hash and p50/p99 are
//!   bit-identical with the recorder on or off;
//! * bounded degradation: faulted p99 stays under the structural ceiling
//!   `deadline + 4 x watchdog budget` (a completed request starts within
//!   its deadline and each of its two stages costs at most two watchdog
//!   budgets);
//! * under a plan with predictor faults, the breaker both trips and
//!   recovers.
//!
//! Usage:
//!   cargo run --release -p stca-bench --bin soak --
//!       [--requests N] [--rate R] [--deadline S] [--fault-plan SPEC]
//!       [--seed N] [--audit N] [--metrics-out FILE]
//!
//! Defaults replay 2M requests under the `heavy` preset. CI runs a short
//! smoke (`--requests 60000 --fault-plan ci-default`).

use stca_fault::{FaultPlan, StcaError};
use stca_serve::{serve, AnalyticEa, ServeConfig, ServeReport, SyntheticStream};
use stca_util::Args;
use std::process::ExitCode;

fn check(ok: bool, what: &str) -> Result<(), StcaError> {
    if ok {
        println!("  ok: {what}");
        Ok(())
    } else {
        Err(StcaError::invalid_input(format!("soak FAILED: {what}")))
    }
}

fn run_once(
    cfg: &ServeConfig,
    plan: &FaultPlan,
    stream: &SyntheticStream,
    n: u64,
    threads: usize,
    label: &str,
) -> Result<(ServeReport, f64), StcaError> {
    stca_exec::set_threads(threads);
    let t0 = std::time::Instant::now();
    let r = serve(cfg, &AnalyticEa::default(), plan, stream, n)?;
    let wall_s = t0.elapsed().as_secs_f64();
    let a = &r.accounting;
    println!(
        "{label}: {n} reqs in {:.2}s wall / {:.0}s virtual | completed {} shed {} drained {} | p99 {:.4}s | hash {:016x}",
        wall_s,
        r.virtual_end_s,
        a.completed,
        a.shed(),
        a.drained,
        r.p99_response_s,
        r.decision_hash
    );
    check(a.balanced(), &format!("{label}: accounting balances"))?;
    check(
        a.admitted == n,
        &format!("{label}: all {n} offered requests were accounted"),
    )?;
    Ok((r, wall_s))
}

fn real_main() -> Result<(), StcaError> {
    let flags = Args::from_env()?;
    let n: u64 = flags.get_parsed("requests", 2_000_000u64)?;
    let rate: f64 = flags.get_parsed("rate", 250.0f64)?;
    let deadline: f64 = flags.get_parsed("deadline", 0.5f64)?;
    let seed: u64 = flags.get_parsed("seed", 2022u64)?;
    let audit: u64 = flags.get_parsed("audit", 200_000u64)?.min(n);
    let plan = match flags.get("fault-plan") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::heavy(),
    };
    // a twitchy breaker (2 consecutive failures) so even the ci-default
    // plan's 2% fault rate trips it within a short smoke run
    let cfg = ServeConfig {
        breaker: stca_serve::BreakerConfig {
            failure_threshold: 2,
            ..stca_serve::BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let stream = SyntheticStream {
        seed,
        rate,
        deadline_s: deadline,
        n_features: 6,
    };

    // 1: healthy baseline
    let (baseline, _) = run_once(&cfg, &FaultPlan::none(), &stream, n, 1, "baseline")?;

    // 2 + 3: faulted, 1 vs 8 threads
    let (faulted_1, faulted_1_wall) = run_once(&cfg, &plan, &stream, n, 1, "faulted@1t")?;
    let (faulted_8, _) = run_once(&cfg, &plan, &stream, n, 8, "faulted@8t")?;
    check(
        faulted_1.decision_hash == faulted_8.decision_hash,
        "decision log is bit-identical at 1 vs 8 threads",
    )?;
    check(
        faulted_1.accounting == faulted_8.accounting,
        "accounting is identical at 1 vs 8 threads",
    )?;
    check(
        faulted_1.p99_response_s.to_bits() == faulted_8.p99_response_s.to_bits()
            && faulted_1.mean_response_s.to_bits() == faulted_8.mean_response_s.to_bits(),
        "response percentiles are bit-identical at 1 vs 8 threads",
    )?;

    // bounded degradation: a completed request starts within its deadline
    // and pays at most 2 watchdog budgets per stage
    let ceiling = deadline + 4.0 * cfg.watchdog_budget_s;
    check(
        faulted_1.p99_response_s.is_finite() && faulted_1.p99_response_s <= ceiling,
        &format!(
            "faulted p99 {:.4}s within the structural ceiling {:.4}s (baseline {:.4}s)",
            faulted_1.p99_response_s, ceiling, baseline.p99_response_s
        ),
    )?;
    if plan.predict_fail_prob > 0.0 {
        check(
            faulted_1.breaker_opens > 0,
            &format!("breaker tripped ({} opens)", faulted_1.breaker_opens),
        )?;
        check(
            faulted_1.breaker_closes > 0,
            &format!("breaker recovered ({} closes)", faulted_1.breaker_closes),
        )?;
    }

    // 4: traced runs — the flight recorder at its default 1/64 sampling
    // must change nothing on the virtual clock and retain bit-identical
    // trace sets at any thread count
    let traced_cfg = ServeConfig {
        trace: Some(stca_trace::TraceConfig {
            seed: seed ^ 0x7ACE,
            ..stca_trace::TraceConfig::default()
        }),
        ..cfg.clone()
    };
    let (traced_1, traced_1_wall) = run_once(&traced_cfg, &plan, &stream, n, 1, "traced@1t")?;
    let (traced_8, _) = run_once(&traced_cfg, &plan, &stream, n, 8, "traced@8t")?;
    check(
        traced_1.trace_dump == traced_8.trace_dump,
        "retained traces are bit-identical at 1 vs 8 threads",
    )?;
    check(
        traced_1.decision_hash == faulted_1.decision_hash,
        "decision hash is unchanged by tracing",
    )?;
    check(
        traced_1.p50_response_s.to_bits() == faulted_1.p50_response_s.to_bits()
            && traced_1.p99_response_s.to_bits() == faulted_1.p99_response_s.to_bits()
            && traced_1.virtual_end_s.to_bits() == faulted_1.virtual_end_s.to_bits(),
        "virtual p50/p99/end are bit-identical with tracing on",
    )?;
    // wall overhead is machine-dependent, so it is recorded (stdout +
    // soak.trace_overhead_frac gauge), not asserted
    let overhead = (traced_1_wall - faulted_1_wall) / faulted_1_wall.max(1e-9);
    stca_obs::gauge("soak.trace_overhead_frac").set(overhead);
    println!(
        "  trace overhead at 1/64 sampling: {:+.1}% wall ({:.2}s -> {:.2}s; virtual clock unchanged)",
        overhead * 100.0,
        faulted_1_wall,
        traced_1_wall
    );

    // 5: logged audit — every admitted request gets exactly one
    // disposition, and every error-class decision a retained trace
    let audit_cfg = ServeConfig {
        keep_decision_log: true,
        ..traced_cfg
    };
    let (audited, _) = run_once(&audit_cfg, &plan, &stream, audit, 8, "audit")?;
    let mut seen = vec![0u8; audit as usize];
    for line in &audited.decision_log {
        let seq: u64 = line
            .strip_prefix("seq=")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|tok| tok.parse().ok())
            .ok_or_else(|| StcaError::invalid_input(format!("unparseable log line {line:?}")))?;
        let slot = seen
            .get_mut(seq as usize)
            .ok_or_else(|| StcaError::invalid_input(format!("log names unknown seq {seq}")))?;
        *slot += 1;
    }
    check(
        seen.iter().all(|&c| c == 1),
        &format!(
            "every one of {audit} audited requests logged exactly once ({} lines)",
            audited.decision_log.len()
        ),
    )?;
    let dump = audited
        .trace_dump
        .as_ref()
        .ok_or_else(|| StcaError::invalid_input("audit run lost its trace dump"))?;
    let cc = stca_trace::report::cross_check(dump, audited.decision_log.iter().map(String::as_str));
    check(
        cc.holds(),
        &format!(
            "flight recorder retained an agreeing trace for every error-class \
             decision ({} matched; {} missing, {} disagreeing)",
            cc.error_matched,
            cc.missing.len(),
            cc.mismatched.len()
        ),
    )?;

    if let Some(path) = flags.get("metrics-out") {
        let path = std::path::PathBuf::from(path);
        stca_obs::write_metrics(stca_obs::registry(), &path)
            .map_err(|e| StcaError::io(path.display().to_string(), e))?;
        println!("wrote metrics to {}", path.display());
    }
    println!("soak passed");
    Ok(())
}

fn main() -> ExitCode {
    stca_obs::init_from_env();
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
