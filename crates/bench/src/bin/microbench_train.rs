//! Training microbenchmarks: before/after timings for the split-finding
//! engines and the allocation-free predict path.
//!
//! Each benchmark pairs the reference engine (per-node re-sorting, kept
//! in-tree behind `TreeConfig::reference`) against an optimized engine on
//! the same data and seeds, so the reported speedups compare bit-identical
//! (presorted) or tolerance-tested (histogram) models:
//!
//! * `forest_fit` — `Forest::fit` on a wide matrix (the fig6 EA shape);
//!   `hist64` shares one [`BinnedMatrix`] across all trees and is the
//!   headline speedup, `exact` shows the adaptive engine never regressing
//!   the default path;
//! * `forest_fit_narrow` — a narrow matrix where `BestOfSqrt` consults
//!   most columns and the presorted exact engine is selected;
//! * `tree_fit_all` — `BestOfAll` (classic CART), where every node sorts
//!   every feature and presorting pays off most;
//! * `forest_predict` / `cascade_predict` — absolute per-call cost of the
//!   allocation-free predict path.
//!
//! Usage:
//!   cargo run --release -p stca-bench --bin microbench_train --
//!       [--scale quick|standard] [--out BENCH_train.json]
//!       [--check BENCH_train.json]
//!
//! `--out` writes (or updates in place, preserving other scales) a JSON
//! baseline; `--check` compares the current run against a committed
//! baseline, calibrating for machine speed by the reference-engine ratio,
//! and fails if an exact-mode training time regressed more than 25%. When
//! the run itself is too noisy to judge (reference spread above 35% of the
//! median — common on saturated CI runners), the check logs and passes
//! instead of flaking.

use stca_bench::Scale;
use stca_deepforest::tree::{RegressionTree, SplitStrategy, TreeConfig};
use stca_deepforest::{Cascade, CascadeConfig, CascadeScratch, Forest, ForestConfig};
use stca_obs::json::Value;
use stca_util::{Matrix, Rng64, SeedStream};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// One benchmark's per-iteration timings, in seconds.
struct Stats {
    median: f64,
    min: f64,
    max: f64,
    samples: usize,
    iters: u64,
}

impl Stats {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("median_s".into(), Value::Number(self.median));
        m.insert("min_s".into(), Value::Number(self.min));
        m.insert("max_s".into(), Value::Number(self.max));
        m.insert("samples".into(), Value::Number(self.samples as f64));
        m.insert("iters".into(), Value::Number(self.iters as f64));
        Value::Object(m)
    }

    /// Relative spread — the noise gauge the regression check trusts.
    fn spread(&self) -> f64 {
        (self.max - self.min) / self.median
    }
}

/// Warm up once, then time `samples` batches of `iters` iterations.
fn bench(name: &str, samples: usize, iters: u64, mut f: impl FnMut(u64)) -> Stats {
    f(iters); // warm-up
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f(iters);
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let stats = Stats {
        median: per_iter[samples / 2],
        min: per_iter[0],
        max: per_iter[samples - 1],
        samples,
        iters,
    };
    let (unit, scale) = if stats.median < 1e-6 {
        ("ns", 1e9)
    } else if stats.median < 1e-3 {
        ("us", 1e6)
    } else {
        ("ms", 1e3)
    };
    println!(
        "{name:<28} {:>9.2} {unit}/iter  (min {:>9.2}, max {:>9.2}, {samples} samples x {iters} iters)",
        stats.median * scale,
        stats.min * scale,
        stats.max * scale,
    );
    stats
}

/// Tie-heavy synthetic training data (quantized counters next to continuous
/// ones, like the profiler's feature rows).
fn training_data(n: usize, f: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::zeros(0, 0);
    let mut y = Vec::with_capacity(n);
    let mut row = vec![0.0; f];
    for _ in 0..n {
        for (j, v) in row.iter_mut().enumerate() {
            let u = rng.next_f64();
            // every third feature quantized: ties are the hard case for
            // both the stable partition and the histogram edges
            *v = if j % 3 == 0 {
                (u * 8.0).floor() / 8.0
            } else {
                u
            };
        }
        y.push(2.0 * row[0] - row[1] + 0.5 * row[2] + 0.1 * rng.next_gaussian());
        x.push_row(&row);
    }
    (x, y)
}

struct Params {
    name: &'static str,
    /// Wide-matrix forest (the fig6 EA shape).
    wide: (usize, usize, usize),
    /// Narrow-matrix forest (presorted exact territory for BestOfSqrt).
    narrow: (usize, usize, usize),
    /// BestOfAll single tree (every node consults every feature).
    tree_all: (usize, usize),
    samples: usize,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Quick => Params {
            name: "quick",
            wide: (500, 32, 8),
            narrow: (800, 6, 10),
            tree_all: (1500, 24),
            samples: 5,
        },
        _ => Params {
            name: "standard",
            wide: (2000, 48, 16),
            narrow: (2000, 6, 12),
            tree_all: (6000, 32),
            samples: 7,
        },
    }
}

fn run(p: &Params) -> (BTreeMap<String, Stats>, BTreeMap<String, f64>) {
    let mut benches: BTreeMap<String, Stats> = BTreeMap::new();
    let mut add = |name: &str, s: Stats| {
        benches.insert(name.to_string(), s);
    };

    // --- Forest::fit, wide matrix ---
    let (n, f, trees) = p.wide;
    let (x, y) = training_data(n, f, 1);
    let fit = |config: ForestConfig| Forest::fit(&x, &y, config, &SeedStream::new(2));
    add(
        "forest_fit_reference",
        bench("forest_fit_reference", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(ForestConfig {
                    reference: true,
                    ..ForestConfig::random(trees)
                }));
            }
        }),
    );
    add(
        "forest_fit_exact",
        bench("forest_fit_exact", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(ForestConfig::random(trees)));
            }
        }),
    );
    add(
        "forest_fit_hist64",
        bench("forest_fit_hist64", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(ForestConfig {
                    bins: Some(64),
                    ..ForestConfig::random(trees)
                }));
            }
        }),
    );

    // --- predict path (allocation-free after warm-up) ---
    let forest = fit(ForestConfig::random(trees));
    let probe: Vec<f64> = (0..f).map(|j| (j as f64) / f as f64).collect();
    add(
        "forest_predict",
        bench("forest_predict", p.samples, 20_000, |it| {
            for _ in 0..it {
                black_box(forest.predict(black_box(&probe)));
            }
        }),
    );
    let cascade = Cascade::fit(
        &x,
        &y,
        CascadeConfig {
            levels: 2,
            forests_per_level: 4,
            trees_per_forest: 10,
            folds: 3,
            ..CascadeConfig::default()
        },
        &SeedStream::new(3),
    );
    let mut scratch = CascadeScratch::default();
    add(
        "cascade_predict",
        bench("cascade_predict", p.samples, 5_000, |it| {
            for _ in 0..it {
                black_box(cascade.predict_with(black_box(&probe), &mut scratch));
            }
        }),
    );

    // --- Forest::fit, narrow matrix (BestOfSqrt picks presorted) ---
    let (n, f, trees) = p.narrow;
    let (x, y) = training_data(n, f, 4);
    let fit = |reference: bool| {
        Forest::fit(
            &x,
            &y,
            ForestConfig {
                reference,
                ..ForestConfig::random(trees)
            },
            &SeedStream::new(5),
        )
    };
    add(
        "forest_fit_narrow_reference",
        bench("forest_fit_narrow_reference", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(true));
            }
        }),
    );
    add(
        "forest_fit_narrow_exact",
        bench("forest_fit_narrow_exact", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(false));
            }
        }),
    );

    // --- BestOfAll tree (presorting's best case) ---
    let (n, f) = p.tree_all;
    let (x, y) = training_data(n, f, 6);
    let fit = |reference: bool| {
        RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                strategy: SplitStrategy::BestOfAll,
                reference,
                ..TreeConfig::default()
            },
            &mut Rng64::new(7),
        )
    };
    add(
        "tree_fit_all_reference",
        bench("tree_fit_all_reference", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(true));
            }
        }),
    );
    add(
        "tree_fit_all_presorted",
        bench("tree_fit_all_presorted", p.samples, 1, |it| {
            for _ in 0..it {
                black_box(fit(false));
            }
        }),
    );

    let mut speedups = BTreeMap::new();
    let ratio = |num: &str, den: &str| benches[num].median / benches[den].median;
    speedups.insert(
        "forest_fit_exact".to_string(),
        ratio("forest_fit_reference", "forest_fit_exact"),
    );
    speedups.insert(
        "forest_fit_hist64".to_string(),
        ratio("forest_fit_reference", "forest_fit_hist64"),
    );
    speedups.insert(
        "forest_fit_narrow_exact".to_string(),
        ratio("forest_fit_narrow_reference", "forest_fit_narrow_exact"),
    );
    speedups.insert(
        "tree_fit_all_presorted".to_string(),
        ratio("tree_fit_all_reference", "tree_fit_all_presorted"),
    );
    println!();
    for (name, s) in &speedups {
        println!("speedup {name:<28} {s:.2}x vs reference");
    }
    (benches, speedups)
}

fn scale_to_json(benches: &BTreeMap<String, Stats>, speedups: &BTreeMap<String, f64>) -> Value {
    let mut m = BTreeMap::new();
    m.insert(
        "threads".into(),
        Value::Number(
            std::thread::available_parallelism()
                .map(|p| p.get() as f64)
                .unwrap_or(1.0),
        ),
    );
    m.insert(
        "benches".into(),
        Value::Object(
            benches
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        ),
    );
    m.insert(
        "speedups".into(),
        Value::Object(
            speedups
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v)))
                .collect(),
        ),
    );
    Value::Object(m)
}

/// Write `scale -> result` into `path`, preserving any other scales already
/// recorded there.
fn write_out(path: &str, scale_name: &str, result: Value) {
    let mut scales = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Value::parse(&text).ok())
        .and_then(|v| match v.get("scales") {
            Some(Value::Object(m)) => Some(m.clone()),
            _ => None,
        })
        .unwrap_or_default();
    scales.insert(scale_name.to_string(), result);
    let mut root = BTreeMap::new();
    root.insert("scales".into(), Value::Object(scales));
    let text = format!("{}\n", Value::Object(root));
    std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}

/// Exact-mode benches whose regression fails the check; the reference bench
/// paired with each calibrates away machine-speed differences.
const CHECKED: &[(&str, &str)] = &[
    ("forest_fit_exact", "forest_fit_reference"),
    ("forest_fit_narrow_exact", "forest_fit_narrow_reference"),
    ("tree_fit_all_presorted", "tree_fit_all_reference"),
];

/// Maximum tolerated exact-mode slowdown after calibration.
const MAX_REGRESSION: f64 = 1.25;
/// Above this relative spread the run is too noisy to judge — skip.
const MAX_SPREAD: f64 = 0.35;

fn check(path: &str, scale_name: &str, benches: &BTreeMap<String, Stats>) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("\ncheck skipped: cannot read baseline {path}: {e}");
            return 0;
        }
    };
    let baseline = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            println!("\ncheck skipped: cannot parse baseline {path}: {e}");
            return 0;
        }
    };
    let Some(base) = baseline.get("scales").and_then(|s| s.get(scale_name)) else {
        println!("\ncheck skipped: baseline {path} has no \"{scale_name}\" scale");
        return 0;
    };
    let base_median = |name: &str| {
        base.get("benches")
            .and_then(|b| b.get(name))
            .and_then(|b| b.get("median_s"))
            .and_then(Value::as_f64)
    };
    let noisy = CHECKED
        .iter()
        .flat_map(|&(fast, reference)| [fast, reference])
        .any(|name| benches[name].spread() > MAX_SPREAD);
    if noisy {
        println!(
            "\ncheck skipped: run too noisy to judge (spread > {MAX_SPREAD}); \
             not failing on an overloaded runner"
        );
        return 0;
    }
    let mut failures = 0;
    println!();
    for &(fast, reference) in CHECKED {
        let (Some(base_fast), Some(base_ref)) = (base_median(fast), base_median(reference)) else {
            println!("check: baseline lacks {fast}/{reference}; skipping that pair");
            continue;
        };
        // calibrate: the reference engine ran on both machines, so its
        // ratio isolates machine speed from code changes
        let calibration = benches[reference].median / base_ref;
        let expected = base_fast * calibration;
        let actual = benches[fast].median;
        let verdict = if actual > expected * MAX_REGRESSION {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check {fast:<28} {:.2} ms vs expected {:.2} ms (calibration {calibration:.2}x) {verdict}",
            actual * 1e3,
            expected * 1e3,
        );
    }
    if failures > 0 {
        println!("\ncheck FAILED: {failures} exact-mode bench(es) regressed > {MAX_REGRESSION}x");
        1
    } else {
        println!("\ncheck passed");
        0
    }
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let args = stca_util::Args::from_env().unwrap_or_default();
    let p = params(stca_bench::scale_from_args());
    println!(
        "training microbenchmarks, scale {} (median of {} samples)\n",
        p.name, p.samples
    );
    let (benches, speedups) = run(&p);
    if let Some(path) = args.get("out") {
        write_out(path, p.name, scale_to_json(&benches, &speedups));
    }
    let code = match args.get("check") {
        Some(path) => check(path, p.name, &benches),
        None => 0,
    };
    stca_obs::emit_run_report();
    std::process::exit(code);
}
