//! §5.1 "Profiling Time" — accuracy vs profiling budget, and stratified vs
//! uniform sampling.
//!
//! The paper: 15 minutes of profiling gave 14% median error, the standard
//! 30 minutes (~100 profiles) 11%, and 2.5 hours 8.6%; stratified sampling
//! cut profiling time by 67% at equal accuracy. Here the budget is the
//! number of profiled conditions; a fixed high-utilization holdout is
//! predicted after training on increasing budgets, sampled uniformly or by
//! the stratified procedure of §4.
//!
//! Usage: `cargo run --release -p stca-bench --bin profiling_time [--scale ...]`

use stca_bench::dataset::run_conditions;
use stca_bench::table::{pct, Table};
use stca_bench::{Dataset, Scale};
use stca_core::{ModelConfig, Predictor};
use stca_deepforest::metrics::ape_summary;
use stca_profiler::sampler::CounterOrdering;
use stca_profiler::stratified::{stratified_sample_with, StratifiedConfig};
use stca_util::Rng64;
use stca_workloads::{BenchmarkId, RuntimeCondition, WorkloadSpec};

fn score(train: &Dataset, test: &Dataset, seed: u64) -> f64 {
    let cfg = if train.len() >= 30 {
        ModelConfig::standard(seed)
    } else {
        ModelConfig::quick(seed)
    };
    let predictor = Predictor::train(&train.profile_set(), &cfg);
    let pred: Vec<f64> = test
        .rows
        .iter()
        .map(|r| {
            let es = WorkloadSpec::for_benchmark(r.benchmark).mean_service_time;
            predictor
                .predict_response(&r.row, r.benchmark)
                .mean_response
                / es
        })
        .collect();
    let obs: Vec<f64> = test.rows.iter().map(|r| r.row.mean_response_norm).collect();
    ape_summary(&pred, &obs).median
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let pair = (BenchmarkId::Kmeans, BenchmarkId::Bfs);
    let budgets: Vec<usize> = match scale {
        Scale::Quick => vec![4, 8],
        Scale::Standard => vec![8, 16, 32, 48],
        Scale::Full => vec![8, 16, 32, 64, 96],
    };
    let max_budget = *budgets.last().expect("nonempty");

    // fixed high-utilization holdout
    let mut rng = Rng64::new(0x907);
    let test_conditions: Vec<RuntimeCondition> = (0..16)
        .map(|_| {
            let mut c = RuntimeCondition::random_pair(pair.0, pair.1, &mut rng);
            c.workloads[0].utilization = rng.next_range(0.75, 0.95);
            c.workloads[1].utilization = rng.next_range(0.75, 0.95);
            c
        })
        .collect();
    stca_obs::info!(
        "profiling_time: building holdout ({} conditions)",
        test_conditions.len()
    );
    let test = run_conditions(
        pair,
        &test_conditions,
        scale,
        CounterOrdering::Grouped,
        0x907,
    );

    // uniform pool, reused at every budget (prefix)
    let uniform_conditions: Vec<RuntimeCondition> = (0..max_budget)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    stca_obs::info!("profiling_time: building uniform pool ({max_budget} conditions)");
    let uniform_pool = run_conditions(
        pair,
        &uniform_conditions,
        scale,
        CounterOrdering::Grouped,
        0x908,
    );

    println!(
        "Profiling-time study (pair {}({}); holdout = high-utilization)\n",
        pair.0, pair.1
    );
    let mut t = Table::new(&["budget (conditions)", "uniform median APE"]);
    for &b in &budgets {
        let train = Dataset {
            rows: uniform_pool.rows[..(2 * b).min(uniform_pool.len())].to_vec(),
        };
        let m = score(&train, &test, 0x909 + b as u64);
        stca_obs::info!("uniform budget {b}: {m:.1}%");
        t.row(&[b.to_string(), pct(m)]);
    }
    t.print();

    // stratified sampling at a reduced budget: seeds + refinement rounds.
    // The EA evaluations that guide stratification are real experiment runs
    // charged against the budget.
    let strat_cfg = StratifiedConfig {
        seeds: budgets[0].max(4),
        clusters: 3,
        per_cluster: 2,
        rounds: 2,
        jitter: 0.1,
    };
    let strat_budget = strat_cfg.seeds + strat_cfg.rounds * 3 * 2;
    stca_obs::info!("profiling_time: stratified sampling ({strat_budget} conditions)");
    let mut srng = Rng64::new(0x90A);
    // the profiled rows ride along as the evaluator payload; collecting
    // them after the fact (in draw order) keeps the evaluator Fn + Sync so
    // each batch of conditions can run in parallel
    let evaluated = stratified_sample_with(pair, strat_cfg, &mut srng, |cond| {
        let ds = run_conditions(
            pair,
            std::slice::from_ref(cond),
            scale,
            CounterOrdering::Grouped,
            0x90B,
        );
        (ds.rows[0].row.ea, ds)
    });
    let mut strat_rows = Dataset::default();
    for e in &evaluated {
        strat_rows.extend(e.payload.clone());
    }
    let strat_score = score(&strat_rows, &test, 0x90C);
    let uniform_same = {
        let train = Dataset {
            rows: uniform_pool.rows[..(2 * evaluated.len()).min(uniform_pool.len())].to_vec(),
        };
        score(&train, &test, 0x90D)
    };
    println!(
        "\nStratified vs uniform at equal budget ({} conditions):",
        evaluated.len()
    );
    let mut s = Table::new(&["sampling", "median APE"]);
    s.row(&["uniform".into(), pct(uniform_same)]);
    s.row(&["stratified (seeds+refine)".into(), pct(strat_score)]);
    s.print();
    println!("\nPaper: 15 min -> 14%, 30 min -> 11%, 2.5 h -> 8.6%; stratified sampling");
    println!("reduced profiling time by 67% at equal accuracy.");
    stca_obs::emit_run_report();
}
