//! Table 1 — benchmark cache-access characterization.
//!
//! Runs each Table-1 benchmark solo on the default platform (private 2-way
//! allocation, then a full-cache allocation) and prints its measured cache
//! behaviour next to the paper's qualitative description: LLC miss ratio,
//! L1d hit rate, footprint, and the speedup a full-cache allocation buys
//! (the benchmark's cache sensitivity).
//!
//! Usage: `cargo run --release -p stca-bench --bin table1_workloads [--scale quick]`

use stca_bench::table::{f2, pct, Table};
use stca_cachesim::{Counter, Hierarchy, HierarchyConfig};
use stca_cat::AllocationSetting;
use stca_util::Rng64;
use stca_workloads::{AccessGenerator, BenchmarkId, WorkloadSpec};

/// Drive `n` accesses of a benchmark through a fresh hierarchy under the
/// given allocation; returns (llc misses per kilo-access, l1d miss ratio,
/// cycles/access).
fn characterize(
    spec: &WorkloadSpec,
    config: &HierarchyConfig,
    alloc: AllocationSetting,
    n: u64,
    seed: u64,
) -> (f64, f64, f64) {
    let mut hier = Hierarchy::new(*config, seed);
    hier.set_llc_mask(0, alloc.to_cbm(config.llc.ways).expect("valid alloc"));
    let mut gen = AccessGenerator::new(spec.pattern_for(config), 0, spec.store_fraction, seed);
    let mut rng = Rng64::new(seed ^ 0xF00D);
    // warm-up pass so steady-state behaviour is measured
    for _ in 0..n / 2 {
        let (a, k) = gen.next_access();
        hier.access(0, a, k);
    }
    let before = hier.counters_of(0);
    for _ in 0..n {
        let (a, k) = gen.next_access();
        hier.access(0, a, k);
        if rng.next_bool(spec.ifetch_per_access) {
            let (ai, ki) = gen.next_ifetch();
            hier.access(0, ai, ki);
        }
    }
    hier.retire(
        0,
        n * spec.instructions_per_access,
        n * spec.instructions_per_access,
    );
    let c = hier.counters_of(0).delta(&before);
    let llc_mpka = c.get(Counter::LlcMisses) as f64 * 1000.0 / n as f64;
    let l1_acc = c.get(Counter::L1dLoads) + c.get(Counter::L1dStores);
    let l1_miss = c.get(Counter::L1dLoadMisses) + c.get(Counter::L1dStoreMisses);
    let l1_ratio = if l1_acc > 0 {
        l1_miss as f64 / l1_acc as f64
    } else {
        0.0
    };
    let cpa = c.get(Counter::Cycles) as f64 / n as f64;
    (llc_mpka, l1_ratio, cpa)
}

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    let scale = stca_bench::scale_from_args();
    let n: u64 = match scale {
        stca_bench::Scale::Quick => 40_000,
        stca_bench::Scale::Standard => 200_000,
        stca_bench::Scale::Full => 800_000,
    };
    let config = HierarchyConfig::experiment_default();
    let ways = config.llc.ways;
    println!("Table 1: benchmark cache-access characterization");
    println!(
        "(platform: {}-way LLC, {} KB; accesses per run: {})\n",
        ways,
        config.llc.size_bytes / 1024,
        n
    );
    let mut t = Table::new(&[
        "benchmark",
        "footprint(ways)",
        "LLC MPKA (2w)",
        "L1d miss",
        "full-cache speedup",
        "paper character",
    ]);
    for id in BenchmarkId::ALL {
        let spec = WorkloadSpec::for_benchmark(id);
        let private = AllocationSetting::new(0, 2);
        let full = AllocationSetting::new(0, ways);
        let (llc_p, l1_p, cpa_p) = characterize(&spec, &config, private, n, 42);
        let (_, _, cpa_f) = characterize(&spec, &config, full, n, 42);
        stca_obs::info!(
            "{}: {:.2} LLC MPKA, {:.2}x full-cache speedup",
            id,
            llc_p,
            cpa_p / cpa_f
        );
        t.row(&[
            id.short_name().to_string(),
            f2(spec.footprint_ways(&config)),
            f2(llc_p),
            pct(l1_p * 100.0),
            format!("{:.2}x", cpa_p / cpa_f),
            spec.cache_character.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("Expected orderings: knn lowest LLC misses per kilo-access; spstream/redis high;");
    println!("jacobi/bfs moderate; cache-sensitive benchmarks show >1x full-cache speedup.");
    stca_obs::emit_run_report();
}
