//! Soak test for the drift-aware model lifecycle: replay a request
//! stream through a sharded fleet while the fault plan re-rolls drift
//! offsets, fails/slows injected retrains, and corrupts promotions, and
//! assert the lifecycle contract holds.
//!
//! Four runs, same seed:
//!
//! 1. **baseline** — lifecycle off, no faults, 1 thread: the reference
//!    wall time and decision hash;
//! 2. **inert** — lifecycle off, the drift plan on: lifecycle faults
//!    must not touch serving (same decision hash as run 1);
//! 3. **adapt @ 1 thread** — lifecycle on under the drift plan: drifts
//!    fire, candidates retrain and shadow-score, promotions land, and
//!    the corrupt ones roll back;
//! 4. **adapt @ 8 threads** — must be *bit-identical* to run 3 (fleet
//!    decision hash, per-shard accounting, and per-shard lifecycle
//!    stats).
//!
//! Asserted invariants:
//!
//! * fleet accounting stays exact on every run — promotions and
//!   rollbacks never lose or duplicate a request;
//! * with the lifecycle off, the lifecycle fault keys are inert;
//! * the drift plan produces >= 1 promotion *and* >= 1 rollback;
//! * determinism: runs 3 and 4 agree bit-for-bit.
//!
//! `--out FILE` records retrain wall latency (aggregated over the
//! per-shard `serve.shardN.adapt.retrain_seconds` histograms) and the
//! shadow/lifecycle wall overhead vs the baseline run to a JSON file;
//! the committed `BENCH_adapt.json` holds a reference capture.
//!
//! Usage:
//!   cargo run --release -p stca-bench --bin adapt_soak --
//!       [--requests N] [--shards N] [--rate R] [--deadline S]
//!       [--fault-plan SPEC] [--seed N] [--out FILE] [--metrics-out FILE]
//!
//! Defaults replay 1M requests through 4 shards under a drift-heavy
//! plan. CI runs a short smoke (`--requests 120000`).

#![warn(clippy::unwrap_used)]

use stca_fault::{FaultPlan, StcaError};
use stca_serve::{
    serve_fleet, AdaptConfig, AnalyticEa, FleetConfig, FleetReport, ServeConfig, SyntheticStream,
};
use stca_util::Args;
use std::process::ExitCode;

fn check(ok: bool, what: &str) -> Result<(), StcaError> {
    if ok {
        println!("  ok: {what}");
        Ok(())
    } else {
        Err(StcaError::invalid_input(format!(
            "adapt soak FAILED: {what}"
        )))
    }
}

fn run_once(
    cfg: &FleetConfig,
    plan: &FaultPlan,
    stream: &SyntheticStream,
    n: u64,
    threads: usize,
    label: &str,
) -> Result<(FleetReport, f64), StcaError> {
    stca_exec::set_threads(threads);
    let t0 = std::time::Instant::now();
    let r = serve_fleet(cfg, &AnalyticEa::default(), plan, stream, n)?;
    let wall_s = t0.elapsed().as_secs_f64();
    let (promos, rollbacks) = lifecycle_totals(&r);
    println!(
        "{label}: {n} reqs x {} shards in {:.2}s wall / {:.0}s virtual | completed {} | \
         promotions {} rollbacks {} | p99 {:.4}s | hash {:016x}",
        r.shards.len(),
        wall_s,
        r.virtual_end_s,
        r.completed(),
        promos,
        rollbacks,
        r.p99_response_s,
        r.decision_hash
    );
    check(r.balanced(), &format!("{label}: fleet accounting balances"))?;
    check(
        r.offered == n,
        &format!("{label}: all {n} offered requests were accounted"),
    )?;
    Ok((r, wall_s))
}

/// Fleet-wide (promotions, rollbacks) across every shard's lifecycle.
fn lifecycle_totals(r: &FleetReport) -> (u64, u64) {
    r.shards
        .iter()
        .filter_map(|s| s.adapt.as_ref())
        .fold((0, 0), |(p, rb), a| (p + a.promotions, rb + a.rollbacks))
}

/// Per-shard state plus lifecycle stats, compared bit-for-bit between
/// two runs of the same plan at different thread counts.
fn check_bit_identical(a: &FleetReport, b: &FleetReport, what: &str) -> Result<(), StcaError> {
    check(
        a.decision_hash == b.decision_hash,
        &format!("{what}: fleet decision hash"),
    )?;
    let shards_agree = a.shards.len() == b.shards.len()
        && a.shards.iter().zip(&b.shards).all(|(x, y)| {
            x.accounting == y.accounting
                && x.adapt == y.adapt
                && x.p99_response_s.to_bits() == y.p99_response_s.to_bits()
        });
    check(
        shards_agree,
        &format!("{what}: per-shard accounting and lifecycle stats"),
    )?;
    check(
        a.p99_response_s.to_bits() == b.p99_response_s.to_bits()
            && a.mean_response_s.to_bits() == b.mean_response_s.to_bits(),
        &format!("{what}: fleet response percentiles"),
    )
}

fn real_main() -> Result<(), StcaError> {
    let flags = Args::from_env()?;
    let n: u64 = flags.get_parsed("requests", 1_000_000u64)?;
    let shards: u32 = flags.get_parsed("shards", 4u32)?;
    let rate: f64 = flags.get_parsed("rate", 1_200.0f64)?;
    let deadline: f64 = flags.get_parsed("deadline", 0.25f64)?;
    let seed: u64 = flags.get_parsed("seed", 2022u64)?;
    let plan = match flags.get("fault-plan") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::parse(
            "drift_burst=0.8,retrain_fail=0.15,retrain_slow=0.15,promote_corrupt=0.5,seed=2022",
        )?,
    };
    let adapt = AdaptConfig {
        enabled: true,
        epoch_s: 2.0,
        window: 128,
        min_samples: 32,
        drift_threshold: 1.5,
        shadow_requests: 32,
        agree_tol: 0.25,
        promote_agreement: 0.5,
        guard_requests: 64,
        guard_band: 1.5,
        history: 4,
        ..AdaptConfig::default()
    };
    let base_cfg = FleetConfig {
        base: ServeConfig {
            queue_capacity: 32,
            ..ServeConfig::default()
        },
        shards,
        ..FleetConfig::default()
    };
    let adapt_cfg = FleetConfig {
        base: ServeConfig {
            adapt,
            ..base_cfg.base.clone()
        },
        ..base_cfg.clone()
    };
    let stream = SyntheticStream {
        seed,
        rate,
        deadline_s: deadline,
        n_features: 6,
    };

    // 1 + 2: lifecycle off — with and without the drift plan. Lifecycle
    // fault keys only act through the lifecycle, so the hashes agree.
    let (healthy, base_wall) = run_once(&base_cfg, &FaultPlan::none(), &stream, n, 1, "baseline")?;
    let (inert, _) = run_once(&base_cfg, &plan, &stream, n, 1, "inert")?;
    check(
        inert.decision_hash == healthy.decision_hash,
        "lifecycle fault keys are inert while the lifecycle is off",
    )?;

    // 3 + 4: lifecycle on, 1 vs 8 threads
    let (adapt_1, adapt_wall) = run_once(&adapt_cfg, &plan, &stream, n, 1, "adapt@1t")?;
    let (adapt_8, _) = run_once(&adapt_cfg, &plan, &stream, n, 8, "adapt@8t")?;
    check_bit_identical(&adapt_1, &adapt_8, "1 vs 8 threads")?;

    let (promos, rollbacks) = lifecycle_totals(&adapt_1);
    let (drifts, retrains, guard_passes, shadow_scored) = adapt_1
        .shards
        .iter()
        .filter_map(|s| s.adapt.as_ref())
        .fold((0u64, 0u64, 0u64, 0u64), |(d, rt, g, sh), a| {
            (
                d + a.drifts,
                rt + a.retrains,
                g + a.guard_passes,
                sh + a.shadow_scored,
            )
        });
    check(drifts >= 1, &format!("drift fired ({drifts} drifts)"))?;
    check(
        retrains >= 1,
        &format!("candidates retrained ({retrains} retrains)"),
    )?;
    check(
        promos >= 1,
        &format!("at least one guarded promotion landed ({promos})"),
    )?;
    check(
        rollbacks >= 1,
        &format!("at least one corrupt promotion rolled back ({rollbacks})"),
    )?;

    // retrain wall latency, aggregated over the per-shard histograms
    let mut retrain_count = 0u64;
    let mut retrain_sum = 0.0f64;
    let mut retrain_min = f64::INFINITY;
    let mut retrain_max = 0.0f64;
    for id in 0..shards {
        let h = stca_obs::histogram(&format!("serve.shard{id}.adapt.retrain_seconds"));
        if h.count() == 0 {
            continue;
        }
        retrain_count += h.count();
        retrain_sum += h.sum();
        retrain_min = retrain_min.min(h.min());
        retrain_max = retrain_max.max(h.max());
    }
    check(
        retrain_count >= retrains,
        &format!("retrain latency histogram saw every retrain ({retrain_count})"),
    )?;
    let retrain_mean = retrain_sum / retrain_count.max(1) as f64;
    let overhead = (adapt_wall - base_wall) / base_wall.max(1e-9);
    println!(
        "retrain wall: count {retrain_count} mean {:.6}s min {:.6}s max {:.6}s | \
         lifecycle overhead {:+.1}% ({:.2}s -> {:.2}s wall)",
        retrain_mean,
        retrain_min,
        retrain_max,
        overhead * 100.0,
        base_wall,
        adapt_wall
    );

    if let Some(path) = flags.get("out") {
        let json = format!(
            "{{\"requests\":{n},\"shards\":{shards},\
             \"retrain\":{{\"count\":{retrain_count},\"mean_s\":{retrain_mean},\
             \"min_s\":{retrain_min},\"max_s\":{retrain_max}}},\
             \"overhead\":{{\"baseline_wall_s\":{base_wall},\
             \"adapt_wall_s\":{adapt_wall},\"ratio\":{overhead}}},\
             \"lifecycle\":{{\"drifts\":{drifts},\"retrains\":{retrains},\
             \"promotions\":{promos},\"rollbacks\":{rollbacks},\
             \"guard_passes\":{guard_passes},\"shadow_scored\":{shadow_scored}}}}}\n"
        );
        std::fs::write(path, json).map_err(|e| StcaError::io(path.to_string(), e))?;
        println!("wrote bench record to {path}");
    }
    if let Some(path) = flags.get("metrics-out") {
        let path = std::path::PathBuf::from(path);
        stca_obs::write_metrics(stca_obs::registry(), &path)
            .map_err(|e| StcaError::io(path.display().to_string(), e))?;
        println!("wrote metrics to {}", path.display());
    }
    println!("adapt soak passed");
    Ok(())
}

fn main() -> ExitCode {
    stca_obs::init_from_env();
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
