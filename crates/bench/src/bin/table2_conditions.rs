//! Table 2 — the runtime-condition space.
//!
//! Prints the supported setting ranges and demonstrates coverage by drawing
//! a sample of random conditions and summarizing their spread (the profiling
//! stage samples this space, uniformly or stratified).
//!
//! Usage: `cargo run --release -p stca-bench --bin table2_conditions`

use stca_bench::table::{f2, Table};
use stca_util::{Percentiles, Rng64};
use stca_workloads::conditions::bounds;
use stca_workloads::{BenchmarkId, RuntimeCondition};

fn main() {
    stca_obs::init_from_env();
    stca_exec::init_from_env_and_args();
    println!("Table 2: static runtime conditions for each online service\n");
    let mut t = Table::new(&["description", "supported settings"]);
    t.row(&[
        "collocated services sharing cache lines".into(),
        BenchmarkId::ALL
            .iter()
            .map(|b| b.short_name())
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t.row(&[
        "query inter-arrival rate (rel. to service time)".into(),
        format!(
            "{:.0}% - {:.0}%",
            bounds::MIN_UTIL * 100.0,
            bounds::MAX_UTIL * 100.0
        ),
    ]);
    t.row(&[
        "timeout policy (rel. to service time)".into(),
        format!(
            "{:.0}% (always shared) - {:.0}% (never short-term)",
            bounds::MIN_TIMEOUT * 100.0,
            bounds::MAX_TIMEOUT * 100.0
        ),
    ]);
    t.row(&[
        "cache usage sampling".into(),
        format!("1 Hz - every {:.0} seconds", bounds::MAX_SAMPLE_PERIOD),
    ]);
    t.print();

    // coverage check: draw random conditions, report quantiles
    let mut rng = Rng64::new(2022);
    let mut utils = Percentiles::new();
    let mut timeouts = Percentiles::new();
    let n = 2000;
    for _ in 0..n {
        let c = RuntimeCondition::random_pair(BenchmarkId::Redis, BenchmarkId::Social, &mut rng);
        assert!(c.in_bounds());
        for w in &c.workloads {
            utils.push(w.utilization);
            timeouts.push(w.timeout_ratio);
        }
    }
    println!("\nSampling coverage over {n} random conditions:");
    let mut c = Table::new(&["dimension", "p5", "p50", "p95"]);
    c.row(&[
        "utilization".into(),
        f2(utils.quantile(0.05)),
        f2(utils.quantile(0.50)),
        f2(utils.quantile(0.95)),
    ]);
    c.row(&[
        "timeout ratio".into(),
        f2(timeouts.quantile(0.05)),
        f2(timeouts.quantile(0.50)),
        f2(timeouts.quantile(0.95)),
    ]);
    c.print();
    println!(
        "\nPairwise collocations covered by the profiling harness: {}",
        RuntimeCondition::all_pairs().len()
    );
    stca_obs::emit_run_report();
}
