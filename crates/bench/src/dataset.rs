//! Parallel profile-dataset construction.
//!
//! A dataset is a list of labeled profile rows: for each sampled runtime
//! condition of a collocation pair, one row per workload, carrying the
//! Eq.-2 features and the measured ground truth (EA and response times).
//! Experiments are embarrassingly parallel and each condition carries its
//! own deterministic seed, so `stca_exec::par_map_indexed` runs them on the
//! shared pool and returns rows in condition order at any thread count.

use stca_fault::{Checkpoint, FaultPlan, RetryPolicy, StcaError};
use stca_profiler::executor::{run_experiment_checked, ExperimentSpec, TestEnvironment};
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_profiler::sampler::CounterOrdering;
use stca_profiler::storage;
use stca_util::Rng64;
use stca_workloads::{BenchmarkId, RuntimeCondition};
use std::path::Path;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke test: tiny runs, few conditions.
    Quick,
    /// Default: minutes per figure.
    Standard,
    /// Paper scale: more conditions and longer runs.
    Full,
}

impl Scale {
    /// Conditions sampled per collocation pair.
    pub fn conditions_per_pair(&self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Standard => 24,
            Scale::Full => 60,
        }
    }

    /// Shape of each experiment run.
    pub fn experiment_spec(&self, condition: RuntimeCondition, seed: u64) -> ExperimentSpec {
        match self {
            Scale::Quick => ExperimentSpec::quick(condition, seed),
            Scale::Standard => ExperimentSpec {
                measured_queries: 200,
                warmup_queries: 30,
                accesses_per_query: Some(1500),
                ..ExperimentSpec::standard(condition, seed)
            },
            Scale::Full => ExperimentSpec::standard(condition, seed),
        }
    }
}

/// One labeled observation.
#[derive(Debug, Clone)]
pub struct LabeledRow {
    /// The target workload's benchmark.
    pub benchmark: BenchmarkId,
    /// The collocation pair `(target, partner)`.
    pub pair: (BenchmarkId, BenchmarkId),
    /// Eq.-2 features + measured targets.
    pub row: ProfileRow,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// All rows.
    pub rows: Vec<LabeledRow>,
}

impl Dataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Profile set of all rows (feature/label view).
    pub fn profile_set(&self) -> ProfileSet {
        let mut set = ProfileSet::new();
        for r in &self.rows {
            set.push(r.row.clone());
        }
        set
    }

    /// Rows whose target workload belongs to `pair` (ordered).
    pub fn for_pair(&self, pair: (BenchmarkId, BenchmarkId)) -> Dataset {
        Dataset {
            rows: self
                .rows
                .iter()
                .filter(|r| r.pair == pair)
                .cloned()
                .collect(),
        }
    }

    /// Random index split (train, test).
    pub fn split(&self, train_fraction: f64, rng: &mut Rng64) -> (Dataset, Dataset) {
        let n = self.rows.len();
        let n_train = ((n as f64) * train_fraction).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let take = |ids: &[usize]| Dataset {
            rows: ids.iter().map(|&i| self.rows[i].clone()).collect(),
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: Dataset) {
        self.rows.extend(other.rows);
    }

    /// Extrapolation split on the target workload's utilization: rows at or
    /// below `threshold` form the training pool, rows above it the test
    /// set. This is the paper's protocol — *"testing data was not used
    /// during training to ensure models accurately extrapolated to new,
    /// unseen conditions"* — in its sharpest form: test conditions sit in
    /// the high-arrival-rate regime where queueing delay grows non-linearly,
    /// which direct regressors cannot extrapolate but a queueing model can.
    pub fn split_by_utilization(&self, threshold: f64) -> (Dataset, Dataset) {
        let (low, high): (Vec<LabeledRow>, Vec<LabeledRow>) = self
            .rows
            .iter()
            .cloned()
            .partition(|r| r.row.static_features[0] <= threshold);
        (Dataset { rows: low }, Dataset { rows: high })
    }
}

/// Validate a freshly built row before it enters a dataset: every feature,
/// target, and trace value must be finite and the EA non-negative.
/// Corrupted measurements (fault injection, stuck sensors) would otherwise
/// poison training; rejected rows tick `fault.rows_rejected_total`.
fn validate_row(row: &ProfileRow) -> Result<(), String> {
    if !row.ea.is_finite() || row.ea < 0.0 {
        return Err(format!("EA {} out of range", row.ea));
    }
    for (name, v) in [
        ("base_service_norm", row.base_service_norm),
        ("mean_response_norm", row.mean_response_norm),
        ("p95_response_norm", row.p95_response_norm),
        ("allocation_ratio", row.allocation_ratio),
    ] {
        if !v.is_finite() {
            return Err(format!("{name} is {v}"));
        }
    }
    if !row.static_features.iter().all(|v| v.is_finite()) {
        return Err("non-finite static feature".into());
    }
    if !row.trace.as_slice().iter().all(|v| v.is_finite()) {
        return Err("non-finite trace value".into());
    }
    Ok(())
}

/// Apply [`validate_row`] to each built row, dropping invalid ones.
fn keep_valid_rows(rows: Vec<LabeledRow>) -> Vec<LabeledRow> {
    rows.into_iter()
        .filter(|r| match validate_row(&r.row) {
            Ok(()) => true,
            Err(reason) => {
                stca_fault::sanitize::reject_row(
                    &format!("dataset row ({})", r.benchmark),
                    &reason,
                );
                false
            }
        })
        .collect()
}

/// Build a dataset for one collocation pair: `n_conditions` random Table-2
/// conditions, each run through the test environment with a deterministic
/// per-condition seed, in parallel.
pub fn build_pair_dataset(
    pair: (BenchmarkId, BenchmarkId),
    n_conditions: usize,
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
) -> Dataset {
    // conditions drawn up-front so the sampling stream is deterministic
    let mut rng = Rng64::new(seed);
    let conditions: Vec<RuntimeCondition> = (0..n_conditions)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    run_conditions(pair, &conditions, scale, ordering, seed)
}

/// Run an explicit list of conditions for a pair (used by the stratified
/// profiling harness, which chooses its own conditions).
pub fn run_conditions(
    pair: (BenchmarkId, BenchmarkId),
    conditions: &[RuntimeCondition],
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
) -> Dataset {
    run_conditions_customized(pair, conditions, scale, ordering, seed, |spec| spec)
}

/// Like [`run_conditions`] but with a hook to customize each experiment
/// spec (alternate cache platforms, layouts — Figure 7b).
pub fn run_conditions_customized(
    _pair: (BenchmarkId, BenchmarkId),
    conditions: &[RuntimeCondition],
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
    customize: impl Fn(stca_profiler::executor::ExperimentSpec) -> stca_profiler::executor::ExperimentSpec
        + Sync,
) -> Dataset {
    stca_obs::time_scope!("bench.dataset.build_seconds");
    let conditions_run = stca_obs::counter("bench.dataset.conditions_total");
    let per_condition = stca_exec::par_map_indexed(conditions, |i, cond| {
        stca_obs::debug!("condition {i}: running experiment");
        let spec = customize(scale.experiment_spec(cond.clone(), seed ^ ((i as u64) << 20)));
        let out = TestEnvironment::new(spec).run();
        let n = out.workloads.len();
        let rows: Vec<LabeledRow> = out
            .workloads
            .iter()
            .enumerate()
            .map(|(j, w)| LabeledRow {
                benchmark: w.benchmark,
                // partner = the next workload along the chain
                pair: (w.benchmark, out.workloads[(j + 1) % n].benchmark),
                row: ProfileRow::from_outcome(cond, j, w, ordering),
            })
            .collect();
        conditions_run.inc();
        rows
    });
    Dataset {
        rows: keep_valid_rows(per_condition.into_iter().flatten().collect()),
    }
}

/// Fault-tolerant [`build_pair_dataset`]: experiments run under `plan` with
/// retry, conditions that exhaust their retries are skipped (counted in
/// `fault.conditions_failed_total`), rows are validated before entering the
/// dataset, and — when `checkpoint` is given — each finished condition is
/// persisted so a killed build resumes bit-identically.
#[allow(clippy::too_many_arguments)]
pub fn build_pair_dataset_checked(
    pair: (BenchmarkId, BenchmarkId),
    n_conditions: usize,
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    checkpoint: Option<&Path>,
) -> Result<Dataset, StcaError> {
    stca_obs::time_scope!("bench.dataset.build_seconds");
    let mut rng = Rng64::new(seed);
    let conditions: Vec<RuntimeCondition> = (0..n_conditions)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    let meta = format!(
        "dataset/{}-{}/n{n_conditions}/seed{seed}/plan{:016x}",
        pair.0, pair.1, plan.seed
    );
    let mut ckpt = match checkpoint {
        Some(path) => Some(Checkpoint::load_or_new(path, &meta)?),
        None => None,
    };
    // decode resumed conditions up front: Some(rows) = finished (possibly
    // a recorded failure, which stays failed — same plan seed, same faults)
    let cached: Vec<Option<Vec<ProfileRow>>> = (0..n_conditions)
        .map(|i| {
            let ck = ckpt.as_ref()?;
            match ck.get(&format!("cond.{i}")) {
                Some(stca_obs::json::Value::Array(rows)) => rows
                    .iter()
                    .map(|v| storage::row_from_json(v).ok())
                    .collect(),
                Some(stca_obs::json::Value::String(s)) if s.starts_with("failed") => {
                    Some(Vec::new())
                }
                _ => None,
            }
        })
        .collect();
    let conditions_run = stca_obs::counter("bench.dataset.conditions_total");
    let results = stca_exec::par_map_indexed_caught(&conditions, |i, cond| {
        if let Some(rows) = &cached[i] {
            return Ok(rows.clone());
        }
        let spec = scale.experiment_spec(cond.clone(), seed ^ ((i as u64) << 20));
        run_experiment_checked(spec, plan, retry).map(|out| {
            conditions_run.inc();
            out.workloads
                .iter()
                .enumerate()
                .map(|(j, w)| ProfileRow::from_outcome(cond, j, w, ordering))
                .collect::<Vec<ProfileRow>>()
        })
    });
    let failed_counter = stca_obs::counter("fault.conditions_failed_total");
    let mut dataset = Dataset::default();
    for (i, (cond, result)) in conditions.iter().zip(results).enumerate() {
        let flattened = match result {
            Ok(inner) => inner.map_err(|e| e.to_string()),
            Err(panic_msg) => Err(format!("panicked: {panic_msg}")),
        };
        match flattened {
            Ok(rows) => {
                if let Some(ck) = ckpt.as_mut() {
                    if cached[i].is_none() {
                        ck.put(
                            format!("cond.{i}"),
                            stca_obs::json::Value::Array(
                                rows.iter().map(storage::row_to_json).collect(),
                            ),
                        );
                    }
                }
                let n = rows.len();
                let labeled: Vec<LabeledRow> = rows
                    .into_iter()
                    .enumerate()
                    .map(|(j, row)| {
                        let bench = cond.workloads[j].benchmark;
                        let partner = cond.workloads[(j + 1) % n.max(1)].benchmark;
                        LabeledRow {
                            benchmark: bench,
                            pair: (bench, partner),
                            row,
                        }
                    })
                    .collect();
                dataset.rows.extend(keep_valid_rows(labeled));
            }
            Err(reason) => {
                failed_counter.inc();
                stca_obs::warn!("dataset condition {i} failed, skipping: {reason}");
                if let Some(ck) = ckpt.as_mut() {
                    if cached[i].is_none() {
                        ck.put(
                            format!("cond.{i}"),
                            stca_obs::json::Value::String(format!("failed: {reason}")),
                        );
                    }
                }
            }
        }
    }
    if let Some(ck) = ckpt.as_mut() {
        ck.save()?;
    }
    if dataset.is_empty() {
        return Err(StcaError::invalid_input(format!(
            "all {n_conditions} dataset conditions failed under the fault plan"
        )));
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_deterministic_parallel_dataset() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
        let a = build_pair_dataset(pair, 3, Scale::Quick, CounterOrdering::Grouped, 9);
        let b = build_pair_dataset(pair, 3, Scale::Quick, CounterOrdering::Grouped, 9);
        assert_eq!(a.len(), 6, "two rows per condition");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.row.ea, y.row.ea, "parallel build must be deterministic");
            assert_eq!(x.benchmark, y.benchmark);
        }
        // row pairing: target/partner alternate
        assert_eq!(a.rows[0].pair, (BenchmarkId::Knn, BenchmarkId::Bfs));
        assert_eq!(a.rows[1].pair, (BenchmarkId::Bfs, BenchmarkId::Knn));
        assert_eq!(a.rows[0].benchmark, BenchmarkId::Knn);
    }

    #[test]
    fn invalid_rows_are_rejected() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
        let d = build_pair_dataset(pair, 1, Scale::Quick, CounterOrdering::Grouped, 3);
        let mut rows = d.rows.clone();
        rows[0].row.ea = f64::NAN;
        rows[1].row.trace.as_mut_slice()[0] = f64::INFINITY;
        let before = stca_fault::sanitize::rows_rejected_total();
        let kept = keep_valid_rows(rows);
        assert!(kept.is_empty(), "both damaged rows rejected");
        assert_eq!(stca_fault::sanitize::rows_rejected_total(), before + 2);
        // negative EA also rejected
        let mut rows = d.rows.clone();
        rows[0].row.ea = -0.5;
        assert_eq!(keep_valid_rows(rows).len(), 1);
    }

    #[test]
    fn checked_build_without_faults_matches_plain() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
        let plain = build_pair_dataset(pair, 2, Scale::Quick, CounterOrdering::Grouped, 5);
        let checked = build_pair_dataset_checked(
            pair,
            2,
            Scale::Quick,
            CounterOrdering::Grouped,
            5,
            &FaultPlan::none(),
            &RetryPolicy::default(),
            None,
        )
        .expect("no faults");
        assert_eq!(plain.len(), checked.len());
        for (a, b) in plain.rows.iter().zip(&checked.rows) {
            assert_eq!(a.row.ea.to_bits(), b.row.ea.to_bits());
            assert_eq!(a.pair, b.pair);
        }
    }

    #[test]
    fn checked_build_resumes_from_checkpoint_bit_identically() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
        let path =
            std::env::temp_dir().join(format!("stca-dataset-ckpt-{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let build = |ckpt: Option<&std::path::Path>| {
            build_pair_dataset_checked(
                pair,
                3,
                Scale::Quick,
                CounterOrdering::Grouped,
                17,
                &FaultPlan::ci_default(),
                &RetryPolicy::default(),
                ckpt,
            )
            .expect("survivable plan")
        };
        let uninterrupted = build(None);
        let full = build(Some(&path));
        assert_eq!(uninterrupted.len(), full.len());

        // simulate a mid-run kill: keep only the first condition's entry
        let text = std::fs::read_to_string(&path).expect("checkpoint written");
        let mut doc = stca_obs::json::Value::parse(&text).expect("valid json");
        if let stca_obs::json::Value::Object(ref mut top) = doc {
            if let Some(stca_obs::json::Value::Object(entries)) = top.get_mut("entries") {
                entries.retain(|k, _| k == "cond.0");
                assert_eq!(entries.len(), 1);
            }
        }
        std::fs::write(&path, doc.to_string()).expect("write partial");
        let resumed = build(Some(&path));
        assert_eq!(uninterrupted.len(), resumed.len());
        for (a, b) in uninterrupted.rows.iter().zip(&resumed.rows) {
            assert_eq!(a.row.ea.to_bits(), b.row.ea.to_bits());
            assert_eq!(
                a.row
                    .trace
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                b.row
                    .trace
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn split_and_filter() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Redis);
        let d = build_pair_dataset(pair, 4, Scale::Quick, CounterOrdering::Grouped, 11);
        let mut rng = Rng64::new(1);
        let (train, test) = d.split(0.5, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        let knn_rows = d.for_pair((BenchmarkId::Knn, BenchmarkId::Redis));
        assert_eq!(knn_rows.len(), 4);
    }
}
