//! Parallel profile-dataset construction.
//!
//! A dataset is a list of labeled profile rows: for each sampled runtime
//! condition of a collocation pair, one row per workload, carrying the
//! Eq.-2 features and the measured ground truth (EA and response times).
//! Experiments are embarrassingly parallel and each condition carries its
//! own deterministic seed, so `stca_exec::par_map_indexed` runs them on the
//! shared pool and returns rows in condition order at any thread count.

use stca_profiler::executor::{ExperimentSpec, TestEnvironment};
use stca_profiler::profile::{ProfileRow, ProfileSet};
use stca_profiler::sampler::CounterOrdering;
use stca_util::Rng64;
use stca_workloads::{BenchmarkId, RuntimeCondition};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke test: tiny runs, few conditions.
    Quick,
    /// Default: minutes per figure.
    Standard,
    /// Paper scale: more conditions and longer runs.
    Full,
}

impl Scale {
    /// Conditions sampled per collocation pair.
    pub fn conditions_per_pair(&self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Standard => 24,
            Scale::Full => 60,
        }
    }

    /// Shape of each experiment run.
    pub fn experiment_spec(&self, condition: RuntimeCondition, seed: u64) -> ExperimentSpec {
        match self {
            Scale::Quick => ExperimentSpec::quick(condition, seed),
            Scale::Standard => ExperimentSpec {
                measured_queries: 200,
                warmup_queries: 30,
                accesses_per_query: Some(1500),
                ..ExperimentSpec::standard(condition, seed)
            },
            Scale::Full => ExperimentSpec::standard(condition, seed),
        }
    }
}

/// One labeled observation.
#[derive(Debug, Clone)]
pub struct LabeledRow {
    /// The target workload's benchmark.
    pub benchmark: BenchmarkId,
    /// The collocation pair `(target, partner)`.
    pub pair: (BenchmarkId, BenchmarkId),
    /// Eq.-2 features + measured targets.
    pub row: ProfileRow,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// All rows.
    pub rows: Vec<LabeledRow>,
}

impl Dataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Profile set of all rows (feature/label view).
    pub fn profile_set(&self) -> ProfileSet {
        let mut set = ProfileSet::new();
        for r in &self.rows {
            set.push(r.row.clone());
        }
        set
    }

    /// Rows whose target workload belongs to `pair` (ordered).
    pub fn for_pair(&self, pair: (BenchmarkId, BenchmarkId)) -> Dataset {
        Dataset {
            rows: self
                .rows
                .iter()
                .filter(|r| r.pair == pair)
                .cloned()
                .collect(),
        }
    }

    /// Random index split (train, test).
    pub fn split(&self, train_fraction: f64, rng: &mut Rng64) -> (Dataset, Dataset) {
        let n = self.rows.len();
        let n_train = ((n as f64) * train_fraction).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let take = |ids: &[usize]| Dataset {
            rows: ids.iter().map(|&i| self.rows[i].clone()).collect(),
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: Dataset) {
        self.rows.extend(other.rows);
    }

    /// Extrapolation split on the target workload's utilization: rows at or
    /// below `threshold` form the training pool, rows above it the test
    /// set. This is the paper's protocol — *"testing data was not used
    /// during training to ensure models accurately extrapolated to new,
    /// unseen conditions"* — in its sharpest form: test conditions sit in
    /// the high-arrival-rate regime where queueing delay grows non-linearly,
    /// which direct regressors cannot extrapolate but a queueing model can.
    pub fn split_by_utilization(&self, threshold: f64) -> (Dataset, Dataset) {
        let (low, high): (Vec<LabeledRow>, Vec<LabeledRow>) = self
            .rows
            .iter()
            .cloned()
            .partition(|r| r.row.static_features[0] <= threshold);
        (Dataset { rows: low }, Dataset { rows: high })
    }
}

/// Build a dataset for one collocation pair: `n_conditions` random Table-2
/// conditions, each run through the test environment with a deterministic
/// per-condition seed, in parallel.
pub fn build_pair_dataset(
    pair: (BenchmarkId, BenchmarkId),
    n_conditions: usize,
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
) -> Dataset {
    // conditions drawn up-front so the sampling stream is deterministic
    let mut rng = Rng64::new(seed);
    let conditions: Vec<RuntimeCondition> = (0..n_conditions)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, &mut rng))
        .collect();
    run_conditions(pair, &conditions, scale, ordering, seed)
}

/// Run an explicit list of conditions for a pair (used by the stratified
/// profiling harness, which chooses its own conditions).
pub fn run_conditions(
    pair: (BenchmarkId, BenchmarkId),
    conditions: &[RuntimeCondition],
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
) -> Dataset {
    run_conditions_customized(pair, conditions, scale, ordering, seed, |spec| spec)
}

/// Like [`run_conditions`] but with a hook to customize each experiment
/// spec (alternate cache platforms, layouts — Figure 7b).
pub fn run_conditions_customized(
    _pair: (BenchmarkId, BenchmarkId),
    conditions: &[RuntimeCondition],
    scale: Scale,
    ordering: CounterOrdering,
    seed: u64,
    customize: impl Fn(stca_profiler::executor::ExperimentSpec) -> stca_profiler::executor::ExperimentSpec
        + Sync,
) -> Dataset {
    stca_obs::time_scope!("bench.dataset.build_seconds");
    let conditions_run = stca_obs::counter("bench.dataset.conditions_total");
    let per_condition = stca_exec::par_map_indexed(conditions, |i, cond| {
        stca_obs::debug!("condition {i}: running experiment");
        let spec = customize(scale.experiment_spec(cond.clone(), seed ^ ((i as u64) << 20)));
        let out = TestEnvironment::new(spec).run();
        let n = out.workloads.len();
        let rows: Vec<LabeledRow> = out
            .workloads
            .iter()
            .enumerate()
            .map(|(j, w)| LabeledRow {
                benchmark: w.benchmark,
                // partner = the next workload along the chain
                pair: (w.benchmark, out.workloads[(j + 1) % n].benchmark),
                row: ProfileRow::from_outcome(cond, j, w, ordering),
            })
            .collect();
        conditions_run.inc();
        rows
    });
    Dataset {
        rows: per_condition.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_deterministic_parallel_dataset() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Bfs);
        let a = build_pair_dataset(pair, 3, Scale::Quick, CounterOrdering::Grouped, 9);
        let b = build_pair_dataset(pair, 3, Scale::Quick, CounterOrdering::Grouped, 9);
        assert_eq!(a.len(), 6, "two rows per condition");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.row.ea, y.row.ea, "parallel build must be deterministic");
            assert_eq!(x.benchmark, y.benchmark);
        }
        // row pairing: target/partner alternate
        assert_eq!(a.rows[0].pair, (BenchmarkId::Knn, BenchmarkId::Bfs));
        assert_eq!(a.rows[1].pair, (BenchmarkId::Bfs, BenchmarkId::Knn));
        assert_eq!(a.rows[0].benchmark, BenchmarkId::Knn);
    }

    #[test]
    fn split_and_filter() {
        let pair = (BenchmarkId::Knn, BenchmarkId::Redis);
        let d = build_pair_dataset(pair, 4, Scale::Quick, CounterOrdering::Grouped, 11);
        let mut rng = Rng64::new(1);
        let (train, test) = d.split(0.5, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        let knn_rows = d.for_pair((BenchmarkId::Knn, BenchmarkId::Redis));
        assert_eq!(knn_rows.len(), 4);
    }
}
