//! # stca-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md for the experiment index) plus shared
//! machinery — parallel profile-dataset construction, model-comparison
//! scoring, policy evaluation backed by the real test environment, and
//! plain-text table output.
//!
//! Every binary accepts `--scale quick|standard|full` (default `standard`)
//! so the whole suite can be smoke-tested in seconds or run at paper scale.

pub mod dataset;
pub mod evalfig;
pub mod policyeval;
pub mod table;

pub use dataset::{build_pair_dataset, build_pair_dataset_checked, Dataset, LabeledRow, Scale};

/// Parse the common `--scale` argument from a binary's argv.
pub fn scale_from_args() -> Scale {
    let args = stca_util::Args::from_env().unwrap_or_default();
    match args.get("scale") {
        Some("quick") => Scale::Quick,
        Some("full") => Scale::Full,
        _ => Scale::Standard,
    }
}
